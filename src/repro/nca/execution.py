"""NCA execution: token-set (configuration) semantics.

Implements the configuration semantics of Section 2: a configuration is
a set of tokens, and ``delta(S, a)`` maps it through the token
transition relation.  The executor also tracks, per state, the maximum
number of simultaneous tokens observed -- the *empirical* degree of
counter-ambiguity -- which the test suite uses to validate the static
analysis of Section 3 (an unambiguous state must never empirically
exceed one token).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .automaton import NCA, Token

__all__ = ["NCAExecutor", "nca_accepts", "nca_match_ends", "ExecutionStats"]


@dataclass
class ExecutionStats:
    """Aggregate statistics of one execution run."""

    steps: int = 0
    max_tokens: int = 0
    max_tokens_per_state: dict[int, int] = field(default_factory=dict)

    def degree(self, state: int) -> int:
        """Empirical counter-ambiguity degree of ``state`` (Def. 3.1)."""
        return self.max_tokens_per_state.get(state, 0)


class NCAExecutor:
    """Streaming interpreter maintaining the set of active tokens."""

    def __init__(self, nca: NCA):
        self.nca = nca
        self.stats = ExecutionStats()
        self.tokens: set[Token] = set()
        self.reset()

    def reset(self) -> None:
        self.tokens = {self.nca.initial_token()}
        self.stats = ExecutionStats()
        self._record()

    def _record(self) -> None:
        self.stats.max_tokens = max(self.stats.max_tokens, len(self.tokens))
        per_state: dict[int, int] = {}
        for state, _ in self.tokens:
            per_state[state] = per_state.get(state, 0) + 1
        for state, count in per_state.items():
            prev = self.stats.max_tokens_per_state.get(state, 0)
            if count > prev:
                self.stats.max_tokens_per_state[state] = count

    def step(self, byte: int) -> None:
        """One application of the configuration transition function."""
        nxt: set[Token] = set()
        for token in self.tokens:
            nxt.update(self.nca.token_successors(token, byte))
        self.tokens = nxt
        self.stats.steps += 1
        self._record()

    def run(self, data: bytes | str) -> None:
        if isinstance(data, str):
            data = data.encode("latin-1")
        for byte in data:
            self.step(byte)
            if not self.tokens:
                break

    @property
    def accepting(self) -> bool:
        return any(self.nca.is_final_token(t) for t in self.tokens)

    @property
    def dead(self) -> bool:
        return not self.tokens


def nca_accepts(nca: NCA, data: bytes | str) -> bool:
    """Whole-string membership under the configuration semantics."""
    if isinstance(data, str):
        data = data.encode("latin-1")
    executor = NCAExecutor(nca)
    for byte in data:
        executor.step(byte)
        if executor.dead:
            return False
    return executor.accepting


def nca_match_ends(nca: NCA, data: bytes | str) -> list[int]:
    """Streaming report positions (bytes consumed when accepting)."""
    if isinstance(data, str):
        data = data.encode("latin-1")
    executor = NCAExecutor(nca)
    ends: list[int] = []
    if executor.accepting:
        ends.append(0)
    for index, byte in enumerate(data, start=1):
        executor.step(byte)
        if executor.accepting:
            ends.append(index)
        if executor.dead:
            break
    return ends
