"""Glushkov construction: regex with counting -> homogeneous NCA.

The paper converts regexes to NCAs "using a variant of the Glushkov
construction" (Section 2): epsilon-free, homogeneous (every transition
into a state carries the state's own predicate), one position per
character-class occurrence, and one counter register per surviving
bounded-repetition occurrence.

The construction is the classical ``(nullable, first, last, follow)``
scheme enriched with counter bookkeeping:

* ``first`` entries carry the *entry actions* accumulated from
  enclosing repetitions (``x := 1`` per Repeat entered);
* ``last`` entries carry the *exit guards* (``m <= x <= n``);
* a ``Repeat`` contributes loop-back edges ``last x first`` guarded by
  ``x < n`` with action ``x++``, and attaches its counter to every body
  position.

Worked against the paper: building ``Sigma* s1 (s2 (s3 s4){m,n} s5){k}
s6`` reproduces Figure 1 transition-for-transition (see
``tests/nca/test_glushkov.py``).

Nullable bodies: for ``B{m,n}`` with nullable ``B`` the language equals
``(B restricted to nonempty passes){0,n}`` -- any shortfall against the
lower bound can be padded with empty passes -- so the construction
makes the Repeat nullable and drops the lower-bound exit guard.  This
matches the derivative oracle (differentially tested).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..regex.ast import Alt, Concat, Empty, Epsilon, Regex, Repeat, Star, Sym
from ..regex.charclass import CharClass
from .automaton import (
    INITIAL_COUNTER_VALUE,
    Action,
    Guard,
    IncAction,
    InstanceInfo,
    NCA,
    SetAction,
    Transition,
)

__all__ = ["build_nca"]


@dataclass(frozen=True)
class _Entry:
    """A first-position with its accumulated entry actions."""

    position: int
    actions: tuple[Action, ...]


@dataclass(frozen=True)
class _Exit:
    """A last-position with its accumulated exit guards."""

    position: int
    guards: tuple[Guard, ...]


@dataclass(frozen=True)
class _Fragment:
    nullable: bool
    firsts: tuple[_Entry, ...]
    lasts: tuple[_Exit, ...]


class _Builder:
    def __init__(self) -> None:
        self.predicates: list[CharClass | None] = [None]  # state 0 = q0
        self.counters: list[set[int]] = [set()]
        self.edges: dict[tuple, Transition] = {}
        self.instances: list[InstanceInfo] = []
        self.counter_bounds: dict[int, int] = {}
        self.next_instance = 0

    # -- state/edge helpers -------------------------------------------------
    def new_position(self, cls: CharClass) -> int:
        self.predicates.append(cls)
        self.counters.append(set())
        return len(self.predicates) - 1

    def add_edge(
        self,
        source: int,
        target: int,
        guards: tuple[Guard, ...],
        actions: tuple[Action, ...],
    ) -> None:
        t = Transition(source, target, guards, actions)
        self.edges[(source, target, guards, actions)] = t

    def connect(self, lasts: tuple[_Exit, ...], firsts: tuple[_Entry, ...]) -> None:
        for exit_ in lasts:
            for entry in firsts:
                self.add_edge(exit_.position, entry.position, exit_.guards, entry.actions)

    # -- recursive construction ----------------------------------------------
    def visit(self, node: Regex) -> _Fragment:
        if isinstance(node, Empty):
            return _Fragment(False, (), ())
        if isinstance(node, Epsilon):
            return _Fragment(True, (), ())
        if isinstance(node, Sym):
            pos = self.new_position(node.cls)
            return _Fragment(False, (_Entry(pos, ()),), (_Exit(pos, ()),))
        if isinstance(node, Concat):
            return self._visit_concat(node)
        if isinstance(node, Alt):
            return self._visit_alt(node)
        if isinstance(node, Star):
            return self._visit_star(node)
        if isinstance(node, Repeat):
            return self._visit_repeat(node)
        raise TypeError(f"unknown regex node {type(node).__name__}")

    def _visit_concat(self, node: Concat) -> _Fragment:
        fragments = []
        for part in node.parts:
            fragments.append(self.visit(part))
        nullable = all(f.nullable for f in fragments)
        # follow edges between adjacent factors, skipping nullable gaps
        for i in range(len(fragments) - 1):
            reachable_firsts: list[_Entry] = []
            for j in range(i + 1, len(fragments)):
                reachable_firsts.extend(fragments[j].firsts)
                if not fragments[j].nullable:
                    break
            self.connect(fragments[i].lasts, tuple(reachable_firsts))
        firsts: list[_Entry] = []
        for f in fragments:
            firsts.extend(f.firsts)
            if not f.nullable:
                break
        lasts: list[_Exit] = []
        for f in reversed(fragments):
            lasts.extend(f.lasts)
            if not f.nullable:
                break
        return _Fragment(nullable, tuple(firsts), tuple(lasts))

    def _visit_alt(self, node: Alt) -> _Fragment:
        firsts: list[_Entry] = []
        lasts: list[_Exit] = []
        nullable = False
        for part in node.parts:
            frag = self.visit(part)
            firsts.extend(frag.firsts)
            lasts.extend(frag.lasts)
            nullable = nullable or frag.nullable
        return _Fragment(nullable, tuple(firsts), tuple(lasts))

    def _visit_star(self, node: Star) -> _Fragment:
        frag = self.visit(node.inner)
        self.connect(frag.lasts, frag.firsts)
        return _Fragment(True, frag.firsts, frag.lasts)

    def _visit_repeat(self, node: Repeat) -> _Fragment:
        if node.hi is None:
            raise ValueError(
                "unbounded repetition must be lowered before Glushkov "
                "construction (run repro.regex.rewrite.simplify)"
            )
        if node.hi < 2:
            raise ValueError(
                "repetitions with upper bound < 2 must be unfolded before "
                "Glushkov construction (run repro.regex.rewrite.simplify)"
            )
        instance = self.next_instance
        self.next_instance += 1
        counter = instance  # one counter per surviving occurrence

        before = len(self.predicates)
        frag = self.visit(node.inner)
        body = frozenset(range(before, len(self.predicates)))

        self.counter_bounds[counter] = node.hi
        for pos in body:
            self.counters[pos].add(counter)

        enter = SetAction(counter, INITIAL_COUNTER_VALUE)
        firsts = tuple(
            _Entry(e.position, e.actions + (enter,)) for e in frag.firsts
        )
        # loop-back: guard x < n (domain [1, n]), action x++
        loop_guard = Guard(counter, INITIAL_COUNTER_VALUE, node.hi - 1)
        for exit_ in frag.lasts:
            for entry in frag.firsts:
                self.add_edge(
                    exit_.position,
                    entry.position,
                    exit_.guards + (loop_guard,),
                    entry.actions + (IncAction(counter),),
                )
        # exit guard m <= x <= n; trivial when m <= 1 or the body is
        # nullable (empty passes pad out the count), so omitted then.
        if node.lo > 1 and not frag.nullable:
            exit_guard = (Guard(counter, node.lo, node.hi),)
        else:
            exit_guard = ()
        lasts = tuple(_Exit(e.position, e.guards + exit_guard) for e in frag.lasts)
        nullable = frag.nullable or node.lo == 0

        self.instances.append(
            InstanceInfo(
                instance=instance,
                counter=counter,
                lo=node.lo,
                hi=node.hi,
                body=body,
                first=frozenset(e.position for e in frag.firsts),
                last=frozenset(e.position for e in frag.lasts),
                single_class_body=isinstance(node.inner, Sym),
            )
        )
        return _Fragment(nullable, firsts, lasts)


def build_nca(root: Regex) -> NCA:
    """Build the Glushkov NCA for a (simplified) regex.

    The input must already be in the rewrite pass's normal form: no
    unbounded ``{m,}`` and no ``Repeat`` with upper bound < 2.  The
    result has state 0 as the pure initial state and one counter per
    counting occurrence (counter id = preorder instance id).

    >>> from repro import build_nca
    >>> from repro.regex.parser import parse_to_ast
    >>> nca = build_nca(parse_to_ast(r"ab{2,4}c"))
    >>> (nca.num_states, len(nca.counter_bounds))
    (4, 1)
    """
    builder = _Builder()
    frag = builder.visit(root)
    for entry in frag.firsts:
        builder.add_edge(0, entry.position, (), entry.actions)
    finals: dict[int, tuple[Guard, ...]] = {
        exit_.position: exit_.guards for exit_ in frag.lasts
    }
    if frag.nullable:
        finals[0] = ()
    return NCA(
        predicates=builder.predicates,
        counters_of=[frozenset(c) for c in builder.counters],
        transitions=builder.edges.values(),
        finals=finals,
        counter_bounds=builder.counter_bounds,
        # instance ids are assigned in preorder but appended in
        # postorder (the body is visited before the metadata exists);
        # sort so that instances[i].instance == i holds for indexing
        instances=sorted(builder.instances, key=lambda info: info.instance),
    )
