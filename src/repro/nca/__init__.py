"""Nondeterministic counter automata: model, construction, execution."""

from .automaton import (
    INITIAL_COUNTER_VALUE,
    Action,
    Guard,
    IncAction,
    InstanceInfo,
    NCA,
    SetAction,
    Token,
    Transition,
    Valuation,
)
from .counting_sets import (
    AmbiguityViolationError,
    CountingSetExecutor,
    StorageKind,
    classify_states,
    counting_accepts,
    counting_match_ends,
)
from .execution import ExecutionStats, NCAExecutor, nca_accepts, nca_match_ends
from .glushkov import build_nca

__all__ = [
    "NCA",
    "Guard",
    "SetAction",
    "IncAction",
    "Action",
    "Transition",
    "InstanceInfo",
    "Token",
    "Valuation",
    "INITIAL_COUNTER_VALUE",
    "build_nca",
    "NCAExecutor",
    "ExecutionStats",
    "nca_accepts",
    "nca_match_ends",
    "CountingSetExecutor",
    "StorageKind",
    "AmbiguityViolationError",
    "classify_states",
    "counting_accepts",
    "counting_match_ends",
]
