"""Compiled NCA execution with counters and bit vectors (Section 3.2.1).

This is the software twin of the paper's hardware: per NCA state the
configuration is stored as

* ``PURE``      -- one activity bit (plain NFA state);
* ``SCALAR``    -- at most one counter valuation, O(log M) bits
                   (justified only for *counter-unambiguous* states);
* ``BITVECTOR`` -- a length-M bit vector for a single counter, where
                   bit ``i`` says "a token with counter value ``i`` is
                   present" (counter-ambiguous states);
* ``GENERAL``   -- an explicit valuation set (multi-counter ambiguous
                   states; the hardware unfolds these instead).

The bit-vector transition rules are exactly the four cases of
Section 3.2.1: entering sets the least significant bit, staying shifts,
inheriting copies, and exiting computes the disjunction ``v[m] | ... |
v[n]``.

If a state classified ``SCALAR`` ever receives two distinct valuations,
the executor raises :class:`AmbiguityViolationError`; property tests
use this as a *runtime soundness check* of the static analysis: a
state declared counter-unambiguous must never trip it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional

from .automaton import (
    INITIAL_COUNTER_VALUE,
    Guard,
    IncAction,
    NCA,
    SetAction,
    Transition,
    Valuation,
)

__all__ = [
    "StorageKind",
    "AmbiguityViolationError",
    "classify_states",
    "CountingSetExecutor",
    "counting_accepts",
    "counting_match_ends",
]


class StorageKind(Enum):
    PURE = "pure"
    SCALAR = "scalar"
    BITVECTOR = "bitvector"
    GENERAL = "general"


class AmbiguityViolationError(RuntimeError):
    """A SCALAR-classified state received two distinct valuations.

    Raised only when the static analysis that justified the scalar
    storage was wrong -- i.e. never, if the analysis is sound.
    """


def classify_states(
    nca: NCA, unambiguous_states: Optional[Iterable[int]] = None
) -> dict[int, StorageKind]:
    """Pick a storage kind per state.

    ``unambiguous_states`` lists states proven counter-unambiguous by
    the static analysis; they get ``SCALAR`` storage.  Without analysis
    results (``None``) every counter state is treated conservatively as
    ambiguous: single-counter states get ``BITVECTOR``, multi-counter
    states ``GENERAL``.  This mirrors the compiler's module-selection
    policy (Section 4.2 step 3).
    """
    proven = set(unambiguous_states) if unambiguous_states is not None else set()
    kinds: dict[int, StorageKind] = {}
    for state in nca.states:
        counters = nca.counters_of(state)
        if not counters:
            kinds[state] = StorageKind.PURE
        elif state in proven:
            kinds[state] = StorageKind.SCALAR
        elif len(counters) == 1:
            kinds[state] = StorageKind.BITVECTOR
        else:
            kinds[state] = StorageKind.GENERAL
    return kinds


def _range_mask(lo: int, hi: int) -> int:
    """Bit mask selecting counter values ``lo..hi`` (bit v-1 = value v)."""
    lo = max(lo, INITIAL_COUNTER_VALUE)
    if hi < lo:
        return 0
    width = hi - lo + 1
    return ((1 << width) - 1) << (lo - INITIAL_COUNTER_VALUE)


@dataclass
class _StateStore:
    kind: StorageKind
    active: bool = False                 # PURE
    valuation: Optional[Valuation] = None  # SCALAR
    mask: int = 0                        # BITVECTOR
    values: set[Valuation] | None = None  # GENERAL

    def clear(self) -> "_StateStore":
        return _StateStore(self.kind, False, None, 0, set() if self.kind is StorageKind.GENERAL else None)

    def is_empty(self) -> bool:
        if self.kind is StorageKind.PURE:
            return not self.active
        if self.kind is StorageKind.SCALAR:
            return self.valuation is None
        if self.kind is StorageKind.BITVECTOR:
            return self.mask == 0
        return not self.values

    def iter_valuations(self, counter: Optional[int]) -> Iterable[Valuation]:
        """Explicit valuations (slow path; bit vectors expand lazily)."""
        if self.kind is StorageKind.PURE:
            if self.active:
                yield ()
        elif self.kind is StorageKind.SCALAR:
            if self.valuation is not None:
                yield self.valuation
        elif self.kind is StorageKind.BITVECTOR:
            mask = self.mask
            value = INITIAL_COUNTER_VALUE
            while mask:
                if mask & 1:
                    yield ((counter, value),)
                mask >>= 1
                value += 1
        else:
            yield from self.values or ()


class CountingSetExecutor:
    """Streaming matcher over counter/bit-vector/scalar state storage."""

    def __init__(
        self,
        nca: NCA,
        unambiguous_states: Optional[Iterable[int]] = None,
        strict: bool = True,
    ):
        self.nca = nca
        self.strict = strict
        self.kinds = classify_states(nca, unambiguous_states)
        self._bv_counter: dict[int, int] = {}
        for state in nca.states:
            if self.kinds[state] is StorageKind.BITVECTOR:
                (counter,) = nca.counters_of(state)
                self._bv_counter[state] = counter
        self.stores: dict[int, _StateStore] = {}
        self.reset()

    def reset(self) -> None:
        self.stores = {
            state: _StateStore(
                self.kinds[state],
                values=set() if self.kinds[state] is StorageKind.GENERAL else None,
            )
            for state in self.nca.states
        }
        init = self.stores[self.nca.initial]
        if init.kind is not StorageKind.PURE:
            raise ValueError("initial state must be pure")
        init.active = True

    # -- the step function --------------------------------------------------
    def step(self, byte: int) -> None:
        nxt = {
            state: store.clear() for state, store in self.stores.items()
        }
        for state, store in self.stores.items():
            if store.is_empty():
                continue
            for t in self.nca.out_transitions(state):
                pred = self.nca.predicate_of(t.target)
                if byte not in pred:
                    continue
                self._fire(store, t, nxt[t.target])
        self.stores = nxt

    def _fire(self, src: _StateStore, t: Transition, dst: _StateStore) -> None:
        src_counter = self._bv_counter.get(t.source)
        # Fast path: bit-vector source.
        if src.kind is StorageKind.BITVECTOR:
            mask = src.mask
            for g in t.guard:
                if g.counter != src_counter:
                    raise AssertionError("guard on foreign counter")
                mask &= _range_mask(g.lo, g.hi)
            if mask == 0:
                return
            if dst.kind is StorageKind.PURE:
                dst.active = True  # case (4): disjunction fired
                return
            if dst.kind is StorageKind.BITVECTOR:
                dst_counter = self._bv_counter[t.target]
                out = self._bv_to_bv(mask, src_counter, dst_counter, t)
                dst.mask |= out
                return
            # SCALAR/GENERAL destination from a bit vector: expand.
            for valuation in _StateStore(StorageKind.BITVECTOR, mask=mask).iter_valuations(src_counter):
                self._deposit(self._apply(valuation, t), dst)
            return
        # Slow path: explicit valuations (pure/scalar/general sources).
        for valuation in src.iter_valuations(src_counter):
            if not all(g.satisfied(valuation) for g in t.guard):
                continue
            self._deposit(self._apply(valuation, t), dst)

    def _bv_to_bv(self, mask: int, src_counter: int, dst_counter: int, t: Transition) -> int:
        """Bit-vector to bit-vector transfer (cases 1-3 of Section 3.2.1)."""
        action = None
        for a in t.actions:
            if a.counter == dst_counter:
                action = a
        if action is None:
            if src_counter != dst_counter:
                raise AssertionError("inheriting across different counters")
            return mask  # case (2): pass along unchanged
        if isinstance(action, SetAction):
            # case (1): any surviving token creates value `action.value`
            return 1 << (action.value - INITIAL_COUNTER_VALUE)
        # case (3): shift; the x < n loop guard already pruned bit n
        if src_counter != dst_counter:
            raise AssertionError("increment across different counters")
        bound = self.nca.counter_bounds[dst_counter]
        shifted = mask << 1
        return shifted & _range_mask(INITIAL_COUNTER_VALUE, bound)

    def _apply(self, valuation: Valuation, t: Transition) -> Valuation:
        source_values = dict(valuation)
        actions = {a.counter: a for a in t.actions}
        out: list[tuple[int, int]] = []
        for counter in sorted(self.nca.counters_of(t.target)):
            action = actions.get(counter)
            if action is None:
                value = source_values[counter]
            elif isinstance(action, SetAction):
                value = action.value
            else:
                value = source_values[counter] + 1
            out.append((counter, value))
        return tuple(out)

    def _deposit(self, valuation: Valuation, dst: _StateStore) -> None:
        if dst.kind is StorageKind.PURE:
            dst.active = True
        elif dst.kind is StorageKind.SCALAR:
            if dst.valuation is None or dst.valuation == valuation:
                dst.valuation = valuation
            elif self.strict:
                raise AmbiguityViolationError(
                    f"scalar state received {dst.valuation} and {valuation}"
                )
            else:
                # Non-strict mode keeps the newest valuation (hardware
                # counter reset-wins behaviour); only reachable when the
                # caller knowingly classified an ambiguous state SCALAR.
                dst.valuation = valuation
        elif dst.kind is StorageKind.BITVECTOR:
            ((_, value),) = valuation
            dst.mask |= 1 << (value - INITIAL_COUNTER_VALUE)
        else:
            assert dst.values is not None
            dst.values.add(valuation)

    # -- observers ------------------------------------------------------------
    @property
    def accepting(self) -> bool:
        for state, guards in self.nca.finals.items():
            store = self.stores[state]
            if store.is_empty():
                continue
            if store.kind is StorageKind.PURE:
                return True
            if store.kind is StorageKind.BITVECTOR:
                mask = store.mask
                counter = self._bv_counter[state]
                for g in guards:
                    assert g.counter == counter
                    mask &= _range_mask(g.lo, g.hi)
                if mask:
                    return True
                continue
            counter = self._bv_counter.get(state)
            for valuation in store.iter_valuations(counter):
                if all(g.satisfied(valuation) for g in guards):
                    return True
        return False

    @property
    def dead(self) -> bool:
        return all(store.is_empty() for store in self.stores.values())

    def memory_bits(self) -> int:
        """Bits of *reserved* state memory under the chosen storage plan.

        This is the quantity the paper's static analysis shrinks from
        O(M) to O(log M) per unambiguous state: scalars cost
        ceil(log2(bound+1)) bits per counter, bit vectors cost their
        bound, pure states one bit.  GENERAL states are charged like a
        bit vector per counter (worst-case reservation).
        """
        total = 0
        for state in self.nca.states:
            kind = self.kinds[state]
            if kind is StorageKind.PURE:
                total += 1
                continue
            counters = self.nca.counters_of(state)
            if kind is StorageKind.SCALAR:
                total += 1 + sum(
                    (self.nca.counter_bounds[c] + 1).bit_length() for c in counters
                )
            else:
                total += 1 + sum(self.nca.counter_bounds[c] for c in counters)
        return total


def counting_accepts(
    nca: NCA,
    data: bytes | str,
    unambiguous_states: Optional[Iterable[int]] = None,
) -> bool:
    """Whole-string membership via the counting-set executor."""
    if isinstance(data, str):
        data = data.encode("latin-1")
    executor = CountingSetExecutor(nca, unambiguous_states)
    for byte in data:
        executor.step(byte)
        if executor.dead:
            return False
    return executor.accepting


def counting_match_ends(
    nca: NCA,
    data: bytes | str,
    unambiguous_states: Optional[Iterable[int]] = None,
) -> list[int]:
    """Streaming report positions via the counting-set executor."""
    if isinstance(data, str):
        data = data.encode("latin-1")
    executor = CountingSetExecutor(nca, unambiguous_states)
    ends: list[int] = []
    if executor.accepting:
        ends.append(0)
    for index, byte in enumerate(data, start=1):
        executor.step(byte)
        if executor.accepting:
            ends.append(index)
        if executor.dead:
            break
    return ends
