"""Nondeterministic counter automata (Definition 2.1).

An NCA is a tuple ``(Q, R, Delta, I, F)`` where each state has its own
finite set of counters, transitions carry a predicate over the
alphabet, a guard over source-counter valuations and an action mapping
source valuations to target valuations, ``I`` assigns initial
valuations and ``F`` assigns acceptance predicates over valuations.

This module implements the paper's model with two structural
restrictions that its Glushkov construction guarantees (Section 2):

* the automaton is *homogeneous* -- all transitions entering a state
  carry the same alphabet predicate, so the predicate is stored on the
  target state (this is what makes states map 1:1 onto STEs, Fig. 4);
* guards are conjunctions of interval constraints ``lo <= x <= hi`` and
  actions are parallel assignments of either constants (``x := 1``) or
  increments (``x++``), which is exactly the guard/action vocabulary
  generated from bounded repetition.

Tokens (state + valuation) and their transition relation, the
configuration semantics ``delta(S, a)``, and boundedness checks all
live here; Section 3's analyses build on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from ..regex.charclass import CharClass

__all__ = [
    "Guard",
    "SetAction",
    "IncAction",
    "Action",
    "Transition",
    "InstanceInfo",
    "NCA",
    "Valuation",
    "Token",
    "INITIAL_COUNTER_VALUE",
]

#: Counters are set to 1 on entry to a repetition (Example 2.2: x := 1).
INITIAL_COUNTER_VALUE = 1

#: A valuation is a sorted tuple of (counter id, value) pairs -- the
#: explicit form of "beta : R(q) -> N" restricted to the state's counters.
Valuation = tuple[tuple[int, int], ...]

#: A token is a (state, valuation) pair (Section 2, "tokens").
Token = tuple[int, Valuation]

EMPTY_VALUATION: Valuation = ()


@dataclass(frozen=True)
class Guard:
    """Interval constraint ``lo <= counter <= hi`` (inclusive).

    The paper's guards are ``x < n`` (loop-back, here ``lo=1, hi=n-1``),
    ``m <= x <= n`` (exit), and ``x = n`` (exact exit, ``lo=hi=n``).
    """

    counter: int
    lo: int
    hi: int

    def satisfied(self, valuation: Valuation) -> bool:
        for counter, value in valuation:
            if counter == self.counter:
                return self.lo <= value <= self.hi
        raise KeyError(f"guard on counter {self.counter} not in valuation {valuation}")

    def describe(self) -> str:
        if self.lo == self.hi:
            return f"x{self.counter} = {self.lo}"
        return f"{self.lo} <= x{self.counter} <= {self.hi}"


@dataclass(frozen=True)
class SetAction:
    """``counter := value`` on the target state."""

    counter: int
    value: int


@dataclass(frozen=True)
class IncAction:
    """``counter++`` (target value = source value + 1)."""

    counter: int


Action = SetAction | IncAction


@dataclass(frozen=True)
class Transition:
    """One NCA transition ``(p, sigma, phi, q, theta)``.

    The alphabet predicate ``sigma`` is *not* stored here: homogeneity
    means it equals the target state's predicate (see :class:`NCA`).
    ``guard`` is a conjunction; ``actions`` is a parallel assignment for
    the target counters not simply inherited from the source.
    """

    source: int
    target: int
    guard: tuple[Guard, ...] = ()
    actions: tuple[Action, ...] = ()

    def describe(self, nca: "NCA") -> str:
        pred = nca.predicate_of(self.target)
        bits = [pred.to_pattern() if pred is not None else "eps"]
        bits.extend(g.describe() for g in self.guard)
        acts = []
        for act in self.actions:
            if isinstance(act, SetAction):
                acts.append(f"x{act.counter} := {act.value}")
            else:
                acts.append(f"x{act.counter}++")
        label = ", ".join(bits)
        if acts:
            label += " / " + ", ".join(acts)
        return f"q{self.source} -[{label}]-> q{self.target}"


@dataclass(frozen=True)
class InstanceInfo:
    """Metadata tying a counter back to its bounded-repetition occurrence.

    ``first``/``last`` are the body's Glushkov entry/exit positions;
    ``single_class_body`` is True when the body is one character class
    (``sigma{m,n}``), the shape eligible for a hardware bit-vector
    module (Section 4.1, "Software-Hardware Codesign" paragraph).
    """

    instance: int
    counter: int
    lo: int
    hi: int
    body: frozenset[int]
    first: frozenset[int]
    last: frozenset[int]
    single_class_body: bool


class NCA:
    """A homogeneous nondeterministic counter automaton.

    States are dense integers; state 0 is the unique initial state
    ``q0`` (pure, no predicate -- Glushkov's extra state).  Counters
    are dense integers with inclusive value domain ``[1, bound]``.
    """

    def __init__(
        self,
        predicates: Sequence[Optional[CharClass]],
        counters_of: Sequence[frozenset[int]],
        transitions: Iterable[Transition],
        finals: dict[int, tuple[Guard, ...]],
        counter_bounds: dict[int, int],
        instances: Sequence[InstanceInfo] = (),
        initial: int = 0,
    ):
        self._predicates = list(predicates)
        self._counters_of = list(counters_of)
        self.transitions = list(transitions)
        self.finals = dict(finals)
        self.counter_bounds = dict(counter_bounds)
        self.instances = list(instances)
        self.initial = initial
        self._out: list[list[Transition]] = [[] for _ in self._predicates]
        for t in self.transitions:
            self._out[t.source].append(t)
        self._validate()

    # -- structure ---------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self._predicates)

    @property
    def states(self) -> range:
        return range(self.num_states)

    def predicate_of(self, state: int) -> Optional[CharClass]:
        """Alphabet predicate of the state (None only for ``q0``)."""
        return self._predicates[state]

    def counters_of(self, state: int) -> frozenset[int]:
        """``R(q)``: the counters attached to the state."""
        return self._counters_of[state]

    def is_pure(self, state: int) -> bool:
        """A pure state has no counters (Definition 2.1)."""
        return not self._counters_of[state]

    def out_transitions(self, state: int) -> list[Transition]:
        return self._out[state]

    def counter_values(self, counter: int) -> range:
        """Value domain of a counter: ``1 .. bound`` inclusive."""
        return range(INITIAL_COUNTER_VALUE, self.counter_bounds[counter] + 1)

    def instance_of_counter(self, counter: int) -> InstanceInfo:
        for info in self.instances:
            if info.counter == counter:
                return info
        raise KeyError(f"no instance owns counter {counter}")

    def _validate(self) -> None:
        for t in self.transitions:
            if not (0 <= t.source < self.num_states and 0 <= t.target < self.num_states):
                raise ValueError(f"transition out of range: {t}")
            if self._predicates[t.target] is None:
                raise ValueError(f"transition into predicate-less state: {t}")
            src = self._counters_of[t.source]
            tgt = self._counters_of[t.target]
            assigned = {a.counter for a in t.actions}
            for g in t.guard:
                if g.counter not in src:
                    raise ValueError(f"guard on foreign counter in {t}")
            for a in t.actions:
                if a.counter not in tgt:
                    raise ValueError(f"action on foreign counter in {t}")
                if isinstance(a, IncAction) and a.counter not in src:
                    raise ValueError(f"increment of counter absent at source in {t}")
            for c in tgt - assigned:
                if c not in src:
                    raise ValueError(
                        f"target counter x{c} neither assigned nor inherited in {t}"
                    )
        for state, guards in self.finals.items():
            for g in guards:
                if g.counter not in self._counters_of[state]:
                    raise ValueError(f"final guard on foreign counter at q{state}")

    # -- token semantics ----------------------------------------------------
    def initial_token(self) -> Token:
        if self._counters_of[self.initial]:
            raise ValueError("initial state must be pure in Glushkov NCAs")
        return (self.initial, EMPTY_VALUATION)

    def valuation_value(self, valuation: Valuation, counter: int) -> int:
        for c, v in valuation:
            if c == counter:
                return v
        raise KeyError(f"counter {counter} not in valuation")

    def apply_transition(self, token: Token, t: Transition) -> Optional[Token]:
        """Fire ``t`` from ``token`` if the guard allows; None otherwise.

        Implements the token transition relation ``(p, beta) ->a (q,
        theta(beta))`` of Section 2 (the alphabet letter is checked by
        the caller against the target predicate).
        """
        state, valuation = token
        assert state == t.source
        for g in t.guard:
            if not g.satisfied(valuation):
                return None
        source_values = dict(valuation)
        target_values: list[tuple[int, int]] = []
        actions = {a.counter: a for a in t.actions}
        for counter in sorted(self._counters_of[t.target]):
            action = actions.get(counter)
            if action is None:
                value = source_values[counter]
            elif isinstance(action, SetAction):
                value = action.value
            else:
                value = source_values[counter] + 1
            target_values.append((counter, value))
        return (t.target, tuple(target_values))

    def token_successors(self, token: Token, byte: int) -> Iterator[Token]:
        """All ``->byte`` successors of a token."""
        for t in self._out[token[0]]:
            pred = self._predicates[t.target]
            if byte not in pred:
                continue
            nxt = self.apply_transition(token, t)
            if nxt is not None:
                yield nxt

    def is_final_token(self, token: Token) -> bool:
        state, valuation = token
        guards = self.finals.get(state)
        if guards is None:
            return False
        return all(g.satisfied(valuation) for g in guards)

    def is_token_bounded(self, token: Token) -> bool:
        """``n``-boundedness check against the declared counter bounds."""
        return all(v <= self.counter_bounds[c] for c, v in token[1])

    # -- reporting ------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable dump (used by examples and docs)."""
        lines = [f"NCA with {self.num_states} states, "
                 f"{len(self.counter_bounds)} counters, "
                 f"{len(self.transitions)} transitions"]
        for q in self.states:
            pred = self._predicates[q]
            tags = []
            if q == self.initial:
                tags.append("initial")
            if q in self.finals:
                guards = self.finals[q]
                suffix = " if " + " and ".join(g.describe() for g in guards) if guards else ""
                tags.append("final" + suffix)
            counters = ",".join(f"x{c}" for c in sorted(self._counters_of[q]))
            header = f"  q{q}"
            if counters:
                header += f" : {counters}"
            if pred is not None:
                header += f" on {pred.to_pattern()}"
            if tags:
                header += f"  ({'; '.join(tags)})"
            lines.append(header)
            for t in self._out[q]:
                lines.append("    " + t.describe(self))
        return "\n".join(lines)
