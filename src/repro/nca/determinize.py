"""Subset construction and DFAs: the baseline the paper's intro leans on.

"DFA-based techniques are generally faster, as the processing of an
input element requires a single memory lookup ... The advantage of
NFAs over DFAs is that they are typically more memory-efficient, and
there are cases where an equivalent DFA would unavoidably be
exponentially larger" (Section 1, citing Meyer & Fischer).  Counting
makes this concrete: unfolding ``r{n,n}`` gives an NFA linear in n "and
therefore can produce a DFA of size exponential in n".

This module makes those claims executable:

* :func:`determinize` -- subset construction over a *pure* (counter-free)
  NCA, i.e. an NFA, with symbolic alphabet partitioning and a state cap
  so the exponential cases fail fast and measurably;
* :class:`DFA` -- a table-driven matcher used both as yet another
  differential oracle and for state-count measurements
  (``tests/nca/test_determinize.py`` demonstrates the 2^n blowup of
  ``Sigma* a Sigma{n}`` and the linear growth of anchored ``a{n}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..regex.charclass import ALPHABET_SIZE, CharClass
from .automaton import NCA

__all__ = ["DFA", "DFATooLargeError", "determinize"]


class DFATooLargeError(Exception):
    """Subset construction exceeded the state cap (the blowup case)."""

    def __init__(self, cap: int):
        self.cap = cap
        super().__init__(f"subset construction exceeded {cap} states")


@dataclass
class DFA:
    """A dense-table DFA over the byte alphabet.

    ``transitions[s]`` is a 256-entry list of successor ids (-1 = dead);
    one memory lookup per input symbol, as the paper says.
    """

    transitions: list[list[int]]
    accepting: frozenset[int]
    initial: int = 0

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def step(self, state: int, byte: int) -> int:
        if state < 0:
            return -1
        return self.transitions[state][byte]

    def accepts(self, data: bytes | str) -> bool:
        if isinstance(data, str):
            data = data.encode("latin-1")
        state = self.initial
        for byte in data:
            state = self.step(state, byte)
            if state < 0:
                return False
        return state in self.accepting

    def match_ends(self, data: bytes | str) -> list[int]:
        """Streaming report positions (same convention as the oracle)."""
        if isinstance(data, str):
            data = data.encode("latin-1")
        ends = []
        state = self.initial
        if state in self.accepting:
            ends.append(0)
        for index, byte in enumerate(data, start=1):
            state = self.step(state, byte)
            if state < 0:
                break
            if state in self.accepting:
                ends.append(index)
        return ends


def _alphabet_partition(nca: NCA, states: frozenset[int]) -> list[CharClass]:
    """Coarsest partition of the alphabet that the subset's out-edges
    cannot distinguish further: atoms of the target predicates."""
    predicates: list[CharClass] = []
    seen: set[int] = set()
    for state in states:
        for t in nca.out_transitions(state):
            pred = nca.predicate_of(t.target)
            if pred.mask not in seen:
                seen.add(pred.mask)
                predicates.append(pred)
    atoms = [CharClass.sigma()]
    for pred in predicates:
        refined: list[CharClass] = []
        for atom in atoms:
            inside = atom & pred
            outside = atom - pred
            if not inside.is_empty():
                refined.append(inside)
            if not outside.is_empty():
                refined.append(outside)
        atoms = refined
    return atoms


def determinize(nca: NCA, max_states: Optional[int] = 100_000) -> DFA:
    """Subset construction over a counter-free NCA.

    Raises ``ValueError`` for automata with counters (unfold first) and
    :class:`DFATooLargeError` when the cap is hit.
    """
    if nca.counter_bounds:
        raise ValueError(
            "determinize requires a counter-free automaton; apply "
            "repro.regex.unfold.unfold_all before construction"
        )
    initial = frozenset([nca.initial])
    index: dict[frozenset[int], int] = {initial: 0}
    order: list[frozenset[int]] = [initial]
    transitions: list[list[int]] = []
    accepting: set[int] = set()
    finals = set(nca.finals)

    frontier = [initial]
    while frontier:
        subset = frontier.pop()
        sid = index[subset]
        while len(transitions) <= sid:
            transitions.append([-1] * ALPHABET_SIZE)
        if subset & finals:
            accepting.add(sid)
        for atom in _alphabet_partition(nca, subset):
            byte = atom.sample()
            successor = frozenset(
                t.target
                for state in subset
                for t in nca.out_transitions(state)
                if byte in nca.predicate_of(t.target)
            )
            if not successor:
                continue
            next_id = index.get(successor)
            if next_id is None:
                next_id = len(index)
                if max_states is not None and next_id >= max_states:
                    raise DFATooLargeError(max_states)
                index[successor] = next_id
                order.append(successor)
                frontier.append(successor)
            row = transitions[sid]
            for value in atom:
                row[value] = next_id
    # rows for states discovered but never expanded with edges
    while len(transitions) < len(index):
        transitions.append([-1] * ALPHABET_SIZE)
    for subset, sid in index.items():
        if subset & finals:
            accepting.add(sid)
    return DFA(transitions=transitions, accepting=frozenset(accepting))
