"""repro: reproduction of "Software-Hardware Codesign for Efficient
In-Memory Regular Pattern Matching" (PLDI 2022).

The library spans the paper's whole stack:

* :mod:`repro.regex` -- POSIX-style regexes with counting: parser,
  rewrites, metrics, unfolding, and a derivative-based oracle matcher;
* :mod:`repro.nca` -- nondeterministic counter automata: the Glushkov
  construction and token-set / counting-set execution engines;
* :mod:`repro.analysis` -- the static counter-(un)ambiguity analyses
  (exact, over-approximate, hybrid, with witness generation);
* :mod:`repro.mnrl` -- the MNRL-style interchange format extended with
  counter and bit-vector nodes;
* :mod:`repro.compiler` -- regex-to-MNRL compilation, the optimisation
  pass pipeline (alphabet classes, cross-rule prefix sharing, dead-node
  elimination), the persistent compiled-ruleset cache, and CAMA
  mapping;
* :mod:`repro.hardware` -- the augmented-CAMA functional simulator and
  the Table 2 energy/delay/area cost model;
* :mod:`repro.engine` -- the streaming scan engine: precompiled
  transition tables, the pluggable execution-backend registry
  (``"stream"`` scalar interpreter, ``"block"`` NumPy vectorized
  scanner, ``"reference"`` simulator, ``"auto"`` selection), chunked
  ``feed``/``finish`` scanning, batch/sharded front-ends; every
  backend report- and stats-equivalent to the reference simulator;
* :mod:`repro.session` -- the session-oriented matching API:
  incremental :class:`Match` events with absolute offsets, the
  :class:`Matcher` protocol shared by single and sharded matchers,
  pluggable sinks, and :class:`MultiStreamScanner` multi-stream
  demultiplexing (one compiled ruleset, N interleaved client streams);
* :mod:`repro.serve` -- the async match-serving subsystem:
  :class:`MatchServer` (asyncio TCP line-protocol server with bounded
  per-connection backpressure, threaded feed off-load, graceful
  drain), :class:`MatchClient`/:func:`scan_tagged_remote`,
  :class:`ServerStats` load snapshots, and the cluster scatter-gather
  layer (:class:`RemoteShardedMatcher` over M remote ruleset shards);
  CLI ``repro serve`` / ``repro connect`` / ``repro cluster``;
* :mod:`repro.rules` -- the Snort/PCRE ruleset ingestion frontend:
  rule-line parsing (``content:``/``pcre:`` with ``nocase``,
  ``offset``/``depth``/``distance``/``within``, ``|AA BB|`` hex
  blocks), conservative translation into the project dialect, and
  triage classifying every rule as compiled / rewritten / rejected
  with a machine-readable reason; CLI ``repro rules``;
* :mod:`repro.workloads` -- synthetic Snort/Suricata/Protomata/
  SpamAssassin/ClamAV-style suites and input streams;
* :mod:`repro.experiments` -- drivers regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import compile_pattern, NetworkSimulator

    compiled = compile_pattern(r"a(bc){1,3}d")
    sim = NetworkSimulator(compiled.network)
    print(sim.match_ends(b"xabcbcdy"))   # -> [7]
"""

from .analysis import (
    InstanceResult,
    Method,
    RegexAnalysisResult,
    analyze,
    analyze_pattern,
)
from .compiler import (
    CompiledPattern,
    CompiledRuleset,
    Decision,
    OptimizationReport,
    compile_pattern,
    compile_ruleset,
    compute_alphabet_classes,
    run_passes,
)
from .compiler.mapping import NetworkMapping, map_network
from .engine import (
    Backend,
    BackendInfo,
    BlockScanner,
    ShardedMatcher,
    StreamScanner,
    TransitionTables,
    available_backends,
    compile_tables,
    merge_scan_results,
    register_backend,
    resolve_backend,
)
from .hardware import (
    BIT_VECTOR,
    CAM_ARRAY,
    COUNTER,
    GEOMETRY,
    NetworkSimulator,
    ReportEvent,
    simulate,
)
from .hardware.cost import area_of_mapping, energy_of_run, savings_of_mappings
from .matching import (
    CompileInfo,
    PatternMatcher,
    RulesetMatcher,
    ScanResult,
    merge_compile_infos,
)
from .mnrl import BitVectorNode, CounterNode, Network, STE
from .nca import NCA, CountingSetExecutor, NCAExecutor, build_nca
from .regex import CharClass, Pattern, parse, simplify
from .rules import (
    LoadedRuleset,
    SnortRule,
    TriagedRule,
    TriageReport,
    load_rules,
    load_rules_text,
    parse_rule,
    translate_rule,
)
from .serve import (
    ClusterPartialResultError,
    ClusterSpec,
    LocalShardCluster,
    MatchClient,
    MatchServer,
    MatcherHandle,
    RemoteShardedMatcher,
    ServerStats,
    WorkerFleet,
    merge_server_stats,
    scan_tagged_remote,
)
from .session import (
    CollectorSink,
    Match,
    MatchSession,
    Matcher,
    MultiStreamScanner,
    QueueSink,
    UNNAMED_REPORT,
    match_dict,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # regex
    "CharClass",
    "Pattern",
    "parse",
    "simplify",
    # nca
    "NCA",
    "build_nca",
    "NCAExecutor",
    "CountingSetExecutor",
    # analysis
    "Method",
    "InstanceResult",
    "RegexAnalysisResult",
    "analyze",
    "analyze_pattern",
    # mnrl
    "Network",
    "STE",
    "CounterNode",
    "BitVectorNode",
    # compiler
    "Decision",
    "CompiledPattern",
    "CompiledRuleset",
    "OptimizationReport",
    "compile_pattern",
    "compile_ruleset",
    "compute_alphabet_classes",
    "run_passes",
    "map_network",
    "NetworkMapping",
    # hardware
    "NetworkSimulator",
    "ReportEvent",
    "simulate",
    "CAM_ARRAY",
    "COUNTER",
    "BIT_VECTOR",
    "GEOMETRY",
    "area_of_mapping",
    "energy_of_run",
    "savings_of_mappings",
    # engine
    "TransitionTables",
    "compile_tables",
    "StreamScanner",
    "BlockScanner",
    "ShardedMatcher",
    "merge_scan_results",
    # execution backends
    "Backend",
    "BackendInfo",
    "available_backends",
    "register_backend",
    "resolve_backend",
    # high-level facade
    "RulesetMatcher",
    "PatternMatcher",
    "ScanResult",
    "CompileInfo",
    "merge_compile_infos",
    # session API (incremental Match events, multi-stream serving)
    "Match",
    "match_dict",
    "MatchSession",
    "Matcher",
    "MultiStreamScanner",
    "CollectorSink",
    "QueueSink",
    "UNNAMED_REPORT",
    # ruleset ingestion frontend (Snort-style .rules files + triage)
    "SnortRule",
    "TriagedRule",
    "TriageReport",
    "LoadedRuleset",
    "load_rules",
    "load_rules_text",
    "parse_rule",
    "translate_rule",
    # serving subsystem (async TCP match server + client + fleet)
    "MatchServer",
    "MatcherHandle",
    "MatchClient",
    "ServerStats",
    "WorkerFleet",
    "merge_server_stats",
    "scan_tagged_remote",
    # cluster scatter-gather (network-sharded rulesets)
    "RemoteShardedMatcher",
    "LocalShardCluster",
    "ClusterSpec",
    "ClusterPartialResultError",
]
