"""Command-line interface: ``python -m repro <command>``.

Commands mirror the toolchain stages:

* ``analyze``  -- run the counter-(un)ambiguity analysis on a pattern;
* ``compile``  -- compile a pattern to extended MNRL, or a whole rule
  file (``--rules``) into the persistent ruleset cache
  (``--cache-dir``) so later ``scan`` runs warm-start;
* ``scan``     -- stream a file (or stdin) through a rule set in chunks
  on a registry-selected execution backend (``--engine auto`` picks the
  fastest available; optionally sharded); ``-O1`` enables the
  optimisation passes, ``--cache-dir`` reuses/creates cached
  compilations, ``--verbose`` reports backend availability, compile/
  cache timing, and per-rule skip reasons.  With ``--streams`` the
  input is treated as interleaved ``tag<TAB>chunk`` lines: one
  compiled ruleset serves every tagged stream through per-stream
  sessions (:class:`~repro.session.MultiStreamScanner`), reporting
  per-stream results;
* ``serve``    -- run the asyncio match server: one compiled ruleset
  (same compile options as ``scan``) served over TCP to N concurrent
  line-protocol clients (protocol spec: ``docs/SERVING.md``); stops
  gracefully -- drain, flush, ``BYE`` -- on SIGINT/SIGTERM;
* ``connect``  -- smoke-test client for ``serve``: stream interleaved
  ``tag<TAB>chunk`` lines (the ``scan --streams`` format) to a running
  server and report per-stream matches;
* ``cluster``  -- scatter-gather over network ruleset shards
  (:mod:`repro.serve.cluster`): either spawn M local shard servers
  from one rule file (``--rules``/``--shards``, each server holding a
  round-robin slice) and serve until SIGTERM, or attach to an existing
  shard fleet (``--attach host:port,...``); with ``--input`` the
  spawned or attached cluster one-shots a tagged-chunk scan whose
  merged per-stream results equal an offline ``scan --streams`` run;
* ``rules``    -- ingest Snort-style ``.rules`` files through the
  :mod:`repro.rules` frontend and report the triage (every rule
  classified compiled / rewritten / rejected-with-reason; ``--json``
  for the machine-readable document, ``--compile``/``--cache-dir`` to
  also compile the accepted rules and fold compile-level skips in);
* ``census``   -- Table 1-style census of a synthetic suite;
* ``report``   -- regenerate one of the paper's tables/figures.

Rule files are plain text: one ``id<TAB>pattern`` (or just ``pattern``)
per line; ``#`` comments and blank lines are ignored.  ``scan
--format snort`` instead reads Snort-style ``.rules`` files through
the ingestion frontend (accepted rules scan, rejected ones are
reported on stderr).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis.hybrid import analyze_pattern
from .compiler.mapping import map_network
from .compiler.pipeline import compile_pattern
from .engine.backends import (
    AUTO_ENGINE,
    BackendUnavailable,
    available_backends,
    engine_choices,
)
from .engine.parallel import ShardedMatcher
from .hardware.cost import area_of_mapping
from .matching import RulesetMatcher
from .mnrl.serialize import dumps, save
from .workloads.stats import census
from .workloads.synth import suite_by_name

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="In-memory regex matching with counters and bit vectors "
        "(PLDI 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="counter-(un)ambiguity analysis")
    p_analyze.add_argument("pattern")
    p_analyze.add_argument(
        "--method", choices=["exact", "approximate", "hybrid"], default="hybrid"
    )
    p_analyze.add_argument("--witness", action="store_true")

    p_compile = sub.add_parser(
        "compile",
        help="compile a pattern to extended MNRL, or a rule file into "
        "the persistent ruleset cache",
    )
    p_compile.add_argument(
        "pattern", nargs="?", help="single pattern (omit when using --rules)"
    )
    p_compile.add_argument(
        "--rules", help="compile a whole rule file (id\\tpattern lines)"
    )
    p_compile.add_argument("-o", "--output", help="write MNRL JSON here")
    p_compile.add_argument(
        "--threshold",
        type=float,
        default=0,
        help="unfold occurrences with upper bound <= threshold "
        "(inf = unfold everything)",
    )
    p_compile.add_argument(
        "-O",
        "--opt-level",
        type=int,
        default=0,
        help="optimisation passes: 0 = none (stat-exact), "
        "1+ = dead-node elimination + cross-rule prefix sharing "
        "(report-set equivalence)",
    )
    p_compile.add_argument(
        "--cache-dir",
        help="persist the compiled ruleset here (warm starts skip "
        "parsing/analysis/emission); requires --rules",
    )

    p_scan = sub.add_parser(
        "scan", help="scan a file or stdin with a rule set (streaming)"
    )
    p_scan.add_argument("--rules", required=True, help="rule file (id\\tpattern lines)")
    p_scan.add_argument(
        "--input", required=True, help="data file to scan ('-' reads stdin)"
    )
    p_scan.add_argument(
        "--format",
        choices=["native", "snort"],
        default="native",
        help="rule file format: native = id\\tpattern lines, snort = "
        "Snort-style .rules ingested through the repro.rules frontend "
        "(rejected rules reported on stderr)",
    )
    p_scan.add_argument("--threshold", type=float, default=0)
    p_scan.add_argument(
        "--chunk-size",
        type=int,
        default=1 << 16,
        help="streaming read size in bytes (default 64 KiB)",
    )
    p_scan.add_argument(
        "--engine",
        choices=engine_choices(),
        default=AUTO_ENGINE,
        help="execution backend (from the backend registry): auto = "
        "fastest available backend for the compiled ruleset; "
        "stream/table = scalar interpreter; block = NumPy vectorized "
        "block scanner (if numpy is installed); reference = "
        "node-by-node simulator",
    )
    p_scan.add_argument(
        "--shards",
        type=int,
        default=1,
        help="round-robin the rule set over N independent shards",
    )
    p_scan.add_argument(
        "-O",
        "--opt-level",
        type=int,
        default=0,
        help="optimisation passes (see 'compile --opt-level')",
    )
    p_scan.add_argument(
        "--cache-dir",
        help="warm-start from (and populate) the persistent ruleset cache",
    )
    p_scan.add_argument(
        "--streams",
        action="store_true",
        help="serve many interleaved tagged streams over one compiled "
        "ruleset: each input line is 'tag<TAB>chunk' (latin-1 text; "
        "chunks with the same tag form one logical stream, interleaved "
        "arbitrarily), results are reported per stream",
    )
    p_scan.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="report compile/cache timing, optimisation results, and "
        "per-rule skip reasons",
    )

    p_serve = sub.add_parser(
        "serve",
        help="serve a compiled ruleset over TCP (line protocol, "
        "see docs/SERVING.md)",
    )
    p_serve.add_argument("--rules", required=True, help="rule file (id\\tpattern lines)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 picks an ephemeral port, printed on the "
        "ready line)",
    )
    p_serve.add_argument(
        "--engine",
        choices=engine_choices(),
        default=AUTO_ENGINE,
        help="execution backend for every served session",
    )
    p_serve.add_argument("--threshold", type=float, default=0)
    p_serve.add_argument(
        "-O", "--opt-level", type=int, default=0,
        help="optimisation passes (see 'compile --opt-level')",
    )
    p_serve.add_argument(
        "--cache-dir",
        help="warm-start from (and populate) the persistent ruleset cache",
    )
    p_serve.add_argument(
        "--shards", type=int, default=1,
        help="round-robin the rule set over N independent shards",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=32,
        help="per-connection backpressure depth (frames in flight "
        "before socket reads pause)",
    )
    p_serve.add_argument(
        "--threads", type=int, default=None,
        help="feed-offload thread count per server process "
        "(default: executor's choice)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="server process count: >1 forks a fleet of workers "
        "sharing host:port via SO_REUSEPORT (crashed workers are "
        "respawned; see docs/SERVING.md 'Multi-worker deployment')",
    )
    p_serve.add_argument(
        "--reload", action="store_true",
        help="enable hot ruleset reload on SIGHUP (re-reads --rules, "
        "swaps atomically; in-flight streams drain on the old tables)",
    )
    p_serve.add_argument(
        "--control",
        help="unix control-socket path speaking "
        "PING/GEN/STATS/RELOAD/STOP (one reply line per command)",
    )

    p_connect = sub.add_parser(
        "connect",
        help="stream tagged chunks to a running match server "
        "(smoke-test client)",
    )
    p_connect.add_argument("--host", default="127.0.0.1")
    p_connect.add_argument("--port", type=int, required=True)
    p_connect.add_argument(
        "--input", default="-",
        help="tag<TAB>chunk lines, interleaved (default '-' = stdin; "
        "same format as 'scan --streams')",
    )
    p_connect.add_argument(
        "--retries", type=int, default=5,
        help="extra connection attempts before giving up (exponential "
        "backoff with jitter), for racing a just-started server",
    )
    p_connect.add_argument(
        "--stats", action="store_true",
        help="also print the server's STATS snapshot",
    )
    p_connect.add_argument(
        "--json", action="store_true",
        help="machine-readable output: one JSON document with "
        "per-stream summaries, match events (with ruleset "
        "generations), and the server STATS snapshot "
        "(schema: docs/SERVING.md)",
    )

    p_cluster = sub.add_parser(
        "cluster",
        help="scatter-gather a ruleset over network shard servers "
        "(spawn local shards from --rules, or --attach host:port,...)",
    )
    p_cluster.add_argument(
        "--rules",
        help="spawn mode: rule file to split round-robin over --shards "
        "local shard servers",
    )
    p_cluster.add_argument(
        "--attach",
        help="attach mode: comma-separated host:port shard endpoints "
        "(one running match server per ruleset shard)",
    )
    p_cluster.add_argument(
        "--shards", type=int, default=3,
        help="shard server count in spawn mode (default 3)",
    )
    p_cluster.add_argument("--host", default="127.0.0.1")
    p_cluster.add_argument(
        "--ports",
        help="comma-separated fixed ports for spawned shards "
        "(default: ephemeral, printed on the ready line)",
    )
    p_cluster.add_argument(
        "--input",
        help="one-shot scan: tag<TAB>chunk lines ('-' = stdin; same "
        "format as 'scan --streams'); omit in spawn mode to keep the "
        "shards serving until SIGINT/SIGTERM",
    )
    p_cluster.add_argument(
        "--engine",
        choices=engine_choices(),
        default=AUTO_ENGINE,
        help="execution backend for every spawned shard server",
    )
    p_cluster.add_argument("--threshold", type=float, default=0)
    p_cluster.add_argument(
        "-O", "--opt-level", type=int, default=0,
        help="optimisation passes (see 'compile --opt-level')",
    )
    p_cluster.add_argument(
        "--cache-dir",
        help="warm-start spawned shards from the persistent ruleset cache",
    )
    p_cluster.add_argument(
        "--retries", type=int, default=5,
        help="extra connection attempts per shard before giving up "
        "(exponential backoff with jitter)",
    )
    p_cluster.add_argument(
        "--in-process", action="store_true",
        help="run spawned shards as servers inside this process "
        "instead of forked worker processes (dev/debug)",
    )
    p_cluster.add_argument(
        "--stats", action="store_true",
        help="also print the merged cluster STATS snapshot",
    )

    p_rules = sub.add_parser(
        "rules",
        help="ingest Snort-style .rules files and report the triage "
        "(compiled / rewritten / rejected-with-reason)",
    )
    p_rules.add_argument(
        "files", nargs="+", help="Snort-style .rules files (one id namespace)"
    )
    p_rules.add_argument(
        "--json",
        action="store_true",
        help="machine-readable triage document (schema: docs/RULES.md)",
    )
    p_rules.add_argument(
        "--compile",
        action="store_true",
        help="also compile the accepted rules and fold compile-level "
        "skips into the triage",
    )
    p_rules.add_argument(
        "--cache-dir",
        help="compile through the persistent ruleset cache "
        "(implies --compile)",
    )
    p_rules.add_argument("--threshold", type=float, default=0)
    p_rules.add_argument(
        "-O", "--opt-level", type=int, default=0,
        help="optimisation passes (see 'compile --opt-level')",
    )
    p_rules.add_argument(
        "--rejected",
        action="store_true",
        help="list every rejected rule with its reason and origin",
    )

    p_census = sub.add_parser("census", help="Table 1-style suite census")
    p_census.add_argument(
        "--suite",
        choices=["Snort", "Suricata", "Protomata", "SpamAssassin", "ClamAV"],
        required=True,
    )
    p_census.add_argument("--total", type=int, default=None)
    p_census.add_argument("--seed", type=int, default=None)

    p_report = sub.add_parser("report", help="regenerate a table/figure")
    p_report.add_argument(
        "--which",
        choices=["table1", "table2", "fig2", "fig3", "fig8", "fig9", "fig10"],
        required=True,
    )
    p_report.add_argument("--scale", type=float, default=0.2)
    return parser


def _cmd_analyze(args) -> int:
    result = analyze_pattern(
        args.pattern, method=args.method, record_witness=args.witness
    )
    if not result.has_counting:
        print("no bounded repetition; nothing to analyze")
        return 0
    for inst in result.instances:
        verdict = "AMBIGUOUS" if inst.treat_as_ambiguous else "unambiguous"
        if not inst.conclusive:
            verdict = "inconclusive (treated ambiguous)"
        line = (
            f"occurrence #{inst.instance} {{{inst.lo},{inst.hi}}}: {verdict} "
            f"[{inst.method.value}, {inst.pairs_created} pairs, "
            f"{inst.elapsed_s * 1000:.2f} ms]"
        )
        if inst.witness is not None:
            line += f" witness={inst.witness!r}"
        print(line)
    print(f"regex verdict: {'ambiguous' if result.ambiguous else 'unambiguous'}")
    return 0


def _cmd_compile(args) -> int:
    if args.rules:
        return _compile_rules(args)
    if not args.pattern:
        print("error: provide a pattern or --rules FILE", file=sys.stderr)
        return 2
    if args.cache_dir:
        print("error: --cache-dir requires --rules", file=sys.stderr)
        return 2
    compiled = compile_pattern(args.pattern, unfold_threshold=args.threshold)
    print(
        f"{compiled.ste_count} STEs, {compiled.counter_count} counters, "
        f"{compiled.bit_vector_count} bit vectors "
        f"(decisions: { {k: v.value for k, v in compiled.decisions.items()} })"
    )
    mapping = map_network(compiled.network)
    area = area_of_mapping(mapping)
    print(
        f"placement: {mapping.bank.pes_used} PEs, "
        f"{mapping.bank.cam_arrays_used} CAM arrays, "
        f"area {area.total_mm2:.6f} mm^2"
    )
    if args.output:
        save(compiled.network, args.output)
        print(f"MNRL written to {args.output}")
    else:
        print(dumps(compiled.network))
    return 0


def _compile_rules(args) -> int:
    """``compile --rules``: build (and optionally cache) a ruleset."""
    matcher = RulesetMatcher(
        _read_rules(args.rules),
        unfold_threshold=args.threshold,
        opt_level=args.opt_level,
        cache_dir=args.cache_dir,
    )
    info = matcher.compile_info
    resources = matcher.resources()
    tables = matcher.tables
    source = "cache (warm start)" if info.cache_hit else "fresh compile"
    print(
        f"compiled {resources.rules_compiled} rules "
        f"({resources.rules_skipped} skipped) in {info.seconds * 1e3:.1f} ms "
        f"[{source}, -O{info.opt_level}]"
    )
    print(
        f"  {resources.stes} STEs / {resources.counters} ctr / "
        f"{resources.bit_vectors} bv; {resources.cam_arrays} CAM arrays; "
        f"area {resources.area_mm2:.4f} mm^2"
    )
    print(
        f"  tables: {tables.n_classes} alphabet classes (of 256), "
        f"{resources.merged_stes} STEs merged, "
        f"{resources.removed_nodes} dead nodes removed"
    )
    for rule_id, reason in matcher.skipped:
        print(f"  skipped {rule_id}: {reason}", file=sys.stderr)
    if info.cache_path:
        print(f"  artifact: {info.cache_path}")
    if args.output:
        save(matcher.network, args.output)
        print(f"MNRL written to {args.output}")
    return 0


def _read_rules(path: str, fmt: str = "native") -> list[tuple]:
    if fmt == "snort":
        from .rules import load_rules

        loaded = load_rules(path)
        counts = loaded.report.counts
        if counts["rejected"]:
            print(
                f"triage: {counts['compiled']} compiled, "
                f"{counts['rewritten']} rewritten, "
                f"{counts['rejected']} rejected "
                f"(run 'repro rules {path}' for details)",
                file=sys.stderr,
            )
        return loaded.rules
    rules: list[tuple] = []
    with open(path, "r", encoding="utf-8") as handle:
        for index, line in enumerate(handle):
            line = line.rstrip("\n")
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            if "\t" in line:
                rule_id, pattern = line.split("\t", 1)
            else:
                rule_id, pattern = f"rule{index}", line
            rules.append((rule_id, pattern))
    return rules


def _chunks(handle, size: int):
    while True:
        chunk = handle.read(size)
        if not chunk:
            return
        yield chunk


def _cmd_scan(args) -> int:
    rules = _read_rules(args.rules, fmt=getattr(args, "format", "native"))
    options = dict(
        unfold_threshold=args.threshold,
        engine=args.engine,
        opt_level=args.opt_level,
        cache_dir=args.cache_dir,
    )
    try:
        if args.shards > 1:
            matcher = ShardedMatcher(rules, shards=args.shards, **options)
            infos = matcher.compile_infos
        else:
            matcher = RulesetMatcher(rules, **options)
            infos = [matcher.compile_info]
    except BackendUnavailable as exc:
        # e.g. --engine block without numpy: a clean message, not a
        # traceback (argparse offers every registered name regardless
        # of availability)
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.verbose:
        for index, info in enumerate(infos):
            shard = f"shard {index}: " if len(infos) > 1 else ""
            source = "cache hit (warm start)" if info.cache_hit else "fresh compile"
            print(
                f"{shard}compiled in {info.seconds * 1e3:.1f} ms "
                f"[{source}, -O{info.opt_level}]",
                file=sys.stderr,
            )
        for rule_id, reason in matcher.skipped:
            print(f"skipped {rule_id}: {reason}", file=sys.stderr)
    elif matcher.skipped:
        print(
            f"skipped {len(matcher.skipped)} rule(s); "
            "use --verbose for reasons",
            file=sys.stderr,
        )

    if args.verbose:
        for info in available_backends():
            status = "available" if info.available else f"unavailable ({info.unavailable_reason})"
            print(f"backend {info.name}: {status}", file=sys.stderr)

    handle = sys.stdin.buffer if args.input == "-" else open(args.input, "rb")
    try:
        if args.streams:
            return _scan_multi_stream(matcher, handle, args)
        # every registered backend streams, so one entry point serves
        # all --engine choices (including reference and auto)
        result = matcher.scan_stream(_chunks(handle, max(1, args.chunk_size)))
    finally:
        if handle is not sys.stdin.buffer:
            handle.close()
    resources = matcher.resources()
    print(
        f"scanned {result.bytes_scanned} bytes with "
        f"{resources.rules_compiled} rules "
        f"({resources.stes} STEs / {resources.counters} ctr / "
        f"{resources.bit_vectors} bv; {resources.area_mm2:.4f} mm^2; "
        f"{result.energy_nj_per_byte:.4f} nJ/B)"
    )
    if args.verbose:
        print(
            f"  -O{resources.opt_level}: {resources.alphabet_classes} alphabet "
            f"classes, {resources.merged_stes} STEs merged, "
            f"{resources.removed_nodes} dead nodes removed"
        )
    for rule_id in sorted(result.matches):
        ends = result.matches[rule_id]
        shown = ", ".join(map(str, ends[:8]))
        suffix = ", ..." if len(ends) > 8 else ""
        print(f"  {rule_id}: {len(ends)} match(es) at [{shown}{suffix}]")
    if not result.matches:
        print("  no matches")
    return 0


def _tagged_chunks(handle):
    """Parse interleaved ``tag<TAB>chunk`` lines from a binary handle.

    Yields ``(line_number, tag, payload)``; the payload is the raw
    bytes after the first tab (the trailing newline is framing, not
    stream data).  Lines without a tab raise :class:`ValueError`.
    """
    for number, raw in enumerate(handle, start=1):
        # strip exactly the line framing (one \n, plus at most one
        # preceding \r): payload bytes that happen to be \r are data
        line = raw[:-1] if raw.endswith(b"\n") else raw
        if line.endswith(b"\r"):
            line = line[:-1]
        if not line:
            continue
        tag, sep, payload = line.partition(b"\t")
        if not sep:
            raise ValueError(
                f"line {number}: expected 'tag<TAB>chunk', got {line[:40]!r}"
            )
        yield number, tag.decode("latin-1"), payload


def _scan_multi_stream(matcher, handle, args) -> int:
    """``scan --streams``: demultiplex tagged lines into per-stream
    sessions over the one compiled ruleset and report per stream."""
    from .session import MultiStreamScanner

    mux = MultiStreamScanner(matcher, engine=None)
    try:
        for _, tag, payload in _tagged_chunks(handle):
            mux.feed(tag, payload)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    mux.finish_all()
    results = mux.results()
    resources = matcher.resources()
    total_bytes = sum(result.bytes_scanned for result in results.values())
    total_matches = sum(result.total_matches() for result in results.values())
    print(
        f"served {len(results)} stream(s), {total_bytes} bytes, "
        f"{total_matches} match(es) with {resources.rules_compiled} rules"
    )
    for tag in sorted(results):
        result = results[tag]
        print(
            f"stream {tag}: {result.bytes_scanned} bytes, "
            f"{result.total_matches()} match(es)"
        )
        for rule_id in sorted(result.matches):
            ends = result.matches[rule_id]
            shown = ", ".join(map(str, ends[:8]))
            suffix = ", ..." if len(ends) > 8 else ""
            print(f"  {rule_id}: {len(ends)} match(es) at [{shown}{suffix}]")
    if not results:
        print("  no streams")
    return 0


def _build_matcher(args):
    """Compile the rule file with the scan/serve option set; returns
    ``None`` (after printing) when the backend is unavailable."""
    rules = _read_rules(args.rules)
    options = dict(
        unfold_threshold=args.threshold,
        engine=args.engine,
        opt_level=args.opt_level,
        cache_dir=args.cache_dir,
    )
    try:
        if args.shards > 1:
            return ShardedMatcher(rules, shards=args.shards, **options)
        return RulesetMatcher(rules, **options)
    except BackendUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _serve_summary(stats) -> None:
    print(
        f"served {stats.connections_total} connection(s), "
        f"{stats.streams_total} stream(s), {stats.bytes_scanned} bytes, "
        f"{stats.matches_emitted} match(es)"
    )


def _cmd_serve(args) -> int:
    """``serve``: compile once, serve line-protocol clients until a
    signal arrives, then drain gracefully.  ``--workers N`` (N > 1)
    forks a SO_REUSEPORT-sharded worker fleet instead of serving
    in-process; both paths support ``--reload`` (SIGHUP hot ruleset
    reload) and ``--control`` (unix control socket)."""
    if args.workers > 1:
        return _serve_fleet(args)

    import asyncio
    import signal

    from .serve import MatchServer
    from .serve.control import ControlServer

    matcher = _build_matcher(args)
    if matcher is None:
        return 2
    if matcher.skipped:
        print(f"skipped {len(matcher.skipped)} rule(s)", file=sys.stderr)
    resources = matcher.resources()

    def rebuild():
        """Reload path: recompile the (possibly edited) rule file."""
        fresh = _build_matcher(args)
        if fresh is None:
            raise RuntimeError(f"cannot rebuild ruleset from {args.rules}")
        return fresh

    async def run() -> int:
        server = MatchServer(
            matcher,
            host=args.host,
            port=args.port,
            engine=args.engine,
            queue_depth=args.queue_depth,
            workers=args.threads,
        )
        try:
            await server.start()
        except OSError as exc:
            print(
                f"error: cannot bind {args.host}:{args.port}: {exc}",
                file=sys.stderr,
            )
            return 2
        # the ready line is machine-readable: smoke tests poll for it
        print(
            f"serving {resources.rules_compiled} rules on "
            f"{server.host}:{server.port} (engine {args.engine}, "
            f"queue depth {args.queue_depth})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop = loop.create_future()

        def request_stop() -> None:
            if not stop.done():
                stop.set_result(None)

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, request_stop)
            except (NotImplementedError, RuntimeError):
                pass  # platform without signal handlers: Ctrl-C raises

        async def do_reload() -> None:
            try:
                generation = await server.reload(rebuild)
            except Exception as exc:  # noqa: BLE001 - operator-facing
                print(f"reload failed: {exc}", file=sys.stderr, flush=True)
            else:
                print(f"reloaded ruleset: generation {generation}", flush=True)

        if args.reload and hasattr(signal, "SIGHUP"):
            try:
                loop.add_signal_handler(
                    signal.SIGHUP,
                    lambda: loop.create_task(do_reload()),
                )
            except (NotImplementedError, RuntimeError):
                pass

        control = None
        if args.control:

            class _Target:
                """Duck-typed control target over the running loop."""

                @property
                def generation(self) -> int:
                    return server.handle.generation

                def stats(self):
                    return server.stats()

                def reload(self) -> int:
                    return asyncio.run_coroutine_threadsafe(
                        server.reload(rebuild), loop
                    ).result()

            control = ControlServer(
                _Target(),
                args.control,
                on_stop=lambda: loop.call_soon_threadsafe(request_stop),
            )
            control.start()
            print(f"control socket at {args.control}", file=sys.stderr)
        try:
            await stop
        except KeyboardInterrupt:  # pragma: no cover - no-handler platforms
            pass
        finally:
            if control is not None:
                control.stop()
        print("draining...", file=sys.stderr)
        await server.stop(drain=True)
        _serve_summary(server.stats())
        return 0

    return asyncio.run(run())


def _serve_fleet(args) -> int:
    """``serve --workers N``: supervise a process-sharded fleet."""
    import signal
    import threading

    from .serve.control import ControlServer
    from .serve.fleet import FleetError, WorkerFleet

    rules = _read_rules(args.rules)
    fleet = WorkerFleet(
        rules,
        workers=args.workers,
        host=args.host,
        port=args.port,
        engine=args.engine,
        unfold_threshold=args.threshold,
        opt_level=args.opt_level,
        cache_dir=args.cache_dir,
        shards=args.shards,
        queue_depth=args.queue_depth,
        threads=args.threads,
    )
    try:
        fleet.start()
    except (OSError, FleetError) as exc:
        print(
            f"error: cannot serve on {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    warm = sum(1 for worker in fleet._workers if worker.cache_hit)
    print(
        f"serving {len(rules)} rules on {fleet.host}:{fleet.port} "
        f"(engine {args.engine}, workers {args.workers}, "
        f"{warm} warm-started, generation {fleet.generation})",
        flush=True,
    )

    stop = threading.Event()
    reload_requested = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    if args.reload and hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, lambda *_: reload_requested.set())

    def do_reload() -> None:
        try:
            generation = fleet.reload(rules=_read_rules(args.rules))
        except Exception as exc:  # noqa: BLE001 - operator-facing
            print(f"reload failed: {exc}", file=sys.stderr, flush=True)
        else:
            print(f"reloaded ruleset: generation {generation}", flush=True)

    control = None
    if args.control:
        control = ControlServer(fleet, args.control, on_stop=stop.set)
        control.start()
        print(f"control socket at {args.control}", file=sys.stderr)
    try:
        while not stop.wait(0.2):
            if reload_requested.is_set():
                reload_requested.clear()
                do_reload()
    finally:
        print("draining...", file=sys.stderr)
        if control is not None:
            control.stop()
        fleet.stop(drain=True)
    if fleet.restarts:
        print(f"respawned {fleet.restarts} worker(s)", file=sys.stderr)
    if fleet.final_stats is not None:
        _serve_summary(fleet.final_stats)
    return 0


def _cmd_connect(args) -> int:
    """``connect``: stream a tagged-chunk file at a running server and
    report per-stream matches (the serve smoke-test client)."""
    import json
    import socket
    import time

    from .serve.client import backoff_delays, scan_tagged_remote

    handle = sys.stdin.buffer if args.input == "-" else open(args.input, "rb")
    try:
        try:
            pairs = [
                (tag, payload) for _, tag, payload in _tagged_chunks(handle)
            ]
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    finally:
        if handle is not sys.stdin.buffer:
            handle.close()

    last_error: Optional[Exception] = None
    delays = backoff_delays(max(0, args.retries))
    for attempt in range(max(1, args.retries + 1)):
        if attempt:
            time.sleep(next(delays, 0.0))
        try:
            matches, summaries, stats = scan_tagged_remote(
                args.host, args.port, pairs
            )
            break
        except (ConnectionError, socket.error) as exc:
            last_error = exc
    else:
        print(f"error: cannot connect to {args.host}:{args.port}: "
              f"{last_error}", file=sys.stderr)
        return 2

    total_bytes = sum(s.bytes_scanned for s in summaries.values())
    total_matches = sum(s.matches_emitted for s in summaries.values())
    if args.json:
        document = {
            "host": args.host,
            "port": args.port,
            "streams": {
                tag: {
                    "bytes": summary.bytes_scanned,
                    "matches": summary.matches_emitted,
                    "generation": summary.generation,
                    "events": [
                        {
                            "rule": match.rule,
                            "end": match.end,
                            "generation": match.generation,
                        }
                        for match in matches.get(tag, [])
                    ],
                }
                for tag, summary in summaries.items()
            },
            "totals": {
                "streams": len(summaries),
                "bytes": total_bytes,
                "matches": total_matches,
            },
            "stats": stats,
        }
        print(json.dumps(document, sort_keys=True))
        return 0
    print(
        f"served {len(summaries)} stream(s), {total_bytes} bytes, "
        f"{total_matches} match(es)"
    )
    for tag in sorted(summaries):
        summary = summaries[tag]
        print(
            f"stream {tag}: {summary.bytes_scanned} bytes, "
            f"{summary.matches_emitted} match(es)"
        )
        by_rule: dict[str, list[int]] = {}
        for match in matches.get(tag, []):
            by_rule.setdefault(match.rule, []).append(match.end)
        for rule_id in sorted(by_rule):
            ends = sorted(by_rule[rule_id])
            shown = ", ".join(map(str, ends[:8]))
            suffix = ", ..." if len(ends) > 8 else ""
            print(f"  {rule_id}: {len(ends)} match(es) at [{shown}{suffix}]")
    if not summaries:
        print("  no streams")
    if args.stats:
        print(f"server stats: {stats}")
    return 0


def _cluster_scan(matcher, args) -> int:
    """One-shot cluster scan: demultiplex tagged lines through the
    remote shards and report per stream (merged across shards)."""
    from .serve.cluster import ClusterPartialResultError
    from .session import MultiStreamScanner

    handle = sys.stdin.buffer if args.input == "-" else open(args.input, "rb")
    mux = MultiStreamScanner(matcher, engine=None)
    try:
        try:
            for _, tag, payload in _tagged_chunks(handle):
                mux.feed(tag, payload)
            mux.finish_all()
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ClusterPartialResultError as exc:
            # partial-result contract: name the casualty, keep what
            # was already delivered visible, exit distinctly
            print(f"error: {exc}", file=sys.stderr)
            for stream in sorted(exc.delivered):
                for match in exc.delivered[stream]:
                    print(
                        f"  delivered {stream}: {match.rule} @ {match.end}",
                        file=sys.stderr,
                    )
            return 3
    finally:
        if handle is not sys.stdin.buffer:
            handle.close()
    results = mux.results()
    total_bytes = sum(result.bytes_scanned for result in results.values())
    total_matches = sum(result.total_matches() for result in results.values())
    print(
        f"scanned {len(results)} stream(s), {total_bytes} bytes, "
        f"{total_matches} match(es) across {matcher.shard_count} shard(s)"
    )
    for tag in sorted(results):
        result = results[tag]
        print(
            f"stream {tag}: {result.bytes_scanned} bytes, "
            f"{result.total_matches()} match(es)"
        )
        for rule_id in sorted(result.matches):
            ends = result.matches[rule_id]
            shown = ", ".join(map(str, ends[:8]))
            suffix = ", ..." if len(ends) > 8 else ""
            print(f"  {rule_id}: {len(ends)} match(es) at [{shown}{suffix}]")
    if not results:
        print("  no streams")
    if args.stats:
        print(f"cluster stats: {matcher.stats().as_dict()}")
    return 0


def _cmd_cluster(args) -> int:
    """``cluster``: spawn or attach to a shard-server fleet and either
    one-shot a tagged scan (``--input``) or serve until a signal."""
    import signal
    import threading

    from .serve.cluster import ClusterSpec, RemoteShardedMatcher, parse_endpoint

    if bool(args.rules) == bool(args.attach):
        print(
            "error: exactly one of --rules (spawn) or --attach (attach)",
            file=sys.stderr,
        )
        return 2

    if args.attach:
        if args.input is None:
            print("error: --attach requires --input", file=sys.stderr)
            return 2
        try:
            endpoints = [
                parse_endpoint(part)
                for part in args.attach.split(",")
                if part.strip()
            ]
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not endpoints:
            print("error: --attach lists no endpoints", file=sys.stderr)
            return 2
        try:
            matcher = ClusterSpec.attach(endpoints).connect(retries=args.retries)
        except ConnectionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        with matcher:
            return _cluster_scan(matcher, args)

    # spawn mode: one rule file, round-robin over --shards local servers
    rules = _read_rules(args.rules)
    try:
        ports = tuple(
            int(part) for part in args.ports.split(",") if part.strip()
        ) if args.ports else ()
    except ValueError:
        print(f"error: bad --ports list {args.ports!r}", file=sys.stderr)
        return 2
    if ports and len(ports) != args.shards:
        print(
            f"error: --ports lists {len(ports)} port(s) for "
            f"{args.shards} shard(s)",
            file=sys.stderr,
        )
        return 2
    spec = ClusterSpec.spawn(
        rules,
        shards=args.shards,
        host=args.host,
        ports=ports,
        engine=args.engine,
        unfold_threshold=args.threshold,
        opt_level=args.opt_level,
        cache_dir=args.cache_dir,
    )
    try:
        cluster = spec.start(processes=not args.in_process)
    except (OSError, RuntimeError, ValueError) as exc:
        print(f"error: cannot start shard servers: {exc}", file=sys.stderr)
        return 2
    code = 0
    try:
        addresses = ",".join(f"{host}:{port}" for host, port in cluster.addresses)
        # the ready line is machine-readable: smoke tests poll for it
        print(
            f"cluster of {cluster.shard_count} shard(s) on {addresses} "
            f"({cluster.rule_count} rules, engine {args.engine}, "
            f"mode {cluster.mode})",
            flush=True,
        )
        if args.input is not None:
            with RemoteShardedMatcher(
                cluster.addresses, retries=args.retries
            ) as matcher:
                code = _cluster_scan(matcher, args)
        else:
            stop = threading.Event()
            signal.signal(signal.SIGINT, lambda *_: stop.set())
            signal.signal(signal.SIGTERM, lambda *_: stop.set())
            stop.wait()
    finally:
        print("draining...", file=sys.stderr)
        _serve_summary(cluster.stop(drain=True))
    return code


def _cmd_rules(args) -> int:
    """``rules``: triage Snort-style rule files (optionally compile)."""
    import json

    from .rules import load_rules

    try:
        loaded = load_rules(args.files)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = loaded.report
    compile_block = None
    if args.compile or args.cache_dir:
        matcher, report = loaded.compile(
            cache_dir=args.cache_dir,
            unfold_threshold=args.threshold,
            opt_level=args.opt_level,
        )
        info = matcher.compile_info
        resources = matcher.resources()
        compile_block = {
            "cache_hit": info.cache_hit,
            "seconds": info.seconds,
            "opt_level": info.opt_level,
            "cache_path": info.cache_path,
            "rules_compiled": resources.rules_compiled,
            "stes": resources.stes,
            "counters": resources.counters,
            "bit_vectors": resources.bit_vectors,
        }

    if args.json:
        document = report.as_dict()
        document["files"] = list(loaded.files)
        if compile_block is not None:
            document["compile"] = compile_block
        print(json.dumps(document, sort_keys=True))
        return 0

    print(f"files: {', '.join(loaded.files)}")
    print(report.summary())
    if args.rejected:
        for rule in report.rejected:
            where = rule.origin or rule.rule_id
            detail = f": {rule.detail}" if rule.detail else ""
            print(f"  rejected {where} [{rule.reason}]{detail}")
    if compile_block is not None:
        source = "cache (warm start)" if compile_block["cache_hit"] else "fresh compile"
        print(
            f"compiled {compile_block['rules_compiled']} rules in "
            f"{compile_block['seconds'] * 1e3:.1f} ms [{source}, "
            f"-O{compile_block['opt_level']}]: "
            f"{compile_block['stes']} STEs / {compile_block['counters']} ctr / "
            f"{compile_block['bit_vectors']} bv"
        )
        if compile_block["cache_path"]:
            print(f"  artifact: {compile_block['cache_path']}")
    return 0


def _cmd_census(args) -> int:
    suite = suite_by_name(args.suite, total=args.total, seed=args.seed)
    row = census(suite)
    print(
        f"{row.name}: total {row.total}, supported {row.supported}, "
        f"counting {row.counting}, counter-ambiguous {row.ambiguous} "
        f"[{row.elapsed_s:.2f}s]"
    )
    return 0


def _cmd_report(args) -> int:
    from . import experiments as ex

    which = args.which
    if which == "table1":
        print(ex.format_table1(ex.run_table1(scale=args.scale)))
    elif which == "table2":
        print(ex.format_table2(ex.run_table2()))
    elif which == "fig2":
        result = ex.run_fig2(scale=args.scale)
        print(ex.format_fig2(result))
        print()
        print(ex.format_fig2(result, metric="pairs"))
    elif which == "fig3":
        result = ex.run_fig3_family()
        result.points.extend(ex.run_fig3(scale=args.scale).points)
        print(ex.format_fig3(result))
    elif which == "fig8":
        print(ex.format_fig8(ex.run_fig8()))
    elif which == "fig9":
        print(ex.format_fig9(ex.run_fig9(scale=args.scale)))
    elif which == "fig10":
        fig9 = ex.run_fig9(scale=args.scale)
        print(ex.format_fig10(ex.run_fig10(scale=args.scale, prepped=fig9.prepped)))
    return 0


_COMMANDS = {
    "analyze": _cmd_analyze,
    "compile": _cmd_compile,
    "scan": _cmd_scan,
    "serve": _cmd_serve,
    "connect": _cmd_connect,
    "cluster": _cmd_cluster,
    "rules": _cmd_rules,
    "census": _cmd_census,
    "report": _cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
