"""Structural model of the augmented CAMA bank (Fig. 5).

The physical hierarchy is: bank -> 16 processing arrays -> 8 processing
elements (PEs) each; every PE contains two 256-STE CAM arrays, two
local switches, 8 counter modules, and optionally one 2000-bit vector
module whose bits "can be broken down to segments and used separately
for counting with small upper bounds" (Section 4.3).

This module provides the allocation containers the mapping algorithm
fills, with capacity checking against :data:`repro.hardware.params.GEOMETRY`,
plus occupancy statistics for the cost model (occupied CAM arrays,
counters in use, bit-vector segments and waste bits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .params import CamaGeometry, GEOMETRY

__all__ = ["ProcessingElement", "Bank", "BankAllocationError"]


class BankAllocationError(Exception):
    """A placement request exceeded a physical capacity."""


@dataclass
class ProcessingElement:
    """One PE: STE slots, counter slots, one segmentable bit vector."""

    index: int
    geometry: CamaGeometry = field(default=GEOMETRY, repr=False)
    stes: list[str] = field(default_factory=list)
    counters: list[str] = field(default_factory=list)
    #: (node id, live bits) segments carved out of the PE's bit vector
    bv_segments: list[tuple[str, int]] = field(default_factory=list)

    # -- capacities -------------------------------------------------------
    @property
    def ste_room(self) -> int:
        return self.geometry.stes_per_pe - len(self.stes)

    @property
    def counter_room(self) -> int:
        return self.geometry.counters_per_pe - len(self.counters)

    @property
    def bv_bits_used(self) -> int:
        return sum(bits for _, bits in self.bv_segments)

    @property
    def bv_bits_room(self) -> int:
        return self.geometry.bit_vector_bits_per_pe - self.bv_bits_used

    def fits(self, stes: int, counters: int, bv_bits: int) -> bool:
        return (
            stes <= self.ste_room
            and counters <= self.counter_room
            and bv_bits <= self.bv_bits_room
        )

    def place(
        self,
        stes: list[str],
        counters: list[str],
        bv_segments: list[tuple[str, int]],
    ) -> None:
        need_bits = sum(bits for _, bits in bv_segments)
        if not self.fits(len(stes), len(counters), need_bits):
            raise BankAllocationError(
                f"PE {self.index} cannot fit {len(stes)} STEs / "
                f"{len(counters)} counters / {need_bits} bv bits"
            )
        self.stes.extend(stes)
        self.counters.extend(counters)
        self.bv_segments.extend(bv_segments)

    # -- occupancy statistics ------------------------------------------------
    @property
    def cam_arrays_used(self) -> int:
        """CAM arrays powered in this PE (256 STEs each, up to 2)."""
        return math.ceil(len(self.stes) / self.geometry.stes_per_cam_array)

    @property
    def has_bit_vector_module(self) -> bool:
        return bool(self.bv_segments)

    @property
    def bv_waste_bits(self) -> int:
        """Unused bits of the PE's bit-vector module, if powered.

        This is the per-PE contribution to the "waste" series in
        Figure 10's area plot.
        """
        if not self.bv_segments:
            return 0
        return self.geometry.bit_vector_bits_per_pe - self.bv_bits_used


@dataclass
class Bank:
    """A full CAMA bank: a growable pool of PEs grouped into arrays.

    ``new_pe`` grows the pool; callers may exceed one physical bank, in
    which case the occupancy statistics simply report multiple banks
    (large rulesets span banks in deployment too).
    """

    geometry: CamaGeometry = field(default=GEOMETRY, repr=False)
    pes: list[ProcessingElement] = field(default_factory=list)

    def new_pe(self) -> ProcessingElement:
        pe = ProcessingElement(index=len(self.pes), geometry=self.geometry)
        self.pes.append(pe)
        return pe

    # -- occupancy statistics ------------------------------------------------
    @property
    def pes_used(self) -> int:
        return len(self.pes)

    @property
    def arrays_used(self) -> int:
        return math.ceil(self.pes_used / self.geometry.pes_per_array)

    @property
    def banks_used(self) -> int:
        return max(1, math.ceil(self.pes_used / self.geometry.pes_per_bank))

    @property
    def cam_arrays_used(self) -> int:
        return sum(pe.cam_arrays_used for pe in self.pes)

    @property
    def ste_count(self) -> int:
        return sum(len(pe.stes) for pe in self.pes)

    @property
    def counter_count(self) -> int:
        return sum(len(pe.counters) for pe in self.pes)

    @property
    def bv_modules_used(self) -> int:
        return sum(1 for pe in self.pes if pe.has_bit_vector_module)

    @property
    def bv_bits_used(self) -> int:
        return sum(pe.bv_bits_used for pe in self.pes)

    @property
    def bv_waste_bits(self) -> int:
        return sum(pe.bv_waste_bits for pe in self.pes)
