"""Functional cycle simulator for augmented-CAMA networks.

The paper "modified the open-source simulator VASim to simulate the
hardware performance of our counter- and bit-vector-augmented CAMA
design" (Section 4.3).  This module is that simulator, rebuilt: it
executes an MNRL-style :class:`~repro.mnrl.network.Network` one symbol
per clock cycle, following the two-phase in-memory architecture of
Section 4.1:

1. *state matching* -- every enabled STE whose symbol set contains the
   input byte activates;
2. *state transition* -- activations propagate through the (modeled)
   switch network to compute next-cycle enables, and through the
   counter/bit-vector modules, whose updates and output signals
   complete within the same cycle (their delays fit the 325 ps
   critical path, Table 2).

Module port timing: ``fst``/``lst``/``body`` inputs are same-cycle;
``pre`` inputs are latched one cycle (see :mod:`repro.mnrl.nodes`).
Module-to-module same-cycle signals (nested repetitions) are resolved
in topological order, computed once at load time.

Besides report events the simulator gathers the per-component activity
statistics that the cost model turns into the energy numbers of
Figures 8 and 10.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..mnrl.network import Network
from ..mnrl.nodes import BitVectorNode, CounterNode, STE, StartType
from .params import GEOMETRY

__all__ = ["ReportEvent", "ActivityStats", "NetworkSimulator", "simulate"]


@dataclass(frozen=True)
class ReportEvent:
    """A report fired at ``position`` (1-based count of consumed bytes)."""

    position: int
    node_id: str
    report_id: Optional[str]


@dataclass
class ActivityStats:
    """Per-run activity counters consumed by the cost model."""

    cycles: int = 0
    ste_activations: int = 0
    counter_ops: int = 0
    bit_vector_ops: int = 0
    #: per-module live-bit-weighted ops: sum over cycles of hi/size
    bit_vector_weighted_ops: float = 0.0
    reports: int = 0

    def equivalent(self, other: "ActivityStats", rel_tol: float = 1e-9) -> bool:
        """Equality up to float reassociation.

        The integer counters must match exactly; the weighted
        bit-vector term is a float sum whose value depends on addition
        order (engines differ in module iteration order and chunking),
        so it is compared to relative tolerance.  This is the stats
        half of the table-engine equivalence contract.
        """
        import math

        return (
            self.cycles == other.cycles
            and self.ste_activations == other.ste_activations
            and self.counter_ops == other.counter_ops
            and self.bit_vector_ops == other.bit_vector_ops
            and self.reports == other.reports
            and math.isclose(
                self.bit_vector_weighted_ops,
                other.bit_vector_weighted_ops,
                rel_tol=rel_tol,
                abs_tol=1e-12,
            )
        )


class _CounterState:
    __slots__ = ("count", "prev_pre")

    def __init__(self) -> None:
        self.count = 0
        self.prev_pre = False


class _BitVectorState:
    __slots__ = ("mask", "prev_pre")

    def __init__(self) -> None:
        self.mask = 0
        self.prev_pre = False


def _range_mask(lo: int, hi: int) -> int:
    """Mask of count values ``lo..hi`` (count ``v`` lives at bit v-1)."""
    if hi < lo or hi < 1:
        return 0
    lo = max(lo, 1)
    return ((1 << (hi - lo + 1)) - 1) << (lo - 1)


class NetworkSimulator:
    """Executes a network byte-per-cycle with activity accounting.

    The executable specification: every engine backend is tested for
    report equivalence against this simulator.

    >>> from repro import NetworkSimulator, compile_pattern
    >>> sim = NetworkSimulator(compile_pattern("abc").network)
    >>> sim.match_ends(b"xxabc")
    [5]
    """

    def __init__(self, network: Network):
        network.validate()
        self.network = network
        self._build_wiring()
        self.stats = ActivityStats()
        self.reports: list[ReportEvent] = []
        self.reset()

    # -- static wiring ---------------------------------------------------------
    def _build_wiring(self) -> None:
        net = self.network
        self.stes = {n.id: n for n in net.stes()}
        self.modules = {
            n.id: n for n in net.nodes.values() if not isinstance(n, STE)
        }
        # signal fan-outs
        self.ste_to_stes: dict[str, list[str]] = defaultdict(list)
        self.ste_to_module_ports: dict[str, list[tuple[str, str]]] = defaultdict(list)
        self.module_out_to_stes: dict[tuple[str, str], list[str]] = defaultdict(list)
        self.module_out_to_ports: dict[tuple[str, str], list[tuple[str, str]]] = (
            defaultdict(list)
        )
        same_cycle_deps: dict[str, set[str]] = defaultdict(set)
        for conn in net.connections:
            src_is_ste = conn.source in self.stes
            dst_is_ste = conn.target in self.stes
            if src_is_ste and dst_is_ste:
                self.ste_to_stes[conn.source].append(conn.target)
            elif src_is_ste:
                self.ste_to_module_ports[conn.source].append(
                    (conn.target, conn.target_port)
                )
            elif dst_is_ste:
                self.module_out_to_stes[(conn.source, conn.source_port)].append(
                    conn.target
                )
            else:
                self.module_out_to_ports[(conn.source, conn.source_port)].append(
                    (conn.target, conn.target_port)
                )
                if conn.target_port != "pre":  # pre is latched, breaks the cycle
                    same_cycle_deps[conn.target].add(conn.source)
        self.module_order = self._topo_order(same_cycle_deps)

    def _topo_order(self, deps: dict[str, set[str]]) -> list[str]:
        order: list[str] = []
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(module_id: str) -> None:
            if module_id in done:
                return
            if module_id in visiting:
                raise ValueError("combinational cycle between modules")
            visiting.add(module_id)
            for dep in deps.get(module_id, ()):
                visit(dep)
            visiting.discard(module_id)
            done.add(module_id)
            order.append(module_id)

        for module_id in self.modules:
            visit(module_id)
        return order

    # -- dynamic state -----------------------------------------------------------
    def reset(self) -> None:
        self.cycle = 0
        # Only enabled STEs are examined each cycle: the CAM hardware
        # searches every occupied array regardless (the cost model
        # charges that), but the *functional* outcome only depends on
        # enabled states, and real rulesets keep that set small.
        self.always_enabled: list[str] = [
            ste_id
            for ste_id, ste in self.stes.items()
            if ste.start is StartType.ALL_INPUT
        ]
        self.start_of_data: list[str] = [
            ste_id
            for ste_id, ste in self.stes.items()
            if ste.start is StartType.START_OF_DATA
        ]
        self.enabled: set[str] = set()
        self.module_state: dict[str, _CounterState | _BitVectorState] = {}
        for module_id, module in self.modules.items():
            if isinstance(module, CounterNode):
                state = _CounterState()
            else:
                state = _BitVectorState()
            # START_OF_DATA acts as a virtual `pre` before the first
            # symbol; ALL_INPUT re-arms it every cycle (see step()).
            state.prev_pre = module.start in (
                StartType.START_OF_DATA,
                StartType.ALL_INPUT,
            )
            self.module_state[module_id] = state
        self.stats = ActivityStats()
        self.reports = []

    # -- one cycle ------------------------------------------------------------
    def step(self, byte: int) -> list[ReportEvent]:
        position = self.cycle + 1
        events: list[ReportEvent] = []

        # Phase 1: state matching over the enabled set.
        candidates = self.enabled.union(self.always_enabled)
        if self.cycle == 0:
            candidates.update(self.start_of_data)
        active: list[str] = []
        for ste_id in candidates:
            if byte in self.stes[ste_id].symbol_set:
                active.append(ste_id)
        self.stats.ste_activations += len(active)

        # Collect STE-driven signals.
        next_enabled: set[str] = set()
        port_signals: dict[tuple[str, str], bool] = defaultdict(bool)
        for ste_id in active:
            ste = self.stes[ste_id]
            if ste.report:
                events.append(ReportEvent(position, ste_id, ste.report_id))
            for target in self.ste_to_stes[ste_id]:
                next_enabled.add(target)
            for target_port in self.ste_to_module_ports[ste_id]:
                port_signals[target_port] = True

        # Phase 2: module updates in same-cycle topological order.
        for module_id in self.module_order:
            module = self.modules[module_id]
            state = self.module_state[module_id]
            fired: dict[str, bool] = {}
            if isinstance(module, CounterNode):
                fst = port_signals[(module_id, "fst")]
                lst = port_signals[(module_id, "lst")]
                if fst or lst:
                    self.stats.counter_ops += 1
                if fst:
                    if state.prev_pre:
                        state.count = 1  # new pass; reset wins
                    else:
                        state.count += 1  # loop-back completed a pass
                fired["en_out"] = lst and module.lo <= state.count <= module.hi
                fired["en_fst"] = lst and state.count < module.hi
            else:
                assert isinstance(module, BitVectorNode)
                body = port_signals[(module_id, "body")]
                if body or state.mask:
                    self.stats.bit_vector_ops += 1
                    # live-bit fraction of the physical 2000-bit module
                    # (Table 2 characterizes the full module; a shift
                    # over k live bits toggles k/2000 of the register)
                    self.stats.bit_vector_weighted_ops += (
                        module.hi / GEOMETRY.bit_vector_bits_per_pe
                    )
                if body:
                    live = _range_mask(1, module.hi)
                    state.mask = (state.mask << 1) & live
                    if state.prev_pre:
                        state.mask |= 1  # setFirst: a token entered, count 1
                else:
                    state.mask = 0  # reset: in-flight tokens died
                fired["en_out"] = bool(state.mask & _range_mask(module.lo, module.hi))
                fired["en_body"] = bool(state.mask & _range_mask(1, module.hi - 1))

            if fired.get("en_out") and module.report:
                events.append(ReportEvent(position, module_id, module.report_id))
            for port, value in fired.items():
                if not value:
                    continue
                for target in self.module_out_to_stes[(module_id, port)]:
                    next_enabled.add(target)
                for target_port in self.module_out_to_ports[(module_id, port)]:
                    port_signals[target_port] = True

        # Latch `pre` inputs for the next cycle.  This happens after
        # *all* modules ran because `pre` may be driven by any module's
        # output regardless of evaluation order (it is a latched port
        # and deliberately excluded from the topological constraints).
        # ALL_INPUT modules re-arm entry every cycle.
        for module_id, module in self.modules.items():
            state = self.module_state[module_id]
            pre = (
                port_signals[(module_id, "pre")]
                or module.start is StartType.ALL_INPUT
            )
            state.prev_pre = pre
            if pre and isinstance(module, BitVectorNode):
                # entry next cycle: make sure the body STE is enabled
                for target in self.module_out_to_stes[(module_id, "en_body")]:
                    next_enabled.add(target)

        self.enabled = next_enabled
        self.cycle += 1
        self.stats.cycles += 1
        self.stats.reports += len(events)
        self.reports.extend(events)
        return events

    def run(self, data: bytes | str) -> list[ReportEvent]:
        if isinstance(data, str):
            data = data.encode("latin-1")
        for byte in data:
            self.step(byte)
        return self.reports

    def match_ends(self, data: bytes | str) -> list[int]:
        """Distinct report positions, for differential testing."""
        self.reset()
        self.run(data)
        return sorted({event.position for event in self.reports})

    def distinct_reports(self) -> set[tuple[int, Optional[str]]]:
        """Distinct ``(position, report_id)`` pairs of the current run.

        Unfolded repetitions have one reporting STE per optional copy,
        so raw event counts inflate with the unfolding depth; distinct
        pairs are the threshold-invariant "matches found" figure.
        """
        return {(event.position, event.report_id) for event in self.reports}


def simulate(network: Network, data: bytes | str) -> tuple[list[ReportEvent], ActivityStats]:
    """One-shot convenience: run ``data`` through ``network``.

    >>> from repro import compile_pattern, simulate
    >>> reports, stats = simulate(compile_pattern("abc").network, b"xxabc")
    >>> [(r.position, r.report_id) for r in reports], stats.cycles
    ([(5, 'abc')], 5)
    """
    sim = NetworkSimulator(network)
    reports = sim.run(data)
    return reports, sim.stats
