"""Energy/area accounting driven by Table 2 (the Figures 8 & 10 math).

Two granularities are provided:

* ``per_ste`` -- charges CAM energy/area proportionally to the STE
  count (one 256-STE array amortized per STE).  Used for the Fig. 8
  micro-benchmarks, which compare one isolated repetition against its
  unfolding and whose published curves are smooth in n.
* ``mapped`` -- charges whole occupied CAM arrays, counters, and
  2000-bit vector modules from an actual placement
  (:class:`~repro.compiler.mapping.NetworkMapping`), including the
  *waste* bits of partially used bit-vector modules.  Used for the
  Fig. 10 application benchmarks.

Energy model recap (see DESIGN.md decision 6): every occupied CAM
array performs one search per input byte; a counter spends one op's
energy on cycles where its ports see events; a bit-vector module
spends energy weighted by its live-bit fraction on cycles where it
shifts or resets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .params import BIT_VECTOR, CAM_ARRAY, COUNTER, GEOMETRY, CamaGeometry
from .simulator import ActivityStats

__all__ = [
    "AreaReport",
    "EnergyReport",
    "SavingsReport",
    "area_per_ste",
    "area_of_mapping",
    "energy_of_run",
    "energy_per_byte_upper_bound",
    "savings_of_mappings",
    "unfolded_cost",
    "counter_cost",
    "bit_vector_cost",
    "MicrobenchPoint",
]

FJ_PER_NJ = 1e6
UM2_PER_MM2 = 1e6


@dataclass(frozen=True)
class AreaReport:
    """Area breakdown in um^2 (helpers convert to mm^2)."""

    cam_um2: float
    counter_um2: float
    bit_vector_um2: float
    waste_um2: float = 0.0

    @property
    def total_um2(self) -> float:
        return self.cam_um2 + self.counter_um2 + self.bit_vector_um2 + self.waste_um2

    @property
    def total_mm2(self) -> float:
        return self.total_um2 / UM2_PER_MM2

    @property
    def waste_mm2(self) -> float:
        return self.waste_um2 / UM2_PER_MM2


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown in fJ with per-byte views."""

    cam_fj: float
    counter_fj: float
    bit_vector_fj: float
    bytes_processed: int

    @property
    def total_fj(self) -> float:
        return self.cam_fj + self.counter_fj + self.bit_vector_fj

    @property
    def nj_per_byte(self) -> float:
        if self.bytes_processed == 0:
            return 0.0
        return self.total_fj / self.bytes_processed / FJ_PER_NJ


# ----------------------------------------------------------------------
# Fig. 8 micro-benchmark arithmetic (per-STE granularity)
# ----------------------------------------------------------------------
def area_per_ste(ste_count: int, geometry: CamaGeometry = GEOMETRY) -> float:
    """CAM area in um^2, amortized per STE slot."""
    return ste_count * CAM_ARRAY.area_um2 / geometry.stes_per_cam_array


def unfolded_cost(
    n_stes: int, geometry: CamaGeometry = GEOMETRY
) -> tuple[float, float]:
    """(energy fJ/byte, area um^2) of an n-STE unfolded repetition.

    Every byte triggers a search over the STEs' share of CAM columns.
    """
    energy = n_stes * CAM_ARRAY.energy_fj / geometry.stes_per_cam_array
    return energy, area_per_ste(n_stes, geometry)


def counter_cost() -> tuple[float, float]:
    """(energy fJ/byte, area um^2) of one counter module.

    The counter is charged one op per byte -- the worst case, in which
    its repetition advances on every input symbol (as in the ``a{n}``
    micro-benchmark on an all-``a`` stream).
    """
    return COUNTER.energy_fj, COUNTER.area_um2


def bit_vector_cost(
    live_bits: int, geometry: CamaGeometry = GEOMETRY
) -> tuple[float, float]:
    """(energy fJ/byte, area um^2) of a bit vector sized to ``live_bits``.

    Fig. 8 sizes the vector to the repetition bound n per data point;
    energy and area scale with the live-bit fraction of the 2000-bit
    module characterized in Table 2.
    """
    fraction = live_bits / geometry.bit_vector_bits_per_pe
    return BIT_VECTOR.energy_fj * fraction, BIT_VECTOR.area_um2 * fraction


@dataclass(frozen=True)
class MicrobenchPoint:
    """One x-position of Fig. 8: module vs unfolding at bound n."""

    n: int
    module_energy_fj: float
    module_area_um2: float
    unfold_energy_fj: float
    unfold_area_um2: float

    @property
    def energy_ratio(self) -> float:
        return self.unfold_energy_fj / self.module_energy_fj

    @property
    def area_ratio(self) -> float:
        return self.unfold_area_um2 / self.module_area_um2


# ----------------------------------------------------------------------
# Fig. 10 application-benchmark arithmetic (mapped granularity)
# ----------------------------------------------------------------------
def area_of_mapping(mapping) -> AreaReport:
    """Area of a placed network, waste included.

    ``mapping`` is a :class:`repro.compiler.mapping.NetworkMapping`
    (duck-typed to avoid an import cycle).  Occupied CAM arrays are
    charged whole; each PE hosting bit-vector segments is charged one
    whole 2000-bit module, split into used and waste shares.
    """
    bank = mapping.bank
    geometry = bank.geometry
    cam = bank.cam_arrays_used * CAM_ARRAY.area_um2
    counters = bank.counter_count * COUNTER.area_um2
    module_bits = geometry.bit_vector_bits_per_pe
    used_um2 = bank.bv_bits_used / module_bits * BIT_VECTOR.area_um2
    waste_um2 = bank.bv_waste_bits / module_bits * BIT_VECTOR.area_um2
    return AreaReport(
        cam_um2=cam,
        counter_um2=counters,
        bit_vector_um2=used_um2,
        waste_um2=waste_um2,
    )


def energy_of_run(stats: ActivityStats, mapping) -> EnergyReport:
    """Energy of one simulated run over a placed network."""
    bank = mapping.bank
    cam = bank.cam_arrays_used * stats.cycles * CAM_ARRAY.energy_fj
    counters = stats.counter_ops * COUNTER.energy_fj
    module_bits = bank.geometry.bit_vector_bits_per_pe
    # weighted ops already accumulate hi/size per op; rescale from the
    # node's allocated size to the physical module size
    bit_vectors = stats.bit_vector_weighted_ops * BIT_VECTOR.energy_fj
    return EnergyReport(
        cam_fj=cam,
        counter_fj=counters,
        bit_vector_fj=bit_vectors,
        bytes_processed=stats.cycles,
    )


@dataclass(frozen=True)
class SavingsReport:
    """Hardware-resource delta between two placements of one ruleset.

    Produced by :func:`savings_of_mappings` to price what the compiler
    optimisation passes (:mod:`repro.compiler.passes`) bought: fewer
    STEs means fewer occupied CAM columns, which shrinks both the area
    bill and the per-byte CAM search energy (every occupied array
    searches once per input byte).
    """

    stes_before: int
    stes_after: int
    cam_arrays_before: int
    cam_arrays_after: int
    area_before_mm2: float
    area_after_mm2: float
    energy_bound_before_nj: float
    energy_bound_after_nj: float

    @property
    def ste_reduction(self) -> float:
        if self.stes_before == 0:
            return 0.0
        return 1.0 - self.stes_after / self.stes_before

    @property
    def area_reduction(self) -> float:
        if self.area_before_mm2 == 0:
            return 0.0
        return 1.0 - self.area_after_mm2 / self.area_before_mm2


def savings_of_mappings(before, after) -> SavingsReport:
    """Compare an unoptimized and an optimized placement.

    Both arguments are :class:`repro.compiler.mapping.NetworkMapping`
    (duck-typed, as elsewhere in this module): ``before`` maps the
    naively emitted network, ``after`` the same rules compiled at
    ``opt_level >= 1``.
    """
    area_before = area_of_mapping(before)
    area_after = area_of_mapping(after)
    return SavingsReport(
        stes_before=before.bank.ste_count,
        stes_after=after.bank.ste_count,
        cam_arrays_before=before.bank.cam_arrays_used,
        cam_arrays_after=after.bank.cam_arrays_used,
        area_before_mm2=area_before.total_mm2,
        area_after_mm2=area_after.total_mm2,
        energy_bound_before_nj=energy_per_byte_upper_bound(before),
        energy_bound_after_nj=energy_per_byte_upper_bound(after),
    )


def energy_per_byte_upper_bound(mapping) -> float:
    """Static worst-case nJ/byte (all modules active every cycle).

    Useful when comparing configurations without simulating: the CAM
    term dominates and is exact; module terms are upper bounds.
    """
    bank = mapping.bank
    module_bits = bank.geometry.bit_vector_bits_per_pe
    fj = (
        bank.cam_arrays_used * CAM_ARRAY.energy_fj
        + bank.counter_count * COUNTER.energy_fj
        + bank.bv_bits_used / module_bits * BIT_VECTOR.energy_fj
    )
    return fj / FJ_PER_NJ
