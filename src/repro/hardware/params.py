"""Hardware component parameters (Table 2) and CAMA geometry (Fig. 5).

The paper obtains per-component energy/delay/area by SPICE simulation
of a TSMC 28 nm CMOS implementation and reduces them to the three rows
of Table 2; all evaluation arithmetic (Figures 8 and 10) is driven by
those scalars.  We embed the published scalars directly -- this is the
documented substitution for the SPICE flow (see DESIGN.md).

Interpretation notes:

* The "CAMA Bank" row is the 256-STE CAM array unit -- the quantity
  that scales with STE count (two such arrays per processing element,
  Fig. 5).  Its energy is charged once per array per processed symbol
  (a CAM search reads the whole array every cycle).
* Counter energy is charged per cycle in which the module processes
  any port event; bit-vector energy likewise, scaled by the fraction
  of live bits (a 2000-bit module shifting only 100 live bits toggles
  only that part of the register file).
* The delay column feeds the clock-feasibility check of Section 4.3:
  state transition (325 ps) is the critical path, so counter (101 ps)
  and bit-vector (71 ps) operations complete "within a single clock
  cycle ... maintaining the same clock frequency of 2.14 GHz ...
  without performance penalties".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ComponentParams",
    "CAM_ARRAY",
    "COUNTER",
    "BIT_VECTOR",
    "CamaGeometry",
    "GEOMETRY",
    "CLOCK_GHZ",
    "THROUGHPUT_GBPS",
    "TECHNOLOGY",
]

TECHNOLOGY = "TSMC 28nm CMOS"

#: CAMA-T clock and line-rate throughput (Section 4.1/4.3).
CLOCK_GHZ = 2.14
THROUGHPUT_GBPS = 2.14


@dataclass(frozen=True)
class ComponentParams:
    """One row of Table 2."""

    name: str
    energy_fj: float
    delay_ps: float
    area_um2: float


#: 256-STE CAM array ("CAMA Bank" row of Table 2).
CAM_ARRAY = ComponentParams("CAMA Bank", energy_fj=16780.0, delay_ps=325.0, area_um2=3919.0)

#: 17-bit counter module.
COUNTER = ComponentParams("17-bit counter", energy_fj=288.0, delay_ps=101.0, area_um2=237.0)

#: 2000-bit vector module.
BIT_VECTOR = ComponentParams("2000-bit vector", energy_fj=3340.0, delay_ps=71.0, area_um2=6382.0)


@dataclass(frozen=True)
class CamaGeometry:
    """Structural capacities of the augmented CAMA bank (Fig. 5).

    "Each bank consists of an input/output buffer and 16 processing
    arrays.  Each array has a global switch and 8 processing elements
    (PEs).  Each PE contains two 256-STE CAM arrays, two local
    switches, and 8 counters, and it may contain a bit vector."
    """

    stes_per_cam_array: int = 256
    cam_arrays_per_pe: int = 2
    counters_per_pe: int = 8
    bit_vector_bits_per_pe: int = 2000
    pes_per_array: int = 8
    arrays_per_bank: int = 16
    #: counter register width (Table 2 row 2)
    counter_width_bits: int = 17
    #: size of the STE groups wired to each module port (Fig. 5 right)
    port_group_size: int = 8

    @property
    def stes_per_pe(self) -> int:
        return self.stes_per_cam_array * self.cam_arrays_per_pe

    @property
    def pes_per_bank(self) -> int:
        return self.pes_per_array * self.arrays_per_bank

    @property
    def stes_per_bank(self) -> int:
        return self.stes_per_pe * self.pes_per_bank

    @property
    def counters_per_bank(self) -> int:
        return self.counters_per_pe * self.pes_per_bank


GEOMETRY = CamaGeometry()


def clock_period_ps() -> float:
    """Cycle time: the critical path among all component delays.

    Counter and bit-vector delays must fit inside the state-transition
    cycle for the "no performance penalty" claim to hold; callers can
    assert ``clock_period_ps() == CAM_ARRAY.delay_ps``.
    """
    return max(CAM_ARRAY.delay_ps, COUNTER.delay_ps, BIT_VECTOR.delay_ps)


def module_delay_slack_ps() -> dict[str, float]:
    """Slack of each augmentation module against the CAMA cycle."""
    period = CAM_ARRAY.delay_ps
    return {
        COUNTER.name: period - COUNTER.delay_ps,
        BIT_VECTOR.name: period - BIT_VECTOR.delay_ps,
    }
