"""Memory-cost comparison against prior in-memory NFA architectures.

Section 1 and Section 4.1 quantify the landscape the codesign enters:

* AP and Cache Automaton store one 256-bit column per STE ("each STE
  uses 256 memory bits for 8-bit symbols");
* Impala's multi-stride encoding reduces that to two 16x256 SRAMs per
  256 STEs (32 bits/STE), CAMA's CAM encoding to roughly one 16x256
  8-transistor CAM (~16 bits/STE);
* so "a modest counting operator with upper limit 1024 requires at
  least 16384 memory bits [on Impala/CAMA], while the information
  required for implementing the operator may be only 10 bits".

:func:`counting_memory_bits` reproduces that arithmetic per
architecture and per implementation strategy; the augmented design
charges ``ceil(log2(n+1))`` bits for a counter-unambiguous occurrence
and ``n`` bits for a bit-vector one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Architecture",
    "ARCHITECTURES",
    "ste_memory_bits",
    "counting_memory_bits",
    "information_theoretic_bits",
]


@dataclass(frozen=True)
class Architecture:
    """A prior in-memory automata accelerator's per-STE memory cost."""

    name: str
    bits_per_ste: int
    note: str


ARCHITECTURES = (
    Architecture("AP", 256, "256-bit RAM column per STE (one-hot symbol rows)"),
    Architecture("CA", 256, "cache-slice RAM columns, same 256-bit encoding"),
    Architecture("Impala", 32, "two 16x256 6T SRAMs per 256 STEs (4-bit stride encoding)"),
    Architecture("CAMA", 16, "one 16x256 8T CAM per 256 STEs"),
)


def ste_memory_bits(architecture: str) -> int:
    for arch in ARCHITECTURES:
        if arch.name == architecture:
            return arch.bits_per_ste
    raise KeyError(architecture)


def counting_memory_bits(
    architecture: str, bound: int, strategy: str = "unfold"
) -> int:
    """Memory bits one occurrence ``r{0..bound}`` costs.

    ``strategy``: ``unfold`` (bound STEs, what all prior architectures
    do), ``counter`` (one log-width register, counter-unambiguous), or
    ``bitvector`` (bound bits, counter-ambiguous).
    """
    if strategy == "unfold":
        return bound * ste_memory_bits(architecture)
    if strategy == "counter":
        return math.ceil(math.log2(bound + 1))
    if strategy == "bitvector":
        return bound
    raise ValueError(f"unknown strategy {strategy!r}")


def information_theoretic_bits(bound: int) -> int:
    """Bits needed to represent one count in ``[0, bound]`` -- the
    paper's "may be only 10 bits" for bound 1024."""
    return math.ceil(math.log2(bound + 1))
