"""Augmented-CAMA hardware model: parameters, simulator, mapping, cost."""

from .params import (
    BIT_VECTOR,
    CAM_ARRAY,
    CLOCK_GHZ,
    COUNTER,
    ComponentParams,
    CamaGeometry,
    GEOMETRY,
    TECHNOLOGY,
    THROUGHPUT_GBPS,
    clock_period_ps,
    module_delay_slack_ps,
)
from .simulator import ActivityStats, NetworkSimulator, ReportEvent, simulate

__all__ = [
    "ComponentParams",
    "CAM_ARRAY",
    "COUNTER",
    "BIT_VECTOR",
    "CamaGeometry",
    "GEOMETRY",
    "CLOCK_GHZ",
    "THROUGHPUT_GBPS",
    "TECHNOLOGY",
    "clock_period_ps",
    "module_delay_slack_ps",
    "NetworkSimulator",
    "ActivityStats",
    "ReportEvent",
    "simulate",
]
