"""The regex-to-MNRL compiler pipeline (Section 4.2).

Three steps, exactly as the paper lays them out:

1. *Parse and simplify* -- POSIX-style parsing, then the rewrite rules
   (unfold upper bounds < 2, merge classes in simple alternations,
   lower unbounded repetition).
2. *Analyze* -- the Section 3 static analysis annotates every
   occurrence of bounded repetition with a counter-(un)ambiguity
   verdict.  Analysis runs on the *search form* (``Sigma* r`` for
   unanchored patterns) because that is what the streaming hardware
   executes.
3. *Emit* -- an MNRL network where each occurrence is realized by a
   counter module, a bit-vector module, or unfolded STEs according to
   the verdicts and the unfolding threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..analysis.hybrid import analyze
from ..analysis.module_safety import module_safety_map
from ..analysis.result import Method, RegexAnalysisResult
from ..mnrl.network import Network
from ..regex import charclass as cc
from ..regex.ast import Regex, Sym, concat, star
from ..regex.errors import RegexError, UnsupportedFeatureError
from ..regex.parser import Pattern, parse
from ..regex.rewrite import simplify
from .emit import Decision, EmitError, emit_network, plan_decisions
from .passes import OptimizationReport, run_passes

__all__ = [
    "CompiledPattern",
    "CompiledRuleset",
    "compile_pattern",
    "compile_ruleset",
    "compute_module_unsafe",
    "dedupe_rules",
    "normalize_rules",
    "normalize_sourced",
]

#: accepted rule spellings: bare pattern strings, ``(rule_id, pattern)``
#: pairs, or ``(rule_id, pattern, origin)`` triples where ``origin`` is
#: a ``file:line`` provenance string (or ``None``)
RuleInput = "str | tuple[str, str] | tuple[str, str, Optional[str]]"


def normalize_sourced(
    rules: Iterable[str] | Sequence[tuple],
) -> list[tuple[str, str, Optional[str]]]:
    """Materialize rules as ``(rule_id, pattern, origin)`` triples.

    The superset form of :func:`normalize_rules`: bare strings get
    positional ``rule{index}`` ids and a ``None`` origin, pairs keep
    their id with a ``None`` origin, and triples pass through.  The
    ruleset frontend (:mod:`repro.rules`) emits triples so skip reasons
    can point back at the ``file:line`` the rule came from.
    """
    named: list[tuple[str, str, Optional[str]]] = []
    for index, rule in enumerate(rules):
        if isinstance(rule, tuple):
            if len(rule) >= 3:
                named.append((rule[0], rule[1], rule[2]))
            else:
                rule_id, pattern = rule
                named.append((rule_id, pattern, None))
        else:
            named.append((f"rule{index}", rule, None))
    return named


def normalize_rules(
    rules: Iterable[str] | Sequence[tuple],
) -> list[tuple[str, str]]:
    """Materialize rules as ``(rule_id, pattern)`` pairs.

    Bare pattern strings get positional ``rule{index}`` ids -- the one
    naming scheme shared by :func:`compile_ruleset`, the sharding
    front-end, and the ruleset cache key, so every entry point reports
    (and caches) the same rule ids for the same input.  Sourced
    ``(rule_id, pattern, origin)`` triples are accepted too; the origin
    is dropped (use :func:`normalize_sourced` to keep it).
    """
    return [(rid, pattern) for rid, pattern, _ in normalize_sourced(rules)]


def _sourced_entry(
    rule_id: str, pattern: str, origin: Optional[str]
) -> tuple:
    """Pair when there is no origin, triple when there is.

    Keeps origin-free flows (the synthetic suites, bare pattern lists)
    on the historical pair shape while letting provenance ride along
    when the ruleset frontend supplies it.
    """
    if origin is None:
        return (rule_id, pattern)
    return (rule_id, pattern, origin)


def annotate_reason(reason: str, origin: Optional[str]) -> str:
    """Suffix a skip reason with its rule's ``file:line`` origin."""
    if origin is None:
        return reason
    return f"{reason} ({origin})"


def dedupe_rules(
    rules: Iterable[str] | Sequence[tuple],
) -> tuple[list[tuple], list[tuple[str, str]]]:
    """Split normalized rules into ``(unique, skipped)``.

    The first occurrence of each rule id wins; later occurrences are
    returned as ``(rule_id, reason)`` skip entries.  Shared by
    :func:`compile_ruleset` and the sharding front-end so both report
    identical skip reasons (and so duplicates can never collide in a
    shared network's node-id namespace).  Rules carrying a ``file:line``
    origin keep it in the unique list and in duplicate skip reasons.
    """
    seen: set[str] = set()
    unique: list[tuple] = []
    skipped: list[tuple[str, str]] = []
    for rule_id, pattern, origin in normalize_sourced(rules):
        if rule_id in seen:
            reason = "duplicate rule id (an earlier rule with this id was kept)"
            skipped.append((rule_id, annotate_reason(reason, origin)))
            continue
        seen.add(rule_id)
        unique.append(_sourced_entry(rule_id, pattern, origin))
    return unique, skipped


def compute_module_unsafe(
    analysis: RegexAnalysisResult,
    ambiguous: dict[int, bool],
    strict: bool = True,
    max_pairs: Optional[int] = None,
) -> frozenset[int]:
    """Instances that must not get a single counter register.

    Only counter-module *candidates* are checked (unambiguous,
    multi-state body); everything else is already handled by bit
    vectors or unfolding.  With ``strict=False`` the check is skipped,
    reproducing the naive unambiguity-only policy (ablation mode).
    """
    if not strict or analysis.nca is None:
        return frozenset()
    candidates = [
        info.instance
        for info in analysis.nca.instances
        if not ambiguous.get(info.instance, True) and len(info.body) > 1
    ]
    if not candidates:
        return frozenset()
    safety = module_safety_map(analysis.nca, candidates, max_pairs=max_pairs)
    return frozenset(i for i, safe in safety.items() if not safe)


@dataclass
class CompiledPattern:
    """One pattern taken through the full pipeline."""

    source: str
    pattern: Pattern
    ast: Regex
    analysis: RegexAnalysisResult
    decisions: dict[int, Decision]
    network: Network
    matches_empty: bool
    report_id: str

    # -- resource statistics --------------------------------------------------
    @property
    def ste_count(self) -> int:
        return self.network.ste_count()

    @property
    def counter_count(self) -> int:
        return self.network.counter_count()

    @property
    def bit_vector_count(self) -> int:
        return self.network.bit_vector_count()

    @property
    def node_count(self) -> int:
        return self.network.node_count()

    def decision_counts(self) -> dict[Decision, int]:
        counts = {d: 0 for d in Decision}
        for decision in self.decisions.values():
            counts[decision] += 1
        return counts


def compile_pattern(
    pattern_text: str,
    unfold_threshold: float = 0,
    method: Method | str = Method.HYBRID,
    report_id: Optional[str] = None,
    network: Optional[Network] = None,
    prefix: str = "",
    bv_module_size: Optional[int] = None,
    max_pairs: Optional[int] = None,
    strict_modules: bool = True,
) -> CompiledPattern:
    """Compile one pattern to an MNRL network.

    >>> from repro import compile_pattern
    >>> compiled = compile_pattern(r"ab{2,4}c")
    >>> (compiled.ste_count, compiled.counter_count)
    (3, 1)

    Args:
        pattern_text: POSIX/PCRE-style pattern source.
        unfold_threshold: occurrences with upper bound <= threshold are
            unfolded (``float('inf')`` = the unfold-all CAMA baseline).
        method: which static analysis drives module selection.
        report_id: report tag attached to the pattern's match outputs.
        network: emit into an existing network (for rulesets).
        prefix: node-id prefix (must be unique per pattern in a shared
            network).
        bv_module_size: physical size for bit-vector nodes (None sizes
            them to their bound; the cost model can still charge
            module-granular 2000-bit allocations).
        max_pairs: safety cap forwarded to the static analysis.
        strict_modules: additionally require counter-module candidates
            to pass the body-level single-token check (see
            :mod:`repro.analysis.module_safety`); on by default because
            counter-unambiguity alone does not justify a single count
            register for multi-state bodies.
    """
    parsed = parse(pattern_text)
    simplified = simplify(parsed.ast)
    if parsed.anchored_start:
        analysis_ast = simplified
    else:
        analysis_ast = concat(star(Sym(cc.SIGMA)), simplified)
    analysis = analyze(analysis_ast, method=method, max_pairs=max_pairs)
    ambiguous = {r.instance: r.treat_as_ambiguous for r in analysis.instances}
    module_unsafe = compute_module_unsafe(
        analysis, ambiguous, strict=strict_modules, max_pairs=max_pairs
    )
    decisions = plan_decisions(
        simplified, ambiguous, unfold_threshold, module_unsafe
    )
    rid = report_id if report_id is not None else pattern_text
    emitted = emit_network(
        simplified,
        decisions,
        anchored_start=parsed.anchored_start,
        report_id=rid,
        network=network,
        prefix=prefix,
        bv_module_size=bv_module_size,
    )
    return CompiledPattern(
        source=pattern_text,
        pattern=parsed,
        ast=simplified,
        analysis=analysis,
        decisions=decisions,
        network=emitted.network,
        matches_empty=emitted.matches_empty,
        report_id=rid,
    )


@dataclass
class CompiledRuleset:
    """A whole benchmark compiled into one shared network.

    Mirrors how the hardware hosts thousands of rules side by side in
    one bank configuration; the ``skipped`` list records rules filtered
    out for unsupported features (the Table 1 supported/total gap).
    """

    network: Network
    patterns: list[CompiledPattern] = field(default_factory=list)
    skipped: list[tuple[str, str]] = field(default_factory=list)  # (rule, reason)
    #: optimisation level the network was compiled at (0 = none)
    opt_level: int = 0
    #: what the pass pipeline did (None at -O0)
    optimization: Optional[OptimizationReport] = None

    @property
    def node_count(self) -> int:
        return self.network.node_count()

    def decision_counts(self) -> dict[Decision, int]:
        counts = {d: 0 for d in Decision}
        for compiled in self.patterns:
            for decision, n in compiled.decision_counts().items():
                counts[decision] += n
        return counts


def compile_ruleset(
    rules: Iterable[str] | Sequence[tuple[str, str]],
    unfold_threshold: float = 0,
    method: Method | str = Method.HYBRID,
    network_id: str = "ruleset",
    bv_module_size: Optional[int] = None,
    max_pairs: Optional[int] = None,
    strict_modules: bool = True,
    opt_level: int = 0,
) -> CompiledRuleset:
    """Compile many rules into one network, skipping unsupported ones.

    ``rules`` is an iterable of pattern strings, ``(rule_id, pattern)``
    pairs, or sourced ``(rule_id, pattern, origin)`` triples (see
    :func:`normalize_sourced`).  Rules repeating an earlier rule's id
    are recorded in ``skipped`` (the first occurrence wins; compiling
    both would collide in the shared node-id namespace).  When a rule
    carries a ``file:line`` origin, every skip reason for it ends with
    that origin in parentheses, so triage reports stay actionable:

    >>> compile_ruleset([("r1", "a(?=b)", "local.rules:7")]).skipped
    [('r1', 'unsupported: lookahead group (local.rules:7)')]

    ``opt_level`` selects the post-emission pass pipeline
    (:mod:`repro.compiler.passes`): ``0`` keeps the network -- and its
    activity statistics -- byte-identical to the classic pipeline;
    ``1+`` additionally runs dead-node elimination and cross-rule
    prefix sharing, preserving exact report sets only.

    >>> from repro import compile_ruleset
    >>> ruleset = compile_ruleset([("a", "abc"), ("b", "a(?=b)")])
    >>> ruleset.skipped
    [('b', 'unsupported: lookahead group')]
    """
    if opt_level < 0:
        raise ValueError(f"opt_level must be >= 0, got {opt_level}")
    network = Network(network_id)
    result = CompiledRuleset(network=network, opt_level=opt_level)
    unique, duplicates = dedupe_rules(rules)
    result.skipped.extend(duplicates)
    for entry in unique:
        rule_id, pattern_text = entry[0], entry[1]
        origin = entry[2] if len(entry) > 2 else None
        try:
            compiled = compile_pattern(
                pattern_text,
                unfold_threshold=unfold_threshold,
                method=method,
                report_id=rule_id,
                network=network,
                prefix=f"{rule_id}.",
                bv_module_size=bv_module_size,
                max_pairs=max_pairs,
                strict_modules=strict_modules,
            )
        except UnsupportedFeatureError as err:
            result.skipped.append(
                (rule_id, annotate_reason(f"unsupported: {err.feature}", origin))
            )
            continue
        except (RegexError, EmitError) as err:
            result.skipped.append((rule_id, annotate_reason(str(err), origin)))
            continue
        result.patterns.append(compiled)
    if opt_level > 0:
        result.optimization = run_passes(network, opt_level)
    return result
