"""Network-level optimisation passes (the compile-time half of the
paper's hardware wins).

The hardware amortizes everything it can *before* the first byte
arrives: CAM arrays are loaded once and shared by thousands of rules.
These passes give the software pipeline the same precompute leverage.
They run between :func:`~repro.compiler.emit.emit_network` (which
produces one shared :class:`~repro.mnrl.network.Network` per ruleset)
and :func:`~repro.engine.tables.compile_tables` (which lowers it to the
scan tables):

* :func:`compute_alphabet_classes` -- partition the 256 byte values
  into equivalence classes that no STE in the network distinguishes.
  Purely observational (nothing is rewritten); ``compile_tables``
  uses the partition to shrink ``match_masks`` from 256 dense entries
  to ``k`` class entries plus a 256-byte class map.
* :func:`eliminate_dead_nodes` -- remove nodes that can never fire
  (unreachable from any start, empty symbol sets, modules missing
  live drivers) or whose firing can never reach a reporting node.
* :func:`share_prefixes` -- classic multi-pattern prefix collapse:
  merge STEs that are behaviourally identical because they hold the
  same symbol set, the same start/report attributes, and the same
  (canonicalized) set of incoming signals.  Across a ruleset this
  folds the common prefixes of thousands of rules into one chain,
  shrinking the STE bitmask width the scanner loops over.

Equivalence contract (asserted by ``tests/compiler/test_passes.py``):
optimized networks produce the **same distinct (position, report_id)
report set** as the unoptimized network on every input.  Activity
statistics (``ActivityStats``) are *not* preserved by -O1 -- merged
STEs activate once where duplicates activated in lockstep -- which is
why the Table 2 experiments pin ``opt_level=0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..mnrl.network import Network
from ..mnrl.nodes import BitVectorNode, CounterNode, STE, StartType

__all__ = [
    "AlphabetClasses",
    "OptimizationReport",
    "compute_alphabet_classes",
    "eliminate_dead_nodes",
    "share_prefixes",
    "run_passes",
]


# ----------------------------------------------------------------------
# Alphabet equivalence classes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlphabetClasses:
    """A partition of the byte alphabet none of the STEs can refine.

    Two bytes land in the same class iff exactly the same STEs match
    them; scanning may therefore look up per-*class* match masks
    through :attr:`byte_to_class` instead of a dense 256-entry table.
    """

    #: 256-entry map: byte value -> class index (class indices < 256)
    byte_to_class: bytes
    #: number of classes ``k`` (1 <= k <= 256)
    n_classes: int
    #: one representative byte per class, in class-index order
    representatives: tuple[int, ...]


def compute_alphabet_classes(
    network_or_classes: Network | Iterable[int],
) -> AlphabetClasses:
    """Partition bytes by which STE symbol sets contain them.

    Accepts a :class:`~repro.mnrl.network.Network` or an iterable of
    raw 256-bit symbol-set masks (one per STE).
    """
    if isinstance(network_or_classes, Network):
        masks: Iterable[int] = (
            ste.symbol_set.mask for ste in network_or_classes.stes()
        )
    else:
        masks = network_or_classes
    # signature[b] = bitset of STE indices whose class contains byte b
    signatures = [0] * 256
    for index, mask in enumerate(masks):
        bit = 1 << index
        while mask:
            low = mask & -mask
            mask ^= low
            signatures[low.bit_length() - 1] |= bit
    class_of_signature: dict[int, int] = {}
    byte_to_class = bytearray(256)
    representatives: list[int] = []
    for byte, signature in enumerate(signatures):
        cls = class_of_signature.get(signature)
        if cls is None:
            cls = len(representatives)
            class_of_signature[signature] = cls
            representatives.append(byte)
        byte_to_class[byte] = cls
    return AlphabetClasses(
        byte_to_class=bytes(byte_to_class),
        n_classes=len(representatives),
        representatives=tuple(representatives),
    )


# ----------------------------------------------------------------------
# Dead / unreachable node elimination
# ----------------------------------------------------------------------
def eliminate_dead_nodes(network: Network) -> int:
    """Remove nodes that cannot affect any report; returns the count.

    A node is *dead* when it can never produce an output signal
    (``can_fire`` below is an over-approximation, so only certainly
    dead nodes qualify) or when no path of connections leads from it to
    a reporting node.  Removing a module can strand its feeder STEs, so
    the sweep iterates to a fixpoint.
    """
    removed = 0
    while True:
        doomed = _find_dead(network)
        if not doomed:
            return removed
        network.remove_nodes(doomed)
        removed += len(doomed)


def _find_dead(network: Network) -> set[str]:
    nodes = network.nodes
    in_edges: dict[str, list] = {node_id: [] for node_id in nodes}
    out_edges: dict[str, list] = {node_id: [] for node_id in nodes}
    for conn in network.connections:
        in_edges[conn.target].append(conn)
        out_edges[conn.source].append(conn)

    # can_fire: fixpoint over "may ever raise an output signal".
    can_fire: dict[str, bool] = {node_id: False for node_id in nodes}
    changed = True
    while changed:
        changed = False
        for node_id, node in nodes.items():
            if can_fire[node_id]:
                continue
            if isinstance(node, STE):
                fires = not node.symbol_set.is_empty() and (
                    node.start is not StartType.NONE
                    or any(can_fire[c.source] for c in in_edges[node_id])
                )
            elif isinstance(node, CounterNode):
                ports = {
                    c.target_port for c in in_edges[node_id] if can_fire[c.source]
                }
                # a lo=0 counter satisfies lo <= count <= hi without any
                # fst ever arriving, so `lst` alone can fire en_out
                fires = "lst" in ports and (node.lo == 0 or "fst" in ports)
            else:
                assert isinstance(node, BitVectorNode)
                fires = any(
                    c.target_port == "body" and can_fire[c.source]
                    for c in in_edges[node_id]
                )
            if fires:
                can_fire[node_id] = True
                changed = True

    # useful: reaches a reporting node along connections.
    useful = {node_id for node_id, node in nodes.items() if node.report}
    stack = list(useful)
    while stack:
        node_id = stack.pop()
        for conn in in_edges[node_id]:
            if conn.source not in useful:
                useful.add(conn.source)
                stack.append(conn.source)

    doomed = {
        node_id
        for node_id in nodes
        if not can_fire[node_id] or node_id not in useful
    }

    # Validate-preserving retention: a surviving module must keep at
    # least one driver on each structurally required port (counters:
    # fst/lst, bit vectors: body, plus pre when start is NONE), even if
    # that driver can never signal -- ``Network.validate`` checks
    # wiring, not liveness.  Keeping a module can in turn require
    # keeping its own drivers, so iterate.
    changed = True
    while changed:
        changed = False
        for node_id, node in nodes.items():
            if node_id in doomed or isinstance(node, STE):
                continue
            if isinstance(node, CounterNode):
                required = {"fst", "lst"}
            else:
                required = {"body"}
            if node.start is StartType.NONE:
                required.add("pre")
            for port in required:
                drivers = [
                    c.source
                    for c in in_edges[node_id]
                    if c.target_port == port
                ]
                if drivers and all(d in doomed for d in drivers):
                    doomed.discard(drivers[0])
                    changed = True
    return doomed


# ----------------------------------------------------------------------
# Cross-rule prefix sharing
# ----------------------------------------------------------------------
_SELF = "<self>"


def share_prefixes(network: Network) -> int:
    """Merge behaviourally identical STEs; returns how many were folded.

    Two STEs merge when they hold the same symbol set, the same start
    type, the same report metadata, and the same set of incoming
    ``(source, source port)`` signals once sources are canonicalized
    through earlier merges (a self-loop counts as the sentinel
    "myself", so parallel ``x+`` chains fold too).  Identical incoming
    context means the pair is enabled on exactly the same cycles, and
    an identical symbol set means it then activates on exactly the same
    bytes -- so routing the union of their outgoing edges from one
    surviving STE is report-preserving.  Iterating re-canonicalizes
    downstream nodes, collapsing shared rule prefixes chain by chain
    (the classic multi-pattern prefix-tree collapse).
    """
    order = {node_id: i for i, node_id in enumerate(network.nodes)}
    canon: dict[str, str] = {}

    def resolve(node_id: str) -> str:
        while node_id in canon:
            node_id = canon[node_id]
        return node_id

    merged = 0
    while True:
        incoming: dict[str, set[tuple[str, str]]] = {}
        for conn in network.connections:
            target = resolve(conn.target)
            if not isinstance(network.nodes[target], STE):
                continue
            source = resolve(conn.source)
            incoming.setdefault(target, set()).add(
                (_SELF if source == target else source, conn.source_port)
            )
        groups: dict[tuple, list[str]] = {}
        for ste in network.stes():
            if resolve(ste.id) != ste.id:
                continue  # already folded away this round
            key = (
                ste.symbol_set.mask,
                ste.start,
                ste.report,
                ste.report_id,
                frozenset(incoming.get(ste.id, frozenset())),
            )
            groups.setdefault(key, []).append(ste.id)
        changed = False
        for members in groups.values():
            if len(members) < 2:
                continue
            members.sort(key=order.__getitem__)
            keep = members[0]
            for drop in members[1:]:
                canon[drop] = keep
                merged += 1
            changed = True
        if not changed:
            break
    if canon:
        network.merge_nodes({drop: resolve(drop) for drop in canon})
    return merged


# ----------------------------------------------------------------------
# The pipeline driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OptimizationReport:
    """What the pass pipeline did to one ruleset network."""

    opt_level: int
    nodes_before: int
    nodes_after: int
    stes_before: int
    stes_after: int
    #: nodes eliminated as dead/unreachable
    removed_nodes: int
    #: STEs folded away by cross-rule prefix sharing
    merged_stes: int
    #: alphabet equivalence classes after optimisation (k <= 256)
    alphabet_classes: int

    def describe(self) -> str:
        return (
            f"-O{self.opt_level}: {self.nodes_before} -> {self.nodes_after} nodes "
            f"({self.removed_nodes} dead removed, {self.merged_stes} STEs merged), "
            f"{self.alphabet_classes} alphabet classes"
        )


def run_passes(network: Network, opt_level: int = 1) -> OptimizationReport:
    """Run the optimisation pipeline on ``network`` in place.

    ``opt_level`` semantics (mirrored by ``compile_ruleset`` /
    ``RulesetMatcher``):

    * ``0`` -- no rewriting at all: the network, its resource counts,
      and its :class:`~repro.hardware.simulator.ActivityStats` stay
      byte-identical to the unoptimized pipeline (alphabet-class table
      compression still applies at lowering time -- it is a pure
      indexing change with no semantic footprint).
    * ``1`` and above -- dead-node elimination followed by cross-rule
      prefix sharing.  Exact report-set equivalence is guaranteed;
      activity statistics and resource counts may (deliberately)
      shrink.
    """
    if opt_level < 0:
        raise ValueError(f"opt_level must be >= 0, got {opt_level}")
    nodes_before = network.node_count()
    stes_before = network.ste_count()
    removed = merged = 0
    if opt_level >= 1:
        removed = eliminate_dead_nodes(network)
        merged = share_prefixes(network)
    return OptimizationReport(
        opt_level=opt_level,
        nodes_before=nodes_before,
        nodes_after=network.node_count(),
        stes_before=stes_before,
        stes_after=network.ste_count(),
        removed_nodes=removed,
        merged_stes=merged,
        alphabet_classes=compute_alphabet_classes(network).n_classes,
    )
