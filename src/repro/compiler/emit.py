"""Network emission: regex AST + analysis verdicts -> MNRL network.

This implements the module-selection policy of Sections 4.1-4.2.  Per
occurrence of bounded repetition ``r{m,n}``:

* ``n <= unfold threshold``       -> unfold into STEs (cheap, and what
                                     plain CAMA would do anyway);
* counter-unambiguous             -> counter module (any body shape,
                                     Fig. 6);
* counter-ambiguous, body is one
  character class                 -> bit-vector module (Fig. 7);
* counter-ambiguous, general body -> unfold ("use (partial) unfolding
                                     for other cases" -- the paper
                                     handles the rare general ambiguous
                                     case in the compiler).

Additionally a nullable body always unfolds: the hardware modules
assume each pass consumes at least one symbol.

Emission is a Glushkov construction over hardware elements: fragments
expose their *enable entry points* (STE ``i`` ports plus module ``pre``
ports) and their *match outputs* (STE activations or module ``en_out``
signals), and combinators wire them exactly like first/last/follow
sets.  Re-emitting a subtree (for unfolding) mints fresh elements each
time, which is precisely the STE duplication the paper's Figure 4(c)
depicts for unfolded counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..mnrl.network import Network
from ..mnrl.nodes import BitVectorNode, CounterNode, STE, StartType
from ..regex.ast import (
    Alt,
    Concat,
    Empty,
    Epsilon,
    Regex,
    Repeat,
    Star,
    Sym,
)

__all__ = ["Decision", "EmitError", "emit_network", "plan_decisions"]


class Decision(Enum):
    """Per-occurrence implementation choice."""

    UNFOLD = "unfold"
    COUNTER = "counter"
    BITVECTOR = "bitvector"


class EmitError(Exception):
    """The AST cannot be emitted (e.g. unbounded repetition survived)."""


Port = tuple[str, str]  # (node id, port name)


@dataclass(frozen=True)
class _Fragment:
    """Hardware Glushkov fragment.

    ``inputs`` are enable entry points; driving them (or marking them
    started) lets the fragment begin matching.  ``outputs`` fire on the
    cycle the fragment completes a match.  ``first_stes`` are the STEs
    whose activation means "a pass through this fragment just began"
    (what a parent counter's ``fst`` port observes).
    """

    nullable: bool
    inputs: tuple[Port, ...]
    outputs: tuple[Port, ...]
    first_stes: tuple[str, ...]


_EMPTY_FRAGMENT = _Fragment(False, (), (), ())
_EPSILON_FRAGMENT = _Fragment(True, (), (), ())


def plan_decisions(
    ast: Regex,
    ambiguous: dict[int, bool],
    unfold_threshold: float = 0,
    module_unsafe: frozenset[int] | set[int] = frozenset(),
) -> dict[int, Decision]:
    """Choose an implementation per occurrence (preorder-indexed).

    ``ambiguous`` maps instance index -> treat-as-ambiguous verdict
    (inconclusive analyses must come in as True).  ``unfold_threshold``
    is the Figure 9/10 knob: occurrences with upper bound <= threshold
    unfold; ``float('inf')`` reproduces the unfold-all baseline.
    ``module_unsafe`` lists unambiguous instances that nevertheless can
    hold two simultaneous body tokens -- one counter register cannot
    serve them (see :mod:`repro.analysis.module_safety`), so they
    unfold instead.
    """
    from ..regex.ast import collect_repeats

    decisions: dict[int, Decision] = {}
    for inst in collect_repeats(ast):
        node = inst.node
        if node.hi is None:
            raise EmitError("unbounded repetition must be lowered before emission")
        if node.hi <= unfold_threshold or node.inner.nullable():
            decisions[inst.index] = Decision.UNFOLD
        elif ambiguous.get(inst.index, True) or inst.index in module_unsafe:
            if isinstance(node.inner, Sym):
                decisions[inst.index] = Decision.BITVECTOR
            else:
                decisions[inst.index] = Decision.UNFOLD
        else:
            decisions[inst.index] = Decision.COUNTER
    return decisions


class _Emitter:
    def __init__(
        self,
        network: Network,
        decisions: dict[int, Decision],
        prefix: str,
        bv_module_size: Optional[int],
    ):
        self.network = network
        self.decisions = decisions
        self.prefix = prefix
        self.bv_module_size = bv_module_size
        self._serial = 0
        self._instance_paths: dict[tuple[int, ...], int] = {}

    def fresh_id(self, stem: str) -> str:
        self._serial += 1
        return f"{self.prefix}{stem}{self._serial}"

    # -- wiring helpers ------------------------------------------------------
    def link(self, outputs: tuple[Port, ...], inputs: tuple[Port, ...]) -> None:
        for src, src_port in outputs:
            for dst, dst_port in inputs:
                self.network.connect(src, src_port, dst, dst_port)

    # -- recursion -------------------------------------------------------------
    def visit(self, node: Regex, path: tuple[int, ...]) -> _Fragment:
        if isinstance(node, Empty):
            return _EMPTY_FRAGMENT
        if isinstance(node, Epsilon):
            return _EPSILON_FRAGMENT
        if isinstance(node, Sym):
            ste = self.network.add(STE(self.fresh_id("s"), node.cls))
            return _Fragment(
                False, ((ste.id, "i"),), ((ste.id, "o"),), (ste.id,)
            )
        if isinstance(node, Concat):
            return self._visit_concat(node, path)
        if isinstance(node, Alt):
            return self._visit_alt(node, path)
        if isinstance(node, Star):
            frag = self.visit(node.inner, path + (0,))
            self.link(frag.outputs, frag.inputs)
            return _Fragment(True, frag.inputs, frag.outputs, frag.first_stes)
        if isinstance(node, Repeat):
            return self._visit_repeat(node, path)
        raise EmitError(f"cannot emit node {type(node).__name__}")

    def _visit_concat(self, node: Concat, path: tuple[int, ...]) -> _Fragment:
        frags = [
            self.visit(part, path + (i,)) for i, part in enumerate(node.parts)
        ]
        return self._sequence(frags)

    def _sequence(self, frags: list[_Fragment]) -> _Fragment:
        for i in range(len(frags) - 1):
            for j in range(i + 1, len(frags)):
                self.link(frags[i].outputs, frags[j].inputs)
                if not frags[j].nullable:
                    break
        inputs: list[Port] = []
        first_stes: list[str] = []
        for frag in frags:
            inputs.extend(frag.inputs)
            first_stes.extend(frag.first_stes)
            if not frag.nullable:
                break
        outputs: list[Port] = []
        for frag in reversed(frags):
            outputs.extend(frag.outputs)
            if not frag.nullable:
                break
        nullable = all(f.nullable for f in frags)
        return _Fragment(nullable, tuple(inputs), tuple(outputs), tuple(first_stes))

    def _visit_alt(self, node: Alt, path: tuple[int, ...]) -> _Fragment:
        inputs: list[Port] = []
        outputs: list[Port] = []
        first_stes: list[str] = []
        nullable = False
        for i, part in enumerate(node.parts):
            frag = self.visit(part, path + (i,))
            inputs.extend(frag.inputs)
            outputs.extend(frag.outputs)
            first_stes.extend(frag.first_stes)
            nullable = nullable or frag.nullable
        return _Fragment(nullable, tuple(inputs), tuple(outputs), tuple(first_stes))

    def _visit_repeat(self, node: Repeat, path: tuple[int, ...]) -> _Fragment:
        index = self._instance_index(path)
        decision = self.decisions.get(index, Decision.UNFOLD)
        if decision is Decision.UNFOLD:
            return self._emit_unfolded(node, path)
        if decision is Decision.COUNTER:
            return self._emit_counter(node, path)
        return self._emit_bitvector(node)

    def _instance_index(self, path: tuple[int, ...]) -> int:
        # Preorder index among Repeat nodes; paths are stable because
        # unfolding re-visits the *same* subtree rather than rebuilding
        # it, so duplicated inner occurrences share the original index.
        if path not in self._instance_paths:
            self._instance_paths[path] = len(self._instance_paths)
        return self._instance_paths[path]

    def _emit_unfolded(self, node: Repeat, path: tuple[int, ...]) -> _Fragment:
        if node.hi is None:
            raise EmitError("unbounded repetition must be lowered before emission")
        frags: list[_Fragment] = []
        inner_path = path + (0,)
        for _ in range(node.lo):
            frags.append(self.visit(node.inner, inner_path))
        for _ in range(node.hi - node.lo):
            frag = self.visit(node.inner, inner_path)
            # optional copy: same wiring, but skippable
            frags.append(
                _Fragment(True, frag.inputs, frag.outputs, frag.first_stes)
            )
        if not frags:
            return _EPSILON_FRAGMENT
        return self._sequence(frags)

    def _emit_counter(self, node: Repeat, path: tuple[int, ...]) -> _Fragment:
        body = self.visit(node.inner, path + (0,))
        if body.nullable or not body.first_stes:
            raise EmitError("counter module requires a non-nullable body")
        ctr = self.network.add(
            CounterNode(self.fresh_id("c"), max(node.lo, 1), node.hi)
        )
        for ste_id in body.first_stes:
            self.network.connect(ste_id, "o", ctr.id, "fst")
        self.link(body.outputs, ((ctr.id, "lst"),))
        self.link(((ctr.id, "en_fst"),), body.inputs)
        inputs = body.inputs + ((ctr.id, "pre"),)
        return _Fragment(
            node.lo == 0, inputs, ((ctr.id, "en_out"),), body.first_stes
        )

    def _emit_bitvector(self, node: Repeat) -> _Fragment:
        if not isinstance(node.inner, Sym):
            raise EmitError("bit-vector module requires a single-class body")
        ste = self.network.add(STE(self.fresh_id("s"), node.inner.cls))
        bv = self.network.add(
            BitVectorNode(
                self.fresh_id("v"),
                max(node.lo, 1),
                node.hi,
                size=self.bv_module_size,
            )
        )
        self.network.connect(ste.id, "o", bv.id, "body")
        self.network.connect(bv.id, "en_body", ste.id, "i")
        inputs = ((ste.id, "i"), (bv.id, "pre"))
        return _Fragment(node.lo == 0, inputs, ((bv.id, "en_out"),), (ste.id,))


@dataclass
class EmittedPattern:
    """Result of emitting one pattern into a (possibly shared) network."""

    network: Network
    inputs: tuple[Port, ...]
    outputs: tuple[Port, ...]
    matches_empty: bool
    decisions: dict[int, Decision] = field(default_factory=dict)


def emit_network(
    ast: Regex,
    decisions: dict[int, Decision],
    anchored_start: bool = False,
    report_id: Optional[str] = None,
    network: Optional[Network] = None,
    prefix: str = "",
    bv_module_size: Optional[int] = None,
) -> EmittedPattern:
    """Emit one pattern into ``network`` (a fresh one if not given).

    Entry points get ``ALL_INPUT`` starts for unanchored patterns
    (``START_OF_DATA`` when anchored), and every match output is marked
    reporting with ``report_id``.
    """
    if network is None:
        network = Network(report_id or "pattern")
    emitter = _Emitter(network, decisions, prefix, bv_module_size)
    frag = emitter.visit(ast, ())
    start = StartType.START_OF_DATA if anchored_start else StartType.ALL_INPUT
    for node_id, port in frag.inputs:
        node = network.nodes[node_id]
        if isinstance(node, STE) or port == "pre":
            node.start = start
    for node_id, port in frag.outputs:
        node = network.nodes[node_id]
        node.report = True
        if report_id is not None:
            node.report_id = report_id
    return EmittedPattern(
        network=network,
        inputs=frag.inputs,
        outputs=frag.outputs,
        matches_empty=frag.nullable,
        decisions=dict(decisions),
    )
