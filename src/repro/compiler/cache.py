"""Persistent compiled-ruleset cache (compile once, serve many).

The hardware's deployment story is load-time amortization: a ruleset
is compiled and burned into the CAM arrays once, then every stream is
served from the precomputed configuration.  This module gives the
software pipeline the same warm-start path: a compiled ruleset --
network, transition tables, and the per-rule facade metadata -- is
pickled under a key derived from the rules plus every compile option,
so a process restart skips parsing, analysis, and emission entirely
(``RulesetMatcher(cache_dir=...)``, or the CLI ``compile --rules ...
--cache-dir ...`` / ``scan --cache-dir ...`` flows).

Invalidation is by construction: the key hashes the ordered
``(rule_id, pattern)`` pairs together with the full option tuple and
:data:`CACHE_VERSION`, so changing a rule, a compile knob, or the
on-disk format lands on a different file.  Loads are best-effort --
a missing, corrupt, or version-skewed artifact is treated as a miss
and the caller recompiles (correctness never depends on the cache).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..engine.tables import TransitionTables
    from ..mnrl.network import Network
    from .passes import OptimizationReport

__all__ = [
    "CACHE_VERSION",
    "RuleMeta",
    "RulesetArtifact",
    "ruleset_cache_key",
    "artifact_path",
    "save_artifact",
    "load_artifact",
]

#: Bump whenever the pickled layout (or anything it transitively
#: contains) changes shape; old artifacts then miss cleanly.
#: v2: ``TransitionTables`` gained ``network`` (the reference backend
#: resolves anywhere tables travel) and artifacts record ``backends``.
#: v3: the key hashes each rule's ``file:line`` origin too (skip
#: reasons stored in the artifact carry it, so artifacts compiled with
#: and without provenance must not alias).
CACHE_VERSION = 3


@dataclass(frozen=True)
class RuleMeta:
    """The slice of a compiled pattern the matching facade needs.

    Everything else (ASTs, analysis verdicts, decision maps) is
    recomputable and deliberately left out of the artifact to keep warm
    starts small and fast.
    """

    report_id: str
    source: str
    anchored_end: bool
    matches_empty: bool


@dataclass
class RulesetArtifact:
    """One cache entry: the full warm-start state of a ruleset."""

    version: int
    key: str
    network: "Network"
    tables: "TransitionTables"
    rules: list[RuleMeta]
    skipped: list[tuple[str, str]]
    opt_level: int
    optimization: Optional["OptimizationReport"]
    #: canonical names of the execution backends the tables were
    #: validated against (available + applicable) when this artifact
    #: was written -- provenance for "can a warm start serve engine X
    #: the way the compiling process did", surfaced as
    #: ``RulesetMatcher.validated_backends``
    backends: list[str] = field(default_factory=list)


def ruleset_cache_key(
    rules: Sequence[tuple],
    *,
    unfold_threshold: float = 0,
    method: str = "hybrid",
    strict_modules: bool = True,
    max_pairs: Optional[int] = None,
    bv_module_size: Optional[int] = None,
    opt_level: int = 0,
) -> str:
    """Deterministic key over the rules and every compile option."""
    hasher = hashlib.sha256()
    hasher.update(f"v{CACHE_VERSION}".encode())
    hasher.update(
        repr(
            (
                float(unfold_threshold),
                str(method),
                bool(strict_modules),
                max_pairs,
                bv_module_size,
                int(opt_level),
            )
        ).encode()
    )
    for rule in rules:
        rule_id, pattern = rule[0], rule[1]
        origin = rule[2] if len(rule) > 2 else None
        # length-prefixed framing: in-band separators would let crafted
        # ids/patterns containing the separator bytes collide across
        # structurally different rulesets
        for text in (rule_id, pattern, origin or ""):
            blob = text.encode("utf-8", "surrogateescape")
            hasher.update(len(blob).to_bytes(8, "big"))
            hasher.update(blob)
    return hasher.hexdigest()


def artifact_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"ruleset-{key}.pkl")


def save_artifact(artifact: RulesetArtifact, cache_dir: str) -> str:
    """Atomically persist ``artifact``; returns the file path."""
    os.makedirs(cache_dir, exist_ok=True)
    path = artifact_path(cache_dir, artifact.key)
    fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def load_artifact(cache_dir: str, key: str) -> Optional[RulesetArtifact]:
    """Load the artifact for ``key``; ``None`` on any kind of miss.

    Corrupt pickles, foreign objects, and version skew all count as
    misses (the caller recompiles and overwrites), never as errors.
    """
    path = artifact_path(cache_dir, key)
    try:
        with open(path, "rb") as handle:
            artifact = pickle.load(handle)
    except FileNotFoundError:
        return None
    except Exception:
        return None
    if not isinstance(artifact, RulesetArtifact):
        return None
    if artifact.version != CACHE_VERSION or artifact.key != key:
        return None
    return artifact
