"""Placement of compiled networks onto CAMA processing elements.

The paper's constraint (Fig. 5): "the input ports to the counter and
bit vector modules are connected to fixed groups of STEs ... We use an
efficient mapping algorithm to build the connection between ports and
STE groups so that we maintain the generality of the design but reduce
the complexity of routing."  Our mapping models that as:

* a module and every STE wired to one of its ports must share a PE
  (module port wiring is PE-local);
* each module input port accepts at most ``port_group_size`` (8)
  distinct STE drivers;
* PE capacities: 512 STE slots, 8 counters, 2000 bit-vector bits
  (segments of the PE's single module).

The algorithm is first-fit-decreasing over *placement atoms*: the
weakly-connected components of the graph whose edges are module-port
wires (so a counter travels with its pre/fst/lst STEs).  Free STEs of
the same pattern prefer the PE of their neighbours but may spill, like
the reduced-crossbar switch network allows.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..hardware.cama import Bank, ProcessingElement
from ..hardware.params import CamaGeometry, GEOMETRY
from ..mnrl.network import Network
from ..mnrl.nodes import BitVectorNode, CounterNode, STE

__all__ = ["MappingViolation", "NetworkMapping", "map_network"]


@dataclass(frozen=True)
class MappingViolation:
    """A routing-constraint violation recorded during mapping."""

    node_id: str
    port: str
    detail: str


@dataclass
class NetworkMapping:
    """The placement result plus constraint diagnostics."""

    bank: Bank
    placement: dict[str, int] = field(default_factory=dict)  # node id -> PE index
    violations: list[MappingViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def pe_of(self, node_id: str) -> int:
        return self.placement[node_id]


@dataclass
class _Atom:
    """A co-placement unit: modules plus their port-wired STEs."""

    stes: list[str] = field(default_factory=list)
    counters: list[str] = field(default_factory=list)
    bv_segments: list[tuple[str, int]] = field(default_factory=list)

    @property
    def ste_count(self) -> int:
        return len(self.stes)

    @property
    def bv_bits(self) -> int:
        return sum(bits for _, bits in self.bv_segments)


def map_network(
    network: Network, geometry: CamaGeometry = GEOMETRY
) -> NetworkMapping:
    """Place ``network`` onto PEs; never fails, records violations.

    Oversized atoms (more port-wired STEs than one PE holds) are split
    with a violation note -- real toolchains would re-compile such
    rules with unfolding, and our compiler's policies never produce
    them, but imported MNRL files might.
    """
    bank = Bank(geometry=geometry)
    mapping = NetworkMapping(bank=bank)

    # ------------------------------------------------------------------
    # 1. Build placement atoms via union-find over module-port wires.
    # ------------------------------------------------------------------
    parent: dict[str, str] = {node_id: node_id for node_id in network.nodes}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    port_fanin: dict[tuple[str, str], set[str]] = defaultdict(set)
    for conn in network.connections:
        src_node = network.nodes[conn.source]
        dst_node = network.nodes[conn.target]
        src_is_module = not isinstance(src_node, STE)
        dst_is_module = not isinstance(dst_node, STE)
        if src_is_module or dst_is_module:
            union(conn.source, conn.target)
        if dst_is_module and isinstance(src_node, STE):
            port_fanin[(conn.target, conn.target_port)].add(conn.source)

    # Port-group constraint: at most `port_group_size` STE drivers/port.
    for (module_id, port), sources in sorted(port_fanin.items()):
        if len(sources) > geometry.port_group_size:
            mapping.violations.append(
                MappingViolation(
                    module_id,
                    port,
                    f"{len(sources)} STE drivers exceed the port group size "
                    f"{geometry.port_group_size}",
                )
            )

    atoms: dict[str, _Atom] = defaultdict(_Atom)
    for node_id, node in network.nodes.items():
        atom = atoms[find(node_id)]
        if isinstance(node, STE):
            atom.stes.append(node_id)
        elif isinstance(node, CounterNode):
            atom.counters.append(node_id)
        elif isinstance(node, BitVectorNode):
            atom.bv_segments.append((node_id, node.hi))

    # ------------------------------------------------------------------
    # 2. First-fit-decreasing placement of atoms into PEs.
    # ------------------------------------------------------------------
    ordered = sorted(
        atoms.values(), key=lambda a: (a.ste_count, a.bv_bits), reverse=True
    )
    for atom in ordered:
        if (
            atom.ste_count > geometry.stes_per_pe
            or len(atom.counters) > geometry.counters_per_pe
            or atom.bv_bits > geometry.bit_vector_bits_per_pe
        ):
            _place_oversized(atom, bank, mapping, geometry)
            continue
        target = None
        for pe in bank.pes:
            if pe.fits(atom.ste_count, len(atom.counters), atom.bv_bits):
                target = pe
                break
        if target is None:
            target = bank.new_pe()
        _place(atom, target, mapping)
    return mapping


def _place(atom: _Atom, pe: ProcessingElement, mapping: NetworkMapping) -> None:
    pe.place(atom.stes, atom.counters, atom.bv_segments)
    for node_id in atom.stes + atom.counters + [n for n, _ in atom.bv_segments]:
        mapping.placement[node_id] = pe.index


def _place_oversized(
    atom: _Atom,
    bank: Bank,
    mapping: NetworkMapping,
    geometry: CamaGeometry,
) -> None:
    """Split an oversized atom across fresh PEs, recording the breach."""
    label = atom.counters[0] if atom.counters else (
        atom.bv_segments[0][0] if atom.bv_segments else atom.stes[0]
    )
    mapping.violations.append(
        MappingViolation(
            label,
            "-",
            f"atom with {atom.ste_count} STEs / {len(atom.counters)} counters "
            f"/ {atom.bv_bits} bv bits exceeds one PE and was split",
        )
    )
    stes = list(atom.stes)
    counters = list(atom.counters)
    segments = list(atom.bv_segments)
    while stes or counters or segments:
        pe = bank.new_pe()
        take_stes = stes[: geometry.stes_per_pe]
        del stes[: geometry.stes_per_pe]
        take_counters = counters[: geometry.counters_per_pe]
        del counters[: geometry.counters_per_pe]
        take_segments: list[tuple[str, int]] = []
        room = geometry.bit_vector_bits_per_pe
        remaining: list[tuple[str, int]] = []
        for node_id, bits in segments:
            if bits <= room:
                take_segments.append((node_id, bits))
                room -= bits
            else:
                remaining.append((node_id, bits))
        segments = remaining
        chunk = _Atom(take_stes, take_counters, take_segments)
        _place(chunk, pe, mapping)
