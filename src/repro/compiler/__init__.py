"""Regex-to-MNRL compiler (Section 4.2), optimisation passes, CAMA
resource mapping, and the persistent compiled-ruleset cache."""

from .cache import (
    CACHE_VERSION,
    RuleMeta,
    RulesetArtifact,
    load_artifact,
    ruleset_cache_key,
    save_artifact,
)
from .emit import Decision, EmitError, emit_network, plan_decisions
from .passes import (
    AlphabetClasses,
    OptimizationReport,
    compute_alphabet_classes,
    eliminate_dead_nodes,
    run_passes,
    share_prefixes,
)
from .pipeline import (
    CompiledPattern,
    CompiledRuleset,
    compile_pattern,
    compile_ruleset,
    dedupe_rules,
    normalize_rules,
)

__all__ = [
    "Decision",
    "EmitError",
    "emit_network",
    "plan_decisions",
    "CompiledPattern",
    "CompiledRuleset",
    "compile_pattern",
    "compile_ruleset",
    "dedupe_rules",
    "normalize_rules",
    "AlphabetClasses",
    "OptimizationReport",
    "compute_alphabet_classes",
    "eliminate_dead_nodes",
    "share_prefixes",
    "run_passes",
    "CACHE_VERSION",
    "RuleMeta",
    "RulesetArtifact",
    "ruleset_cache_key",
    "save_artifact",
    "load_artifact",
]
