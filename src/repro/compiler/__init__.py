"""Regex-to-MNRL compiler (Section 4.2) and CAMA resource mapping."""

from .emit import Decision, EmitError, emit_network, plan_decisions
from .pipeline import (
    CompiledPattern,
    CompiledRuleset,
    compile_pattern,
    compile_ruleset,
)

__all__ = [
    "Decision",
    "EmitError",
    "emit_network",
    "plan_decisions",
    "CompiledPattern",
    "CompiledRuleset",
    "compile_pattern",
    "compile_ruleset",
]
