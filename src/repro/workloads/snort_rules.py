"""Synthetic Snort-style ``.rules`` corpus generator.

:mod:`repro.workloads.synth` generates *dialect* patterns; this module
generates whole Snort **rule files** -- header, ``msg``, ``content:``
with modifiers, ``pcre:``, ``sid``/``rev`` -- for exercising the
:mod:`repro.rules` ingestion frontend at production ruleset sizes
(thousands of rules) without redistributable rule dumps.

The category mix is chosen so a corpus exercises every triage path:
most rules translate (plain contents, ``nocase``, hex blocks,
offset/depth windows, multi-content chains, pcre bodies in the
supported dialect) and a calibrated slice is *intentionally* rejected
(backreferences, lookarounds, negated contents, ``byte_test``), so
triage counts are meaningful, not vacuous.

>>> lines = snort_corpus(total=8, seed=1)
>>> len(lines)
8
>>> all(line.startswith("alert ") for line in lines)
True
"""

from __future__ import annotations

import random
from typing import Optional

from .synth import _GUARDED_RUNS, _HEADER_NAMES, _WORDS

__all__ = ["CATEGORY_MIX", "snort_corpus", "corpus_text", "write_corpus"]

#: category -> fraction of the corpus (sums to 1.0); the ``reject-*``
#: categories are untranslatable by construction
CATEGORY_MIX: dict[str, float] = {
    "content-plain": 0.30,
    "content-nocase": 0.12,
    "content-hex": 0.12,
    "content-window": 0.10,
    "multi-content": 0.12,
    "pcre": 0.08,
    "pcre-counting": 0.06,
    "reject-backref": 0.03,
    "reject-lookaround": 0.03,
    "reject-negated": 0.02,
    "reject-bytetest": 0.02,
}

_PORTS = (80, 443, 21, 22, 25, 53, 110, 143, 445, 1433, 3306, 8080)


def _literal(rng: random.Random, words: int = 2) -> str:
    sep = rng.choice(("_", "/", "=", " ", "-"))
    return sep.join(rng.choice(_WORDS) for _ in range(words))


def _hex_block(rng: random.Random, size: Optional[int] = None) -> str:
    size = size or rng.randint(2, 6)
    return "|" + " ".join(f"{rng.randrange(256):02x}" for _ in range(size)) + "|"


def _header(rng: random.Random) -> str:
    proto = rng.choice(("tcp", "udp"))
    src = rng.choice(("$EXTERNAL_NET", "any"))
    dst = rng.choice(("$HOME_NET", "any"))
    port = rng.choice(_PORTS)
    return f"alert {proto} {src} any -> {dst} {port}"


def _payload(rng: random.Random, category: str) -> str:
    if category == "content-plain":
        return f'content:"{_literal(rng)}";'
    if category == "content-nocase":
        return f'content:"{_literal(rng)}"; nocase;'
    if category == "content-hex":
        prefix = rng.choice(_WORDS)
        return f'content:"{prefix}{_hex_block(rng)}";'
    if category == "content-window":
        literal = _literal(rng, words=1)
        offset = rng.randint(0, 24)
        depth = len(literal) + rng.randint(0, 32)
        return f'content:"{literal}"; offset:{offset}; depth:{depth};'
    if category == "multi-content":
        first = _literal(rng, words=1)
        second = rng.choice(_WORDS)
        distance = rng.randint(0, 12)
        within = len(second) + rng.randint(0, 24)
        tail = f'content:"{second}"; distance:{distance}; within:{within};'
        if rng.random() < 0.3:
            tail += f' content:"{rng.choice(_WORDS)}";'
        return f'content:"{first}"; {tail}'
    if category == "pcre":
        name = rng.choice(_HEADER_NAMES)
        value = rng.choice(_WORDS)
        flags = "i" if rng.random() < 0.4 else ""
        return f'pcre:"/{name}: {value}[0-9]*/{flags}";'
    if category == "pcre-counting":
        _guard, run = rng.choice(_GUARDED_RUNS)
        bound = rng.randint(4, 48)
        body = f"{_literal(rng, words=1)}{run}{{{bound}}}"
        # the body travels inside a quoted option value: the rule
        # grammar needs its quotes and slashes escaped
        body = body.replace("/", r"\/").replace('"', r"\"")
        return f'pcre:"/{body}/";'
    if category == "reject-backref":
        return f'pcre:"/({rng.choice(_WORDS)})\\1/";'
    if category == "reject-lookaround":
        return f'pcre:"/{rng.choice(_WORDS)}(?=[0-9])/";'
    if category == "reject-negated":
        return f'content:!"{_literal(rng)}";'
    if category == "reject-bytetest":
        return f'content:"{rng.choice(_WORDS)}"; byte_test:4,>,128,0;'
    raise ValueError(f"unknown category {category!r}")


def snort_corpus(
    total: int = 2000, seed: int = 0x51D5, base_sid: int = 1_000_000
) -> list[str]:
    """Generate ``total`` deterministic Snort-style rule lines.

    Category proportions follow :data:`CATEGORY_MIX`; sids are
    ``base_sid + index`` so every rule id is unique and stable across
    runs with the same arguments.
    """
    rng = random.Random(seed)
    categories: list[str] = []
    for name, fraction in CATEGORY_MIX.items():
        categories.extend([name] * int(round(total * fraction)))
    while len(categories) < total:
        categories.append("content-plain")
    del categories[total:]
    rng.shuffle(categories)

    lines: list[str] = []
    for index, category in enumerate(categories):
        sid = base_sid + index
        msg = f"{category} {rng.choice(_WORDS)}"
        lines.append(
            f'{_header(rng)} (msg:"{msg}"; flow:to_server,established; '
            f"{_payload(rng, category)} "
            f'classtype:{rng.choice(("web-application-attack", "trojan-activity", "attempted-recon"))}; '
            f"sid:{sid}; rev:{rng.randint(1, 9)};)"
        )
    return lines


def corpus_text(
    total: int = 2000, seed: int = 0x51D5, base_sid: int = 1_000_000
) -> str:
    """The corpus as one ``.rules`` file body (with a comment banner)."""
    header = [
        f"# synthetic Snort-style corpus: {total} rules, seed {seed:#x}",
        "# generated by repro.workloads.snort_rules (deterministic)",
    ]
    return "\n".join(header + snort_corpus(total, seed, base_sid)) + "\n"


def write_corpus(
    path: str, total: int = 2000, seed: int = 0x51D5, base_sid: int = 1_000_000
) -> str:
    """Write the corpus to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(corpus_text(total, seed, base_sid))
    return path
