"""Synthetic benchmark suites calibrated to the paper's rule sets.

The paper evaluates on Snort, Suricata, Protomata, SpamAssassin and
ClamAV.  Those rule dumps are not redistributable (and unavailable
offline), so this module generates *structurally equivalent* suites:
every effect the paper measures depends on structural statistics --
the share of rules with counting, the share of counter-ambiguous
counting, the repetition-bound distribution, and the syntactic shapes
(guarded runs ``[^x]x{n}``, wildcard gaps ``.{m,n}``, PROSITE
``x(m,n)`` gaps, hex signatures) -- and the generators are calibrated
to Table 1 and the paper's qualitative descriptions:

=============  ======  =========  ========  ===========
suite          total   supported  counting  c-ambiguous
=============  ======  =========  ========  ===========
Protomata       2338      2338      1675       1675
Snort           5839      5315      1934        282
Suricata        4480      3728      1510        246
SpamAssassin    3786      3690       459        279
ClamAV        100472    100472      4823       3626
=============  ======  =========  ========  ===========

Every generator is deterministic given its seed and scales to any
requested rule count while keeping the proportions; the default sizes
are 1/10th of the paper's (ClamAV 1/50th) so the full analysis pipeline
runs in CI time.  ``EXPERIMENTS.md`` records our measured censuses next
to the paper's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = [
    "Rule",
    "Suite",
    "PAPER_TABLE1",
    "snort_like",
    "suricata_like",
    "protomata_like",
    "spamassassin_like",
    "clamav_like",
    "module_heavy",
    "suite_by_name",
    "all_suites",
    "APPLICATION_SUITES",
]


@dataclass(frozen=True)
class Rule:
    """One benchmark rule: an id, pattern text, and provenance tags."""

    rule_id: str
    pattern: str
    #: generator-intended category, for calibration tests:
    #: 'plain' | 'count-unambiguous' | 'count-ambiguous' | 'unsupported'
    category: str


@dataclass
class Suite:
    """A generated benchmark suite."""

    name: str
    rules: list[Rule]
    #: printable-alphabet hint for matching input streams
    input_style: str
    description: str = ""

    def patterns(self) -> list[tuple[str, str]]:
        return [(r.rule_id, r.pattern) for r in self.rules]

    def intended_counts(self) -> dict[str, int]:
        counts = {"plain": 0, "count-unambiguous": 0, "count-ambiguous": 0, "unsupported": 0}
        for rule in self.rules:
            counts[rule.category] += 1
        return counts


#: Table 1 of the paper, for side-by-side comparison in experiments.
PAPER_TABLE1 = {
    "Protomata": {"total": 2338, "supported": 2338, "counting": 1675, "ambiguous": 1675},
    "Snort": {"total": 5839, "supported": 5315, "counting": 1934, "ambiguous": 282},
    "Suricata": {"total": 4480, "supported": 3728, "counting": 1510, "ambiguous": 246},
    "SpamAssassin": {"total": 3786, "supported": 3690, "counting": 459, "ambiguous": 279},
    "ClamAV": {"total": 100472, "supported": 100472, "counting": 4823, "ambiguous": 3626},
}


# ----------------------------------------------------------------------
# Shared vocabulary
# ----------------------------------------------------------------------
_WORDS = (
    "admin config login session token shell root exec select union passwd "
    "download update install payload header content agent host referer "
    "cookie range index search query upload module script iframe object"
).split()

_HEADER_NAMES = (
    "User-Agent", "Content-Type", "Content-Length", "Host", "Referer",
    "Cookie", "Authorization", "Accept", "X-Forwarded-For", "Range",
)

#: guarded-run shapes: (negated guard class, run class) with guard
#: disjoint from the run -- the counter-unambiguous pattern family of
#: Example 3.4 / the Snort discussion ("Sigma* ~s s{n}").
_GUARDED_RUNS = (
    (r"\r\n", r"[^\r\n]"),
    (r"\x00", r"[^\x00]"),
    (r"[^0-9]", r"[0-9]"),
    (r"[^A-Za-z]", r"[A-Za-z]"),
    (r"=", r"[^=;]"),
    (r"/", r"[^/?]"),
    (r'"', r'[^"]'),
    (r"[^A-Za-z0-9+/]", r"[A-Za-z0-9+/]"),
)

_AMINO = "ACDEFGHIKLMNPQRSTVWY"


def _literal(rng: random.Random, lo: int = 3, hi: int = 10) -> str:
    word = rng.choice(_WORDS)
    if rng.random() < 0.3:
        word += rng.choice(("=", ": ", "/", "_")) + rng.choice(_WORDS)
    return word[: rng.randint(lo, max(lo, hi))]


def _bound(rng: random.Random, style: str) -> tuple[int, int]:
    """Draw (lo, hi) from the suite's bound distribution.

    Network suites mix small header limits with the large bounds
    (hundreds to ~1024) that make unfolding blow up -- the regime where
    Figures 9/10 show the big wins.
    """
    roll = rng.random()
    if style == "network":
        if roll < 0.45:
            hi = rng.randint(2, 20)
        elif roll < 0.75:
            hi = rng.randint(21, 100)
        else:
            hi = rng.randint(101, 1024)
    elif style == "motif":
        # PROSITE x(m,n) gaps are mostly narrow (x(2), x(3), x(2,10));
        # wide gaps up to ~30 exist but are rare.
        hi = rng.randint(2, 12) if roll < 0.8 else rng.randint(13, 30)
    elif style == "mail":
        if roll < 0.7:
            hi = rng.randint(2, 16)
        else:
            hi = rng.randint(17, 128)
    else:  # virus signatures: wide byte gaps
        if roll < 0.5:
            hi = rng.randint(4, 64)
        else:
            hi = rng.randint(65, 512)
    lo = rng.randint(0, hi) if rng.random() < 0.5 else hi
    return lo, hi


def _take(rng: random.Random, total: int, fractions: dict[str, float]) -> list[str]:
    """Deterministic category assignment matching ``fractions``."""
    cats: list[str] = []
    for category, fraction in fractions.items():
        cats.extend([category] * round(total * fraction))
    while len(cats) < total:
        cats.append(next(iter(fractions)))
    del cats[total:]
    rng.shuffle(cats)
    return cats


# ----------------------------------------------------------------------
# Rule factories per category
# ----------------------------------------------------------------------
def _plain_network_rule(rng: random.Random) -> str:
    kind = rng.random()
    if kind < 0.4:
        return _literal(rng) + rng.choice(("", r"\x3a", r"\x2f")) + _literal(rng)
    if kind < 0.7:
        return rng.choice(_HEADER_NAMES) + r"\x3a " + _literal(rng)
    if kind < 0.85:
        return "(" + "|".join(_literal(rng) for _ in range(rng.randint(2, 3))) + ")"
    return _literal(rng) + r"[0-9a-f]*" + _literal(rng, 2, 4)


def _unambiguous_count_rule(rng: random.Random, style: str) -> str:
    """Guarded run: ``prefix ~s s{m,n} suffix`` -- counter-eligible."""
    guard, run = rng.choice(_GUARDED_RUNS)
    lo, hi = _bound(rng, style)
    lo = max(lo, 1)
    prefix = _literal(rng) if rng.random() < 0.6 else ""
    suffix = guard if rng.random() < 0.5 else ""
    return f"{prefix}{guard}{run}{{{lo},{hi}}}{suffix}"


def _ambiguous_count_rule(rng: random.Random, style: str) -> str:
    """Wildcard/overlapping-gap shapes -- bit-vector territory."""
    lo, hi = _bound(rng, style)
    kind = rng.random()
    if kind < 0.45:
        # gap between two contents: `cmd=.{1,512}exec`
        return f"{_literal(rng)}.{{{lo},{hi}}}{_literal(rng)}"
    if kind < 0.75:
        # bare class run with no disjoint guard: `[0-9]{13,16}`
        cls = rng.choice((r"[0-9]", r"[A-Za-z0-9+/]", r"[a-z ]", r"\w"))
        return f"{cls}{{{max(lo, 2)},{hi}}}"
    # overlapping guard: guard class intersects the run class
    return f"{_literal(rng)} [ -~]{{{max(lo, 1)},{hi}}}{rng.choice(('!', ';', ''))}"


def _unsupported_rule(rng: random.Random) -> str:
    kind = rng.random()
    if kind < 0.5:
        return f"({_literal(rng)}).*\\1"
    if kind < 0.8:
        return f"{_literal(rng)}(?={_literal(rng)})"
    return rf"\b{_literal(rng)}\b"


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------
def _network_suite(
    name: str,
    total: int,
    seed: int,
    supported_frac: float,
    counting_frac: float,
    ambiguous_frac: float,
    description: str,
) -> Suite:
    """Common skeleton for the Snort- and Suricata-like suites.

    ``counting_frac`` is relative to supported rules, ``ambiguous_frac``
    relative to counting rules -- the way Table 1 nests its columns.
    """
    rng = random.Random(seed)
    unsupported = 1.0 - supported_frac
    counting = supported_frac * counting_frac
    ambiguous = counting * ambiguous_frac
    fractions = {
        "plain": supported_frac - counting,
        "count-unambiguous": counting - ambiguous,
        "count-ambiguous": ambiguous,
        "unsupported": unsupported,
    }
    rules: list[Rule] = []
    for i, category in enumerate(_take(rng, total, fractions)):
        if category == "plain":
            pattern = _plain_network_rule(rng)
        elif category == "count-unambiguous":
            pattern = _unambiguous_count_rule(rng, "network")
        elif category == "count-ambiguous":
            pattern = _ambiguous_count_rule(rng, "network")
        else:
            pattern = _unsupported_rule(rng)
        rules.append(Rule(f"{name.lower()}:{i}", pattern, category))
    return Suite(name, rules, input_style="network", description=description)


def snort_like(total: int = 584, seed: int = 0x5307) -> Suite:
    """Snort-like IDS payload rules (paper: 5839 rules, 36% counting)."""
    return _network_suite(
        "Snort",
        total,
        seed,
        supported_frac=5315 / 5839,
        counting_frac=1934 / 5315,
        ambiguous_frac=282 / 1934,
        description="network intrusion detection payload patterns",
    )


def suricata_like(total: int = 448, seed: int = 0x5421) -> Suite:
    """Suricata-like IDS rules (paper: 4480 rules, 40% counting)."""
    return _network_suite(
        "Suricata",
        total,
        seed,
        supported_frac=3728 / 4480,
        counting_frac=1510 / 3728,
        ambiguous_frac=246 / 1510,
        description="network threat-detection payload patterns",
    )


def protomata_like(total: int = 234, seed: int = 0x9607) -> Suite:
    """PROSITE-style protein motifs (paper: 2338 rules, all-ambiguous
    counting: every gap is an ``x(m,n)`` wildcard over the amino
    alphabet, and wildcard bodies under an unanchored prefix are always
    counter-ambiguous)."""
    rng = random.Random(seed)
    counting_frac = 1675 / 2338
    fractions = {"count-ambiguous": counting_frac, "plain": 1.0 - counting_frac}
    def element() -> str:
        if rng.random() < 0.6:
            return rng.choice(_AMINO)
        size = rng.randint(2, 5)
        members = "".join(rng.sample(_AMINO, size))
        if rng.random() < 0.2:
            return f"[^{members}]"
        return f"[{members}]"

    def gap() -> str:
        lo, hi = _bound(rng, "motif")
        # PROSITE gaps follow one- or two-element anchors, so a gap
        # wider than its anchor is counter-ambiguous under the
        # unanchored Sigma* prefix; hi >= 3 guarantees that here.
        hi = max(hi, 3)
        lo = min(lo, hi)
        return f".{{{lo},{hi}}}" if lo != hi else f".{{{hi}}}"

    rules: list[Rule] = []
    for i, category in enumerate(_take(rng, total, fractions)):
        elements: list[str] = [element()]
        if category == "count-ambiguous":
            # real motifs interleave short anchors with x(m,n) gaps,
            # starting the first gap right after the leading anchor
            # (e.g. `C-x(2,4)-C-x(3)-[LIVMFYWC]`)
            elements.append(gap())
            for _ in range(rng.randint(2, 8)):
                if rng.random() < 0.25:
                    elements.append(gap())
                else:
                    elements.append(element())
        else:
            for _ in range(rng.randint(3, 9)):
                elements.append("." if rng.random() < 0.2 else element())
        rules.append(Rule(f"protomata:{i}", "".join(elements), category))
    return Suite(
        "Protomata",
        rules,
        input_style="protein",
        description="PROSITE-style protein motifs with x(m,n) gaps",
    )


def spamassassin_like(total: int = 379, seed: int = 0x57A4) -> Suite:
    """SpamAssassin-like mail-body rules (paper: 3786 rules, 12%
    counting, 61% of counting ambiguous)."""
    rng = random.Random(seed)
    supported_frac = 3690 / 3786
    counting = supported_frac * (459 / 3690)
    ambiguous = counting * (279 / 459)
    fractions = {
        "plain": supported_frac - counting,
        "count-unambiguous": counting - ambiguous,
        "count-ambiguous": ambiguous,
        "unsupported": 1.0 - supported_frac,
    }
    spam_words = (
        "free money offer click here winner casino viagra prize credit "
        "urgent deal bonus cheap limited guarantee unsubscribe"
    ).split()
    rules: list[Rule] = []
    for i, category in enumerate(_take(rng, total, fractions)):
        if category == "plain":
            word = rng.choice(spam_words)
            if rng.random() < 0.4:
                pattern = "(?i)" + word
            elif rng.random() < 0.5:
                pattern = word + r"[!.]*" + rng.choice(spam_words)
            else:
                pattern = "(" + "|".join(rng.sample(spam_words, 2)) + ")"
        elif category == "count-unambiguous":
            # obfuscation gaps: `v\W{1,3}i\W{1,3}a...` (letter guards are
            # disjoint from the \W gap body)
            word = rng.choice(spam_words)[: rng.randint(4, 6)]
            lo, hi = 1, rng.randint(2, 4)
            pattern = (f"\\W{{{lo},{hi}}}").join(word)
        elif category == "count-ambiguous":
            lo, hi = _bound(rng, "mail")
            hi = max(hi, 2)
            lo = min(lo, hi)
            a, b = rng.sample(spam_words, 2)
            if rng.random() < 0.5:
                pattern = f"{a}.{{{lo},{hi}}}{b}"
            else:
                pattern = f"[0-9]{{{max(2, min(lo, 4))},{hi}}}%? ?(off|free)"
        else:
            pattern = _unsupported_rule(rng)
        rules.append(Rule(f"spam:{i}", pattern, category))
    return Suite(
        "SpamAssassin",
        rules,
        input_style="mail",
        description="anti-spam mail-body patterns with obfuscation gaps",
    )


def clamav_like(total: int = 2009, seed: int = 0xC1A3) -> Suite:
    """ClamAV-like virus signatures (paper: 100472 sigs, 4.8% counting,
    75% of counting ambiguous).  Signatures are hex byte strings with
    ``{n-m}``-style wildcard gaps, here rendered as ``.{n,m}``."""
    rng = random.Random(seed)
    counting = 4823 / 100472
    ambiguous = counting * (3626 / 4823)
    fractions = {
        "plain": 1.0 - counting,
        "count-unambiguous": counting - ambiguous,
        "count-ambiguous": ambiguous,
    }

    def hex_bytes(k: int) -> str:
        return "".join(f"\\x{rng.randrange(256):02x}" for _ in range(k))

    rules: list[Rule] = []
    for i, category in enumerate(_take(rng, total, fractions)):
        if category == "plain":
            pattern = hex_bytes(rng.randint(6, 24))
        elif category == "count-unambiguous":
            lo, hi = _bound(rng, "virus")
            hi = max(hi, 2)
            lo = max(1, min(lo, hi))
            pattern = f"{hex_bytes(4)}\\x00[^\\x00]{{{lo},{hi}}}{hex_bytes(2)}"
        else:
            lo, hi = _bound(rng, "virus")
            hi = max(hi, 2)
            lo = min(lo, hi)
            pattern = f"{hex_bytes(rng.randint(3, 8))}.{{{lo},{hi}}}{hex_bytes(rng.randint(3, 8))}"
        rules.append(Rule(f"clamav:{i}", pattern, category))
    return Suite(
        "ClamAV",
        rules,
        input_style="binary",
        description="virus byte signatures with wildcard gaps",
    )


def module_heavy(total: int = 24, seed: int = 0x40D5) -> Suite:
    """Every rule carries a ``{n,m}`` bounded repeat that lowers to a
    counter or bit-vector module (``unfold_threshold=0``) -- the
    workload for measuring in-sweep module execution (the
    ``backends_modules`` matrix in ``bench_engine.py``).

    Unlike the application suites this one is *pure* module pressure:
    guarded runs (counters), wildcard/class gaps (bit vectors), and
    ALL_INPUT gap heads, all with one-STE bodies so the entire suite
    stays on the block scanner's in-lane fast path (zero rescans is an
    asserted property, not luck).
    """
    rng = random.Random(seed)
    rules: list[Rule] = []
    for i in range(total):
        lo = rng.randint(2, 10)
        hi = lo + rng.randint(1, 14)
        roll = rng.random()
        if roll < 0.35:
            # guarded run: `lit [^s] s{lo,hi}` -> absorbable counter
            guard, run = rng.choice(_GUARDED_RUNS)
            prefix = _literal(rng) if rng.random() < 0.5 else ""
            pattern = f"{prefix}{guard}{run}{{{lo},{hi}}}"
            category = "count-unambiguous"
        elif roll < 0.7:
            # wildcard gap between contents -> absorbable bit vector
            pattern = f"{_literal(rng)}.{{{lo},{hi}}}{_literal(rng)}"
            category = "count-ambiguous"
        elif roll < 0.9:
            # bare class run -> counter with a class body
            cls = rng.choice((r"[0-9]", r"[A-Za-z0-9+/]", r"[a-z ]"))
            pattern = f"{cls}{{{lo},{hi}}}{rng.choice(('!', ';', '='))}"
            category = "count-ambiguous"
        else:
            # ALL_INPUT gap head: `.{lo,hi} lit`
            pattern = f".{{{lo},{hi}}}{_literal(rng)}"
            category = "count-ambiguous"
        rules.append(Rule(f"modheavy:{i}", pattern, category))
    return Suite(
        "ModuleHeavy",
        rules,
        input_style="network",
        description="all-counting suite exercising counter/bit-vector modules",
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_FACTORIES: dict[str, Callable[..., Suite]] = {
    "Snort": snort_like,
    "Suricata": suricata_like,
    "Protomata": protomata_like,
    "SpamAssassin": spamassassin_like,
    "ClamAV": clamav_like,
}

#: The four suites used in the hardware evaluation (Figures 9/10
#: exclude ClamAV, as does the paper).
APPLICATION_SUITES = ("Protomata", "SpamAssassin", "Snort", "Suricata")


def suite_by_name(name: str, total: int | None = None, seed: int | None = None) -> Suite:
    factory = _FACTORIES[name]
    kwargs = {}
    if total is not None:
        kwargs["total"] = total
    if seed is not None:
        kwargs["seed"] = seed
    return factory(**kwargs)


def all_suites(scale: float = 1.0) -> list[Suite]:
    """All five suites at ``scale`` times their default sizes."""
    suites = []
    for name, factory in _FACTORIES.items():
        default_total = factory.__defaults__[0]
        suites.append(factory(total=max(10, round(default_total * scale))))
    return suites
