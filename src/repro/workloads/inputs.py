"""Input-stream generators matched to the benchmark suites.

The paper feeds each benchmark its natural traffic (network payloads,
protein sequences, mail bodies, binary blobs).  These generators build
deterministic synthetic streams in those styles and can *plant* true
matches for a set of patterns, so simulations exercise the counter and
bit-vector modules' full life cycle (enter, iterate, exit, report)
rather than idling on random bytes.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..regex.ast import Regex
from ..regex.parser import parse
from ..regex.rewrite import simplify
from ..regex.sample import CannotSampleError, sample_match

__all__ = [
    "random_bytes",
    "ascii_text",
    "protein_stream",
    "network_stream",
    "mail_stream",
    "binary_stream",
    "stream_for_style",
    "plant_matches",
]

_AMINO = b"ACDEFGHIKLMNPQRSTVWY"
_WORDS = (
    b"the quick brown fox jumps over lazy dog alpha beta gamma delta "
    b"request response header content agent host index search token"
).split()


def random_bytes(length: int, seed: int = 0) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(length))


def ascii_text(length: int, seed: int = 0) -> bytes:
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < length:
        out += rng.choice(_WORDS) + b" "
        if rng.random() < 0.08:
            out += b"\r\n"
    return bytes(out[:length])


def protein_stream(length: int, seed: int = 0) -> bytes:
    """Uniform amino-acid sequence (Protomata-style input)."""
    rng = random.Random(seed)
    return bytes(rng.choice(_AMINO) for _ in range(length))


def network_stream(length: int, seed: int = 0) -> bytes:
    """HTTP-flavoured traffic: request lines, headers, opaque bodies."""
    rng = random.Random(seed)
    out = bytearray()
    methods = (b"GET", b"POST", b"HEAD")
    paths = (b"/index.html", b"/api/v1/search", b"/login", b"/upload")
    headers = (b"User-Agent", b"Host", b"Content-Type", b"Cookie", b"Referer")
    while len(out) < length:
        out += rng.choice(methods) + b" " + rng.choice(paths) + b" HTTP/1.1\r\n"
        for _ in range(rng.randint(1, 4)):
            value = bytes(rng.randrange(0x20, 0x7F) for _ in range(rng.randint(4, 40)))
            out += rng.choice(headers) + b": " + value + b"\r\n"
        out += b"\r\n"
        body_len = rng.randint(0, 60)
        out += bytes(rng.randrange(256) for _ in range(body_len))
    return bytes(out[:length])


def mail_stream(length: int, seed: int = 0) -> bytes:
    """Mail-ish text with occasional spam-flavoured phrases."""
    rng = random.Random(seed)
    spam = (b"free", b"offer", b"click", b"winner", b"prize", b"money")
    out = bytearray()
    while len(out) < length:
        if rng.random() < 0.12:
            out += rng.choice(spam) + b"!" * rng.randint(0, 2) + b" "
        else:
            out += rng.choice(_WORDS) + b" "
        if rng.random() < 0.06:
            out += b"\n"
    return bytes(out[:length])


def binary_stream(length: int, seed: int = 0) -> bytes:
    """Executable-flavoured bytes: runs of zeros, text islands, noise."""
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < length:
        roll = rng.random()
        if roll < 0.3:
            out += b"\x00" * rng.randint(2, 24)
        elif roll < 0.5:
            out += bytes(rng.choice(_WORDS))
        else:
            out += bytes(rng.randrange(256) for _ in range(rng.randint(4, 32)))
    return bytes(out[:length])


_STYLES = {
    "network": network_stream,
    "protein": protein_stream,
    "mail": mail_stream,
    "binary": binary_stream,
    "ascii": ascii_text,
    "random": random_bytes,
}


def stream_for_style(style: str, length: int, seed: int = 0) -> bytes:
    """Background stream for a suite's ``input_style``."""
    return _STYLES[style](length, seed)


def plant_matches(
    background: bytes,
    patterns: Iterable[str | Regex],
    seed: int = 0,
    density: float = 0.02,
) -> bytes:
    """Splice strings matching ``patterns`` into ``background``.

    ``density`` is the approximate fraction of output bytes devoted to
    planted matches.  Patterns that cannot be sampled (empty language
    after a malformed class, say) are skipped silently -- the planting
    is best-effort colour, not a correctness mechanism.
    """
    rng = random.Random(seed)
    asts: list[Regex] = []
    for pattern in patterns:
        if isinstance(pattern, Regex):
            asts.append(pattern)
            continue
        try:
            asts.append(simplify(parse(pattern).ast))
        except Exception:
            continue
    if not asts:
        return background
    budget = int(len(background) * density)
    out = bytearray(background)
    while budget > 0:
        ast = rng.choice(asts)
        try:
            needle = sample_match(ast, rng)
        except CannotSampleError:
            budget -= 1
            continue
        if not needle:
            budget -= 1
            continue
        pos = rng.randrange(max(1, len(out)))
        out[pos:pos] = needle
        budget -= len(needle)
    return bytes(out)
