"""Benchmark censuses: the Table 1 computation.

For a suite, counts how many rules parse into the supported fragment,
how many contain counting, and how many are counter-ambiguous
according to the chosen analysis -- the four columns of Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.hybrid import analyze_pattern
from ..analysis.result import Method
from ..regex.errors import RegexError, UnsupportedFeatureError
from ..regex.metrics import mu
from ..regex.parser import parse
from ..regex.rewrite import simplify
from .synth import Suite

__all__ = ["CensusRow", "census", "RegexRecord"]


@dataclass
class RegexRecord:
    """Per-rule analysis record (feeds the Fig. 2/3 scatter data)."""

    rule_id: str
    pattern: str
    supported: bool
    has_counting: bool = False
    ambiguous: bool = False
    mu: int = 0
    pairs_created: int = 0
    elapsed_s: float = 0.0
    skip_reason: str = ""


@dataclass
class CensusRow:
    """One row of Table 1."""

    name: str
    total: int
    supported: int
    counting: int
    ambiguous: int
    records: list[RegexRecord] = field(default_factory=list)
    elapsed_s: float = 0.0

    def as_tuple(self) -> tuple[int, int, int, int]:
        return (self.total, self.supported, self.counting, self.ambiguous)


def census(
    suite: Suite,
    method: Method | str = Method.HYBRID,
    max_pairs: int | None = 2_000_000,
) -> CensusRow:
    """Analyze every rule of a suite and tally the Table 1 columns."""
    started = time.perf_counter()
    row = CensusRow(suite.name, total=len(suite.rules), supported=0, counting=0, ambiguous=0)
    for rule in suite.rules:
        record = RegexRecord(rule.rule_id, rule.pattern, supported=False)
        row.records.append(record)
        try:
            parsed = parse(rule.pattern)
        except UnsupportedFeatureError as err:
            record.skip_reason = f"unsupported: {err.feature}"
            continue
        except RegexError as err:
            record.skip_reason = str(err)
            continue
        record.supported = True
        row.supported += 1
        simplified = simplify(parsed.ast)
        record.mu = mu(simplified)
        t0 = time.perf_counter()
        try:
            result = analyze_pattern(rule.pattern, method=method, max_pairs=max_pairs)
        except RuntimeError as err:  # pair-limit safety valve
            record.skip_reason = f"analysis aborted: {err}"
            record.has_counting = True
            record.ambiguous = True  # conservative
            row.counting += 1
            row.ambiguous += 1
            continue
        record.elapsed_s = time.perf_counter() - t0
        record.pairs_created = result.pairs_created
        if result.has_counting:
            record.has_counting = True
            row.counting += 1
            if result.ambiguous:
                record.ambiguous = True
                row.ambiguous += 1
    row.elapsed_s = time.perf_counter() - started
    return row
