"""Synthetic benchmark suites, input streams, and censuses."""

from .inputs import (
    ascii_text,
    binary_stream,
    mail_stream,
    network_stream,
    plant_matches,
    protein_stream,
    random_bytes,
    stream_for_style,
)
from .snort_rules import CATEGORY_MIX, corpus_text, snort_corpus, write_corpus
from .stats import CensusRow, RegexRecord, census
from .synth import (
    APPLICATION_SUITES,
    PAPER_TABLE1,
    Rule,
    Suite,
    all_suites,
    clamav_like,
    protomata_like,
    snort_like,
    spamassassin_like,
    suite_by_name,
    suricata_like,
)

__all__ = [
    "Rule",
    "Suite",
    "PAPER_TABLE1",
    "APPLICATION_SUITES",
    "snort_like",
    "suricata_like",
    "protomata_like",
    "spamassassin_like",
    "clamav_like",
    "suite_by_name",
    "all_suites",
    "census",
    "CensusRow",
    "RegexRecord",
    "random_bytes",
    "ascii_text",
    "protein_stream",
    "network_stream",
    "mail_stream",
    "binary_stream",
    "stream_for_style",
    "plant_matches",
    "CATEGORY_MIX",
    "snort_corpus",
    "corpus_text",
    "write_corpus",
]
