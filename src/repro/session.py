"""Session-oriented matching: incremental ``Match`` events over any engine.

The paper's automata are *streaming* hardware -- the report vector
fires on the clock cycle that consumes a byte -- yet a batch API like
``scan()`` only hands results back after the whole stream is buffered
and finished.  This module is the serving-shaped surface over the same
engines: a **session** wraps one live scan of one logical stream and
emits first-class :class:`Match` events as soon as the hardware would
raise them, which is what multiplexing many long-lived client streams
over one compiled ruleset (the GPU/CRAM IDS serving shape) actually
needs.

The layer cake:

* :class:`Match` -- one report, fully resolved: facade rule id,
  **absolute** 1-based end offset (chunk boundaries invisible), the
  session's stream tag, and the raw hardware report code;
* :class:`MatchSession` -- a context manager over one stream:
  ``feed(chunk)`` returns the chunk's newly observed matches (sorted
  by offset), ``finish()`` returns the end-of-data matches
  (``$``-anchored rules can only be gated once the stream length is
  known), ``matches(chunks)`` iterates lazily, ``result()`` assembles
  the classic :class:`~repro.matching.ScanResult`;
* :class:`Matcher` -- the protocol both
  :class:`~repro.matching.RulesetMatcher` and
  :class:`~repro.engine.parallel.ShardedMatcher` implement, so sharded
  sessions (per-shard sub-scanners, merged incremental emission) are
  indistinguishable from single-matcher ones;
* :class:`MultiStreamScanner` -- demultiplexes many interleaved tagged
  streams over one compiled ruleset with per-stream isolation: the
  "one ruleset, N clients" path;
* sinks -- any callable accepts matches as they are emitted
  (``on_match=``); :class:`CollectorSink` accumulates,
  :class:`QueueSink` bridges to consumer threads through a bounded
  queue with an explicit overflow policy (``block`` / ``drop_oldest``
  / ``raise``) and an observable dropped-count.

Every registered execution backend (``stream``, ``block``,
``reference``, and third-party registrations) works under a session:
backends already report incrementally from ``feed``, the session layer
only resolves names and applies the facade semantics (``$`` gating,
:data:`UNNAMED_REPORT`).  The batch entry points (``scan``,
``scan_stream``, ``scan_many``, ``matched_rules``) are thin wrappers
over sessions, so both surfaces are one code path.
"""

from __future__ import annotations

import queue
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from .engine.scanner import Chunk, coerce_chunk

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .matching import ResourceSummary, ScanResult

__all__ = [
    "UNNAMED_REPORT",
    "Match",
    "match_dict",
    "MatchSession",
    "SessionPart",
    "Matcher",
    "MultiStreamScanner",
    "CollectorSink",
    "QueueSink",
]

#: Rule id assigned to reports whose node carries no ``report_id``.
#: Hand-built networks may leave ``report_id`` as ``None``; the facade
#: surfaces those deterministically under this single sentinel key
#: instead of silently conflating them with falsy-but-real ids (``""``
#: stays ``""``).
UNNAMED_REPORT = "<unnamed>"


@dataclass(frozen=True, slots=True)
class Match:
    """One match event, fully resolved by the facade.

    Replaces the raw ``(position, report_id)`` tuples of the scanner
    layer: the rule id is never ``None`` (unnamed reports surface as
    :data:`UNNAMED_REPORT`), the offset is absolute across chunk
    boundaries, and the event knows which tagged stream it came from.

    >>> from repro import Match
    >>> match = Match(rule="hit", end=7, stream="conn-1")
    >>> match.sort_key
    (7, 'hit', 'conn-1', '')
    """

    #: facade rule id (:data:`UNNAMED_REPORT` for unnamed reports)
    rule: str
    #: 1-based end offset into the *stream* (not the chunk): a match
    #: ended after the ``end``-th byte fed to the session
    end: int
    #: tag of the session's stream (``None`` for untagged sessions)
    stream: Optional[str] = None
    #: raw hardware report id (``None`` when the node was unnamed)
    code: Optional[str] = None
    #: ruleset generation the match was scanned against (stamped by the
    #: serving layer's hot-reload path; ``None`` for offline scans)
    generation: Optional[int] = None

    @property
    def sort_key(self) -> tuple[int, str, str, str]:
        """Deterministic ordering: offset first, then rule/stream/code."""
        return (self.end, self.rule, self.stream or "", self.code or "")


def match_dict(matches: Iterable[Match]) -> dict[str, list[int]]:
    """Collapse match events to the classic ``{rule: sorted distinct
    end offsets}`` shape of :attr:`~repro.matching.ScanResult.matches`.

    >>> from repro import Match, match_dict
    >>> match_dict([Match("r", 5), Match("r", 3), Match("q", 2)])
    {'r': [3, 5], 'q': [2]}
    """
    ends: dict[str, set[int]] = {}
    for match in matches:
        ends.setdefault(match.rule, set()).add(match.end)
    return {rule: sorted(positions) for rule, positions in ends.items()}


# -- sinks -----------------------------------------------------------------
#: Anything callable with one :class:`Match` can be an ``on_match`` sink.
MatchSink = Callable[[Match], None]


class CollectorSink:
    """Sink that accumulates every emitted match, in emission order.

    >>> from repro import CollectorSink, RulesetMatcher
    >>> sink = CollectorSink()
    >>> with RulesetMatcher([("hit", "abc")]).session(on_match=sink) as s:
    ...     _ = s.feed(b"zabc")
    >>> sink.by_rule()
    {'hit': [4]}
    """

    def __init__(self) -> None:
        self.matches: list[Match] = []

    def __call__(self, match: Match) -> None:
        self.matches.append(match)

    def by_rule(self) -> dict[str, list[int]]:
        """Collected matches as ``{rule: sorted end offsets}``."""
        return match_dict(self.matches)


#: overflow policies a bounded :class:`QueueSink` can apply when the
#: queue is full at emission time
QUEUE_OVERFLOW_POLICIES = ("block", "drop_oldest", "raise")


class QueueSink:
    """Sink that bridges match emission to consumer threads.

    Matches are ``put`` on a bounded :class:`queue.Queue`.  What
    happens when the queue is **full** (``maxsize > 0``) is an
    explicit, named policy -- never a silent drop -- because serving
    backpressure hangs off this choice:

    * ``"block"`` (default) -- ``put`` blocks the feeding thread until
      the consumer catches up: lossless backpressure, a slow consumer
      throttles the scan instead of growing memory without bound.
      Single-threaded callers should :meth:`drain` between feeds (or
      leave ``maxsize=0``, unbounded).
    * ``"drop_oldest"`` -- evict the oldest queued match to admit the
      new one (a bounded tail of the freshest matches); every eviction
      increments :attr:`dropped`, so loss is observable, not silent.
    * ``"raise"`` -- propagate :class:`queue.Full` to the emitter
      (fail-fast for callers that treat overflow as a logic error).

    >>> from repro.session import Match, QueueSink
    >>> sink = QueueSink(maxsize=2, overflow="drop_oldest")
    >>> for end in (1, 2, 3):
    ...     sink(Match(rule="r", end=end))
    >>> [match.end for match in sink.drain()], sink.dropped
    ([2, 3], 1)
    """

    def __init__(self, maxsize: int = 0, overflow: str = "block") -> None:
        if overflow not in QUEUE_OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; "
                f"choose from {QUEUE_OVERFLOW_POLICIES}"
            )
        self.queue: "queue.Queue[Match]" = queue.Queue(maxsize)
        self.overflow = overflow
        #: matches evicted under the ``drop_oldest`` policy so far
        self.dropped = 0

    def __call__(self, match: Match) -> None:
        if self.overflow == "block":
            self.queue.put(match)
            return
        while True:
            try:
                self.queue.put_nowait(match)
                return
            except queue.Full:
                if self.overflow == "raise":
                    raise
                # drop_oldest: evict one, count it, retry the put (the
                # consumer may race us for the eviction; that is fine,
                # the queue only gets emptier)
                try:
                    self.queue.get_nowait()
                except queue.Empty:
                    continue
                self.dropped += 1

    def drain(self) -> list[Match]:
        """Pop everything currently queued without blocking."""
        out: list[Match] = []
        while True:
            try:
                out.append(self.queue.get_nowait())
            except queue.Empty:
                return out


# -- the session -----------------------------------------------------------
@dataclass(frozen=True)
class SessionPart:
    """One scanner's slice of a session (one per ruleset shard).

    Built by :meth:`Matcher.session` implementations, not by users:
    ``scanner`` is a fresh backend scanner, ``end_anchored`` the rule
    ids whose reports are gated to end-of-data, and ``finalize`` the
    owner's ``(reports, bytes_scanned, stats) -> ScanResult`` closure
    (which applies report naming, ``$`` gating, and energy pricing).
    ``finalize`` may be omitted for event-only sessions (e.g.
    :meth:`~repro.matching.PatternMatcher.finditer`), which then cannot
    produce a :meth:`MatchSession.result`.
    """

    scanner: Any
    end_anchored: frozenset
    finalize: Optional[Callable[..., "ScanResult"]] = None


class MatchSession:
    """One live scan of one logical stream, emitting :class:`Match` events.

    Obtain via :meth:`Matcher.session`; usable as a context manager
    (``finish()`` runs on clean exit).  Both :meth:`feed` and
    :meth:`finish` return the *newly* emitted matches as a list sorted
    by :attr:`Match.sort_key` (offset first) -- unlike the raw scanner
    layer, the two never disagree on type or ordering -- and every
    match is also pushed to the ``on_match`` sink exactly once, in that
    same order.

    ``$``-anchored rules are the reason ``finish()`` exists: their
    reports are only valid at end-of-data, which a streaming scan knows
    at finish time, so those matches are withheld from :meth:`feed` and
    emitted (if the stream really ended there) by :meth:`finish`.  All
    other facade semantics (1-based absolute end offsets, no
    zero-length matches, :data:`UNNAMED_REPORT` naming) match the batch
    entry points exactly -- ``scan``/``scan_stream`` are wrappers over
    this class.

    >>> from repro import RulesetMatcher
    >>> session = RulesetMatcher([("hit", "abc")]).session()
    >>> session.feed(b"xxab")       # match not complete yet
    []
    >>> [(m.rule, m.end) for m in session.feed(b"c..abc")]
    [('hit', 5), ('hit', 10)]
    >>> session.finish()
    []
    """

    def __init__(
        self,
        parts: Sequence[SessionPart],
        *,
        stream: Optional[str] = None,
        on_match: Optional[MatchSink] = None,
    ):
        if not parts:
            raise ValueError("a session needs at least one scanner")
        self._parts = list(parts)
        #: tag carried by every match this session emits
        self.stream = stream
        #: sink called once per emitted match, in emission order
        self.on_match = on_match
        self._bytes = 0
        self._finished = False
        self._result: Optional["ScanResult"] = None

    # -- introspection -----------------------------------------------------
    @property
    def bytes_fed(self) -> int:
        """Total stream bytes consumed so far."""
        return self._bytes

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def scanners(self) -> list:
        """The live backend scanners (one per ruleset shard)."""
        return [part.scanner for part in self._parts]

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "MatchSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.finish()
        return False

    # -- streaming ---------------------------------------------------------
    def _emit(self, matches: list[Match]) -> list[Match]:
        matches.sort(key=lambda match: match.sort_key)
        if self.on_match is not None:
            for match in matches:
                self.on_match(match)
        return matches

    def feed(self, chunk: Chunk) -> list[Match]:
        """Consume one chunk; return its newly observed matches.

        The list is sorted by offset and covers every shard; matches
        already emitted by earlier chunks are not repeated, and
        ``$``-anchored rules are withheld until :meth:`finish`.
        """
        if self._finished:
            raise RuntimeError(
                "feed() after finish(); open a new session to scan again"
            )
        chunk = coerce_chunk(chunk)
        tag = self.stream
        out: list[Match] = []
        for part in self._parts:
            gate = part.end_anchored
            for position, code in part.scanner.feed(chunk):
                rule = code if code is not None else UNNAMED_REPORT
                if rule in gate:
                    continue  # only reportable once the stream length is known
                out.append(Match(rule, position, tag, code))
        self._bytes += len(chunk)
        return self._emit(out)

    def finish(self) -> list[Match]:
        """Mark end-of-data; return the matches it unlocks.

        Emits the ``$``-anchored matches whose end offset is the final
        stream length (everything else already came out of
        :meth:`feed`).  Idempotent: a second call returns ``[]``.
        """
        if self._finished:
            return []
        self._finished = True
        tag = self.stream
        n = self._bytes
        out: list[Match] = []
        for part in self._parts:
            gate = part.end_anchored
            for position, code in part.scanner.finish():
                if position != n:
                    continue
                rule = code if code is not None else UNNAMED_REPORT
                if rule in gate:
                    out.append(Match(rule, position, tag, code))
        return self._emit(out)

    def matches(self, chunks: Iterable[Chunk]) -> Iterator[Match]:
        """Lazily scan an iterable of chunks, yielding matches as they
        are observed (and the end-gated ones after the last chunk)."""
        for chunk in chunks:
            yield from self.feed(chunk)
        yield from self.finish()

    def result(self) -> "ScanResult":
        """The classic batch :class:`~repro.matching.ScanResult` for
        everything this session scanned (finishing it if needed);
        identical -- reports, stats, energy -- to the batch entry
        points, which are implemented on top of this method."""
        if not self._finished:
            self.finish()
        if self._result is None:
            if any(part.finalize is None for part in self._parts):
                raise RuntimeError(
                    "this session is event-only (no ScanResult finalizer)"
                )
            results = [
                part.finalize(part.scanner.reports, self._bytes, part.scanner.stats)
                for part in self._parts
            ]
            if len(results) == 1:
                self._result = results[0]
            else:
                from .engine.parallel import merge_scan_results

                self._result = merge_scan_results(results)
        return self._result


# -- the matcher protocol --------------------------------------------------
@runtime_checkable
class Matcher(Protocol):
    """What every rule-set matcher front-end exposes.

    Implemented by :class:`~repro.matching.RulesetMatcher` (one
    compiled network), :class:`~repro.engine.parallel.ShardedMatcher`
    (round-robin shards in-process, merged results), and
    :class:`~repro.serve.cluster.RemoteShardedMatcher` (the same shard
    policy spread over M network match servers): one session/scan
    surface, so serving code is written once against this protocol and
    the sharding/backing choice -- local, multi-core, or cluster -- is
    swappable configuration.
    """

    engine: str

    @property
    def skipped(self) -> list[tuple[str, str]]: ...

    def resources(self) -> "ResourceSummary": ...

    def session(
        self,
        engine: Optional[str] = None,
        *,
        stream: Optional[str] = None,
        on_match: Optional[MatchSink] = None,
    ) -> MatchSession: ...

    def scan(self, data: Chunk, engine: Optional[str] = None) -> "ScanResult": ...

    def scan_stream(
        self, chunks: Iterable[Chunk], engine: Optional[str] = None
    ) -> "ScanResult": ...

    def scan_many(
        self,
        streams: Sequence[Chunk],
        processes: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> list["ScanResult"]: ...

    def matched_rules(self, data: Chunk) -> set[str]: ...


# -- multi-stream serving --------------------------------------------------
class MultiStreamScanner:
    """Demultiplex many interleaved tagged streams over one ruleset.

    The serving shape the ROADMAP's north star needs: compile once,
    then interleave chunks from any number of logical client streams --
    ``feed(tag, chunk)`` routes each chunk to that tag's
    :class:`MatchSession` (created on first sight, all sharing the
    matcher's compiled tables), and every emitted :class:`Match`
    carries its stream tag, so per-stream results never bleed into each
    other no matter how chunks interleave::

        mux = MultiStreamScanner(matcher)
        for tag, chunk in traffic:          # arbitrary interleaving
            for match in mux.feed(tag, chunk):
                route_alert(match.stream, match.rule, match.end)
        results = mux.results()             # {tag: ScanResult}

    Works over any :class:`Matcher` (sharded included) and any
    registered backend.  ``on_match`` observes every stream's matches
    through one sink (each match is tagged); per-stream sinks can be
    attached by creating the session first via :meth:`session`.

    >>> from repro import MultiStreamScanner, RulesetMatcher
    >>> mux = MultiStreamScanner(RulesetMatcher([("hit", "abc")]))
    >>> pairs = [("s1", b"ab"), ("s2", b"abc"), ("s1", b"c")]
    >>> {tag: r.matches for tag, r in mux.scan_tagged(pairs).items()}
    {'s1': {'hit': [3]}, 's2': {'hit': [3]}}
    """

    def __init__(
        self,
        matcher: Matcher,
        engine: Optional[str] = None,
        on_match: Optional[MatchSink] = None,
    ):
        self.matcher = matcher
        self.engine = engine
        self.on_match = on_match
        self._sessions: dict[str, MatchSession] = {}

    @property
    def streams(self) -> list[str]:
        """Tags seen so far, in first-seen order."""
        return list(self._sessions)

    def session(self, tag: str) -> MatchSession:
        """The tag's session, created on first use."""
        session = self._sessions.get(tag)
        if session is None:
            session = self.matcher.session(
                engine=self.engine, stream=tag, on_match=self.on_match
            )
            self._sessions[tag] = session
        return session

    def feed(self, tag: str, chunk: Chunk) -> list[Match]:
        """Route one chunk to stream ``tag``; return its new matches."""
        return self.session(tag).feed(chunk)

    def finish(self, tag: str) -> list[Match]:
        """End stream ``tag``; return the matches end-of-data unlocks."""
        return self._session_of(tag).finish()

    def finish_all(self) -> list[Match]:
        """End every open stream; return the unlocked matches, sorted
        by offset (ties broken by rule, then stream tag)."""
        out: list[Match] = []
        for session in self._sessions.values():
            out.extend(session.finish())
        out.sort(key=lambda match: match.sort_key)
        return out

    def result(self, tag: str) -> "ScanResult":
        """Stream ``tag``'s :class:`~repro.matching.ScanResult`
        (finishing it if still open)."""
        return self._session_of(tag).result()

    def results(self) -> dict[str, "ScanResult"]:
        """Per-stream results for every stream seen (finishing open
        ones), keyed by tag."""
        return {tag: session.result() for tag, session in self._sessions.items()}

    def scan_tagged(
        self, pairs: Iterable[tuple[str, Chunk]]
    ) -> dict[str, "ScanResult"]:
        """One-shot convenience: consume an interleaved ``(tag, chunk)``
        iterable, finish every stream, and return per-stream results."""
        for tag, chunk in pairs:
            self.feed(tag, chunk)
        self.finish_all()
        return self.results()

    def _session_of(self, tag: str) -> MatchSession:
        try:
            return self._sessions[tag]
        except KeyError:
            raise KeyError(
                f"unknown stream {tag!r}; streams seen: {sorted(self._sessions)}"
            ) from None
