"""Experiment: Table 1 -- analysis censuses of the five benchmarks.

Paper row format: benchmark, # total, # supported, # counting,
# counter-ambiguous.  Our suites are scaled-down synthetics, so the
formatter shows both absolute counts and the column *fractions* next
to the paper's -- the fractions are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.result import Method
from ..workloads.stats import CensusRow, census
from ..workloads.synth import PAPER_TABLE1, all_suites
from .runner import format_table

__all__ = ["Table1Result", "run_table1", "format_table1"]


@dataclass
class Table1Result:
    rows: list[CensusRow] = field(default_factory=list)

    def row(self, name: str) -> CensusRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)


def run_table1(
    scale: float = 0.5,
    method: Method | str = Method.HYBRID,
    max_pairs: int | None = 2_000_000,
) -> Table1Result:
    """Census all five suites at ``scale`` of their default sizes."""
    result = Table1Result()
    for suite in all_suites(scale=scale):
        result.rows.append(census(suite, method=method, max_pairs=max_pairs))
    return result


def format_table1(result: Table1Result) -> str:
    headers = [
        "Benchmark",
        "#total",
        "#supported",
        "#counting",
        "#c-ambiguous",
        "supported%",
        "counting%",
        "ambiguous%",
        "paper%",
    ]
    rows = []
    for row in result.rows:
        paper = PAPER_TABLE1[row.name]
        sup = row.supported / row.total if row.total else 0.0
        cnt = row.counting / row.supported if row.supported else 0.0
        amb = row.ambiguous / row.counting if row.counting else 0.0
        p_sup = paper["supported"] / paper["total"]
        p_cnt = paper["counting"] / paper["supported"]
        p_amb = paper["ambiguous"] / paper["counting"]
        rows.append(
            [
                row.name,
                row.total,
                row.supported,
                row.counting,
                row.ambiguous,
                f"{sup:.2f}",
                f"{cnt:.2f}",
                f"{amb:.2f}",
                f"{p_sup:.2f}/{p_cnt:.2f}/{p_amb:.2f}",
            ]
        )
    return format_table(
        headers, rows, title="Table 1: analysis of regexes in the benchmarks"
    )
