"""Experiment: Table 2 -- hardware component parameters.

The paper's Table 2 lists SPICE-characterized energy/delay/area for the
CAMA bank (256-STE CAM array), the 17-bit counter, and the 2000-bit
vector.  We embed those scalars (the documented substitution for the
SPICE flow); this driver renders them and verifies the architectural
claim attached to them in Section 4.3: counter and bit-vector delays
fit inside the CAMA state-transition critical path, so the augmented
design keeps CAMA-T's 2.14 GHz clock and throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.params import (
    BIT_VECTOR,
    CAM_ARRAY,
    CLOCK_GHZ,
    COUNTER,
    THROUGHPUT_GBPS,
    clock_period_ps,
    module_delay_slack_ps,
)
from .runner import format_table

__all__ = ["Table2Result", "run_table2", "format_table2"]


@dataclass
class Table2Result:
    components: tuple
    clock_period_ps: float
    slack_ps: dict[str, float]
    clock_ghz: float
    throughput_gbps: float

    @property
    def no_performance_penalty(self) -> bool:
        """True iff every augmentation module fits the CAMA cycle."""
        return all(slack >= 0 for slack in self.slack_ps.values())


def run_table2() -> Table2Result:
    return Table2Result(
        components=(CAM_ARRAY, COUNTER, BIT_VECTOR),
        clock_period_ps=clock_period_ps(),
        slack_ps=module_delay_slack_ps(),
        clock_ghz=CLOCK_GHZ,
        throughput_gbps=THROUGHPUT_GBPS,
    )


def format_table2(result: Table2Result) -> str:
    headers = ["Component", "Energy (fJ)", "Delay (ps)", "Area (um2)"]
    rows = [
        [c.name, f"{c.energy_fj:g}", f"{c.delay_ps:g}", f"{c.area_um2:g}"]
        for c in result.components
    ]
    table = format_table(headers, rows, title="Table 2: hardware component parameters")
    lines = [table, ""]
    lines.append(f"cycle time (critical path): {result.clock_period_ps:g} ps")
    for name, slack in result.slack_ps.items():
        lines.append(f"slack of {name}: {slack:g} ps")
    verdict = "maintained" if result.no_performance_penalty else "VIOLATED"
    lines.append(
        f"clock {result.clock_ghz} GHz / throughput {result.throughput_gbps} GBps: "
        f"{verdict} (modules fit within the state-transition cycle)"
    )
    return "\n".join(lines)
