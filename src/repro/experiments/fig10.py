"""Experiment: Figure 10 -- energy and area of the augmented CAMA.

For each application benchmark and each unfolding threshold the paper
maps the compiled MNRL onto the augmented CAMA, feeds it the
benchmark's input, and reports per-input-byte energy (left plot) and
total area with the bit-vector waste highlighted (right plot).

Expected shapes: for the large-bound suites (Snort, Suricata) small
thresholds cut energy by up to ~76% and area by up to ~58% vs the
unfold-all baseline; for small-bound suites (Protomata, SpamAssassin)
the augmented design shows little change ("little to no overhead").
The waste component is the unused tail of partially filled 2000-bit
vector modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.mapping import map_network
from ..hardware.cost import area_of_mapping, energy_of_run
from ..hardware.simulator import NetworkSimulator
from ..workloads.inputs import plant_matches, stream_for_style
from ..workloads.synth import APPLICATION_SUITES, Suite, suite_by_name
from .fig9 import DEFAULT_THRESHOLDS
from .runner import PreppedRule, emit_suite, format_table, prep_rules

__all__ = ["Fig10Point", "Fig10Result", "run_fig10", "format_fig10"]


@dataclass(frozen=True)
class Fig10Point:
    threshold: float
    energy_nj_per_byte: float
    area_mm2: float
    waste_mm2: float
    cam_arrays: int
    counters: int
    bv_modules: int
    reports: int


@dataclass
class Fig10Result:
    series: dict[str, list[Fig10Point]] = field(default_factory=dict)

    def energy_reduction(self, suite: str) -> float:
        """Best-threshold energy reduction vs unfold-all (paper: <=76%)."""
        points = self.series[suite]
        full = points[-1].energy_nj_per_byte
        best = min(p.energy_nj_per_byte for p in points)
        return 1.0 - best / full if full else 0.0

    def area_reduction(self, suite: str) -> float:
        """Best-threshold area reduction vs unfold-all (paper: <=58%)."""
        points = self.series[suite]
        full = points[-1].area_mm2
        best = min(p.area_mm2 for p in points)
        return 1.0 - best / full if full else 0.0


def run_fig10(
    suites: list[Suite] | None = None,
    scale: float = 0.25,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    stream_len: int = 2048,
    prepped: dict[str, list[PreppedRule]] | None = None,
    seed: int = 0,
) -> Fig10Result:
    """Simulate each suite at every threshold and account energy/area."""
    if suites is None:
        suites = [suite_by_name(name) for name in APPLICATION_SUITES]
        if scale != 1.0:
            suites = [
                suite_by_name(s.name, total=max(10, round(len(s.rules) * scale)))
                for s in suites
            ]
    result = Fig10Result()
    for suite in suites:
        rules = (prepped or {}).get(suite.name) or prep_rules(suite)
        background = stream_for_style(suite.input_style, stream_len, seed=seed)
        sample = [r.pattern for r in suite.rules[: 40] if "\\1" not in r.pattern]
        data = plant_matches(background, sample, seed=seed + 1, density=0.05)
        points: list[Fig10Point] = []
        for threshold in thresholds:
            network = emit_suite(rules, threshold, network_id=f"{suite.name}@{threshold}")
            mapping = map_network(network)
            sim = NetworkSimulator(network)
            sim.run(data)
            energy = energy_of_run(sim.stats, mapping)
            area = area_of_mapping(mapping)
            distinct = len(sim.distinct_reports())
            points.append(
                Fig10Point(
                    threshold=threshold,
                    energy_nj_per_byte=energy.nj_per_byte,
                    area_mm2=area.total_mm2,
                    waste_mm2=area.waste_mm2,
                    cam_arrays=mapping.bank.cam_arrays_used,
                    counters=mapping.bank.counter_count,
                    bv_modules=mapping.bank.bv_modules_used,
                    reports=distinct,
                )
            )
        result.series[suite.name] = points
    return result


def format_fig10(result: Fig10Result) -> str:
    headers = [
        "Suite",
        "threshold",
        "energy nJ/B",
        "area mm2",
        "waste mm2",
        "#arrays",
        "#ctr",
        "#bv-mod",
        "reports",
    ]
    rows = []
    for suite, points in result.series.items():
        for p in points:
            label = "all" if p.threshold == float("inf") else f"{p.threshold:g}"
            rows.append(
                [
                    suite,
                    label,
                    f"{p.energy_nj_per_byte:.4f}",
                    f"{p.area_mm2:.4f}",
                    f"{p.waste_mm2:.4f}",
                    p.cam_arrays,
                    p.counters,
                    p.bv_modules,
                    p.reports,
                ]
            )
    table = format_table(
        headers,
        rows,
        title="Figure 10: energy per byte and area vs unfolding threshold",
    )
    summary = ", ".join(
        f"{suite}: energy -{result.energy_reduction(suite) * 100:.0f}% "
        f"area -{result.area_reduction(suite) * 100:.0f}%"
        for suite in result.series
    )
    return table + f"\nbest-threshold reduction vs unfold-all: {summary}"
