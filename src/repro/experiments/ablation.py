"""Ablation studies over the codesign's main choices.

The paper motivates each of its mechanisms separately: counters for the
easy (unambiguous) cases, bit vectors because "counter registers alone
cannot deal with the challenging instances of counting" (Section 1),
and static analysis to pick between them.  These ablations quantify
each claim on the synthetic suites:

* **policy ablation** -- compile each suite with (a) the full policy,
  (b) counters only (ambiguous counting unfolds), (c) bit vectors only
  (unambiguous counting unfolds unless single-class), (d) unfold-all;
  report nodes/arrays/area.  Counter-only collapses on Protomata
  (all-ambiguous gaps), bit-vector-only collapses on Snort/Suricata's
  multi-state guarded runs -- both modules are needed.
* **strictness ablation** -- how many counter-module candidates the
  body-level single-token gate (``repro.analysis.module_safety``)
  actually demotes, and what it costs in nodes.  On benchmark-shaped
  rules the answer is "almost none" -- the gate buys soundness
  essentially for free.
* **packing ablation** -- first-fit-decreasing placement vs one
  placement atom per PE, in PEs and CAM arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.emit import Decision, EmitError, emit_network, plan_decisions
from ..compiler.mapping import map_network
from ..hardware.cama import Bank
from ..hardware.cost import area_of_mapping
from ..mnrl.network import Network
from ..workloads.synth import Suite, suite_by_name
from .runner import PreppedRule, format_table, prep_rules

__all__ = [
    "PolicyVariant",
    "AblationPoint",
    "AblationResult",
    "run_policy_ablation",
    "format_policy_ablation",
    "run_strictness_ablation",
    "format_strictness_ablation",
]

#: variant name -> decision filter applied after the full policy
POLICY_VARIANTS = {
    "full": lambda d: d,
    "counter-only": lambda d: Decision.UNFOLD if d is Decision.BITVECTOR else d,
    "bitvector-only": lambda d: Decision.UNFOLD if d is Decision.COUNTER else d,
    "unfold-all": lambda d: Decision.UNFOLD,
}

PolicyVariant = str


@dataclass(frozen=True)
class AblationPoint:
    suite: str
    variant: str
    nodes: int
    stes: int
    counters: int
    bit_vectors: int
    cam_arrays: int
    area_mm2: float


@dataclass
class AblationResult:
    points: list[AblationPoint] = field(default_factory=list)

    def point(self, suite: str, variant: str) -> AblationPoint:
        for p in self.points:
            if p.suite == suite and p.variant == variant:
                return p
        raise KeyError((suite, variant))


def _emit_with_variant(
    prepped: list[PreppedRule], variant: str, threshold: float
) -> Network:
    transform = POLICY_VARIANTS[variant]
    network = Network(f"ablation-{variant}")
    for index, rule in enumerate(prepped):
        base = plan_decisions(
            rule.simplified, rule.ambiguous, threshold, rule.module_unsafe
        )
        decisions = {k: transform(v) for k, v in base.items()}
        try:
            emit_network(
                rule.simplified,
                decisions,
                anchored_start=rule.pattern.anchored_start,
                report_id=rule.rule_id,
                network=network,
                prefix=f"r{index}.",
            )
        except EmitError:
            continue
    return network


def run_policy_ablation(
    suites: list[Suite] | None = None,
    scale: float = 0.15,
    threshold: float = 10,
    prepped: dict[str, list[PreppedRule]] | None = None,
) -> AblationResult:
    """Compile each suite under each policy variant and account cost."""
    if suites is None:
        names = ("Protomata", "Snort", "Suricata")
        suites = [suite_by_name(name) for name in names]
        suites = [
            suite_by_name(s.name, total=max(10, round(len(s.rules) * scale)))
            for s in suites
        ]
    result = AblationResult()
    for suite in suites:
        rules = (prepped or {}).get(suite.name) or prep_rules(suite)
        for variant in POLICY_VARIANTS:
            network = _emit_with_variant(rules, variant, threshold)
            mapping = map_network(network)
            area = area_of_mapping(mapping)
            result.points.append(
                AblationPoint(
                    suite=suite.name,
                    variant=variant,
                    nodes=network.node_count(),
                    stes=network.ste_count(),
                    counters=network.counter_count(),
                    bit_vectors=network.bit_vector_count(),
                    cam_arrays=mapping.bank.cam_arrays_used,
                    area_mm2=area.total_mm2,
                )
            )
    return result


def format_policy_ablation(result: AblationResult) -> str:
    headers = ["Suite", "variant", "#nodes", "#STE", "#ctr", "#bv", "#arrays", "area mm2"]
    rows = [
        [
            p.suite,
            p.variant,
            p.nodes,
            p.stes,
            p.counters,
            p.bit_vectors,
            p.cam_arrays,
            f"{p.area_mm2:.4f}",
        ]
        for p in result.points
    ]
    return format_table(
        headers, rows, title="Ablation: module-selection policy variants"
    )


@dataclass
class StrictnessRow:
    suite: str
    counter_candidates: int
    demoted: int
    nodes_strict: int
    nodes_naive: int


def run_strictness_ablation(
    suites: list[Suite] | None = None,
    scale: float = 0.15,
    threshold: float = 10,
) -> list[StrictnessRow]:
    """Cost of the module-safety gate: demotions and node overhead."""
    if suites is None:
        names = ("Snort", "Suricata", "SpamAssassin")
        suites = [suite_by_name(name) for name in names]
        suites = [
            suite_by_name(s.name, total=max(10, round(len(s.rules) * scale)))
            for s in suites
        ]
    rows = []
    for suite in suites:
        strict = prep_rules(suite, strict_modules=True)
        naive = prep_rules(suite, strict_modules=False)
        candidates = 0
        demoted = 0
        for rule in strict:
            unambiguous = [i for i, a in rule.ambiguous.items() if not a]
            candidates += len(unambiguous)
            demoted += len(rule.module_unsafe)
        from .runner import emit_suite

        nodes_strict = emit_suite(strict, threshold).node_count()
        nodes_naive = emit_suite(naive, threshold).node_count()
        rows.append(
            StrictnessRow(
                suite=suite.name,
                counter_candidates=candidates,
                demoted=demoted,
                nodes_strict=nodes_strict,
                nodes_naive=nodes_naive,
            )
        )
    return rows


def format_strictness_ablation(rows: list[StrictnessRow]) -> str:
    headers = ["Suite", "counter candidates", "demoted by gate", "nodes strict", "nodes naive"]
    table_rows = [
        [r.suite, r.counter_candidates, r.demoted, r.nodes_strict, r.nodes_naive]
        for r in rows
    ]
    return format_table(
        headers,
        table_rows,
        title="Ablation: module-safety gate (strict vs naive counter policy)",
    )
