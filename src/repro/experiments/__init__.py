"""Experiment drivers: one module per paper table/figure.

Each ``run_*`` returns plain data; each ``format_*`` renders the
paper-style text table.  The benchmark harness under ``benchmarks/``
times these drivers and archives their outputs; EXPERIMENTS.md records
paper-vs-measured for every experiment.
"""

from .ablation import (
    AblationPoint,
    AblationResult,
    format_policy_ablation,
    format_strictness_ablation,
    run_policy_ablation,
    run_strictness_ablation,
)
from .fig2 import Fig2Point, Fig2Result, VARIANTS, format_fig2, run_fig2
from .fig3 import Fig3Point, Fig3Result, format_fig3, run_fig3, run_fig3_family
from .fig8 import DEFAULT_SWEEP, Fig8Result, format_fig8, run_fig8, validate_point
from .fig9 import DEFAULT_THRESHOLDS, Fig9Point, Fig9Result, format_fig9, run_fig9
from .fig10 import Fig10Point, Fig10Result, format_fig10, run_fig10
from .runner import PreppedRule, Stopwatch, emit_suite, format_table, prep_rules
from .table1 import Table1Result, format_table1, run_table1
from .table2 import Table2Result, format_table2, run_table2

__all__ = [
    "run_table1",
    "format_table1",
    "Table1Result",
    "run_fig2",
    "format_fig2",
    "Fig2Result",
    "Fig2Point",
    "VARIANTS",
    "run_fig3",
    "run_fig3_family",
    "format_fig3",
    "Fig3Result",
    "Fig3Point",
    "run_table2",
    "format_table2",
    "Table2Result",
    "run_fig8",
    "format_fig8",
    "validate_point",
    "Fig8Result",
    "DEFAULT_SWEEP",
    "run_fig9",
    "format_fig9",
    "Fig9Result",
    "Fig9Point",
    "DEFAULT_THRESHOLDS",
    "run_fig10",
    "format_fig10",
    "Fig10Result",
    "Fig10Point",
    "prep_rules",
    "emit_suite",
    "PreppedRule",
    "Stopwatch",
    "format_table",
    "run_policy_ablation",
    "format_policy_ablation",
    "run_strictness_ablation",
    "format_strictness_ablation",
    "AblationResult",
    "AblationPoint",
]
