"""Experiment: Figure 2 -- static-analysis cost vs mu(r).

The paper plots, per benchmark and per analysis variant (E = exact,
A = approximate, H = hybrid, HW = hybrid with witness), one point per
counting regex: x = mu(r) (max repetition upper bound), y = running
time in ms (Fig. 2a) or # created token pairs (Fig. 2b).

We reproduce the full grid on the synthetic suites.  The shapes to
check (see EXPERIMENTS.md): cost grows with mu; the exact variant has
expensive outliers on large-bound *unambiguous* regexes (quadratic pair
exploration); approximate/hybrid stay near-linear; witness recording
adds only small overhead over hybrid.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.hybrid import analyze_pattern
from ..analysis.result import Method
from ..regex.errors import RegexError
from ..regex.metrics import mu
from ..regex.parser import parse
from ..regex.rewrite import simplify
from ..workloads.synth import Suite, all_suites
from .runner import format_table

__all__ = ["Fig2Point", "Fig2Result", "VARIANTS", "run_fig2", "format_fig2"]

#: (label, method, record_witness) -- the four columns of Figure 2.
VARIANTS: tuple[tuple[str, Method, bool], ...] = (
    ("E", Method.EXACT, False),
    ("A", Method.APPROXIMATE, False),
    ("H", Method.HYBRID, False),
    ("HW", Method.HYBRID, True),
)


@dataclass(frozen=True)
class Fig2Point:
    rule_id: str
    mu: int
    time_ms: float
    pairs: int
    ambiguous: bool


@dataclass
class Fig2Result:
    #: (suite name, variant label) -> scatter points
    points: dict[tuple[str, str], list[Fig2Point]] = field(default_factory=dict)

    def series(self, suite: str, variant: str) -> list[Fig2Point]:
        return self.points.get((suite, variant), [])


def run_fig2(
    suites: list[Suite] | None = None,
    scale: float = 0.25,
    max_pairs: int | None = 2_000_000,
    variants: tuple[tuple[str, Method, bool], ...] = VARIANTS,
) -> Fig2Result:
    """Time every counting rule under every analysis variant."""
    if suites is None:
        suites = all_suites(scale=scale)
    result = Fig2Result()
    for suite in suites:
        counting_rules = []
        for rule in suite.rules:
            try:
                simplified = simplify(parse(rule.pattern).ast)
            except RegexError:
                continue
            bound = mu(simplified)
            if bound >= 2:
                counting_rules.append((rule, bound))
        for label, method, witness in variants:
            points: list[Fig2Point] = []
            for rule, bound in counting_rules:
                t0 = time.perf_counter()
                try:
                    analysis = analyze_pattern(
                        rule.pattern,
                        method=method,
                        record_witness=witness,
                        max_pairs=max_pairs,
                    )
                except RuntimeError:
                    continue
                elapsed_ms = (time.perf_counter() - t0) * 1000.0
                points.append(
                    Fig2Point(
                        rule_id=rule.rule_id,
                        mu=bound,
                        time_ms=elapsed_ms,
                        pairs=analysis.pairs_created,
                        ambiguous=analysis.ambiguous,
                    )
                )
            result.points[(suite.name, label)] = points
    return result


def _bucket(bound: int) -> str:
    if bound <= 10:
        return "mu<=10"
    if bound <= 100:
        return "mu<=100"
    if bound <= 1000:
        return "mu<=1000"
    return "mu>1000"


def format_fig2(result: Fig2Result, metric: str = "time") -> str:
    """Summarize the scatter as per-bucket medians (text stands in for
    the log-log scatter plots)."""
    headers = ["Suite", "Variant", "bucket", "#regexes", "median", "max"]
    rows = []
    buckets = ("mu<=10", "mu<=100", "mu<=1000", "mu>1000")
    for (suite, variant), points in sorted(result.points.items()):
        grouped: dict[str, list[float]] = {b: [] for b in buckets}
        for p in points:
            value = p.time_ms if metric == "time" else float(p.pairs)
            grouped[_bucket(p.mu)].append(value)
        for bucket in buckets:
            values = sorted(grouped[bucket])
            if not values:
                continue
            median = values[len(values) // 2]
            unit = "ms" if metric == "time" else "pairs"
            rows.append(
                [
                    suite,
                    variant,
                    bucket,
                    len(values),
                    f"{median:.2f} {unit}",
                    f"{values[-1]:.2f} {unit}",
                ]
            )
    title = (
        "Figure 2(a): static-analysis running time vs mu"
        if metric == "time"
        else "Figure 2(b): created token pairs vs mu"
    )
    return format_table(headers, rows, title=title)
