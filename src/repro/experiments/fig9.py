"""Experiment: Figure 9 -- MNRL node counts vs unfolding threshold.

For each benchmark, the paper compiles the whole rule set at a sweep of
unfolding thresholds k (bounded repetitions with upper bound <= k are
unfolded, the rest become counters/bit vectors) and plots the total
number of MNRL nodes; the rightmost point is full unfolding.  Node
counts fall steeply as k shrinks for the large-bound suites
(Snort/Suricata) and barely move for small-bound ones
(Protomata/SpamAssassin).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.synth import APPLICATION_SUITES, Suite, suite_by_name
from .runner import PreppedRule, emit_suite, format_table, prep_rules

__all__ = [
    "Fig9Point",
    "Fig9Result",
    "DEFAULT_THRESHOLDS",
    "run_fig9",
    "format_fig9",
]

#: Threshold sweep; ``inf`` is the paper's "unfold all" endpoint.
DEFAULT_THRESHOLDS: tuple[float, ...] = (5, 10, 25, 50, 100, float("inf"))


@dataclass(frozen=True)
class Fig9Point:
    threshold: float
    nodes: int
    stes: int
    counters: int
    bit_vectors: int


@dataclass
class Fig9Result:
    #: suite name -> sweep points
    series: dict[str, list[Fig9Point]] = field(default_factory=dict)
    #: cached prepped rules per suite, reusable by Fig. 10
    prepped: dict[str, list[PreppedRule]] = field(default_factory=dict)

    def reduction(self, suite: str) -> float:
        """Node-count reduction of the smallest threshold vs unfold-all."""
        points = self.series[suite]
        full = points[-1].nodes
        best = points[0].nodes
        return 1.0 - best / full if full else 0.0


def run_fig9(
    suites: list[Suite] | None = None,
    scale: float = 0.25,
    thresholds: tuple[float, ...] = DEFAULT_THRESHOLDS,
    prepped: dict[str, list[PreppedRule]] | None = None,
) -> Fig9Result:
    """Compile each suite at every threshold and count nodes."""
    if suites is None:
        suites = [
            suite_by_name(name, total=None) for name in APPLICATION_SUITES
        ]
        if scale != 1.0:
            suites = [
                suite_by_name(s.name, total=max(10, round(len(s.rules) * scale)))
                for s in suites
            ]
    result = Fig9Result()
    for suite in suites:
        rules = (prepped or {}).get(suite.name) or prep_rules(suite)
        result.prepped[suite.name] = rules
        points: list[Fig9Point] = []
        for threshold in thresholds:
            network = emit_suite(rules, threshold, network_id=f"{suite.name}@{threshold}")
            points.append(
                Fig9Point(
                    threshold=threshold,
                    nodes=network.node_count(),
                    stes=network.ste_count(),
                    counters=network.counter_count(),
                    bit_vectors=network.bit_vector_count(),
                )
            )
        result.series[suite.name] = points
    return result


def format_fig9(result: Fig9Result) -> str:
    headers = ["Suite", "threshold", "#nodes", "#STE", "#counter", "#bitvector"]
    rows = []
    for suite, points in result.series.items():
        for p in points:
            label = "all" if p.threshold == float("inf") else f"{p.threshold:g}"
            rows.append([suite, label, p.nodes, p.stes, p.counters, p.bit_vectors])
    table = format_table(
        headers, rows, title="Figure 9: total MNRL nodes vs unfolding threshold"
    )
    reductions = ", ".join(
        f"{suite}: {result.reduction(suite) * 100:.0f}%" for suite in result.series
    )
    return table + f"\nnode reduction at smallest threshold vs unfold-all: {reductions}"
