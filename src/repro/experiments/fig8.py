"""Experiment: Figure 8 -- micro-benchmarks, module vs unfolding.

Left pair of sub-figures: the counter-unambiguous regex ``a{n}``;
hardware = one 17-bit counter + one STE vs ``n`` unfolded STEs.
Right pair: the counter-ambiguous ``Sigma* a{n}``; hardware = one
bit vector (sized to ``n``, as the paper does per data point) + one
STE vs ``n`` unfolded STEs.

The expected shapes (log-log axes in the paper): unfolding cost grows
linearly with n for both energy and area; the counter is flat; the
bit vector grows linearly but with a slope ~40x (energy) and ~5x
(area) below unfolding.  "Using a counter/bit vector provides better
performance compared to unfolding even for repetitions with small
upper bounds."

Besides the Table 2 arithmetic, ``validate_point`` cross-checks one
sweep point dynamically: it compiles both variants, simulates them on
an all-``a`` stream, and derives energy from the measured activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.mapping import map_network
from ..compiler.pipeline import compile_pattern
from ..hardware.cost import (
    MicrobenchPoint,
    bit_vector_cost,
    counter_cost,
    energy_of_run,
    unfolded_cost,
)
from ..hardware.simulator import NetworkSimulator
from .runner import format_table

__all__ = [
    "Fig8Result",
    "DEFAULT_SWEEP",
    "run_fig8",
    "format_fig8",
    "validate_point",
]

DEFAULT_SWEEP = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2000)


@dataclass
class Fig8Result:
    counter_series: list[MicrobenchPoint] = field(default_factory=list)
    bit_vector_series: list[MicrobenchPoint] = field(default_factory=list)


def run_fig8(sweep: tuple[int, ...] = DEFAULT_SWEEP) -> Fig8Result:
    """Static Table 2 arithmetic across the bound sweep."""
    result = Fig8Result()
    for n in sweep:
        unfold_energy, unfold_area = unfolded_cost(n)
        ctr_energy, ctr_area = counter_cost()
        result.counter_series.append(
            MicrobenchPoint(n, ctr_energy, ctr_area, unfold_energy, unfold_area)
        )
        bv_energy, bv_area = bit_vector_cost(n)
        result.bit_vector_series.append(
            MicrobenchPoint(n, bv_energy, bv_area, unfold_energy, unfold_area)
        )
    return result


@dataclass
class ValidatedPoint:
    """Dynamic cross-check of one sweep point via actual simulation."""

    n: int
    module_nj_per_byte: float
    unfold_nj_per_byte: float
    reports_agree: bool


def validate_point(n: int, ambiguous: bool, stream_len: int = 512) -> ValidatedPoint:
    """Compile ``a{n}`` (or ``.*``-entered variant) both ways and
    simulate on an all-'a' stream; energies come from measured
    activity, and both variants must report identically."""
    pattern = f"a{{{n}}}" if not ambiguous else f"a{{{n}}}"
    anchor = "^" if not ambiguous else ""
    source = anchor + pattern
    module_cp = compile_pattern(source, unfold_threshold=0)
    unfold_cp = compile_pattern(source, unfold_threshold=float("inf"))
    data = b"a" * stream_len

    module_sim = NetworkSimulator(module_cp.network)
    module_ends = module_sim.match_ends(data)
    unfold_sim = NetworkSimulator(unfold_cp.network)
    unfold_ends = unfold_sim.match_ends(data)

    module_energy = energy_of_run(module_sim.stats, map_network(module_cp.network))
    unfold_energy = energy_of_run(unfold_sim.stats, map_network(unfold_cp.network))
    return ValidatedPoint(
        n=n,
        module_nj_per_byte=module_energy.nj_per_byte,
        unfold_nj_per_byte=unfold_energy.nj_per_byte,
        reports_agree=module_ends == unfold_ends,
    )


def format_fig8(result: Fig8Result) -> str:
    headers = [
        "n",
        "module E (fJ/B)",
        "unfold E (fJ/B)",
        "E ratio",
        "module A (um2)",
        "unfold A (um2)",
        "A ratio",
    ]

    def rows(series):
        return [
            [
                p.n,
                f"{p.module_energy_fj:.1f}",
                f"{p.unfold_energy_fj:.1f}",
                f"{p.energy_ratio:.1f}x",
                f"{p.module_area_um2:.1f}",
                f"{p.unfold_area_um2:.1f}",
                f"{p.area_ratio:.1f}x",
            ]
            for p in series
        ]

    top = format_table(
        headers,
        rows(result.counter_series),
        title="Figure 8 (left): counter vs unfolding on a{n}",
    )
    bottom = format_table(
        headers,
        rows(result.bit_vector_series),
        title="Figure 8 (right): bit vector vs unfolding on Sigma* a{n}",
    )
    return top + "\n\n" + bottom
