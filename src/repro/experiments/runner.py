"""Shared infrastructure for the experiment drivers.

Every table/figure driver returns a plain-data result object and has a
``format_*`` companion producing the paper-style text table, so the
benchmark harness, the examples, and EXPERIMENTS.md all render the same
rows.  ``prep_rules`` factors the analyze-once/emit-many pattern used
by the threshold sweeps (Figures 9 and 10): re-running the static
analysis per threshold would only re-derive identical verdicts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..analysis.hybrid import analyze
from ..analysis.result import Method, RegexAnalysisResult
from ..compiler.emit import Decision, EmitError, emit_network, plan_decisions
from ..mnrl.network import Network
from ..regex import charclass as cc
from ..regex.ast import Regex, Sym, concat, star
from ..regex.errors import RegexError, UnsupportedFeatureError
from ..regex.parser import Pattern, parse
from ..regex.rewrite import simplify
from ..workloads.synth import Suite

__all__ = [
    "PreppedRule",
    "prep_rules",
    "emit_suite",
    "format_table",
    "Stopwatch",
]


class Stopwatch:
    """Tiny perf_counter wrapper used across the drivers."""

    def __init__(self) -> None:
        self.start = time.perf_counter()

    def lap_ms(self) -> float:
        now = time.perf_counter()
        elapsed = (now - self.start) * 1000.0
        self.start = now
        return elapsed

    def elapsed_s(self) -> float:
        return time.perf_counter() - self.start


@dataclass
class PreppedRule:
    """A rule parsed, simplified and analyzed once, ready for emission."""

    rule_id: str
    pattern: Pattern
    simplified: Regex
    analysis: RegexAnalysisResult
    ambiguous: dict[int, bool] = field(default_factory=dict)
    module_unsafe: frozenset[int] = frozenset()


def prep_rules(
    suite: Suite,
    method: Method | str = Method.HYBRID,
    max_pairs: Optional[int] = 2_000_000,
    strict_modules: bool = True,
) -> list[PreppedRule]:
    """Parse + simplify + analyze every supported rule of a suite."""
    from ..compiler.pipeline import compute_module_unsafe

    prepped: list[PreppedRule] = []
    for rule in suite.rules:
        try:
            parsed = parse(rule.pattern)
        except (UnsupportedFeatureError, RegexError):
            continue
        simplified = simplify(parsed.ast)
        if parsed.anchored_start:
            analysis_ast = simplified
        else:
            analysis_ast = concat(star(Sym(cc.SIGMA)), simplified)
        try:
            analysis = analyze(analysis_ast, method=method, max_pairs=max_pairs)
        except RuntimeError:
            continue
        ambiguous = {r.instance: r.treat_as_ambiguous for r in analysis.instances}
        prepped.append(
            PreppedRule(
                rule_id=rule.rule_id,
                pattern=parsed,
                simplified=simplified,
                analysis=analysis,
                ambiguous=ambiguous,
                module_unsafe=compute_module_unsafe(
                    analysis, ambiguous, strict=strict_modules, max_pairs=max_pairs
                ),
            )
        )
    return prepped


def emit_suite(
    prepped: Sequence[PreppedRule],
    unfold_threshold: float,
    network_id: str = "suite",
) -> Network:
    """Emit all prepped rules into one network at a given threshold."""
    network = Network(network_id)
    for index, rule in enumerate(prepped):
        decisions = plan_decisions(
            rule.simplified, rule.ambiguous, unfold_threshold, rule.module_unsafe
        )
        try:
            emit_network(
                rule.simplified,
                decisions,
                anchored_start=rule.pattern.anchored_start,
                report_id=rule.rule_id,
                network=network,
                prefix=f"r{index}.",
            )
        except EmitError:
            continue
    return network


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Minimal fixed-width ASCII table used by every formatter."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
