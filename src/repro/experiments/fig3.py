"""Experiment: Figure 3 -- exact vs hybrid running time (Snort, Suricata).

The paper's scatter compares per-regex exact-analysis time (x) against
hybrid time (y) on the two IDS benchmarks; points far below the
diagonal are the large-bound counter-unambiguous rules of the
``Sigma*(~s1 s1{m} + ~s2 s2{n} + ...)`` family, where the hybrid's
over-approximation cuts the quadratic pair exploration to linear
("over 100 times" faster on the worst rules).

Besides the suite-driven scatter, ``run_fig3_family`` sweeps exactly
that hard family with growing bounds so the >100x gap is visible even
at small suite scales.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.hybrid import analyze_pattern
from ..analysis.result import Method
from ..regex.errors import RegexError
from ..regex.metrics import mu
from ..regex.parser import parse
from ..regex.rewrite import simplify
from ..workloads.synth import Suite, snort_like, suricata_like
from .runner import format_table

__all__ = [
    "Fig3Point",
    "Fig3Result",
    "run_fig3",
    "run_fig3_family",
    "format_fig3",
]


@dataclass(frozen=True)
class Fig3Point:
    suite: str
    rule_id: str
    mu: int
    exact_ms: float
    hybrid_ms: float
    exact_pairs: int
    hybrid_pairs: int

    @property
    def speedup(self) -> float:
        if self.hybrid_ms <= 0:
            return float("inf")
        return self.exact_ms / self.hybrid_ms


@dataclass
class Fig3Result:
    points: list[Fig3Point] = field(default_factory=list)

    def max_speedup(self) -> float:
        return max((p.speedup for p in self.points), default=0.0)


def _measure(suite_name: str, rule_id: str, pattern: str, max_pairs: int | None) -> Fig3Point | None:
    try:
        simplified = simplify(parse(pattern).ast)
    except RegexError:
        return None
    bound = mu(simplified)
    if bound < 2:
        return None
    try:
        t0 = time.perf_counter()
        exact = analyze_pattern(pattern, method=Method.EXACT, max_pairs=max_pairs)
        exact_ms = (time.perf_counter() - t0) * 1000.0
        t0 = time.perf_counter()
        hybrid = analyze_pattern(pattern, method=Method.HYBRID, max_pairs=max_pairs)
        hybrid_ms = (time.perf_counter() - t0) * 1000.0
    except RuntimeError:
        return None
    return Fig3Point(
        suite=suite_name,
        rule_id=rule_id,
        mu=bound,
        exact_ms=exact_ms,
        hybrid_ms=hybrid_ms,
        exact_pairs=exact.pairs_created,
        hybrid_pairs=hybrid.pairs_created,
    )


def run_fig3(
    suites: list[Suite] | None = None,
    scale: float = 0.25,
    max_pairs: int | None = 2_000_000,
) -> Fig3Result:
    """Exact-vs-hybrid scatter over the IDS suites' counting rules."""
    if suites is None:
        suites = [
            snort_like(total=max(10, round(584 * scale))),
            suricata_like(total=max(10, round(448 * scale))),
        ]
    result = Fig3Result()
    for suite in suites:
        for rule in suite.rules:
            point = _measure(suite.name, rule.rule_id, rule.pattern, max_pairs)
            if point is not None:
                result.points.append(point)
    return result


def run_fig3_family(
    bounds: tuple[int, ...] = (50, 100, 200, 400, 800),
    max_pairs: int | None = 20_000_000,
) -> Fig3Result:
    """The hard family: ``.*([^a-m][a-m]{n}|[^g-z][g-z]{n})``.

    Overlapping guard classes make the exact product exploration
    quadratic in n while the approximation stays linear -- this family
    is responsible for the >1e5 ms outliers in the paper's Fig. 3.
    """
    result = Fig3Result()
    for n in bounds:
        pattern = rf".*([^a-m][a-m]{{{n}}}|[^g-z][g-z]{{{n}}})"
        point = _measure("family", f"guarded-pair-n{n}", pattern, max_pairs)
        if point is not None:
            result.points.append(point)
    return result


def format_fig3(result: Fig3Result, top: int = 12) -> str:
    headers = [
        "Suite",
        "rule",
        "mu",
        "exact ms",
        "hybrid ms",
        "speedup",
        "exact pairs",
        "hybrid pairs",
    ]
    ranked = sorted(result.points, key=lambda p: p.exact_ms, reverse=True)[:top]
    rows = [
        [
            p.suite,
            p.rule_id,
            p.mu,
            f"{p.exact_ms:.2f}",
            f"{p.hybrid_ms:.2f}",
            f"{p.speedup:.1f}x",
            p.exact_pairs,
            p.hybrid_pairs,
        ]
        for p in ranked
    ]
    return format_table(
        headers,
        rows,
        title="Figure 3: exact vs hybrid analysis (slowest rules first)",
    )
