"""Result records produced by the counter-ambiguity analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..nca.automaton import NCA
from ..regex.ast import Regex

__all__ = ["Method", "InstanceResult", "RegexAnalysisResult"]


class Method(Enum):
    """Which analysis variant produced a result (Fig. 2 column labels)."""

    EXACT = "exact"           # "E"
    APPROXIMATE = "approximate"  # "A"
    HYBRID = "hybrid"         # "H" ("HW" = hybrid with record_witness)


@dataclass
class InstanceResult:
    """Verdict for one occurrence of bounded repetition.

    ``conclusive`` is False only for the over-approximate analysis when
    it cannot certify unambiguity (Section 3.2: "it either declares
    that a state is counter-unambiguous, or it says that the analysis
    is inconclusive").  An inconclusive instance is *treated* as
    ambiguous by downstream consumers (compiler, censuses) -- that is
    safe, never wrong, merely potentially wasteful.
    """

    instance: int
    lo: int
    hi: int
    ambiguous: bool
    conclusive: bool = True
    witness: Optional[bytes] = None
    pairs_created: int = 0
    elapsed_s: float = 0.0
    method: Method = Method.EXACT

    @property
    def treat_as_ambiguous(self) -> bool:
        return self.ambiguous or not self.conclusive


@dataclass
class RegexAnalysisResult:
    """Per-regex analysis summary.

    ``ambiguous`` follows the paper's definition: a regex is counter-
    ambiguous iff at least one occurrence of bounded repetition is
    counter-ambiguous (inconclusive occurrences count conservatively).
    """

    ast: Regex
    method: Method
    nca: Optional[NCA]
    instances: list[InstanceResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def has_counting(self) -> bool:
        return bool(self.instances)

    @property
    def ambiguous(self) -> bool:
        return any(r.treat_as_ambiguous for r in self.instances)

    @property
    def conclusive(self) -> bool:
        return all(r.conclusive for r in self.instances)

    @property
    def pairs_created(self) -> int:
        return sum(r.pairs_created for r in self.instances)

    def ambiguous_instances(self) -> list[InstanceResult]:
        return [r for r in self.instances if r.treat_as_ambiguous]

    def result_for(self, instance: int) -> InstanceResult:
        for r in self.instances:
            if r.instance == instance:
                return r
        raise KeyError(f"no result for instance {instance}")

    def unambiguous_counter_states(self) -> frozenset[int]:
        """States safe to store with a single scalar counter valuation.

        A counter state qualifies iff *every* instance whose body
        contains it was conclusively proven unambiguous; this feeds
        :func:`repro.nca.counting_sets.classify_states` and the
        compiler's counter/bit-vector selection.
        """
        if self.nca is None:
            return frozenset()
        bad: set[int] = set()
        for r in self.instances:
            if r.treat_as_ambiguous:
                bad.update(self.nca.instances[r.instance].body)
        good = {
            state
            for state in self.nca.states
            if self.nca.counters_of(state) and state not in bad
        }
        return frozenset(good)

    def witnesses(self) -> dict[int, bytes]:
        return {
            r.instance: r.witness for r in self.instances if r.witness is not None
        }
