"""Exact counter-ambiguity analysis (Section 3.1).

For each occurrence of bounded repetition, runs the pair-reachability
search of :mod:`repro.analysis.product` with the occurrence's body
states as targets.  The search halts at the first witness pair, so an
ambiguous instance is usually cheap to refute; unambiguous instances
pay for exhausting the reachable pair space (this asymmetry is visible
in Figure 2's scatter plots, where the expensive outliers are
*unambiguous* regexes with large bounds).
"""

from __future__ import annotations

import time
from typing import Optional

from ..nca.glushkov import build_nca
from ..regex.ast import Regex, collect_repeats
from .product import PairSearch
from .result import InstanceResult, Method, RegexAnalysisResult
from .transition_system import TokenTransitionSystem

__all__ = ["analyze_exact", "check_instance_exact"]


def analyze_exact(
    ast: Regex,
    record_witness: bool = False,
    max_pairs: Optional[int] = None,
) -> RegexAnalysisResult:
    """Exact per-instance analysis of a simplified regex.

    Args:
        ast: regex in rewrite normal form (see ``repro.regex.rewrite``).
        record_witness: also reconstruct a counter-ambiguity witness
            string per ambiguous instance (the "HW" variant of Fig. 2).
        max_pairs: optional safety cap on created token pairs.
    """
    start = time.perf_counter()
    instances = collect_repeats(ast)
    if not instances:
        return RegexAnalysisResult(
            ast=ast,
            method=Method.EXACT,
            nca=None,
            instances=[],
            elapsed_s=time.perf_counter() - start,
        )
    nca = build_nca(ast)
    system = TokenTransitionSystem(nca)
    results: list[InstanceResult] = []
    for info in nca.instances:
        t0 = time.perf_counter()
        search = PairSearch(
            system,
            target_states=info.body,
            record_witness=record_witness,
            max_pairs=max_pairs,
        )
        outcome = search.run()
        results.append(
            InstanceResult(
                instance=info.instance,
                lo=info.lo,
                hi=info.hi,
                ambiguous=outcome.ambiguous,
                conclusive=True,
                witness=outcome.witness,
                pairs_created=outcome.pairs_created,
                elapsed_s=time.perf_counter() - t0,
                method=Method.EXACT,
            )
        )
    return RegexAnalysisResult(
        ast=ast,
        method=Method.EXACT,
        nca=nca,
        instances=results,
        elapsed_s=time.perf_counter() - start,
    )


def check_instance_exact(
    ast: Regex,
    instance: int,
    record_witness: bool = False,
    max_pairs: Optional[int] = None,
) -> InstanceResult:
    """Exact analysis of a single occurrence of bounded repetition."""
    nca = build_nca(ast)
    info = nca.instances[instance]
    system = TokenTransitionSystem(nca)
    t0 = time.perf_counter()
    outcome = PairSearch(
        system,
        target_states=info.body,
        record_witness=record_witness,
        max_pairs=max_pairs,
    ).run()
    return InstanceResult(
        instance=instance,
        lo=info.lo,
        hi=info.hi,
        ambiguous=outcome.ambiguous,
        conclusive=True,
        witness=outcome.witness,
        pairs_created=outcome.pairs_created,
        elapsed_s=time.perf_counter() - t0,
        method=Method.EXACT,
    )
