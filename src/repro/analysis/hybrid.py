"""Hybrid counter-ambiguity checker (Section 3.3).

"First, it checks the counter-(un)ambiguity of each instance of
bounded repetition in the regex using the over-approximate analysis.
If it finds a potentially counter-ambiguous instance, then it halts the
over-approximate analysis and uses the exact algorithm to check the
regex.  Otherwise, it determines that the regex is counter-
unambiguous."

This is the production entry point: it is fast on the easy
unambiguous cases (approximation certifies them in linear pair
explorations) and falls back to the exact algorithm -- optionally with
witness reporting, the "HW" variant -- only when needed.
"""

from __future__ import annotations

import time
from typing import Optional

from ..nca.glushkov import build_nca
from ..regex.ast import Regex, collect_repeats
from ..regex.parser import parse
from ..regex.rewrite import simplify
from .approximate import check_instance_approximate
from .exact import analyze_exact
from .product import PairSearch
from .result import InstanceResult, Method, RegexAnalysisResult
from .transition_system import TokenTransitionSystem

__all__ = ["analyze_hybrid", "analyze", "analyze_pattern"]


def analyze_hybrid(
    ast: Regex,
    record_witness: bool = False,
    max_pairs: Optional[int] = None,
) -> RegexAnalysisResult:
    """Hybrid analysis of a simplified regex."""
    start = time.perf_counter()
    instances = collect_repeats(ast)
    if not instances:
        return RegexAnalysisResult(
            ast=ast,
            method=Method.HYBRID,
            nca=None,
            instances=[],
            elapsed_s=time.perf_counter() - start,
        )

    approx_results: list[InstanceResult] = []
    all_certain = True
    for inst in instances:
        t0 = time.perf_counter()
        certain, pairs = check_instance_approximate(ast, inst.path, max_pairs)
        hi = inst.hi if inst.hi is not None else inst.lo
        approx_results.append(
            InstanceResult(
                instance=inst.index,
                lo=inst.lo,
                hi=hi,
                ambiguous=not certain,
                conclusive=certain,
                pairs_created=pairs,
                elapsed_s=time.perf_counter() - t0,
                method=Method.APPROXIMATE,
            )
        )
        if not certain:
            all_certain = False
            break  # halt the over-approximate analysis

    if all_certain:
        nca = build_nca(ast)
        return RegexAnalysisResult(
            ast=ast,
            method=Method.HYBRID,
            nca=nca,
            instances=approx_results,
            elapsed_s=time.perf_counter() - start,
        )

    # Exact fallback.  Instances already certified unambiguous by the
    # approximation keep their (cheap, conclusive) verdicts; only the
    # remaining ones are checked exactly.  The pairs created by the
    # aborted approximate probe are real work and are folded into that
    # instance's exact accounting so Fig. 2(b) totals stay honest.
    certified = {r.instance: r for r in approx_results if r.conclusive}
    aborted_pairs = {
        r.instance: r.pairs_created for r in approx_results if not r.conclusive
    }
    nca = build_nca(ast)
    system = TokenTransitionSystem(nca)
    merged: list[InstanceResult] = []
    for info in nca.instances:
        if info.instance in certified:
            merged.append(certified[info.instance])
            continue
        t0 = time.perf_counter()
        outcome = PairSearch(
            system,
            target_states=info.body,
            record_witness=record_witness,
            max_pairs=max_pairs,
        ).run()
        merged.append(
            InstanceResult(
                instance=info.instance,
                lo=info.lo,
                hi=info.hi,
                ambiguous=outcome.ambiguous,
                conclusive=True,
                witness=outcome.witness,
                pairs_created=outcome.pairs_created
                + aborted_pairs.get(info.instance, 0),
                elapsed_s=time.perf_counter() - t0,
                method=Method.EXACT,
            )
        )
    return RegexAnalysisResult(
        ast=ast,
        method=Method.HYBRID,
        nca=nca,
        instances=merged,
        elapsed_s=time.perf_counter() - start,
    )


def analyze(
    ast: Regex,
    method: Method | str = Method.HYBRID,
    record_witness: bool = False,
    max_pairs: Optional[int] = None,
) -> RegexAnalysisResult:
    """Dispatch to one of the three analysis variants."""
    from .approximate import analyze_approximate

    if isinstance(method, str):
        method = Method(method)
    if method is Method.EXACT:
        return analyze_exact(ast, record_witness=record_witness, max_pairs=max_pairs)
    if method is Method.APPROXIMATE:
        return analyze_approximate(ast, max_pairs=max_pairs)
    return analyze_hybrid(ast, record_witness=record_witness, max_pairs=max_pairs)


def analyze_pattern(
    pattern: str,
    method: Method | str = Method.HYBRID,
    record_witness: bool = False,
    max_pairs: Optional[int] = None,
) -> RegexAnalysisResult:
    """Parse, simplify and analyze a pattern string in one call.

    The analysis runs on the *search form* of the pattern
    (``Sigma* r`` for unanchored patterns), which is what the hardware
    executes; anchoring changes ambiguity (``a{2}`` anchored is
    unambiguous, but ``Sigma* a{2}`` is ambiguous), so this choice
    matters and matches the paper's streaming setting.

    >>> from repro import analyze_pattern
    >>> analyze_pattern(r".*a{5}").ambiguous
    True
    >>> analyze_pattern(r"b a{5}").ambiguous
    False
    """
    parsed = parse(pattern)
    ast = simplify(parsed.search_ast())
    return analyze(
        ast, method=method, record_witness=record_witness, max_pairs=max_pairs
    )
