"""Degree-d counter-ambiguity: the G^d generalization (Section 3.1).

The paper notes that pair reachability extends to higher degrees:
"there exists a path in the d-fold Cartesian product G^d that ends with
some tuple <(q, b1), ..., (q, bd)> where b1 ... bd are all distinct"
characterizes ``degree(q) >= d``.  This module implements that search
over canonically sorted d-tuples (the symmetric quotient of G^d) and a
bounded exact-degree computation.

Degrees beyond 2 quantify *how much* bit-vector population a state can
carry -- e.g. ``Sigma* a{n}`` has degree n (a token enters every cycle
on an all-'a' input), while ``Sigma*(ab){n}``-style bodies saturate at
lower degrees.  The hardware sizing story only needs the 1-vs-many
distinction, but the degree view makes Definition 3.1 fully
executable and is exercised by the test suite against empirical token
counts.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from ..nca.automaton import NCA, Token
from .transition_system import TokenTransitionSystem

__all__ = ["has_degree_at_least", "exact_degree"]


def has_degree_at_least(
    nca: NCA,
    state: int,
    d: int,
    system: Optional[TokenTransitionSystem] = None,
    max_tuples: Optional[int] = 2_000_000,
) -> bool:
    """Reachability in the symmetric quotient of ``G^d``.

    Returns True iff some input string puts ``d`` distinct tokens on
    ``state`` simultaneously (``degree(state) >= d``).
    """
    if d <= 0:
        return True
    if system is None:
        system = TokenTransitionSystem(nca)
    start_token = system.initial_token()
    if d == 1:
        # degree >= 1 == reachability of the state itself
        return _state_reachable(system, state)

    start = (start_token,) * d
    visited: set[tuple[Token, ...]] = {start}
    queue: deque[tuple[Token, ...]] = deque([start])
    while queue:
        tup = queue.popleft()
        # distinct edge lists per component (memoized by the system)
        edge_lists = [system.edges(t) for t in tup]
        for combo in _product(edge_lists):
            meet = combo[0].predicate
            compatible = True
            for edge in combo[1:]:
                if edge.predicate is meet:
                    continue
                meet = meet.intersect(edge.predicate)
                if meet.is_empty():
                    compatible = False
                    break
            if not compatible:
                continue
            successors = tuple(sorted(edge.successor for edge in combo))
            if successors in visited:
                continue
            visited.add(successors)
            if max_tuples is not None and len(visited) > max_tuples:
                raise RuntimeError(f"degree search exceeded {max_tuples} tuples")
            if _is_goal(successors, state):
                return True
            queue.append(successors)
    return False


def exact_degree(
    nca: NCA,
    state: int,
    max_d: int = 4,
    max_tuples: Optional[int] = 2_000_000,
) -> int:
    """Largest ``d <= max_d`` with ``degree(state) >= d`` (0 if
    unreachable).  The true degree may exceed ``max_d``; callers treat
    the return value ``max_d`` as "at least"."""
    system = TokenTransitionSystem(nca)
    degree = 0
    for d in range(1, max_d + 1):
        if has_degree_at_least(nca, state, d, system=system, max_tuples=max_tuples):
            degree = d
        else:
            break
    return degree


def _state_reachable(system: TokenTransitionSystem, state: int) -> bool:
    start = system.initial_token()
    seen = {start}
    frontier = [start]
    while frontier:
        token = frontier.pop()
        if token[0] == state:
            return True
        for edge in system.edges(token):
            if edge.successor not in seen:
                seen.add(edge.successor)
                frontier.append(edge.successor)
    return False


def _is_goal(tup: tuple[Token, ...], state: int) -> bool:
    if any(t[0] != state for t in tup):
        return False
    valuations = {t[1] for t in tup}
    return len(valuations) == len(tup)


def _product(edge_lists):
    """itertools.product, inlined to allow early predicate pruning."""
    if not edge_lists:
        yield ()
        return
    head, *tail = edge_lists
    for edge in head:
        for rest in _product(tail):
            yield (edge,) + rest
