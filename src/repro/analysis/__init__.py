"""Static analysis for counter-(un)ambiguity (Section 3)."""

from .approximate import analyze_approximate, check_instance_approximate, star_all_but
from .degree import exact_degree, has_degree_at_least
from .exact import analyze_exact, check_instance_exact
from .hybrid import analyze, analyze_hybrid, analyze_pattern
from .module_safety import check_module_safety, module_safety_map
from .product import PairSearch, PairSearchResult
from .result import InstanceResult, Method, RegexAnalysisResult
from .transition_system import TokenEdge, TokenTransitionSystem

__all__ = [
    "TokenTransitionSystem",
    "TokenEdge",
    "PairSearch",
    "PairSearchResult",
    "Method",
    "InstanceResult",
    "RegexAnalysisResult",
    "analyze_exact",
    "check_instance_exact",
    "analyze_approximate",
    "check_instance_approximate",
    "star_all_but",
    "analyze_hybrid",
    "analyze",
    "analyze_pattern",
    "check_module_safety",
    "module_safety_map",
    "has_degree_at_least",
    "exact_degree",
]
