"""Over-approximate counter-ambiguity analysis (Section 3.2).

"The idea is to over-approximate all occurrences of {m,n} (constrained
repetition) with * (unconstrained repetition), except for the one that
we are analyzing."  Starring adds token paths, so unambiguity of the
approximation implies unambiguity of the original; ambiguity of the
approximation is *inconclusive*.

The payoff is asymptotic: for ``Sigma* (~s1 s1{n} + ~s2 s2{n})`` the
exact product search explores Theta(n^2) pairs while each
approximation explores Theta(n) (Example 3.4); the experiments of
Figures 2 and 3 reproduce this gap.
"""

from __future__ import annotations

import time
from typing import Optional

from ..nca.glushkov import build_nca
from ..regex.ast import Regex, Repeat, Star, collect_repeats, star
from .product import PairSearch
from .result import InstanceResult, Method, RegexAnalysisResult
from .transition_system import TokenTransitionSystem

__all__ = ["star_all_but", "check_instance_approximate", "analyze_approximate"]


def star_all_but(root: Regex, keep_path: tuple[int, ...]) -> Regex:
    """Replace every Repeat except the one at ``keep_path`` with a star.

    The kept occurrence's subtree is transformed too (its nested
    occurrences are starred), which only adds more paths and therefore
    preserves the over-approximation property.
    """

    def walk(node: Regex, path: tuple[int, ...]) -> Regex:
        kids = node.children()
        rebuilt = tuple(walk(kid, path + (i,)) for i, kid in enumerate(kids))
        if isinstance(node, Repeat) and path != keep_path:
            return star(rebuilt[0])
        return _rebuild(node, rebuilt)

    return walk(root, ())


def _rebuild(node: Regex, kids: tuple[Regex, ...]) -> Regex:
    from ..regex.ast import Alt, Concat

    if not kids:
        return node
    if isinstance(node, Concat):
        return Concat(kids)
    if isinstance(node, Alt):
        return Alt(kids)
    if isinstance(node, Star):
        return star(kids[0])
    if isinstance(node, Repeat):
        return Repeat(kids[0], node.lo, node.hi)
    raise TypeError(f"cannot rebuild {type(node).__name__}")


def check_instance_approximate(
    ast: Regex,
    instance_path: tuple[int, ...],
    max_pairs: Optional[int] = None,
) -> tuple[bool, int]:
    """Approximate check of one occurrence.

    Returns ``(certainly_unambiguous, pairs_created)``; a False first
    component means *inconclusive*, not ambiguous.
    """
    approx = star_all_but(ast, instance_path)
    nca = build_nca(approx)
    if not nca.instances:
        # The kept occurrence collapsed (e.g. its body was epsilon).
        return True, 0
    (info,) = nca.instances
    outcome = PairSearch(
        TokenTransitionSystem(nca),
        target_states=info.body,
        max_pairs=max_pairs,
    ).run()
    return (not outcome.ambiguous), outcome.pairs_created


def analyze_approximate(
    ast: Regex,
    max_pairs: Optional[int] = None,
) -> RegexAnalysisResult:
    """Approximate analysis of every occurrence in the regex.

    Occurrences the approximation cannot certify come back with
    ``ambiguous=True, conclusive=False``; the hybrid driver then
    re-checks them exactly.
    """
    start = time.perf_counter()
    instances = collect_repeats(ast)
    results: list[InstanceResult] = []
    for inst in instances:
        t0 = time.perf_counter()
        certain, pairs = check_instance_approximate(ast, inst.path, max_pairs)
        hi = inst.hi if inst.hi is not None else inst.lo
        results.append(
            InstanceResult(
                instance=inst.index,
                lo=inst.lo,
                hi=hi,
                ambiguous=not certain,
                conclusive=certain,
                pairs_created=pairs,
                elapsed_s=time.perf_counter() - t0,
                method=Method.APPROXIMATE,
            )
        )
    nca = build_nca(ast) if instances else None
    return RegexAnalysisResult(
        ast=ast,
        method=Method.APPROXIMATE,
        nca=nca,
        instances=results,
        elapsed_s=time.perf_counter() - start,
    )
