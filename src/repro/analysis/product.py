"""Product transition system G^2 and the pair-reachability search.

Counter-ambiguity of a state ``q`` is witnessed by a path in ``G x G``
from an initial pair to some ``<(q, b1), (q, b2)>`` with ``b1 != b2``
(Section 3.1).  This module implements the breadth-first reachability
over ordered token pairs with:

* symbolic edges -- a product edge exists iff the two predicates
  intersect, and is labeled with the intersection;
* symmetry reduction -- pairs are canonicalized so that ``<t1, t2>``
  and ``<t2, t1>`` are explored once ("because of symmetry, some states
  and transitions can be safely removed from the product automaton");
* early termination -- the search stops at the first witness pair whose
  state lies in the target set ("the exact analysis halts as soon as it
  finds a token pair that witnesses counter-ambiguity");
* pair accounting -- the number of created pairs is the memory-footprint
  metric plotted in Figure 2(b).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..nca.automaton import Token
from ..regex.charclass import CharClass
from .transition_system import TokenTransitionSystem

__all__ = ["PairSearchResult", "PairSearch"]

Pair = tuple[Token, Token]


@dataclass
class PairSearchResult:
    """Outcome of one product-reachability run."""

    ambiguous: bool
    #: state witnessing ambiguity (None when unambiguous)
    state: Optional[int] = None
    #: the two distinct valuations observed at ``state``
    valuations: Optional[tuple] = None
    #: witness input driving the NCA into the ambiguous pair
    witness: Optional[bytes] = None
    #: number of distinct token pairs created during the search
    pairs_created: int = 0
    #: number of pairs actually expanded (dequeued)
    pairs_expanded: int = 0


class PairSearch:
    """BFS over the symmetric quotient of ``G^2``.

    The default goal is counter-ambiguity: reach ``<(q, b1), (q, b2)>``
    with ``b1 != b2`` and ``q`` in ``target_states``.  A custom
    ``pair_goal`` predicate over (token, token) replaces that check;
    the module-safety analysis uses it to hunt for *any* two distinct
    tokens inside an instance body (see
    :mod:`repro.analysis.module_safety`).
    """

    def __init__(
        self,
        system: TokenTransitionSystem,
        target_states: Optional[Iterable[int]] = None,
        record_witness: bool = False,
        max_pairs: Optional[int] = None,
        pair_goal: Optional[callable] = None,
    ):
        self.system = system
        self.target_states = None if target_states is None else frozenset(target_states)
        self.record_witness = record_witness
        self.max_pairs = max_pairs
        self.pair_goal = pair_goal

    def _is_target(self, state: int) -> bool:
        return self.target_states is None or state in self.target_states

    def _is_goal(self, s1: Token, s2: Token) -> bool:
        if self.pair_goal is not None:
            return self.pair_goal(s1, s2)
        return s1[0] == s2[0] and s1[1] != s2[1] and self._is_target(s1[0])

    def run(self) -> PairSearchResult:
        start_token = self.system.initial_token()
        start: Pair = (start_token, start_token)
        visited: set[Pair] = {start}
        parents: dict[Pair, tuple[Pair, CharClass]] = {}
        queue: deque[Pair] = deque([start])
        expanded = 0

        while queue:
            pair = queue.popleft()
            expanded += 1
            t1, t2 = pair
            edges1 = self.system.edges(t1)
            edges2 = edges1 if t1 == t2 else self.system.edges(t2)
            for e1 in edges1:
                for e2 in edges2:
                    if e1.predicate is not e2.predicate and not e1.predicate.overlaps(
                        e2.predicate
                    ):
                        continue
                    s1, s2 = e1.successor, e2.successor
                    if s2 < s1:
                        s1, s2 = s2, s1  # canonical order (symmetry)
                    nxt = (s1, s2)
                    if nxt in visited:
                        continue
                    visited.add(nxt)
                    if self.max_pairs is not None and len(visited) > self.max_pairs:
                        raise RuntimeError(
                            f"pair search exceeded limit {self.max_pairs}"
                        )
                    if self.record_witness:
                        parents[nxt] = (
                            pair,
                            e1.predicate.intersect(e2.predicate)
                            if e1.predicate is not e2.predicate
                            else e1.predicate,
                        )
                    if self._is_goal(s1, s2):
                        witness = (
                            self._reconstruct(nxt, parents)
                            if self.record_witness
                            else None
                        )
                        return PairSearchResult(
                            ambiguous=True,
                            state=s1[0],
                            valuations=(s1[1], s2[1]),
                            witness=witness,
                            pairs_created=len(visited),
                            pairs_expanded=expanded,
                        )
                    queue.append(nxt)
        return PairSearchResult(
            ambiguous=False,
            pairs_created=len(visited),
            pairs_expanded=expanded,
        )

    @staticmethod
    def _reconstruct(
        pair: Pair, parents: dict[Pair, tuple[Pair, CharClass]]
    ) -> bytes:
        """Rebuild a witness string by following parent links.

        Each hop contributes one concrete byte sampled from the edge's
        predicate intersection; the paper notes this adds "a very small
        overhead" because only one symbol per step is recorded.
        """
        symbols: list[int] = []
        while pair in parents:
            pair, predicate = parents[pair]
            symbols.append(predicate.sample())
        symbols.reverse()
        return bytes(symbols)
