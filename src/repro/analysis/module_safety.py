"""Module-safety analysis: can one counter register serve an instance?

Counter-unambiguity (Definition 3.1) bounds the tokens *per state*.
The hardware counter module, however, holds a *single* count register
for the whole repetition body (Fig. 6) -- so it is faithful only when
at most one token occupies the body, across **all** its states, at any
time.  For multi-state bodies those properties differ: two tokens can
march through the body at an offset, each state holding at most one at
a time, while the shared register can only track one of them.

Concrete witness (found by randomized search during this reproduction;
regression-tested in ``tests/analysis/test_module_safety.py``)::

    Sigma* b ([bc]bc){2,4} [bc]

is counter-unambiguous at every state, yet the input ``bcbbcbcb...``
keeps two interleaved passes alive; a single register mis-counts one
of them.  Single-class bodies are immune (one body state makes the two
properties coincide), which is also why bit-vector eligibility needs
no extra check.

:func:`check_module_safety` decides the stronger property with the
same product-reachability machinery: an instance is *module-safe* iff
no reachable pair of **distinct** tokens has both components inside
the body.  The compiler uses it as a gate in front of counter-module
selection (on by default; ``strict_modules=False`` reproduces the
naive unambiguity-only policy for ablation).
"""

from __future__ import annotations

from typing import Optional

from ..nca.automaton import NCA, Token
from .product import PairSearch, PairSearchResult
from .transition_system import TokenTransitionSystem

__all__ = ["check_module_safety", "module_safety_map"]


def check_module_safety(
    nca: NCA,
    instance: int,
    system: Optional[TokenTransitionSystem] = None,
    record_witness: bool = False,
    max_pairs: Optional[int] = None,
) -> PairSearchResult:
    """Search for two distinct simultaneous tokens in the instance body.

    Returns a :class:`PairSearchResult` whose ``ambiguous`` field means
    *unsafe* here (two body tokens are reachable); ``witness`` (when
    requested) is an input driving the automaton into that situation.
    """
    info = nca.instances[instance]
    body = info.body
    if system is None:
        system = TokenTransitionSystem(nca)

    def two_in_body(t1: Token, t2: Token) -> bool:
        return t1 != t2 and t1[0] in body and t2[0] in body

    search = PairSearch(
        system,
        record_witness=record_witness,
        max_pairs=max_pairs,
        pair_goal=two_in_body,
    )
    return search.run()


def module_safety_map(
    nca: NCA,
    instances: Optional[list[int]] = None,
    max_pairs: Optional[int] = None,
) -> dict[int, bool]:
    """Safety verdict per instance (True = one register suffices).

    ``instances`` restricts the check (the compiler only asks about
    instances it would implement with a counter).  A search that hits
    ``max_pairs`` is treated conservatively as unsafe.
    """
    system = TokenTransitionSystem(nca)
    targets = (
        [info.instance for info in nca.instances]
        if instances is None
        else instances
    )
    verdicts: dict[int, bool] = {}
    for instance in targets:
        info = nca.instances[instance]
        if len(info.body) == 1:
            # single-state body: per-state unambiguity already implies
            # single-token occupancy
            verdicts[instance] = True
            continue
        try:
            outcome = check_module_safety(
                nca, instance, system=system, max_pairs=max_pairs
            )
        except RuntimeError:
            verdicts[instance] = False
            continue
        verdicts[instance] = not outcome.ambiguous
    return verdicts
