"""The labeled transition system of tokens (Section 3.1).

For an NCA ``A``, the tokens ``Tk(A)`` with the relations ``->a`` form
a labeled transition system ``G``.  Transitions are kept *symbolic*:
edges are labeled with alphabet predicates rather than individual
symbols ("the transitions are annotated with predicates over the
alphabet, not symbols ... we want to maintain such a representation in
the graphs G^d").  The product construction then intersects predicates
and keeps only non-empty intersections.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nca.automaton import NCA, Token
from ..regex.charclass import CharClass

__all__ = ["TokenEdge", "TokenTransitionSystem"]


@dataclass(frozen=True)
class TokenEdge:
    """A symbolic edge ``token ->[predicate] successor`` in ``G``."""

    predicate: CharClass
    successor: Token


class TokenTransitionSystem:
    """On-the-fly view of ``G`` with memoized successor computation.

    The token space can be exponential in the regex (counter
    valuations), so nothing is materialized eagerly; ``edges(token)``
    computes and caches the symbolic out-edges of one token.
    """

    def __init__(self, nca: NCA):
        self.nca = nca
        self._cache: dict[Token, tuple[TokenEdge, ...]] = {}
        self.tokens_expanded = 0

    def initial_token(self) -> Token:
        return self.nca.initial_token()

    def edges(self, token: Token) -> tuple[TokenEdge, ...]:
        cached = self._cache.get(token)
        if cached is not None:
            return cached
        out: dict[tuple[CharClass, Token], TokenEdge] = {}
        for t in self.nca.out_transitions(token[0]):
            successor = self.nca.apply_transition(token, t)
            if successor is None:
                continue
            predicate = self.nca.predicate_of(t.target)
            key = (predicate, successor)
            if key not in out:
                out[key] = TokenEdge(predicate, successor)
        edges = tuple(out.values())
        self._cache[token] = edges
        self.tokens_expanded += 1
        return edges

    def reachable_tokens(self, limit: int | None = None) -> set[Token]:
        """BFS enumeration of reachable tokens (used by tests/examples).

        ``limit`` caps exploration for safety; the bounded-counter
        automata of this project always terminate.
        """
        start = self.initial_token()
        seen = {start}
        frontier = [start]
        while frontier:
            token = frontier.pop()
            for edge in self.edges(token):
                if edge.successor not in seen:
                    seen.add(edge.successor)
                    frontier.append(edge.successor)
                    if limit is not None and len(seen) > limit:
                        raise RuntimeError(f"token space exceeds limit {limit}")
        return seen
