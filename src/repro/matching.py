"""High-level matching facade: compile once, scan many streams.

This is the downstream-user entry point: hand it a rule set, get back
per-rule match results plus the hardware resource/energy story, without
touching the compiler, mapping, or simulator layers directly.

Example::

    matcher = RulesetMatcher([
        ("overlong-header", r"\\n[^\\r\\n]{256,1024}"),
        ("shellcode-nop",  r"\\x90{16,64}"),
    ])
    result = matcher.scan(payload)
    result.matched_rules()           # {'overlong-header'}
    result.matches["overlong-header"]  # [match end offsets]
    matcher.resources().cam_arrays   # hardware footprint
    result.energy_nj_per_byte        # Table 2-based estimate
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .analysis.result import Method
from .compiler.mapping import NetworkMapping, map_network
from .compiler.pipeline import CompiledRuleset, compile_ruleset
from .hardware.cost import AreaReport, area_of_mapping, energy_of_run
from .hardware.simulator import NetworkSimulator

__all__ = ["RulesetMatcher", "PatternMatcher", "ScanResult", "ResourceSummary"]


@dataclass
class ScanResult:
    """Outcome of scanning one input stream."""

    bytes_scanned: int
    #: rule id -> sorted distinct match end offsets (1-based)
    matches: dict[str, list[int]] = field(default_factory=dict)
    energy_nj_per_byte: float = 0.0

    def matched_rules(self) -> set[str]:
        return set(self.matches)

    def total_matches(self) -> int:
        return sum(len(ends) for ends in self.matches.values())


@dataclass(frozen=True)
class ResourceSummary:
    """Static hardware footprint of the compiled rule set."""

    rules_compiled: int
    rules_skipped: int
    stes: int
    counters: int
    bit_vectors: int
    cam_arrays: int
    pes: int
    area_mm2: float
    waste_mm2: float


class RulesetMatcher:
    """Compile a rule set to augmented-CAMA form and scan streams.

    Args:
        rules: pattern strings or ``(rule_id, pattern)`` pairs; rules
            with unsupported features are skipped and listed in
            :attr:`skipped`.
        unfold_threshold: Figure 9/10 knob (0 = maximal module use).
        method: which static analysis drives module selection.
        strict_modules: keep the body-level single-token gate on
            (recommended; see ``repro.analysis.module_safety``).
    """

    def __init__(
        self,
        rules: Iterable[str] | Sequence[tuple[str, str]],
        unfold_threshold: float = 0,
        method: Method | str = Method.HYBRID,
        strict_modules: bool = True,
        max_pairs: Optional[int] = 2_000_000,
    ):
        self.ruleset: CompiledRuleset = compile_ruleset(
            rules,
            unfold_threshold=unfold_threshold,
            method=method,
            strict_modules=strict_modules,
            max_pairs=max_pairs,
        )
        self.mapping: NetworkMapping = map_network(self.ruleset.network)
        self._area: AreaReport = area_of_mapping(self.mapping)
        # `$`-anchored rules match only when the report position is the
        # final byte of the stream; the hardware reports every prefix
        # end, so the facade filters (real deployments gate the report
        # vector with an end-of-data strobe the same way)
        self._end_anchored: set[str] = {
            compiled.report_id
            for compiled in self.ruleset.patterns
            if compiled.pattern.anchored_end
        }

    # -- introspection -----------------------------------------------------
    @property
    def skipped(self) -> list[tuple[str, str]]:
        return self.ruleset.skipped

    def resources(self) -> ResourceSummary:
        bank = self.mapping.bank
        return ResourceSummary(
            rules_compiled=len(self.ruleset.patterns),
            rules_skipped=len(self.ruleset.skipped),
            stes=self.ruleset.network.ste_count(),
            counters=self.ruleset.network.counter_count(),
            bit_vectors=self.ruleset.network.bit_vector_count(),
            cam_arrays=bank.cam_arrays_used,
            pes=bank.pes_used,
            area_mm2=self._area.total_mm2,
            waste_mm2=self._area.waste_mm2,
        )

    def empty_match_rules(self) -> set[str]:
        """Rules that match the empty string (they trivially match at
        every offset; the hardware does not report those)."""
        return {
            compiled.report_id
            for compiled in self.ruleset.patterns
            if compiled.matches_empty
        }

    # -- scanning ------------------------------------------------------------
    def scan(self, data: bytes | str) -> ScanResult:
        """Run one stream through the simulated hardware."""
        if isinstance(data, str):
            data = data.encode("latin-1")
        sim = NetworkSimulator(self.ruleset.network)
        sim.run(data)
        matches: dict[str, set[int]] = {}
        for position, rule_id in sim.distinct_reports():
            rule = rule_id or "?"
            if rule in self._end_anchored and position != len(data):
                continue
            matches.setdefault(rule, set()).add(position)
        energy = energy_of_run(sim.stats, self.mapping)
        return ScanResult(
            bytes_scanned=len(data),
            matches={rule: sorted(ends) for rule, ends in matches.items()},
            energy_nj_per_byte=energy.nj_per_byte,
        )

    def matched_rules(self, data: bytes | str) -> set[str]:
        """Convenience: just the ids of rules that matched."""
        return self.scan(data).matched_rules()


class PatternMatcher:
    """Single-pattern matcher with full anchor semantics.

    Wraps the compiled hardware for one pattern and answers the two
    standard questions:

    * :meth:`search` -- streaming match ends anywhere in the data
      (``^``/``$`` respected);
    * :meth:`matches` -- whole-string membership, i.e. the pattern
      matched somewhere with its anchors satisfied (for a ``^...$``
      pattern this is exact-string matching).
    """

    def __init__(self, pattern: str, **kwargs):
        from .compiler.pipeline import compile_pattern

        self.compiled = compile_pattern(pattern, report_id="p", **kwargs)
        self._sim = NetworkSimulator(self.compiled.network)

    def search(self, data: bytes | str) -> list[int]:
        """Distinct *nonempty* match-end offsets (1-based), anchors
        respected.  Empty matches (nullable patterns) are not listed --
        consult :meth:`matches` / ``compiled.matches_empty`` for those.
        """
        if isinstance(data, str):
            data = data.encode("latin-1")
        ends = self._sim.match_ends(data)
        if self.compiled.pattern.anchored_end:
            ends = [e for e in ends if e == len(data)]
        return ends

    def matches(self, data: bytes | str) -> bool:
        """True iff the pattern matches within ``data`` (anchors kept).

        Nullable patterns match trivially (the empty match is available
        at every offset, or at end-of-data for ``$``-anchored ones).
        """
        if self.compiled.matches_empty:
            return True
        return bool(self.search(data))
