"""High-level matching facade: compile once, scan many streams.

This is the downstream-user entry point: hand it a rule set, get back
per-rule match results plus the hardware resource/energy story, without
touching the compiler, mapping, or simulator layers directly.

Example::

    matcher = RulesetMatcher([
        ("overlong-header", r"\\n[^\\r\\n]{256,1024}"),
        ("shellcode-nop",  r"\\x90{16,64}"),
    ])
    result = matcher.scan(payload)
    result.matched_rules()           # {'overlong-header'}
    result.matches["overlong-header"]  # [match end offsets]
    matcher.resources().cam_arrays   # hardware footprint
    result.energy_nj_per_byte        # Table 2-based estimate

Sessions are the primary scanning surface (:mod:`repro.session`): one
live scan of one logical stream, emitting incremental
:class:`~repro.session.Match` events with absolute offsets::

    with matcher.session(on_match=alert) as session:
        for chunk in iter_chunks(socket):
            session.feed(chunk)       # -> [Match, ...] new this chunk
    session.result()                  # the classic ScanResult

The batch entry points below (:meth:`RulesetMatcher.scan`,
:meth:`~RulesetMatcher.scan_stream`, :meth:`~RulesetMatcher.scan_many`,
:meth:`~RulesetMatcher.matched_rules`) are thin wrappers over sessions
-- one code path, identical reports/stats/energy either way.
Streaming state carries across chunks; results are identical to a
single-buffer :meth:`RulesetMatcher.scan` of the concatenation::

    result = matcher.scan_stream(iter_chunks(socket))

Reporting semantics (shared by every scan entry point)
------------------------------------------------------
* **Match positions are 1-based end offsets.**  A report at position
  ``p`` means a match ended after the ``p``-th byte of the stream.
* **Empty matches are not reported.**  A nullable pattern (``a*``)
  trivially matches at every offset; the hardware only fires reports on
  byte consumption, so those zero-length matches never appear in
  :attr:`ScanResult.matches`.  Query :meth:`RulesetMatcher.empty_match_rules`
  (or ``PatternMatcher.matches``, which accounts for them) instead.
* **``$``-anchored rules report only at end-of-data.**  The hardware
  reports every prefix end and gates the report vector with an
  end-of-data strobe; the facade applies the same gate, which is why
  streaming results can only be finalized once the stream length is
  known (at ``finish()``/``scan_stream`` return, not per chunk).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from .analysis.result import Method
from .compiler.cache import (
    RuleMeta,
    RulesetArtifact,
    CACHE_VERSION,
    artifact_path,
    load_artifact,
    ruleset_cache_key,
    save_artifact,
)
from .compiler.mapping import NetworkMapping, map_network
from .compiler.passes import OptimizationReport, compute_alphabet_classes
from .compiler.pipeline import CompiledRuleset, compile_ruleset, normalize_sourced
from .engine.backends import (
    AUTO_ENGINE,
    resolve_backend,
    validated_backend_names,
)
from .engine.scanner import Chunk, coerce_chunk
from .engine.tables import TransitionTables, compile_tables
from .hardware.cost import AreaReport, area_of_mapping, energy_of_run
from .hardware.simulator import ActivityStats
from .mnrl.network import Network
from .session import (
    Match,
    MatchSession,
    MatchSink,
    SessionPart,
    UNNAMED_REPORT,
)

__all__ = [
    "RulesetMatcher",
    "PatternMatcher",
    "ScanResult",
    "ResourceSummary",
    "CompileInfo",
    "merge_compile_infos",
    "UNNAMED_REPORT",
]


@dataclass
class ScanResult:
    """Outcome of scanning one input stream.

    Positions in :attr:`matches` are 1-based match *end* offsets into
    the stream.  Zero-length matches of nullable rules are never listed
    (the hardware cannot report without consuming a byte); ``$``-anchored
    rules only ever list the final offset ``bytes_scanned`` (the facade
    gates their reports with the end-of-data strobe).  See the module
    docstring for the full semantics contract.

    >>> from repro import RulesetMatcher
    >>> result = RulesetMatcher([("hit", "abc")]).scan(b"zabcabc")
    >>> result.bytes_scanned, result.matches, result.total_matches()
    (7, {'hit': [4, 7]}, 2)
    """

    bytes_scanned: int
    #: rule id -> sorted distinct match end offsets (1-based)
    matches: dict[str, list[int]] = field(default_factory=dict)
    energy_nj_per_byte: float = 0.0
    #: provenance of the compilation that produced this scan (merged
    #: across shards for sharded results); excluded from equality --
    #: two scans of the same data are equal results regardless of
    #: whether their matcher warm-started
    compile_info: Optional["CompileInfo"] = field(
        default=None, compare=False, repr=False
    )

    def matched_rules(self) -> set[str]:
        return set(self.matches)

    def total_matches(self) -> int:
        return sum(len(ends) for ends in self.matches.values())


@dataclass(frozen=True)
class ResourceSummary:
    """Static hardware footprint of the compiled rule set.

    The trailing fields surface what the optimisation pipeline did:
    at ``opt_level >= 1`` the STE/CAM counts above describe the
    *optimized* network, and ``merged_stes``/``removed_nodes`` say how
    much the passes took off relative to the naive emission.
    ``alphabet_classes`` is the match-table width ``k`` after
    alphabet-equivalence compression (256 = incompressible).
    """

    rules_compiled: int
    rules_skipped: int
    stes: int
    counters: int
    bit_vectors: int
    cam_arrays: int
    pes: int
    area_mm2: float
    waste_mm2: float
    opt_level: int = 0
    merged_stes: int = 0
    removed_nodes: int = 0
    alphabet_classes: int = 0


@dataclass(frozen=True)
class CompileInfo:
    """How a :class:`RulesetMatcher` obtained its compiled form."""

    #: artifact loaded from the persistent cache (parsing/analysis/
    #: emission all skipped)?
    cache_hit: bool
    #: wall-clock seconds spent producing the ready-to-scan state
    seconds: float
    opt_level: int
    #: artifact file backing this matcher (None when uncached)
    cache_path: Optional[str] = None


def merge_compile_infos(infos: Sequence[CompileInfo]) -> CompileInfo:
    """Aggregate per-shard :class:`CompileInfo` into one summary.

    Seconds sum (each shard compiled its own slice), ``cache_hit`` is
    true only when *every* shard warm-started, ``opt_level`` is the
    highest level any shard ran, and ``cache_path`` is kept only when
    the shards agree (a single-matcher merge) -- a sharded compilation
    is backed by many artifacts, reachable per shard via
    :attr:`~repro.engine.parallel.ShardedMatcher.compile_infos`.
    Callers include :class:`~repro.engine.parallel.ShardedMatcher` and
    the cluster layer's :class:`~repro.serve.cluster.LocalShardCluster`
    (one info per shard *server*).  An empty sequence raises -- unlike
    :func:`~repro.engine.parallel.merge_scan_results` there is no
    neutral ``CompileInfo`` (``cache_hit`` has no identity value).
    """
    if not infos:
        raise ValueError("nothing to merge")
    paths = {info.cache_path for info in infos}
    return CompileInfo(
        cache_hit=all(info.cache_hit for info in infos),
        seconds=sum(info.seconds for info in infos),
        opt_level=max(info.opt_level for info in infos),
        cache_path=paths.pop() if len(paths) == 1 else None,
    )


class RulesetMatcher:
    """Compile a rule set to augmented-CAMA form and scan streams.

    Execution is delegated to the pluggable backend registry
    (:mod:`repro.engine.backends`); every backend shares one semantics
    contract (identical distinct reports, and -- for stats-exact
    backends, which all built-ins are -- identical activity
    statistics):

    * ``"auto"`` (default) -- pick the fastest available backend that
      applies to the compiled tables (the NumPy ``"block"`` scanner
      for module-free rulesets, the scalar ``"stream"`` interpreter
      otherwise);
    * ``"stream"`` (alias ``"table"``) -- precompiled transition
      tables, integer-bitmask per-byte loop;
    * ``"block"`` -- NumPy bit-parallel block sweeps (needs numpy);
    * ``"reference"`` -- the node-by-node
      :class:`~repro.hardware.simulator.NetworkSimulator`, kept as the
      executable specification the engines are tested against.

    Args:
        rules: pattern strings or ``(rule_id, pattern)`` pairs; rules
            with unsupported features are skipped and listed in
            :attr:`skipped`.
        unfold_threshold: Figure 9/10 knob (0 = maximal module use).
        method: which static analysis drives module selection.
        strict_modules: keep the body-level single-token gate on
            (recommended; see ``repro.analysis.module_safety``).
        engine: default engine for the scan entry points -- ``"auto"``
            or any registered backend name/alias.
        opt_level: optimisation pipeline level
            (:mod:`repro.compiler.passes`).  ``0`` (default) preserves
            byte-exact :class:`~repro.hardware.simulator.ActivityStats`
            equivalence with the classic pipeline; ``1+`` additionally
            runs dead-node elimination and cross-rule prefix sharing
            (exact report-set equivalence only; resource/stat deltas
            show up in :meth:`resources`).
        cache_dir: directory for the persistent compiled-ruleset cache.
            On a key hit (same rules *and* same compile options) the
            matcher warm-starts from the pickled artifact, skipping
            parsing, analysis, emission, and table lowering entirely;
            otherwise it compiles and writes the artifact.  See
            :attr:`compile_info` for what happened.

    Reporting semantics (all scan entry points): 1-based end offsets,
    no zero-length matches, ``$`` gated to end-of-data -- see the
    module docstring.

    >>> from repro import RulesetMatcher
    >>> matcher = RulesetMatcher([("hit", "abc"), ("num", "[0-9]{3}")])
    >>> matcher.scan(b"xxabc123").matches
    {'hit': [5], 'num': [8]}
    >>> sorted(matcher.matched_rules(b"zabcz"))
    ['hit']
    """

    def __init__(
        self,
        rules: Iterable[str] | Sequence[tuple[str, str]],
        unfold_threshold: float = 0,
        method: Method | str = Method.HYBRID,
        strict_modules: bool = True,
        max_pairs: Optional[int] = 2_000_000,
        engine: str = AUTO_ENGINE,
        opt_level: int = 0,
        cache_dir: Optional[str] = None,
    ):
        if engine != AUTO_ENGINE:
            # fail fast -- one consistent unknown-engine error, and an
            # unavailable backend (block without numpy) raises before
            # the compile spends seconds on a ruleset it cannot serve
            resolve_backend(engine)
        self.engine = engine
        start = time.perf_counter()
        # sourced triples keep each rule's file:line provenance so
        # compile-time skip reasons (and the cache key) carry it
        named = normalize_sourced(rules)

        cache_path: Optional[str] = None
        artifact: Optional[RulesetArtifact] = None
        if cache_dir is not None:
            key = ruleset_cache_key(
                named,
                unfold_threshold=unfold_threshold,
                method=str(getattr(method, "value", method)),
                strict_modules=strict_modules,
                max_pairs=max_pairs,
                opt_level=opt_level,
            )
            cache_path = artifact_path(cache_dir, key)
            artifact = load_artifact(cache_dir, key)

        #: full compile-time state; ``None`` on a cache hit (the slim
        #: artifact carries everything the facade needs)
        self.ruleset: Optional[CompiledRuleset] = None
        self._validated_backends: Optional[list[str]] = None
        if artifact is not None:
            self.network: Network = artifact.network
            self._tables: Optional[TransitionTables] = artifact.tables
            self._rule_meta: list[RuleMeta] = artifact.rules
            self._skipped: list[tuple[str, str]] = artifact.skipped
            self.optimization: Optional[OptimizationReport] = artifact.optimization
            self._validated_backends = list(artifact.backends)
        else:
            self.ruleset = compile_ruleset(
                named,
                unfold_threshold=unfold_threshold,
                method=method,
                strict_modules=strict_modules,
                max_pairs=max_pairs,
                opt_level=opt_level,
            )
            self.network = self.ruleset.network
            self._tables = None
            self._rule_meta = [
                RuleMeta(
                    report_id=compiled.report_id,
                    source=compiled.source,
                    anchored_end=compiled.pattern.anchored_end,
                    matches_empty=compiled.matches_empty,
                )
                for compiled in self.ruleset.patterns
            ]
            self._skipped = self.ruleset.skipped
            self.optimization = self.ruleset.optimization
            if cache_dir is not None:
                cache_path = save_artifact(
                    RulesetArtifact(
                        version=CACHE_VERSION,
                        key=key,
                        network=self.network,
                        tables=self.tables,  # forces lowering into the artifact
                        rules=self._rule_meta,
                        skipped=self._skipped,
                        opt_level=opt_level,
                        optimization=self.optimization,
                        # which execution backends these tables were
                        # validated against at compile time
                        backends=validated_backend_names(self.tables),
                    ),
                    cache_dir,
                )

        self.mapping: NetworkMapping = map_network(self.network)
        self._area: AreaReport = area_of_mapping(self.mapping)
        self._opt_level = opt_level
        self._alphabet_classes: Optional[int] = None
        # `$`-anchored rules match only when the report position is the
        # final byte of the stream; the hardware reports every prefix
        # end, so the facade filters (real deployments gate the report
        # vector with an end-of-data strobe the same way)
        self._end_anchored: set[str] = {
            meta.report_id for meta in self._rule_meta if meta.anchored_end
        }
        #: cold-vs-warm provenance and timing of this compilation
        self.compile_info = CompileInfo(
            cache_hit=artifact is not None,
            seconds=time.perf_counter() - start,
            opt_level=opt_level,
            cache_path=cache_path,
        )

    # -- introspection -----------------------------------------------------
    @property
    def skipped(self) -> list[tuple[str, str]]:
        return self._skipped

    @property
    def tables(self) -> TransitionTables:
        """Precompiled transition tables (built lazily, cached; shared
        by every table-engine scan and picklable to worker processes)."""
        if self._tables is None:
            self._tables = compile_tables(self.network)
        return self._tables

    @property
    def validated_backends(self) -> list[str]:
        """Execution backends (canonical names) validated for these
        tables: recorded in the cache artifact at compile time for
        warm starts, computed from the live registry otherwise."""
        if self._validated_backends is None:
            self._validated_backends = validated_backend_names(self.tables)
        return list(self._validated_backends)

    def resources(self) -> ResourceSummary:
        bank = self.mapping.bank
        optimization = self.optimization
        if self._tables is not None:
            alphabet_classes = self._tables.n_classes
        elif self._alphabet_classes is not None:
            alphabet_classes = self._alphabet_classes
        else:
            # immutable after __init__, so compute the partition once
            # even when the table engine is never used
            alphabet_classes = compute_alphabet_classes(self.network).n_classes
            self._alphabet_classes = alphabet_classes
        return ResourceSummary(
            rules_compiled=len(self._rule_meta),
            rules_skipped=len(self._skipped),
            stes=self.network.ste_count(),
            counters=self.network.counter_count(),
            bit_vectors=self.network.bit_vector_count(),
            cam_arrays=bank.cam_arrays_used,
            pes=bank.pes_used,
            area_mm2=self._area.total_mm2,
            waste_mm2=self._area.waste_mm2,
            opt_level=self._opt_level,
            merged_stes=optimization.merged_stes if optimization else 0,
            removed_nodes=optimization.removed_nodes if optimization else 0,
            alphabet_classes=alphabet_classes,
        )

    def empty_match_rules(self) -> set[str]:
        """Rules that match the empty string (they trivially match at
        every offset; the hardware does not report those -- see the
        module docstring's semantics contract)."""
        return {
            meta.report_id for meta in self._rule_meta if meta.matches_empty
        }

    # -- scanning ------------------------------------------------------------
    def _result_from_reports(
        self,
        reports: Iterable[tuple[int, Optional[str]]],
        bytes_scanned: int,
        stats: ActivityStats,
    ) -> ScanResult:
        """Apply the facade's reporting semantics to raw hardware
        reports: ``$`` end-of-data gating, deterministic naming of
        unnamed reports, Table 2 energy pricing."""
        matches: dict[str, set[int]] = {}
        for position, rule_id in reports:
            rule = rule_id if rule_id is not None else UNNAMED_REPORT
            if rule in self._end_anchored and position != bytes_scanned:
                continue
            matches.setdefault(rule, set()).add(position)
        energy = energy_of_run(stats, self.mapping)
        # rule ids are sorted so the mapping's order is deterministic
        # (report sets iterate in hash order), matching merge_scan_results
        return ScanResult(
            bytes_scanned=bytes_scanned,
            matches={rule: sorted(ends) for rule, ends in sorted(matches.items())},
            energy_nj_per_byte=energy.nj_per_byte,
            compile_info=self.compile_info,
        )

    def _scanner(self, engine: Optional[str] = None):
        """A fresh scanner from the resolved backend."""
        tables = self.tables
        return resolve_backend(engine or self.engine, tables).make_scanner(tables)

    def session(
        self,
        engine: Optional[str] = None,
        *,
        stream: Optional[str] = None,
        on_match: Optional[MatchSink] = None,
    ) -> MatchSession:
        """Open a :class:`~repro.session.MatchSession` over this ruleset.

        The session wraps one fresh scanner from the resolved backend
        (``engine`` overrides the matcher's default) and emits
        incremental :class:`~repro.session.Match` events with absolute
        stream offsets; ``stream`` tags every emitted match and
        ``on_match`` (any callable, e.g. a
        :class:`~repro.session.CollectorSink` or
        :class:`~repro.session.QueueSink`) observes each match exactly
        once.  All batch entry points are wrappers over this.
        """
        part = SessionPart(
            scanner=self._scanner(engine),
            end_anchored=frozenset(self._end_anchored),
            finalize=self._result_from_reports,
        )
        return MatchSession([part], stream=stream, on_match=on_match)

    def stream_scanner(self, engine: Optional[str] = None):
        """A fresh raw backend scanner over the cached tables.

        .. deprecated::
            Use :meth:`session` instead -- raw scanners expose the
            unresolved ``(position, report_id)`` tuple surface (a
            ``list`` from ``feed``, a ``set`` from ``finish``) without
            ``$`` gating or report naming; sessions unify all of that
            behind sorted :class:`~repro.session.Match` lists.
        """
        warnings.warn(
            "RulesetMatcher.stream_scanner() is deprecated; use "
            "RulesetMatcher.session() for incremental Match emission "
            "(raw scanners remain available via repro.engine.backends)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._scanner(engine)

    def scan(self, data: Chunk, engine: Optional[str] = None) -> ScanResult:
        """Run one in-memory buffer through the simulated hardware.

        ``engine`` overrides the matcher's default (any registered
        backend name, or ``"auto"``); results are identical on every
        backend.  Equivalent to a one-chunk :meth:`session`.
        """
        with self.session(engine=engine) as session:
            session.feed(data)
        return session.result()

    def scan_stream(
        self, chunks: Iterable[Chunk], engine: Optional[str] = None
    ) -> ScanResult:
        """Scan a stream delivered as an iterable of chunks.

        Enable vectors, counters, and bit-vector registers carry across
        chunk boundaries, so the result equals :meth:`scan` of the
        concatenated stream (``$`` gating included -- it is applied
        after the last chunk, when the stream length is known).  A thin
        wrapper over :meth:`session`; use the session directly when the
        per-chunk :class:`~repro.session.Match` events matter.
        """
        with self.session(engine=engine) as session:
            for chunk in chunks:
                session.feed(chunk)
        return session.result()

    def scan_many(
        self,
        streams: Sequence[Chunk],
        processes: int = 0,
        engine: Optional[str] = None,
    ) -> list[ScanResult]:
        """Scan a batch of independent streams (one result each).

        With ``processes > 1`` the batch fans out over worker processes
        (the precompiled tables ship to each worker once, and the
        backend choice ships with them); otherwise each stream runs
        through an in-process session.  Results are identical either
        way.
        """
        if processes > 1:
            from .engine.parallel import scan_streams

            grid = scan_streams(
                [self.tables],
                streams,
                processes=processes,
                engine=engine or self.engine,
            )
            return [
                self._result_from_reports(reports, n_bytes, stats)
                for ((n_bytes, reports, stats),) in grid
            ]
        return [self.scan(stream, engine=engine) for stream in streams]

    def matched_rules(self, data: Chunk) -> set[str]:
        """Convenience: just the ids of rules that matched."""
        return self.scan(data).matched_rules()


class PatternMatcher:
    """Single-pattern matcher with full anchor semantics.

    Wraps the compiled hardware for one pattern and answers the two
    standard questions:

    * :meth:`search` -- streaming match ends anywhere in the data
      (``^``/``$`` respected);
    * :meth:`finditer` -- the same matches as lazy
      :class:`~repro.session.Match` events over chunked input;
    * :meth:`matches` -- whole-string membership, i.e. the pattern
      matched somewhere with its anchors satisfied (for a ``^...$``
      pattern this is exact-string matching).

    Runs on the registry-selected backend (``engine="auto"`` default);
    pass any registered name, e.g. ``engine="reference"`` for the
    node-by-node simulator.

    >>> from repro import PatternMatcher
    >>> pm = PatternMatcher(r"a(bc){1,3}d")
    >>> pm.search(b"xabcbcdy")
    [7]
    >>> pm.matches("abcd")
    True
    """

    def __init__(self, pattern: str, engine: str = AUTO_ENGINE, **kwargs):
        from .compiler.pipeline import compile_pattern

        if engine != AUTO_ENGINE:
            resolve_backend(engine)  # fail fast: unknown or unavailable
        self.engine = engine
        self.pattern = pattern
        self.compiled = compile_pattern(pattern, report_id=pattern, **kwargs)
        # tables and executor are built lazily on first search
        self._tables: Optional[TransitionTables] = None
        self._scanner = None

    def search(self, data: Chunk) -> list[int]:
        """Distinct *nonempty* match **end** offsets, 1-based, anchors
        respected.

        An offset ``p`` means a match ended *after* the ``p``-th byte:
        ``PatternMatcher("abc").search(b"zabc")`` returns ``[4]``, not
        the ``1`` a start-offset API (like :func:`re.search`'s
        ``span()[0]``) would give -- the hardware reports on the cycle
        that consumes a match's final byte, and where matches of
        different lengths end at the same byte only that one end offset
        is reported.  Empty matches (nullable patterns) are never
        listed -- consult :meth:`matches` / ``compiled.matches_empty``
        for those.
        """
        data = coerce_chunk(data)
        if self._scanner is None:
            if self._tables is None:
                self._tables = compile_tables(self.compiled.network)
            self._scanner = resolve_backend(
                self.engine, self._tables
            ).make_scanner(self._tables)
        ends = self._scanner.match_ends(data)
        if self.compiled.pattern.anchored_end:
            ends = [e for e in ends if e == len(data)]
        return ends

    def finditer(
        self, data: Chunk | Iterable[Chunk], stream: Optional[str] = None
    ) -> Iterator[Match]:
        """Lazily yield the pattern's matches as
        :class:`~repro.session.Match` events (``rule`` is the pattern
        string, ``end`` the 1-based absolute end offset).

        Accepts one buffer or an iterable of chunks; offsets are
        absolute across chunk boundaries, so any chunking yields the
        same events as one buffer (the chunk-boundary equivalent of
        :meth:`search`'s single-buffer semantics).  For ``$``-anchored
        patterns nothing is yielded until the input is exhausted (only
        then is "at end-of-data" decidable).
        """
        if isinstance(data, (bytes, bytearray, memoryview, str)):
            data = (data,)
        if self._tables is None:
            self._tables = compile_tables(self.compiled.network)
        scanner = resolve_backend(self.engine, self._tables).make_scanner(
            self._tables
        )
        # one event-only session part: the shared session layer owns
        # absolute offsets and $-gating (no finalize -- a single
        # pattern has no ScanResult/energy story)
        gate = (
            frozenset([self.compiled.report_id])
            if self.compiled.pattern.anchored_end
            else frozenset()
        )
        session = MatchSession(
            [SessionPart(scanner=scanner, end_anchored=gate)], stream=stream
        )
        return session.matches(data)

    def matches(self, data: Chunk) -> bool:
        """True iff the pattern matches within ``data`` (anchors kept).

        Nullable patterns match trivially (the empty match is available
        at every offset, or at end-of-data for ``$``-anchored ones).
        """
        if self.compiled.matches_empty:
            return True
        return bool(self.search(data))
