"""JSON serialization of networks (MNRL-compatible schema shape).

The layout follows MNRL's published JSON schema -- a top-level ``id``
plus a ``nodes`` array where each node carries ``id``, ``type``,
``enable``/``report`` attributes, type-specific ``attributes`` and an
``outputDefs`` list with per-port ``activate`` targets -- so that the
files are recognizable to anyone who has used MNCaRT tooling.  The two
extension node types (``counter`` and ``boundedBitVector``) carry their
bounds in ``attributes``, which is where the paper's extended syntax
lives.

Character classes serialize as their pattern text (e.g. ``[a-f]``),
which round-trips through the project parser.
"""

from __future__ import annotations

import json
from typing import Any

from ..regex.charclass import CharClass
from ..regex.errors import RegexSyntaxError
from ..regex.parser import parse_to_ast
from ..regex.ast import Sym
from .network import Connection, Network
from .nodes import BitVectorNode, CounterNode, OUTPUT_PORTS, STE, StartType

__all__ = ["network_to_dict", "network_from_dict", "dumps", "loads", "save", "load"]


def _symbol_set_to_text(cls: CharClass) -> str:
    return cls.to_pattern()


def _symbol_set_from_text(text: str) -> CharClass:
    ast = parse_to_ast(text)
    if not isinstance(ast, Sym):
        raise RegexSyntaxError(f"symbol set {text!r} is not a single class")
    return ast.cls


def network_to_dict(network: Network) -> dict[str, Any]:
    """Serialize to a JSON-ready dict."""
    outgoing: dict[str, dict[str, list[list[str]]]] = {}
    for conn in network.connections:
        ports = outgoing.setdefault(conn.source, {})
        ports.setdefault(conn.source_port, []).append(
            [conn.target, conn.target_port]
        )
    nodes = []
    for node in network.nodes.values():
        entry: dict[str, Any] = {
            "id": node.id,
            "type": node.kind,
            "enable": node.start.value,
            "report": node.report,
        }
        if node.report_id is not None:
            entry["reportId"] = node.report_id
        if isinstance(node, STE):
            entry["attributes"] = {"symbolSet": _symbol_set_to_text(node.symbol_set)}
        elif isinstance(node, CounterNode):
            entry["attributes"] = {
                "low": node.lo,
                "high": node.hi,
                "width": node.width,
            }
        elif isinstance(node, BitVectorNode):
            entry["attributes"] = {
                "low": node.lo,
                "high": node.hi,
                "size": node.size,
            }
        entry["outputDefs"] = [
            {"portId": port, "activate": outgoing.get(node.id, {}).get(port, [])}
            for port in OUTPUT_PORTS[node.kind]
        ]
        nodes.append(entry)
    return {"id": network.id, "nodes": nodes}


def network_from_dict(data: dict[str, Any]) -> Network:
    """Deserialize a dict produced by :func:`network_to_dict`."""
    network = Network(data.get("id", "network"))
    pending: list[Connection] = []
    for entry in data["nodes"]:
        kind = entry["type"]
        start = StartType(entry.get("enable", "none"))
        report = bool(entry.get("report", False))
        report_id = entry.get("reportId")
        attrs = entry.get("attributes", {})
        if kind == "hState":
            node = STE(
                entry["id"],
                _symbol_set_from_text(attrs["symbolSet"]),
                start,
                report,
                report_id,
            )
        elif kind == "counter":
            node = CounterNode(
                entry["id"],
                attrs["low"],
                attrs["high"],
                start,
                report,
                report_id,
                attrs.get("width", 17),
            )
        elif kind == "boundedBitVector":
            node = BitVectorNode(
                entry["id"],
                attrs["low"],
                attrs["high"],
                start,
                report,
                report_id,
                attrs.get("size"),
            )
        else:
            raise ValueError(f"unknown node type {kind!r}")
        network.add(node)
        for port_def in entry.get("outputDefs", []):
            for target, target_port in port_def.get("activate", []):
                pending.append(
                    Connection(entry["id"], port_def["portId"], target, target_port)
                )
    for conn in pending:
        network.connect(conn.source, conn.source_port, conn.target, conn.target_port)
    return network


def dumps(network: Network, indent: int | None = 2) -> str:
    return json.dumps(network_to_dict(network), indent=indent)


def loads(text: str) -> Network:
    return network_from_dict(json.loads(text))


def save(network: Network, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(network))


def load(path: str) -> Network:
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
