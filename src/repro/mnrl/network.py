"""MNRL-style networks: nodes plus port-level connections.

A :class:`Network` is the compiler's output and the simulator's input:
a set of :mod:`nodes <repro.mnrl.nodes>` and directed connections
``(source node, source port) -> (destination node, destination port)``.
Validation enforces the port vocabulary of each node kind and the
structural rules the hardware imposes (e.g. a counter's ``fst`` port
listens to STEs only -- it observes state *matching*, not module
outputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .nodes import (
    BitVectorNode,
    CounterNode,
    INPUT_PORTS,
    Node,
    OUTPUT_PORTS,
    STE,
    StartType,
)

__all__ = ["Connection", "Network"]


@dataclass(frozen=True)
class Connection:
    source: str
    source_port: str
    target: str
    target_port: str

    def describe(self) -> str:
        return f"{self.source}.{self.source_port} -> {self.target}.{self.target_port}"


class Network:
    """A validated automaton network."""

    def __init__(self, network_id: str = "network"):
        self.id = network_id
        self.nodes: dict[str, Node] = {}
        self.connections: list[Connection] = []
        self._conn_keys: set[tuple[str, str, str, str]] = set()

    # -- construction -------------------------------------------------------
    def add(self, node: Node) -> Node:
        if node.id in self.nodes:
            raise ValueError(f"duplicate node id {node.id!r}")
        self.nodes[node.id] = node
        return node

    def connect(
        self, source: str, source_port: str, target: str, target_port: str
    ) -> None:
        src = self.nodes.get(source)
        dst = self.nodes.get(target)
        if src is None or dst is None:
            raise KeyError(f"unknown node in connection {source} -> {target}")
        if source_port not in OUTPUT_PORTS[src.kind]:
            raise ValueError(f"{src.kind} has no output port {source_port!r}")
        if target_port not in INPUT_PORTS[dst.kind]:
            raise ValueError(f"{dst.kind} has no input port {target_port!r}")
        if target_port == "fst" and not isinstance(src, STE):
            raise ValueError("counter 'fst' port must be driven by an STE")
        if target_port == "body" and not isinstance(src, STE):
            raise ValueError("bit-vector 'body' port must be driven by an STE")
        key = (source, source_port, target, target_port)
        if key in self._conn_keys:
            return
        self._conn_keys.add(key)
        self.connections.append(Connection(*key))

    # -- views ----------------------------------------------------------------
    def stes(self) -> Iterator[STE]:
        for node in self.nodes.values():
            if isinstance(node, STE):
                yield node

    def counters(self) -> Iterator[CounterNode]:
        for node in self.nodes.values():
            if isinstance(node, CounterNode):
                yield node

    def bit_vectors(self) -> Iterator[BitVectorNode]:
        for node in self.nodes.values():
            if isinstance(node, BitVectorNode):
                yield node

    def outgoing(self, node_id: str) -> list[Connection]:
        return [c for c in self.connections if c.source == node_id]

    def incoming(self, node_id: str) -> list[Connection]:
        return [c for c in self.connections if c.target == node_id]

    def reporting_nodes(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.report]

    # -- statistics (Fig. 9 plots "# of MNRL nodes") ---------------------------
    def node_count(self) -> int:
        return len(self.nodes)

    def ste_count(self) -> int:
        return sum(1 for _ in self.stes())

    def counter_count(self) -> int:
        return sum(1 for _ in self.counters())

    def bit_vector_count(self) -> int:
        return sum(1 for _ in self.bit_vectors())

    def bit_vector_bits(self) -> int:
        """Total *live* bit-vector bits (bounds, not allocated sizes)."""
        return sum(bv.hi for bv in self.bit_vectors())

    def merge(self, other: "Network", prefix: str = "") -> dict[str, str]:
        """Copy ``other`` into this network, prefixing ids; returns the
        id mapping.  Used to assemble whole-benchmark networks from
        per-rule compilations (the hardware banks run many rules side
        by side)."""
        mapping: dict[str, str] = {}
        for node_id, node in other.nodes.items():
            new_id = f"{prefix}{node_id}"
            mapping[node_id] = new_id
            clone = _clone_node(node, new_id)
            self.add(clone)
        for conn in other.connections:
            self.connect(
                mapping[conn.source],
                conn.source_port,
                mapping[conn.target],
                conn.target_port,
            )
        return mapping

    # -- surgery (used by the optimisation passes) ---------------------------
    def remove_nodes(self, node_ids: Iterable[str]) -> None:
        """Drop ``node_ids`` and every connection touching them."""
        doomed = set(node_ids)
        if not doomed:
            return
        missing = doomed - self.nodes.keys()
        if missing:
            raise KeyError(f"cannot remove unknown nodes {sorted(missing)}")
        for node_id in doomed:
            del self.nodes[node_id]
        self.connections = [
            c
            for c in self.connections
            if c.source not in doomed and c.target not in doomed
        ]
        self._conn_keys = {
            (c.source, c.source_port, c.target, c.target_port)
            for c in self.connections
        }

    def merge_nodes(self, mapping: dict[str, str]) -> None:
        """Fold each key of ``mapping`` into its value.

        Every connection endpoint naming a dropped node is redirected to
        the kept node (chains like ``a -> b -> c`` resolve to ``c``);
        duplicate connections produced by the redirect collapse.  The
        caller guarantees the merged nodes are behaviourally identical
        (same symbol set / start / report metadata) -- this method only
        performs the graph surgery.
        """
        if not mapping:
            return

        def resolve(node_id: str) -> str:
            seen = set()
            while node_id in mapping:
                if node_id in seen:
                    raise ValueError(f"merge cycle through {node_id!r}")
                seen.add(node_id)
                node_id = mapping[node_id]
            return node_id

        for drop, keep in mapping.items():
            if drop not in self.nodes or resolve(keep) not in self.nodes:
                raise KeyError(f"unknown node in merge {drop!r} -> {keep!r}")
        keys: set[tuple[str, str, str, str]] = set()
        merged: list[Connection] = []
        for conn in self.connections:
            key = (
                resolve(conn.source),
                conn.source_port,
                resolve(conn.target),
                conn.target_port,
            )
            if key in keys:
                continue
            keys.add(key)
            merged.append(Connection(*key))
        for drop in mapping:
            del self.nodes[drop]
        self.connections = merged
        self._conn_keys = keys

    def rename_nodes(self, mapping: dict[str, str]) -> None:
        """Give nodes new ids (order preserved, wiring rewritten)."""
        if not mapping:
            return
        for old, new in mapping.items():
            if old not in self.nodes:
                raise KeyError(f"cannot rename unknown node {old!r}")
            if new in self.nodes and new not in mapping:
                raise ValueError(f"rename target id {new!r} already in use")
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("rename targets collide")
        renamed: dict[str, Node] = {}
        for node_id, node in self.nodes.items():
            new_id = mapping.get(node_id, node_id)
            node.id = new_id
            renamed[new_id] = node
        self.nodes = renamed
        self.connections = [
            Connection(
                mapping.get(c.source, c.source),
                c.source_port,
                mapping.get(c.target, c.target),
                c.target_port,
            )
            for c in self.connections
        ]
        self._conn_keys = {
            (c.source, c.source_port, c.target, c.target_port)
            for c in self.connections
        }

    def validate(self) -> None:
        """Structural sanity: counters/bit-vectors fully wired.

        Each counter needs ``fst`` and ``lst`` drivers (``pre`` may be
        replaced by a start attribute); each bit vector needs a
        ``body`` driver.
        """
        for node in self.nodes.values():
            if isinstance(node, CounterNode):
                ports = {c.target_port for c in self.incoming(node.id)}
                if "fst" not in ports or "lst" not in ports:
                    raise ValueError(f"counter {node.id} missing fst/lst wiring")
                if "pre" not in ports and node.start is StartType.NONE:
                    raise ValueError(f"counter {node.id} has no pre and no start")
            elif isinstance(node, BitVectorNode):
                ports = {c.target_port for c in self.incoming(node.id)}
                if "body" not in ports:
                    raise ValueError(f"bit vector {node.id} missing body wiring")
                if "pre" not in ports and node.start is StartType.NONE:
                    raise ValueError(f"bit vector {node.id} has no pre and no start")


def _clone_node(node: Node, new_id: str) -> Node:
    if isinstance(node, STE):
        return STE(new_id, node.symbol_set, node.start, node.report, node.report_id)
    if isinstance(node, CounterNode):
        return CounterNode(
            new_id, node.lo, node.hi, node.start, node.report, node.report_id, node.width
        )
    if isinstance(node, BitVectorNode):
        return BitVectorNode(
            new_id, node.lo, node.hi, node.start, node.report, node.report_id, node.size
        )
    raise TypeError(f"unknown node type {type(node).__name__}")
