"""MNRL-style node types, extended with counter and bit-vector elements.

MNRL [Angstadt et al. 2017] is the open JSON interchange format for
automata processors; the paper's compiler emits MNRL and "extend[s] the
MNRL format by adding syntax for counters and bit vectors" because the
stock ``upCounter`` cannot distinguish counter-ambiguous from
counter-unambiguous repetition (Section 4.2).

Node types:

* :class:`STE` -- a state transition element: one character class, an
  enable input, an activate output (MNRL ``hState``);
* :class:`CounterNode` -- the paper's counter module (Fig. 6): inputs
  ``pre``/``fst``/``lst``, outputs ``en_fst``/``en_out``, programmed
  with the repetition bounds ``[lo, hi]``;
* :class:`BitVectorNode` -- the paper's bit-vector module (Fig. 7):
  inputs ``pre``/``body``, outputs ``en_body``/``en_out``, a
  serial-in-parallel-out shift register of ``hi`` live bits supporting
  reset / setFirst / shift / disjunct.

Port timing convention (matches the hardware, Section 4.3: "state
matching and counter/bit-vector operations can be performed within a
single clock cycle"): ``fst``/``lst``/``body`` are same-cycle signals,
``pre`` is latched (the module reacts to ``pre`` one cycle later), and
``en_*`` outputs enable downstream STEs for the *next* cycle while
feeding nested modules' same-cycle inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..regex.charclass import CharClass

__all__ = [
    "StartType",
    "PortDirection",
    "STE",
    "CounterNode",
    "BitVectorNode",
    "Node",
    "INPUT_PORTS",
    "OUTPUT_PORTS",
]


class StartType(Enum):
    """STE/module start behaviour (AP terminology).

    ``NONE``: enabled only by incoming signals.  ``START_OF_DATA``:
    additionally enabled on the first symbol (anchored ``^``).
    ``ALL_INPUT``: enabled on every symbol (the implicit ``Sigma*``
    prefix of unanchored search patterns, without wasting an STE on a
    Sigma self-loop).
    """

    NONE = "none"
    START_OF_DATA = "start-of-data"
    ALL_INPUT = "all-input"


class PortDirection(Enum):
    IN = "in"
    OUT = "out"


@dataclass
class STE:
    """State transition element: a homogeneous NFA state in memory.

    ``symbol_set`` is the predicate stored in the CAM/RAM column;
    ``report`` marks accepting STEs (reports fire on activation).
    """

    id: str
    symbol_set: CharClass
    start: StartType = StartType.NONE
    report: bool = False
    report_id: Optional[str] = None

    kind = "hState"


@dataclass
class CounterNode:
    """Counter module for counter-unambiguous repetition (Fig. 6).

    Semantics per processing cycle (1-based iteration count ``c``):

    * ``fst`` active and ``pre`` was active last cycle -> ``c := 1``
      (a new pass begins; reset-wins, as in the paper's constraint 1);
    * ``fst`` active and ``pre`` was not active last cycle -> ``c++``
      (a loop-back completed one pass; constraint 2);
    * ``en_out`` fires iff ``lst`` is active and ``lo <= c <= hi``
      (constraint 3);
    * ``en_fst`` fires iff ``lst`` is active and ``c < hi``
      (constraint 4 -- another pass is still allowed).

    The paper words constraints 3-4 on a 0-based completed-loop count;
    holding the 1-based pass index instead is the same circuit with
    shifted comparator constants (see DESIGN.md, decision 5).
    ``start`` plays the role of an always/at-start ``pre`` for
    repetitions at the beginning of the pattern.
    """

    id: str
    lo: int
    hi: int
    start: StartType = StartType.NONE
    report: bool = False
    report_id: Optional[str] = None
    #: physical register width in bits (Table 2 uses 17-bit counters)
    width: int = 17

    kind = "counter"

    def __post_init__(self):
        if not (0 <= self.lo <= self.hi):
            raise ValueError(f"bad counter bounds [{self.lo}, {self.hi}]")
        if self.hi >= (1 << self.width):
            raise ValueError(
                f"bound {self.hi} does not fit in a {self.width}-bit counter"
            )


@dataclass
class BitVectorNode:
    """Bit-vector module for counter-ambiguous repetition (Fig. 7).

    Holds a shift register ``v`` with ``hi`` live bits; bit ``i``
    (1-based) says "a token with count ``i`` is present".  Per cycle:

    * body STE active: ``v := shift(v)``, then ``setFirst`` if ``pre``
      was active last cycle (a new token entered with count 1);
    * body STE inactive: ``reset`` (all in-flight tokens died);
    * ``en_out`` = disjunct of bits ``lo..hi`` (exit allowed);
    * ``en_body`` = ``pre`` active now, or disjunct of bits
      ``1..hi-1`` (some token may still iterate).

    ``size`` is the *allocated* physical length (the hardware provides
    2000-bit modules that "can be broken down to segments"; unused bits
    are the "waste" series of Fig. 10).
    """

    id: str
    lo: int
    hi: int
    start: StartType = StartType.NONE
    report: bool = False
    report_id: Optional[str] = None
    #: physical bits reserved for this node (>= hi)
    size: Optional[int] = None

    kind = "boundedBitVector"

    def __post_init__(self):
        if not (0 <= self.lo <= self.hi):
            raise ValueError(f"bad bit-vector bounds [{self.lo}, {self.hi}]")
        if self.size is None:
            self.size = self.hi
        if self.size < self.hi:
            raise ValueError(f"bit-vector size {self.size} below bound {self.hi}")


Node = STE | CounterNode | BitVectorNode

#: Legal input ports per node kind.
INPUT_PORTS = {
    "hState": ("i",),
    "counter": ("pre", "fst", "lst"),
    "boundedBitVector": ("pre", "body"),
}

#: Legal output ports per node kind.
OUTPUT_PORTS = {
    "hState": ("o",),
    "counter": ("en_fst", "en_out"),
    "boundedBitVector": ("en_body", "en_out"),
}

#: Module input ports whose signal is latched one cycle (see module
#: docstrings); all other ports are same-cycle.
LATCHED_PORTS = {"pre"}
