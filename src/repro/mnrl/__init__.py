"""MNRL-style automaton networks, extended with counter/bit-vector nodes."""

from .network import Connection, Network
from .nodes import (
    BitVectorNode,
    CounterNode,
    INPUT_PORTS,
    Node,
    OUTPUT_PORTS,
    PortDirection,
    STE,
    StartType,
)
from .serialize import dumps, load, loads, network_from_dict, network_to_dict, save

__all__ = [
    "Network",
    "Connection",
    "STE",
    "CounterNode",
    "BitVectorNode",
    "Node",
    "StartType",
    "PortDirection",
    "INPUT_PORTS",
    "OUTPUT_PORTS",
    "network_to_dict",
    "network_from_dict",
    "dumps",
    "loads",
    "save",
    "load",
]
