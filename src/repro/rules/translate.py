r"""Translate parsed Snort rules into the project regex dialect.

Every rule ends in exactly one of three buckets (the FastSNAP
convertible-vs-rejected split, refined):

* translated with **zero** transformations -- triage ``compiled``;
* translated with recorded transformations (``nocase`` folded to
  ``(?i:...)``, anchoring windows lowered to bounded counting
  ``.{m,n}``, hex blocks respelled as ``\xHH``, payload elements
  joined with gaps) -- triage ``rewritten``;
* untranslatable, with a machine-readable reason code
  (:data:`REASONS` maps every code to its meaning) -- triage
  ``rejected``.

The lowering is conservative: anything whose byte-level language we
cannot reproduce exactly under the project's match-reporting
conventions is rejected, never approximated silently.

>>> from repro.rules.parser import parse_rule
>>> rule = parse_rule('alert tcp any any -> any any '
...                   '(content:"user"; nocase; sid:1;)')
>>> translation = translate_rule(rule)
>>> (translation.pattern, translation.transformations)
('(?i:user)', ('nocase',))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..regex.errors import RegexSyntaxError, UnsupportedFeatureError
from ..regex.parser import parse
from .model import ContentOption, PcreOption, SnortRule

__all__ = [
    "Translation",
    "RuleRejected",
    "translate_rule",
    "escape_bytes",
    "REASONS",
    "TRANSFORMATIONS",
]

# -- machine-readable triage vocabulary ------------------------------------
#: rejection reason codes -> human meaning (the full closed set; every
#: rejected rule carries exactly one of these)
REASONS: dict[str, str] = {
    "syntax-error": "the rule line does not fit the supported grammar",
    "no-payload-pattern": "no content or pcre option to match on",
    "negated-content": "content:!\"...\" absence checks have no regex equivalent",
    "negated-pcre": "pcre:!\"...\" absence checks have no regex equivalent",
    "unsupported-option": "a match-affecting option outside the supported subset",
    "window-too-small": "depth/within window shorter than the content itself",
    "mid-rule-absolute-position": "offset/depth on a non-leading content "
    "needs a mid-pattern absolute anchor",
    "negative-position": "negative offset/distance windows are not lowered",
    "pcre-backreference": "backreferences are irregular (Table 1 unsupported)",
    "pcre-lookaround": "lookahead/lookbehind groups are not supported",
    "pcre-word-boundary": "\\b/\\B zero-width assertions are not supported",
    "pcre-anchor-conflict": "pcre anchors clash with surrounding payload elements",
    "pcre-unsupported-modifier": "a pcre flag outside the supported i/s/m/R set",
    "pcre-unsupported-feature": "a pcre construct outside the project dialect",
    "pcre-syntax-error": "the pcre body does not parse",
    "compile-skipped": "accepted by triage but skipped by compile_ruleset",
    "duplicate-id": "an earlier rule with the same sid was kept",
}

#: transformation codes a ``rewritten`` rule may carry -> meaning
TRANSFORMATIONS: dict[str, str] = {
    "nocase": "content nocase folded to a scoped (?i:...) group",
    "hex-block": "|AA BB| hex bytes respelled as \\xHH literals",
    "offset-depth-window": "absolute offset/depth lowered to ^.{m,n}",
    "distance-within-gap": "relative distance/within lowered to .{m,n}",
    "content-join": "consecutive payload elements joined with .*",
    "pcre-relative": "pcre /R relative match lowered onto the previous "
    "element's end",
    "pcre-flags": "pcre /i flag folded to a scoped (?i:...) group",
    "buffer-collapse": "HTTP/file buffer selectors collapsed into the "
    "single-payload view",
}

#: options that gate matching on computations the regex dialect cannot
#: express; their presence rejects the rule
REJECT_OPTIONS = frozenset(
    [
        "byte_test", "byte_jump", "byte_extract", "byte_math",
        "isdataat", "base64_decode", "base64_data", "dsize", "urilen",
        "bufferlen", "asn1", "cvs", "dce_iface", "dce_opnum",
        "dce_stub_data", "ssl_state", "ssl_version",
    ]
)

#: regex metacharacters in the project dialect (escaped when emitting
#: content bytes as pattern text)
_METAS = frozenset(b"\\^$.|?*+()[]{}")


@dataclass(frozen=True)
class Translation:
    """A successful lowering: the dialect pattern + what was changed."""

    pattern: str
    transformations: tuple[str, ...] = ()


class RuleRejected(Exception):
    """Raised when a rule cannot be lowered; carries the reason code."""

    def __init__(self, code: str, detail: str = ""):
        assert code in REASONS, code
        self.code = code
        self.detail = detail
        super().__init__(f"{code}: {detail}" if detail else code)


def escape_bytes(data: bytes) -> str:
    r"""Spell raw bytes as a dialect regex literal.

    >>> escape_bytes(b'a.b\x00')
    'a\\.b\\x00'
    """
    out: list[str] = []
    for byte in data:
        if byte in _METAS:
            out.append("\\" + chr(byte))
        elif 0x20 <= byte <= 0x7E:
            out.append(chr(byte))
        else:
            out.append(f"\\x{byte:02x}")
    return "".join(out)


def _window(lo: int, hi: Optional[int]) -> str:
    """A bounded-counting gap ``.{lo,hi}`` (empty when degenerate)."""
    if hi is None:
        return ".*" if lo == 0 else f".{{{lo},}}"
    if lo == 0 and hi == 0:
        return ""
    return f".{{{lo},{hi}}}"


def _content_core(content: ContentOption, transformations: list[str]) -> str:
    body = escape_bytes(content.data)
    if content.had_hex:
        _record(transformations, "hex-block")
    if content.nocase:
        body = f"(?i:{body})"
        _record(transformations, "nocase")
    return body


def _record(transformations: list[str], code: str) -> None:
    if code not in transformations:
        transformations.append(code)


def _leading_window(
    content: ContentOption, transformations: list[str]
) -> tuple[str, bool]:
    """Lower offset/depth (or leading distance/within) to ``^.{m,n}``.

    Returns ``(prefix, anchored)``; an unwindowed leading content stays
    unanchored (the scan engine's Sigma* search form handles it).
    """
    offset = content.offset if content.offset is not None else content.distance
    depth = content.depth if content.depth is not None else content.within
    if offset is None and depth is None:
        return "", False
    lo = offset or 0
    if lo < 0:
        raise RuleRejected("negative-position", f"offset {lo}")
    if depth is not None:
        if depth < len(content.data):
            raise RuleRejected(
                "window-too-small",
                f"depth {depth} < content length {len(content.data)}",
            )
        hi: Optional[int] = lo + depth - len(content.data)
    else:
        hi = None
    _record(transformations, "offset-depth-window")
    return "^" + _window(lo, hi), True


def _gap(content: ContentOption, transformations: list[str]) -> str:
    """Lower distance/within on a non-leading content to a gap."""
    if content.offset is not None or content.depth is not None:
        raise RuleRejected(
            "mid-rule-absolute-position",
            f"offset/depth on non-leading content {content.data!r}",
        )
    if content.distance is None and content.within is None:
        _record(transformations, "content-join")
        return ".*"
    lo = content.distance or 0
    if lo < 0:
        raise RuleRejected("negative-position", f"distance {lo}")
    if content.within is not None:
        if content.within < len(content.data):
            raise RuleRejected(
                "window-too-small",
                f"within {content.within} < content length {len(content.data)}",
            )
        hi: Optional[int] = lo + content.within - len(content.data)
    else:
        hi = None
    _record(transformations, "distance-within-gap")
    return _window(lo, hi)


#: pcre flags with an exact lowering (i -> (?i:...), s is a no-op
#: because the dialect ``.`` already spans all 256 byte values, R
#: concatenates directly after the previous element)
_PCRE_OK_FLAGS = frozenset("isR")


def _pcre_parts(
    pcre: PcreOption, first: bool, last: bool, solo: bool
) -> tuple[str, bool, bool, bool, list[str]]:
    """Lower one pcre element.

    Returns ``(core, anchored_start, anchored_end, relative,
    transformations)`` where ``core`` excludes the anchors (re-applied
    by the caller at the pattern edges).
    """
    if pcre.negated:
        raise RuleRejected("negated-pcre", f"/{pcre.pattern}/")
    transformations: list[str] = []
    flags = set(pcre.flags)
    bad = flags - _PCRE_OK_FLAGS - {"m"}
    if bad:
        raise RuleRejected("pcre-unsupported-modifier", "".join(sorted(bad)))
    try:
        parsed = parse(pcre.pattern)
    except UnsupportedFeatureError as err:
        raise RuleRejected(*_classify_feature(err.feature)) from None
    except RegexSyntaxError as err:
        raise RuleRejected("pcre-syntax-error", str(err)) from None
    if "m" in flags and (parsed.anchored_start or parsed.anchored_end):
        # multiline re-binds ^/$ to line boundaries; our anchors are
        # stream edges, so the languages genuinely differ
        raise RuleRejected("pcre-unsupported-modifier", "m with anchors")
    relative = "R" in flags
    if parsed.anchored_start and not first and not relative:
        # ^ without /R is an absolute payload-start anchor; mid-pattern
        # it has no lowering (with /R it just pins the relative gap to
        # zero, handled by the caller)
        raise RuleRejected("pcre-anchor-conflict", "^ after another element")
    if parsed.anchored_end and not last:
        raise RuleRejected("pcre-anchor-conflict", "$ before another element")

    core = pcre.pattern
    if parsed.anchored_start:
        core = core[1:]
    if parsed.anchored_end:
        core = core[:-1]
    if "i" in flags:
        core = f"(?i:{core})"
        _record(transformations, "pcre-flags")
    elif not solo:
        # grouping protects surrounding concatenation from top-level
        # alternation in the pcre body
        core = f"(?:{core})"
    return core, parsed.anchored_start, parsed.anchored_end, relative, transformations


def _classify_feature(feature: str) -> tuple[str, str]:
    if "backreference" in feature:
        return "pcre-backreference", feature
    if "look" in feature:
        return "pcre-lookaround", feature
    if "word boundary" in feature:
        return "pcre-word-boundary", feature
    return "pcre-unsupported-feature", feature


def translate_rule(rule: SnortRule) -> Translation:
    """Lower one parsed rule; raises :class:`RuleRejected` otherwise.

    >>> from repro.rules.parser import parse_rule
    >>> windowed = parse_rule('alert tcp any any -> any any '
    ...     '(content:"AB"; offset:4; depth:6; sid:2;)')
    >>> translate_rule(windowed).pattern
    '^.{4,8}AB'
    """
    for key, _value in rule.options:
        if key in REJECT_OPTIONS:
            raise RuleRejected("unsupported-option", key)
    if not rule.payload:
        raise RuleRejected("no-payload-pattern")
    for element in rule.payload:
        if isinstance(element, ContentOption) and element.negated:
            raise RuleRejected("negated-content", repr(element.data))

    transformations: list[str] = []
    if rule.buffers:
        _record(transformations, "buffer-collapse")

    solo = len(rule.payload) == 1
    parts: list[str] = []
    anchored_start = False
    anchored_end = False
    for index, element in enumerate(rule.payload):
        first = index == 0
        last = index == len(rule.payload) - 1
        if isinstance(element, ContentOption):
            if first:
                prefix, anchored_start = _leading_window(element, transformations)
                parts.append(prefix)
            else:
                parts.append(_gap(element, transformations))
            parts.append(_content_core(element, transformations))
        else:
            core, a_start, a_end, relative, pcre_transforms = _pcre_parts(
                element, first, last, solo
            )
            for code in pcre_transforms:
                _record(transformations, code)
            if first:
                anchored_start = a_start
            elif relative:
                # /R pins the search region to the previous match's
                # end: a ^-anchored body concatenates directly, an
                # unanchored one still floats within the region
                _record(transformations, "pcre-relative")
                if not a_start:
                    parts.append(".*")
            else:
                _record(transformations, "content-join")
                parts.append(".*")
            if a_end:
                anchored_end = True
            parts.append(core)

    pattern = "".join(parts)
    if anchored_start and not pattern.startswith("^"):
        pattern = "^" + pattern
    if anchored_end:
        pattern = pattern + "$"
    try:
        parse(pattern)
    except Exception as err:  # pragma: no cover - lowering invariant
        raise RuleRejected("pcre-syntax-error", f"lowered pattern: {err}") from None
    return Translation(pattern=pattern, transformations=tuple(transformations))
