"""Load ``.rules`` files end-to-end: parse, triage, compile.

The one-stop entry points:

* :func:`load_rules_text` -- triage rule text (doctest-friendly);
* :func:`load_rules` -- same over one or many files on disk;
* :meth:`LoadedRuleset.compile` -- feed the accepted rules into
  :class:`~repro.matching.RulesetMatcher` (sharing the sha256
  persistent cache via ``cache_dir``) and fold any compile-level skips
  back into the triage report, so the final report accounts for 100%
  of the ingested rules.

>>> loaded = load_rules_text('''
... alert tcp any any -> any 80 (msg:"probe"; content:"GET /admin"; sid:1;)
... alert tcp any any -> any any (pcre:"/(x)\\\\1/"; sid:2;)
... ''')
>>> loaded.report.counts
{'compiled': 1, 'rewritten': 0, 'rejected': 1}
>>> loaded.rules
[('sid:1', 'GET /admin', '<rules>:2')]
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from .model import SourceLocation
from .parser import RuleSyntaxError, iter_rule_lines, parse_rule
from .triage import TriagedRule, TriageReport, triage_rule, triage_rules

__all__ = ["LoadedRuleset", "load_rules", "load_rules_text"]


@dataclass
class LoadedRuleset:
    """A triaged ruleset ready to compile."""

    report: TriageReport
    files: tuple[str, ...] = ()

    @property
    def rules(self) -> list[tuple[str, str, Optional[str]]]:
        """Accepted rules as sourced ``(rule_id, pattern, origin)``
        triples -- feed these to :class:`~repro.matching.RulesetMatcher`
        or :func:`~repro.compiler.pipeline.compile_ruleset` directly."""
        return self.report.patterns()

    def compile(self, cache_dir: Optional[str] = None, **options):
        """Compile the accepted rules; returns ``(matcher, report)``.

        The matcher is a :class:`~repro.matching.RulesetMatcher`
        (``cache_dir`` enables the persistent artifact cache); the
        report is this load's triage with compile-level skips folded in
        via :meth:`TriageReport.with_compile_skips`, so every rule is
        still classified after compilation.
        """
        from ..matching import RulesetMatcher

        matcher = RulesetMatcher(self.rules, cache_dir=cache_dir, **options)
        return matcher, self.report.with_compile_skips(matcher.skipped)


def _triage_text(text: str, file: str) -> list[TriagedRule]:
    triaged: list[TriagedRule] = []
    label = os.path.basename(file) if file != "<rules>" else file
    for line_number, line in iter_rule_lines(text, file=file):
        location = SourceLocation(label, line_number)
        try:
            rule = parse_rule(line, location=location)
        except RuleSyntaxError as err:
            triaged.append(
                TriagedRule(
                    rule_id=str(location),
                    status="rejected",
                    reason="syntax-error",
                    detail=err.message,
                    origin=str(location),
                )
            )
            continue
        triaged.append(triage_rule(rule))
    return triaged


def load_rules_text(text: str, file: str = "<rules>") -> LoadedRuleset:
    """Triage Snort-style rule text without touching the filesystem.

    >>> loaded = load_rules_text(
    ...     'alert tcp any any -> any 80 (content:"GET"; nocase; sid:9;)')
    >>> loaded.report.counts
    {'compiled': 0, 'rewritten': 1, 'rejected': 0}
    >>> loaded.rules
    [('sid:9', '(?i:GET)', '<rules>:1')]
    """
    return LoadedRuleset(
        report=triage_rules(_triage_text(text, file)), files=(file,)
    )


def load_rules(paths: Union[str, Iterable[str]]) -> LoadedRuleset:
    """Triage one or many ``.rules`` files.

    Accepts a single path or an iterable of paths; rules from all
    files share one id namespace (duplicate sids across files are
    rejected with ``duplicate-id``, first occurrence wins).
    """
    if isinstance(paths, (str, os.PathLike)):
        paths = [paths]
    files = [os.fspath(path) for path in paths]
    triaged: list[TriagedRule] = []
    for path in files:
        with open(path, "r", encoding="utf-8", errors="surrogateescape") as handle:
            triaged.extend(_triage_text(handle.read(), file=path))
    return LoadedRuleset(report=triage_rules(triaged), files=tuple(files))
