"""Snort/PCRE ruleset ingestion frontend (parse -> translate -> triage).

The gateway from real IDS rule files to the in-memory matching stack:
a tokenizer/parser for Snort-style rule lines (:mod:`.parser`), a
byte-exact ``content`` string codec (:mod:`.content`), a conservative
translator into the project regex dialect (:mod:`.translate`), and a
triage layer that classifies **every** rule as ``compiled``,
``rewritten`` (with the applied transformations), or ``rejected`` with
a machine-readable reason (:mod:`.triage`) -- then feeds the accepted
patterns straight into :func:`repro.compiler.pipeline.compile_ruleset`
and the persistent ruleset cache (:mod:`.loader`).

Quickstart::

    from repro import load_rules

    loaded = load_rules("community.rules")
    print(loaded.report.summary())
    matcher, report = loaded.compile(cache_dir=".cache")
    print(matcher.scan(b"GET /admin HTTP/1.1").matches)

See ``docs/RULES.md`` for the grammar subset, the translation table,
and the triage reason codes.
"""

from .content import ContentError, decode_content, encode_content
from .loader import LoadedRuleset, load_rules, load_rules_text
from .model import ContentOption, PcreOption, SnortRule, SourceLocation
from .parser import RuleSyntaxError, iter_rule_lines, parse_rule, split_options
from .translate import (
    REASONS,
    TRANSFORMATIONS,
    RuleRejected,
    Translation,
    escape_bytes,
    translate_rule,
)
from .triage import STATUSES, TriagedRule, TriageReport, triage_rule, triage_rules

__all__ = [
    # content codec
    "ContentError",
    "decode_content",
    "encode_content",
    # model
    "SourceLocation",
    "ContentOption",
    "PcreOption",
    "SnortRule",
    # parser
    "RuleSyntaxError",
    "parse_rule",
    "split_options",
    "iter_rule_lines",
    # translation
    "Translation",
    "RuleRejected",
    "translate_rule",
    "escape_bytes",
    "REASONS",
    "TRANSFORMATIONS",
    # triage
    "STATUSES",
    "TriagedRule",
    "TriageReport",
    "triage_rule",
    "triage_rules",
    # loading
    "LoadedRuleset",
    "load_rules",
    "load_rules_text",
]
