r"""Snort ``content`` string codec.

A Snort ``content:"..."`` pattern mixes three lexical layers inside
one quoted string: plain ASCII text, backslash escapes for the
characters the rule grammar reserves (``\;``, ``\"``, ``\\``, ``\|``,
``\:``), and ``|AA BB|`` hex blocks for arbitrary bytes.  This module
is the byte-exact codec between that surface syntax and plain
``bytes`` -- the property the round-trip tests pin is
``decode_content(encode_content(data))[0] == data`` for every byte
string.

>>> decode_content("GET|20 2F|admin")
(b'GET /admin', True)
>>> decode_content(r'a\;b')
(b'a;b', False)
>>> encode_content(b"a;b\x00")
'a\\;b|00|'
"""

from __future__ import annotations

__all__ = ["ContentError", "decode_content", "encode_content"]

#: characters that must be backslash-escaped in the text layer (the
#: rule grammar reserves them: option separator, quote, escape, hex
#: delimiter, key separator)
SPECIAL_CHARS = frozenset('\\";:|')

_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


class ContentError(ValueError):
    """A ``content`` string that does not decode to bytes."""


def decode_content(text: str) -> tuple[bytes, bool]:
    r"""Decode a ``content`` pattern into ``(data, had_hex)``.

    ``had_hex`` records whether any ``|...|`` hex block appeared --
    the triage layer reports that as a ``hex-block`` transformation
    because the translated regex spells those bytes as ``\xHH``
    literals rather than source text.

    >>> decode_content("|41 42|C")
    (b'ABC', True)
    >>> decode_content("plain")
    (b'plain', False)
    """
    out = bytearray()
    had_hex = False
    i = 0
    in_hex = False
    while i < len(text):
        ch = text[i]
        if in_hex:
            if ch == "|":
                in_hex = False
                i += 1
            elif ch in " \t":
                i += 1
            else:
                pair = text[i : i + 2]
                if len(pair) < 2 or any(c not in _HEX_DIGITS for c in pair):
                    raise ContentError(f"bad hex byte {pair!r} in hex block")
                out.append(int(pair, 16))
                had_hex = True
                i += 2
        elif ch == "|":
            in_hex = True
            i += 1
        elif ch == "\\":
            if i + 1 >= len(text):
                raise ContentError("dangling backslash in content")
            escaped = text[i + 1]
            if ord(escaped) > 0xFF:
                raise ContentError(f"escaped character {escaped!r} outside byte range")
            out.append(ord(escaped))
            i += 2
        else:
            if ord(ch) > 0xFF:
                raise ContentError(f"character {ch!r} outside byte range")
            out.append(ord(ch))
            i += 1
    if in_hex:
        raise ContentError("unterminated hex block")
    return bytes(out), had_hex


def encode_content(data: bytes) -> str:
    """Encode bytes as a canonical ``content`` pattern.

    Printable ASCII stays literal (reserved characters
    backslash-escaped); everything else lands in ``|..|`` hex blocks,
    with consecutive hex bytes sharing one block.

    >>> encode_content(b'GET /admin\\r\\n')
    'GET /admin|0d 0a|'
    """
    parts: list[str] = []
    hex_run: list[str] = []

    def flush_hex() -> None:
        if hex_run:
            parts.append("|" + " ".join(hex_run) + "|")
            hex_run.clear()

    for byte in data:
        ch = chr(byte)
        if 0x20 <= byte <= 0x7E and ch not in SPECIAL_CHARS:
            flush_hex()
            parts.append(ch)
        elif ch in SPECIAL_CHARS:
            flush_hex()
            parts.append("\\" + ch)
        else:
            hex_run.append(f"{byte:02x}")
    flush_hex()
    return "".join(parts)
