r"""Tokenizer/parser for Snort-style rule lines.

Grammar subset (documented in ``docs/RULES.md``): a rule is a header
-- ``action proto src sport direction dst dport`` -- followed by a
parenthesized option list of ``key:value;`` / ``key;`` entries.
Values may be quoted; inside quotes, backslash escapes (``\;``,
``\"``, ``\\``) and ``|AA BB|`` hex blocks follow the Snort lexical
rules.  ``#`` lines are comments and a trailing backslash continues a
rule onto the next physical line.

The parser is deliberately *total over lines*: any malformed line
raises :class:`RuleSyntaxError` with the source location, which the
triage layer turns into a ``rejected`` entry rather than aborting the
whole file.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .content import ContentError, decode_content
from .model import ContentOption, PcreOption, SnortRule, SourceLocation

__all__ = [
    "RuleSyntaxError",
    "parse_rule",
    "split_options",
    "iter_rule_lines",
]

#: header direction operators the grammar accepts
DIRECTIONS = ("->", "<>", "<-")

#: content modifiers that bind to the preceding ``content`` option
_CONTENT_MODIFIERS = frozenset(
    ["nocase", "offset", "depth", "distance", "within", "fast_pattern", "rawbytes"]
)

#: buffer selectors (Snort2 content modifiers / Snort3 sticky
#: buffers); the translator collapses them into the flat payload view
BUFFER_OPTIONS = frozenset(
    [
        "http_uri", "http_raw_uri", "http_header", "http_raw_header",
        "http_client_body", "http_cookie", "http_raw_cookie",
        "http_method", "http_stat_code", "http_stat_msg",
        "file_data", "pkt_data",
    ]
)


class RuleSyntaxError(ValueError):
    """A rule line that does not fit the supported grammar."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.location = location
        #: the bare message, without the location prefix (for callers
        #: that report the origin separately, e.g. triage details)
        self.message = message
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


def iter_rule_lines(text: str, file: str = "<rules>") -> Iterator[tuple[int, str]]:
    r"""Yield ``(line_number, logical_line)`` for each rule candidate.

    Skips blanks and ``#`` comments; joins backslash-continued lines
    (the line number reported is the first physical line's).

    >>> list(iter_rule_lines("# comment\nalert tcp \\\n  (sid:1;)\n"))
    [(2, 'alert tcp  (sid:1;)')]
    """
    pending: list[str] = []
    start_line = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if pending:
            if line.endswith("\\"):
                pending.append(line[:-1])
                continue
            pending.append(line)
            yield start_line, " ".join(pending)
            pending = []
            continue
        if not line or line.startswith("#"):
            continue
        if line.endswith("\\"):
            pending = [line[:-1]]
            start_line = number
            continue
        yield number, line
    if pending:
        yield start_line, " ".join(pending)


def split_options(body: str) -> list[str]:
    r"""Split the option body on top-level ``;`` separators.

    Quote- and escape-aware: separators inside ``"..."`` strings (or
    escaped as ``\;``) do not split.

    >>> split_options('msg:"a;b"; content:"x\\;y"; sid:1;')
    ['msg:"a;b"', 'content:"x\\;y"', 'sid:1']
    """
    options: list[str] = []
    buf: list[str] = []
    in_quotes = False
    escaped = False
    for ch in body:
        if escaped:
            buf.append(ch)
            escaped = False
            continue
        if ch == "\\":
            buf.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            buf.append(ch)
            continue
        if ch == ";" and not in_quotes:
            chunk = "".join(buf).strip()
            if chunk:
                options.append(chunk)
            buf = []
            continue
        buf.append(ch)
    if in_quotes:
        raise RuleSyntaxError("unterminated quoted string in options")
    tail = "".join(buf).strip()
    if tail:
        # Snort requires a trailing ';' on the last option; accept the
        # bare form for hand-written fixtures
        options.append(tail)
    return options


def _split_rule(line: str) -> tuple[str, str]:
    line = line.strip()
    open_paren = line.find("(")
    if open_paren < 0 or not line.endswith(")"):
        raise RuleSyntaxError("rule has no parenthesized option list")
    return line[:open_paren].strip(), line[open_paren + 1 : -1]


def _unquote(value: Optional[str], key: str) -> tuple[bool, str]:
    """Strip optional ``!`` negation and the surrounding quotes."""
    if not value:
        raise RuleSyntaxError(f"{key} needs a quoted value")
    negated = value.startswith("!")
    if negated:
        value = value[1:].strip()
    if len(value) < 2 or not (value.startswith('"') and value.endswith('"')):
        raise RuleSyntaxError(f"{key} value must be quoted, got {value!r}")
    return negated, value[1:-1]


def _int_value(value: Optional[str], key: str) -> int:
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise RuleSyntaxError(f"{key} needs an integer value, got {value!r}") from None


def _unescape_text(text: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            out.append(text[i + 1])
            i += 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def parse_rule(line: str, location: Optional[SourceLocation] = None) -> SnortRule:
    r"""Parse one logical rule line into a :class:`SnortRule`.

    >>> rule = parse_rule('alert tcp any any -> any 80 '
    ...                   '(msg:"demo"; content:"GET"; nocase; sid:7;)')
    >>> (rule.sid, rule.payload[0].data, rule.payload[0].nocase)
    (7, b'GET', True)
    """
    try:
        header_part, body = _split_rule(line)
    except RuleSyntaxError as err:
        raise RuleSyntaxError(str(err), location) from None
    tokens = tuple(header_part.split())
    if not tokens:
        raise RuleSyntaxError("missing rule header", location)
    if len(tokens) not in (1, 7):
        raise RuleSyntaxError(
            f"malformed header (expected 1 or 7 tokens, got {len(tokens)})", location
        )
    if len(tokens) == 7 and tokens[4] not in DIRECTIONS:
        raise RuleSyntaxError(f"bad direction operator {tokens[4]!r}", location)

    rule = SnortRule(
        action=tokens[0],
        header=tokens,
        location=location,
        raw=line,
    )
    buffers: list[str] = []
    try:
        raw_options = split_options(body)
    except RuleSyntaxError as err:
        raise RuleSyntaxError(str(err), location) from None

    for raw_opt in raw_options:
        key, sep, value_part = raw_opt.partition(":")
        key = key.strip()
        value: Optional[str] = value_part.strip() if sep else None
        rule.options.append((key, value))
        try:
            _apply_option(rule, buffers, key, value)
        except RuleSyntaxError as err:
            raise RuleSyntaxError(str(err), location) from None
        except ContentError as err:
            raise RuleSyntaxError(f"bad content: {err}", location) from None
    rule.buffers = tuple(buffers)
    return rule


def _last_content(rule: SnortRule, key: str) -> ContentOption:
    for element in reversed(rule.payload):
        if isinstance(element, ContentOption):
            return element
    raise RuleSyntaxError(f"{key} with no preceding content")


def _apply_option(
    rule: SnortRule, buffers: list[str], key: str, value: Optional[str]
) -> None:
    if key == "content":
        negated, text = _unquote(value, key)
        data, had_hex = decode_content(text)
        if not data:
            raise RuleSyntaxError("empty content pattern")
        rule.payload.append(
            ContentOption(data=data, negated=negated, had_hex=had_hex)
        )
    elif key == "pcre":
        negated, text = _unquote(value, key)
        if not text.startswith("/"):
            raise RuleSyntaxError(f"pcre must be /re/flags, got {text!r}")
        close = text.rfind("/")
        if close == 0:
            raise RuleSyntaxError(f"unterminated pcre {text!r}")
        rule.payload.append(
            PcreOption(
                pattern=text[1:close], flags=text[close + 1 :], negated=negated
            )
        )
    elif key in _CONTENT_MODIFIERS:
        content = _last_content(rule, key)
        if key == "nocase":
            content.nocase = True
        elif key == "fast_pattern":
            content.fast_pattern = True
        elif key == "rawbytes":
            pass  # raw-payload selector: our payload view is already raw
        else:
            setattr(content, key, _int_value(value, key))
    elif key in BUFFER_OPTIONS:
        buffers.append(key)
    elif key == "sid":
        rule.sid = _int_value(value, key)
    elif key == "rev":
        rule.rev = _int_value(value, key)
    elif key == "msg":
        _, text = _unquote(value, key)
        rule.msg = _unescape_text(text)
    # every other option (flow, classtype, metadata, byte_test, ...) is
    # kept verbatim in rule.options; the translator decides which of
    # them make the rule untranslatable
