"""Parsed-rule data model for the Snort ingestion frontend.

One :class:`SnortRule` per logical rule line: the header tokens, the
raw option list in source order, and the *payload plan* -- the ordered
:class:`ContentOption` / :class:`PcreOption` elements the translator
turns into one project-dialect regex.  Everything keeps its
:class:`SourceLocation` so triage reports and compile-time skip
reasons can point back at ``file:line``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "SourceLocation",
    "ContentOption",
    "PcreOption",
    "SnortRule",
]


@dataclass(frozen=True)
class SourceLocation:
    """Where a rule came from: file path and 1-based line number.

    >>> str(SourceLocation("local.rules", 12))
    'local.rules:12'
    """

    file: str
    line: int

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass
class ContentOption:
    """One ``content:"..."`` pattern plus the modifiers bound to it.

    ``offset``/``depth`` window the match absolutely from the payload
    start; ``distance``/``within`` window it relative to the end of the
    previous payload element.  ``had_hex`` records whether the source
    spelled any bytes as ``|AA BB|`` hex blocks.
    """

    data: bytes
    negated: bool = False
    nocase: bool = False
    had_hex: bool = False
    offset: Optional[int] = None
    depth: Optional[int] = None
    distance: Optional[int] = None
    within: Optional[int] = None
    fast_pattern: bool = False


@dataclass
class PcreOption:
    """One ``pcre:"/.../flags"`` option (delimiters stripped)."""

    pattern: str
    flags: str = ""
    negated: bool = False


@dataclass
class SnortRule:
    """One parsed Snort-style rule.

    ``payload`` holds the match-relevant elements in source order;
    ``options`` keeps every ``(key, value)`` as written (for reporting
    and forward-compat inspection); ``buffers`` lists HTTP/file buffer
    selectors seen anywhere in the rule (``http_uri``, ``file_data``,
    ...), which the translator collapses into the single-payload view.
    """

    action: str
    header: tuple[str, ...]
    options: list[tuple[str, Optional[str]]] = field(default_factory=list)
    payload: list[Union[ContentOption, PcreOption]] = field(default_factory=list)
    buffers: tuple[str, ...] = ()
    sid: Optional[int] = None
    rev: Optional[int] = None
    msg: Optional[str] = None
    location: Optional[SourceLocation] = None
    raw: str = ""

    @property
    def rule_id(self) -> str:
        """Stable rule id: ``sid:N`` when a sid is declared, else the
        ``file:line`` origin (every rule in a file set gets one)."""
        if self.sid is not None:
            return f"sid:{self.sid}"
        if self.location is not None:
            return str(self.location)
        return "rule"

    @property
    def origin(self) -> Optional[str]:
        """``file:line`` provenance string (``None`` if unlocated)."""
        return None if self.location is None else str(self.location)
