"""Triage: classify every ingested rule, leave none unaccounted for.

The contract (mirrors FastSNAP's convertible-vs-rejected split, with a
middle bucket for lossless-but-rewritten lowerings): every rule line
that reaches the frontend lands in exactly one of

* ``compiled``  -- translated verbatim, zero transformations;
* ``rewritten`` -- translated with recorded transformation codes;
* ``rejected``  -- untranslatable, with a machine-readable reason code
  from :data:`repro.rules.translate.REASONS` plus a human detail.

``TriageReport.with_compile_skips`` folds the *compiler's* verdicts
back in after :func:`repro.compiler.pipeline.compile_ruleset` runs, so
a rule the translator accepted but the analysis pipeline skipped still
ends up ``rejected`` with its reason -- zero unclassified rules, end
to end.

>>> from repro.rules.parser import parse_rule
>>> report = triage_rules([
...     parse_rule('alert tcp any any -> any any (content:"abc"; sid:1;)'),
...     parse_rule('alert tcp any any -> any any (content:"abc"; nocase; sid:2;)'),
...     parse_rule('alert tcp any any -> any any (pcre:"/(a)\\\\1/"; sid:3;)'),
... ])
>>> report.counts
{'compiled': 1, 'rewritten': 1, 'rejected': 1}
>>> report.rejected[0].reason
'pcre-backreference'
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Union

from .model import SnortRule
from .translate import RuleRejected, translate_rule

__all__ = [
    "STATUSES",
    "TriagedRule",
    "TriageReport",
    "triage_rule",
    "triage_rules",
]

#: the closed status vocabulary
STATUSES = ("compiled", "rewritten", "rejected")


@dataclass(frozen=True)
class TriagedRule:
    """One rule's triage verdict."""

    rule_id: str
    status: str
    pattern: Optional[str] = None
    transformations: tuple[str, ...] = ()
    reason: Optional[str] = None
    detail: Optional[str] = None
    origin: Optional[str] = None
    sid: Optional[int] = None
    msg: Optional[str] = None

    @property
    def accepted(self) -> bool:
        return self.status in ("compiled", "rewritten")

    def as_dict(self) -> dict:
        """JSON-ready view (drops ``None`` fields)."""
        out: dict = {"rule_id": self.rule_id, "status": self.status}
        if self.pattern is not None:
            out["pattern"] = self.pattern
        if self.transformations:
            out["transformations"] = list(self.transformations)
        if self.reason is not None:
            out["reason"] = self.reason
        if self.detail:
            out["detail"] = self.detail
        for key in ("origin", "sid", "msg"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass
class TriageReport:
    """Every ingested rule's verdict, plus aggregate views."""

    rules: list[TriagedRule] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.rules)

    @property
    def counts(self) -> dict[str, int]:
        """Status -> count over the full closed vocabulary (every rule
        is in exactly one bucket; the values sum to ``total``)."""
        counts = {status: 0 for status in STATUSES}
        for rule in self.rules:
            counts[rule.status] += 1
        return counts

    @property
    def accepted(self) -> list[TriagedRule]:
        return [rule for rule in self.rules if rule.accepted]

    @property
    def rejected(self) -> list[TriagedRule]:
        return [rule for rule in self.rules if rule.status == "rejected"]

    def reasons(self) -> dict[str, int]:
        """Rejection reason code -> count."""
        return dict(Counter(r.reason for r in self.rejected))

    def transformations(self) -> dict[str, int]:
        """Transformation code -> number of rules carrying it."""
        counter: Counter = Counter()
        for rule in self.rules:
            counter.update(rule.transformations)
        return dict(counter)

    def patterns(self) -> list[tuple[str, str, Optional[str]]]:
        """Accepted rules as sourced ``(rule_id, pattern, origin)``
        triples -- the shape :class:`~repro.matching.RulesetMatcher`
        and :func:`~repro.compiler.pipeline.compile_ruleset` ingest."""
        return [
            (rule.rule_id, rule.pattern, rule.origin)
            for rule in self.rules
            if rule.accepted and rule.pattern is not None
        ]

    def with_compile_skips(
        self, skipped: Iterable[tuple[str, str]]
    ) -> "TriageReport":
        """Fold compiler skip verdicts into a new report.

        Accepted rules whose id appears in ``skipped`` (the
        ``CompiledRuleset.skipped`` / ``RulesetMatcher.skipped`` list)
        move to ``rejected`` with reason ``compile-skipped`` and the
        compiler's reason string -- which carries the ``file:line``
        origin for sourced rules -- as the detail.
        """
        by_id = dict(skipped)
        rules = [
            replace(
                rule,
                status="rejected",
                reason="compile-skipped",
                detail=by_id[rule.rule_id],
                transformations=(),
            )
            if rule.accepted and rule.rule_id in by_id
            else rule
            for rule in self.rules
        ]
        return TriageReport(rules=rules)

    def as_dict(self) -> dict:
        """JSON-ready report (the ``repro rules --json`` document)."""
        return {
            "total": self.total,
            "counts": self.counts,
            "reasons": self.reasons(),
            "transformations": self.transformations(),
            "rules": [rule.as_dict() for rule in self.rules],
        }

    def summary(self) -> str:
        """Human-readable one-screen summary."""
        counts = self.counts
        lines = [
            f"rules: {self.total}  "
            f"compiled: {counts['compiled']}  "
            f"rewritten: {counts['rewritten']}  "
            f"rejected: {counts['rejected']}"
        ]
        transformations = self.transformations()
        if transformations:
            lines.append("transformations:")
            for code, count in sorted(transformations.items()):
                lines.append(f"  {code}: {count}")
        reasons = self.reasons()
        if reasons:
            lines.append("rejection reasons:")
            for code, count in sorted(reasons.items()):
                lines.append(f"  {code}: {count}")
        return "\n".join(lines)


def triage_rule(rule: SnortRule) -> TriagedRule:
    """Classify one parsed rule (never raises)."""
    base = dict(
        rule_id=rule.rule_id,
        origin=rule.origin,
        sid=rule.sid,
        msg=rule.msg,
    )
    try:
        translation = translate_rule(rule)
    except RuleRejected as err:
        return TriagedRule(
            status="rejected", reason=err.code, detail=err.detail, **base
        )
    status = "rewritten" if translation.transformations else "compiled"
    return TriagedRule(
        status=status,
        pattern=translation.pattern,
        transformations=translation.transformations,
        **base,
    )


def triage_rules(
    rules: Iterable[Union[SnortRule, TriagedRule]],
) -> TriageReport:
    """Triage parsed rules into one report.

    Pre-triaged entries (e.g. syntax errors recorded by the loader)
    pass through unchanged; duplicate rule ids after the first become
    ``rejected`` with reason ``duplicate-id`` (mirroring the compiler's
    first-wins dedupe so triage and compile never disagree on which
    rules are live).
    """
    report = TriageReport()
    seen: set[str] = set()
    for rule in rules:
        triaged = rule if isinstance(rule, TriagedRule) else triage_rule(rule)
        if triaged.accepted and triaged.rule_id in seen:
            triaged = replace(
                triaged,
                status="rejected",
                reason="duplicate-id",
                detail=f"earlier rule kept for {triaged.rule_id}",
                transformations=(),
            )
        if triaged.accepted:
            seen.add(triaged.rule_id)
        report.rules.append(triaged)
    return report
