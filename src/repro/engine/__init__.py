"""Table-driven streaming scan engine.

The paper's hardware achieves its throughput by *precomputing*: rule
compilation configures CAM columns, switch fabric, and module wiring
once, and the per-symbol datapath is then pure table lookups.  This
package is the software analogue of that split:

* :mod:`repro.engine.tables` -- lower a compiled network into dense
  integer transition tables (:func:`compile_tables`);
* :mod:`repro.engine.scanner` -- :class:`StreamScanner`, the scalar
  chunked streaming interpreter over those tables (``feed``/``finish``);
* :mod:`repro.engine.block` -- :class:`BlockScanner`, the NumPy
  bit-parallel block scanner (optional dependency);
* :mod:`repro.engine.backends` -- the pluggable execution-backend
  subsystem: a registry mapping engine names (``"stream"``,
  ``"block"``, ``"reference"``, plus ``"auto"`` selection) to scanner
  factories, shared by the facade, the parallel front-ends, and the
  CLI;
* :mod:`repro.engine.parallel` -- batch scanning over worker processes
  and round-robin ruleset sharding with merged results.

:class:`~repro.hardware.simulator.NetworkSimulator` remains the
reference semantics; every backend's contract is exact
report-equivalence with it (see ``tests/engine/`` and
``docs/ARCHITECTURE.md``).
"""

from .backends import (
    Backend,
    BackendInfo,
    BackendUnavailable,
    available_backends,
    backend_names,
    engine_choices,
    register_backend,
    resolve_backend,
)
from .block import BlockScanner
from .parallel import ShardedMatcher, merge_scan_results, scan_streams, shard_rules
from .scanner import StreamScanner, scan_bytes
from .tables import TransitionTables, compile_tables

__all__ = [
    "TransitionTables",
    "compile_tables",
    "StreamScanner",
    "BlockScanner",
    "scan_bytes",
    "ShardedMatcher",
    "merge_scan_results",
    "scan_streams",
    "shard_rules",
    "Backend",
    "BackendInfo",
    "BackendUnavailable",
    "available_backends",
    "backend_names",
    "engine_choices",
    "register_backend",
    "resolve_backend",
]
