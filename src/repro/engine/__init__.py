"""Table-driven streaming scan engine.

The paper's hardware achieves its throughput by *precomputing*: rule
compilation configures CAM columns, switch fabric, and module wiring
once, and the per-symbol datapath is then pure table lookups.  This
package is the software analogue of that split:

* :mod:`repro.engine.tables` -- lower a compiled network into dense
  integer transition tables (:func:`compile_tables`);
* :mod:`repro.engine.scanner` -- :class:`StreamScanner`, the chunked
  streaming executor over those tables (``feed``/``finish``);
* :mod:`repro.engine.parallel` -- batch scanning over worker processes
  and round-robin ruleset sharding with merged results.

:class:`~repro.hardware.simulator.NetworkSimulator` remains the
reference semantics; the engine's contract is exact report- and
stats-equivalence with it (see ``tests/engine/`` and
``docs/ARCHITECTURE.md``).
"""

from .parallel import ShardedMatcher, merge_scan_results, scan_streams, shard_rules
from .scanner import StreamScanner, scan_bytes
from .tables import TransitionTables, compile_tables

__all__ = [
    "TransitionTables",
    "compile_tables",
    "StreamScanner",
    "scan_bytes",
    "ShardedMatcher",
    "merge_scan_results",
    "scan_streams",
    "shard_rules",
]
