"""Lowering a compiled :class:`~repro.mnrl.network.Network` to tables.

:class:`NetworkSimulator` is the *reference* implementation: per byte it
re-walks Python node objects, set-unions id strings, and consults each
``CharClass`` through a method call.  That is faithful to the two-phase
hardware loop of Section 4.1 but far too slow to serve streams.  This
module precompiles the network once into :class:`TransitionTables` --
dense integer tables mirroring what the hardware itself precomputes
when a ruleset is loaded into the CAM arrays:

* ``byte_class`` / ``match_masks`` -- the byte alphabet is partitioned
  into the ``k`` equivalence classes no STE distinguishes
  (:func:`repro.compiler.passes.compute_alphabet_classes`), so the
  one-hot address decode of the state-matching memory is stored as a
  256-byte class map plus only ``k`` STE-bitmask entries instead of
  256 dense entries (``k`` is typically a few dozen for real rulesets);
* ``succ_masks`` -- per STE, the bitmask of STEs its activation enables
  for the next cycle (the programmed switch network);
* a flattened, topologically ordered counter/bit-vector op list with
  integer comparator constants and target masks (the module
  interconnect configuration).

The per-byte loop over these tables lives in
:class:`~repro.engine.scanner.StreamScanner`; it is plain integer
arithmetic, no per-node object traversal.  The contract is *exact*
equivalence with the reference simulator: identical distinct
``(position, report_id)`` report sets **and** identical
:class:`~repro.hardware.simulator.ActivityStats` (so the Table 2 energy
accounting is unchanged).  ``tests/engine/`` asserts both.

All fields are plain ints/lists/tuples, so tables pickle cheaply to
worker processes (see :mod:`repro.engine.parallel`).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Optional

from ..compiler.passes import compute_alphabet_classes
from ..hardware.params import GEOMETRY
from ..hardware.simulator import _range_mask
from ..mnrl.network import Network
from ..mnrl.nodes import BitVectorNode, CounterNode, STE, StartType

__all__ = [
    "TransitionTables",
    "TableStats",
    "ModuleWiring",
    "compile_tables",
    "module_wiring",
    "table_stats",
    "PORT_PRE",
    "PORT_FST",
    "PORT_LST",
    "PORT_BODY",
    "KIND_COUNTER",
    "KIND_BIT_VECTOR",
    "SRC_OUT",
    "SRC_AUX",
]

#: Module input ports, encoded as bits of a per-module signal word.
PORT_PRE = 1
PORT_FST = 2
PORT_LST = 4
PORT_BODY = 8

_PORT_BITS = {"pre": PORT_PRE, "fst": PORT_FST, "lst": PORT_LST, "body": PORT_BODY}

KIND_COUNTER = 0
KIND_BIT_VECTOR = 1

#: Module output sources, as they appear in :class:`ModuleWiring`
#: driver pairs: the main ``en_out`` output or the auxiliary output
#: (``en_fst`` for counters, ``en_body`` for bit vectors).
SRC_OUT = 0
SRC_AUX = 1


@dataclass
class TransitionTables:
    """Dense precompiled form of one network (see module docstring).

    STEs are numbered ``0..n_stes-1`` (bit ``i`` of every STE mask is
    STE ``i``); modules are numbered ``0..n_modules-1`` in same-cycle
    topological order, so a single in-order pass per cycle resolves
    nested module-to-module signals exactly like the reference
    simulator's ``module_order`` walk.
    """

    # -- STE side ----------------------------------------------------------
    ste_ids: list[str] = field(default_factory=list)
    #: byte value -> alphabet equivalence-class index (256 entries; the
    #: scanner's per-byte lookup goes through this map)
    byte_class: bytes = bytes(256)
    #: class index -> bitmask of STEs whose symbol set contains the
    #: class (k entries, k <= 256)
    match_masks: list[int] = field(default_factory=list)
    #: STE index -> bitmask of STEs enabled next cycle by its activation
    succ_masks: list[int] = field(default_factory=list)
    #: STE index -> ((module index, port bit), ...) driven by activation
    ste_module_hooks: list[Optional[tuple[tuple[int, int], ...]]] = field(
        default_factory=list
    )
    #: STEs enabled on every symbol (ALL_INPUT)
    always_mask: int = 0
    #: STEs additionally enabled on the first symbol (START_OF_DATA)
    start_mask: int = 0
    #: reporting STEs
    report_ste_mask: int = 0
    #: STE index -> report id (None for non-reporting STEs)
    ste_report_ids: list[Optional[str]] = field(default_factory=list)

    # -- module side (indexed in topological order) ------------------------
    module_ids: list[str] = field(default_factory=list)
    module_kinds: list[int] = field(default_factory=list)
    module_lo: list[int] = field(default_factory=list)
    module_hi: list[int] = field(default_factory=list)
    #: live / en_out / en_body bit-range masks (zeros for counters)
    bv_live_masks: list[int] = field(default_factory=list)
    bv_out_masks: list[int] = field(default_factory=list)
    bv_body_masks: list[int] = field(default_factory=list)
    #: per-op energy weight: hi / physical module bits (zeros for counters)
    bv_weights: list[float] = field(default_factory=list)
    #: module reports on en_out?
    module_reports: list[bool] = field(default_factory=list)
    module_report_ids: list[Optional[str]] = field(default_factory=list)
    #: start is ALL_INPUT (``pre`` re-armed every cycle)
    module_all_input: list[bool] = field(default_factory=list)
    #: initial prev_pre (START_OF_DATA or ALL_INPUT)
    module_initial_pre: list[bool] = field(default_factory=list)
    #: en_out -> STE targets, and the auxiliary output's STE targets
    #: (``en_fst`` for counters, ``en_body`` for bit vectors)
    out_ste_masks: list[int] = field(default_factory=list)
    aux_ste_masks: list[int] = field(default_factory=list)
    #: en_out / aux -> downstream module ports ((module index, port bit), ...)
    out_module_hooks: list[Optional[tuple[tuple[int, int], ...]]] = field(
        default_factory=list
    )
    aux_module_hooks: list[Optional[tuple[tuple[int, int], ...]]] = field(
        default_factory=list
    )
    #: STEs enabled every cycle by ALL_INPUT bit vectors' latched ``pre``
    #: (the reference re-arms those and enables their body STE each cycle)
    const_enable_mask: int = 0

    #: the network these tables were lowered from, kept so executors
    #: that interpret node objects (the ``"reference"`` backend) can be
    #: resolved anywhere the tables travel -- including pickled cache
    #: artifacts and worker processes.  ``None`` for hand-built tables.
    network: Optional[Network] = None

    @property
    def n_stes(self) -> int:
        return len(self.ste_ids)

    @property
    def n_modules(self) -> int:
        return len(self.module_ids)

    @property
    def n_classes(self) -> int:
        """Alphabet equivalence classes ``k`` (``match_masks`` entries)."""
        return len(self.match_masks)

    def match_mask_for(self, byte: int) -> int:
        """STE match mask for one byte value (through the class map)."""
        return self.match_masks[self.byte_class[byte]]

    def initial_dirty(self) -> set[int]:
        """Modules that must be processed even without input signals.

        The scanner maintains the invariant that any skipped module is
        at rest (zero bit-vector state, ``prev_pre`` equal to its
        resting value).  START_OF_DATA modules begin with a latched
        virtual ``pre``, so they start dirty.
        """
        return {
            i
            for i in range(self.n_modules)
            if self.module_initial_pre[i] != self.module_all_input[i]
        }


def compile_tables(network: Network) -> TransitionTables:
    """Lower ``network`` into :class:`TransitionTables`.

    Mirrors ``NetworkSimulator._build_wiring`` exactly -- same port
    vocabulary, same same-cycle topological order over module-to-module
    connections (``pre`` is latched and excluded from the ordering).

    >>> from repro import compile_pattern, compile_tables
    >>> tables = compile_tables(compile_pattern("abc").network)
    >>> (tables.n_stes, tables.n_modules)
    (3, 0)
    """
    network.validate()
    tables = TransitionTables()
    tables.network = network

    stes = [node for node in network.nodes.values() if isinstance(node, STE)]
    ste_index = {ste.id: i for i, ste in enumerate(stes)}
    modules = [node for node in network.nodes.values() if not isinstance(node, STE)]
    module_topo = _topo_order(network, [m.id for m in modules])
    module_index = {module_id: i for i, module_id in enumerate(module_topo)}

    # -- STE tables --------------------------------------------------------
    # The byte alphabet collapses to its equivalence classes: bytes no
    # STE distinguishes share one match-mask entry, addressed through
    # the 256-byte class map.
    alphabet = compute_alphabet_classes(ste.symbol_set.mask for ste in stes)
    tables.byte_class = alphabet.byte_to_class
    tables.ste_ids = [ste.id for ste in stes]
    tables.match_masks = [0] * alphabet.n_classes
    tables.succ_masks = [0] * len(stes)
    tables.ste_report_ids = [None] * len(stes)
    ste_hooks: list[list[tuple[int, int]]] = [[] for _ in stes]
    byte_class = tables.byte_class
    for i, ste in enumerate(stes):
        bit = 1 << i
        symbol_mask = ste.symbol_set.mask
        while symbol_mask:
            low = symbol_mask & -symbol_mask
            symbol_mask ^= low
            tables.match_masks[byte_class[low.bit_length() - 1]] |= bit
        if ste.start is StartType.ALL_INPUT:
            tables.always_mask |= bit
        elif ste.start is StartType.START_OF_DATA:
            tables.start_mask |= bit
        if ste.report:
            tables.report_ste_mask |= bit
            tables.ste_report_ids[i] = ste.report_id

    # -- module tables -----------------------------------------------------
    n_modules = len(module_topo)
    tables.module_ids = list(module_topo)
    tables.module_kinds = [0] * n_modules
    tables.module_lo = [0] * n_modules
    tables.module_hi = [0] * n_modules
    tables.bv_live_masks = [0] * n_modules
    tables.bv_out_masks = [0] * n_modules
    tables.bv_body_masks = [0] * n_modules
    tables.bv_weights = [0.0] * n_modules
    tables.module_reports = [False] * n_modules
    tables.module_report_ids = [None] * n_modules
    tables.module_all_input = [False] * n_modules
    tables.module_initial_pre = [False] * n_modules
    tables.out_ste_masks = [0] * n_modules
    tables.aux_ste_masks = [0] * n_modules
    out_hooks: list[list[tuple[int, int]]] = [[] for _ in range(n_modules)]
    aux_hooks: list[list[tuple[int, int]]] = [[] for _ in range(n_modules)]

    for module in modules:
        i = module_index[module.id]
        tables.module_lo[i] = module.lo
        tables.module_hi[i] = module.hi
        tables.module_reports[i] = module.report
        tables.module_report_ids[i] = module.report_id
        tables.module_all_input[i] = module.start is StartType.ALL_INPUT
        tables.module_initial_pre[i] = module.start in (
            StartType.START_OF_DATA,
            StartType.ALL_INPUT,
        )
        if isinstance(module, CounterNode):
            tables.module_kinds[i] = KIND_COUNTER
        else:
            assert isinstance(module, BitVectorNode)
            tables.module_kinds[i] = KIND_BIT_VECTOR
            tables.bv_live_masks[i] = _range_mask(1, module.hi)
            tables.bv_out_masks[i] = _range_mask(module.lo, module.hi)
            tables.bv_body_masks[i] = _range_mask(1, module.hi - 1)
            tables.bv_weights[i] = module.hi / GEOMETRY.bit_vector_bits_per_pe

    # -- connections -------------------------------------------------------
    for conn in network.connections:
        src_ste = ste_index.get(conn.source)
        dst_ste = ste_index.get(conn.target)
        if src_ste is not None and dst_ste is not None:
            tables.succ_masks[src_ste] |= 1 << dst_ste
        elif src_ste is not None:
            ste_hooks[src_ste].append(
                (module_index[conn.target], _PORT_BITS[conn.target_port])
            )
        else:
            src_mod = module_index[conn.source]
            is_aux = conn.source_port in ("en_fst", "en_body")
            if dst_ste is not None:
                if is_aux:
                    tables.aux_ste_masks[src_mod] |= 1 << dst_ste
                else:
                    tables.out_ste_masks[src_mod] |= 1 << dst_ste
            else:
                hook = (module_index[conn.target], _PORT_BITS[conn.target_port])
                (aux_hooks if is_aux else out_hooks)[src_mod].append(hook)

    tables.ste_module_hooks = [tuple(h) if h else None for h in ste_hooks]
    tables.out_module_hooks = [tuple(h) if h else None for h in out_hooks]
    tables.aux_module_hooks = [tuple(h) if h else None for h in aux_hooks]

    # ALL_INPUT bit vectors latch `pre` every cycle, which enables their
    # body STE every cycle -- fold that into one constant mask.
    for i in range(n_modules):
        if tables.module_all_input[i] and tables.module_kinds[i] == KIND_BIT_VECTOR:
            tables.const_enable_mask |= tables.aux_ste_masks[i]
    return tables


@dataclass(frozen=True)
class ModuleWiring:
    """Per-module inversion of the interconnect: who drives each port.

    :class:`TransitionTables` stores module wiring *forward* (per STE /
    per module, the ports it signals), which is what the per-byte
    interpreter wants.  A vectorized executor works the other way
    round: to evaluate a module's lanes over a block it must gather the
    lanes of everything feeding each of its input ports.  This is that
    inversion, computed once per tables:

    * ``ste_drivers[m][port_bit]`` -- STE indices whose activation
      signals the port (``PORT_PRE``/``PORT_FST``/``PORT_LST``/
      ``PORT_BODY``);
    * ``module_drivers[m][port_bit]`` -- ``(module, source)`` pairs,
      where source is :data:`SRC_OUT` (``en_out``) or :data:`SRC_AUX`
      (``en_fst``/``en_body``).

    Ports with no drivers are absent from the dicts.
    """

    ste_drivers: tuple[dict[int, tuple[int, ...]], ...]
    module_drivers: tuple[dict[int, tuple[tuple[int, int], ...]], ...]


def module_wiring(tables: TransitionTables) -> ModuleWiring:
    """Invert ``tables``' module hook lists into per-port driver lists
    (see :class:`ModuleWiring`).  O(hooks); duplicate connections to
    the same port collapse to one driver entry."""
    n_modules = tables.n_modules
    ste_drivers: list[dict[int, list[int]]] = [{} for _ in range(n_modules)]
    module_drivers: list[dict[int, list[tuple[int, int]]]] = [
        {} for _ in range(n_modules)
    ]
    for i, hooks in enumerate(tables.ste_module_hooks):
        if hooks is None:
            continue
        for target, port_bit in hooks:
            bucket = ste_drivers[target].setdefault(port_bit, [])
            if i not in bucket:
                bucket.append(i)
    for source_kind, hook_lists in (
        (SRC_OUT, tables.out_module_hooks),
        (SRC_AUX, tables.aux_module_hooks),
    ):
        for j, hooks in enumerate(hook_lists):
            if hooks is None:
                continue
            for target, port_bit in hooks:
                bucket = module_drivers[target].setdefault(port_bit, [])
                pair = (j, source_kind)
                if pair not in bucket:
                    bucket.append(pair)
    return ModuleWiring(
        ste_drivers=tuple(
            {port: tuple(drivers) for port, drivers in by_port.items()}
            for by_port in ste_drivers
        ),
        module_drivers=tuple(
            {port: tuple(drivers) for port, drivers in by_port.items()}
            for by_port in module_drivers
        ),
    )


@dataclass(frozen=True)
class TableStats:
    """Measured in-memory footprint of one :class:`TransitionTables`.

    ``dense_match_bytes`` is what the pre-compression layout (one mask
    per byte value) would occupy, so ``match_table_reduction`` is the
    directly comparable win of alphabet-class compression.  Sizes are
    ``sys.getsizeof`` of the mask integers (the dominant term for large
    rulesets, where each mask holds ``n_stes`` bits).
    """

    n_stes: int
    n_modules: int
    n_classes: int
    #: bytes held by the k compressed match-mask integers
    match_mask_bytes: int
    #: bytes the dense 256-entry layout would hold
    dense_match_bytes: int
    #: the 256-byte class map
    byte_class_bytes: int
    #: bytes held by the per-STE successor masks
    succ_mask_bytes: int

    @property
    def match_table_reduction(self) -> float:
        """Fraction of match-table bytes removed by class compression."""
        if self.dense_match_bytes == 0:
            return 0.0
        compressed = self.match_mask_bytes + self.byte_class_bytes
        return 1.0 - compressed / self.dense_match_bytes


def table_stats(tables: TransitionTables) -> TableStats:
    """Measure ``tables``' match/successor storage (see :class:`TableStats`)."""
    match_mask_bytes = sum(sys.getsizeof(mask) for mask in tables.match_masks)
    dense_match_bytes = sum(
        sys.getsizeof(tables.match_masks[tables.byte_class[byte]])
        for byte in range(256)
    )
    return TableStats(
        n_stes=tables.n_stes,
        n_modules=tables.n_modules,
        n_classes=tables.n_classes,
        match_mask_bytes=match_mask_bytes,
        dense_match_bytes=dense_match_bytes,
        byte_class_bytes=len(tables.byte_class),
        succ_mask_bytes=sum(sys.getsizeof(mask) for mask in tables.succ_masks),
    )


def _topo_order(network: Network, module_ids: list[str]) -> list[str]:
    """Same-cycle topological order of modules (latched ``pre`` edges
    excluded), identical to the reference simulator's ordering rule."""
    deps: dict[str, set[str]] = {module_id: set() for module_id in module_ids}
    for conn in network.connections:
        if (
            conn.source in deps
            and conn.target in deps
            and conn.target_port != "pre"
        ):
            deps[conn.target].add(conn.source)

    order: list[str] = []
    visiting: set[str] = set()
    done: set[str] = set()

    def visit(module_id: str) -> None:
        if module_id in done:
            return
        if module_id in visiting:
            raise ValueError("combinational cycle between modules")
        visiting.add(module_id)
        for dep in deps.get(module_id, ()):
            visit(dep)
        visiting.discard(module_id)
        done.add(module_id)
        order.append(module_id)

    for module_id in module_ids:
        visit(module_id)
    return order
