"""Lowering a compiled :class:`~repro.mnrl.network.Network` to tables.

:class:`NetworkSimulator` is the *reference* implementation: per byte it
re-walks Python node objects, set-unions id strings, and consults each
``CharClass`` through a method call.  That is faithful to the two-phase
hardware loop of Section 4.1 but far too slow to serve streams.  This
module precompiles the network once into :class:`TransitionTables` --
dense integer tables mirroring what the hardware itself precomputes
when a ruleset is loaded into the CAM arrays:

* ``match_masks`` -- a 256-entry table mapping each input byte to the
  bitmask of STEs whose symbol set contains it (the one-hot address
  decode of the state-matching memory);
* ``succ_masks`` -- per STE, the bitmask of STEs its activation enables
  for the next cycle (the programmed switch network);
* a flattened, topologically ordered counter/bit-vector op list with
  integer comparator constants and target masks (the module
  interconnect configuration).

The per-byte loop over these tables lives in
:class:`~repro.engine.scanner.StreamScanner`; it is plain integer
arithmetic, no per-node object traversal.  The contract is *exact*
equivalence with the reference simulator: identical distinct
``(position, report_id)`` report sets **and** identical
:class:`~repro.hardware.simulator.ActivityStats` (so the Table 2 energy
accounting is unchanged).  ``tests/engine/`` asserts both.

All fields are plain ints/lists/tuples, so tables pickle cheaply to
worker processes (see :mod:`repro.engine.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hardware.params import GEOMETRY
from ..hardware.simulator import _range_mask
from ..mnrl.network import Network
from ..mnrl.nodes import BitVectorNode, CounterNode, STE, StartType

__all__ = [
    "TransitionTables",
    "compile_tables",
    "PORT_PRE",
    "PORT_FST",
    "PORT_LST",
    "PORT_BODY",
    "KIND_COUNTER",
    "KIND_BIT_VECTOR",
]

#: Module input ports, encoded as bits of a per-module signal word.
PORT_PRE = 1
PORT_FST = 2
PORT_LST = 4
PORT_BODY = 8

_PORT_BITS = {"pre": PORT_PRE, "fst": PORT_FST, "lst": PORT_LST, "body": PORT_BODY}

KIND_COUNTER = 0
KIND_BIT_VECTOR = 1


@dataclass
class TransitionTables:
    """Dense precompiled form of one network (see module docstring).

    STEs are numbered ``0..n_stes-1`` (bit ``i`` of every STE mask is
    STE ``i``); modules are numbered ``0..n_modules-1`` in same-cycle
    topological order, so a single in-order pass per cycle resolves
    nested module-to-module signals exactly like the reference
    simulator's ``module_order`` walk.
    """

    # -- STE side ----------------------------------------------------------
    ste_ids: list[str] = field(default_factory=list)
    #: byte value -> bitmask of STEs whose symbol set contains it
    match_masks: list[int] = field(default_factory=list)
    #: STE index -> bitmask of STEs enabled next cycle by its activation
    succ_masks: list[int] = field(default_factory=list)
    #: STE index -> ((module index, port bit), ...) driven by activation
    ste_module_hooks: list[Optional[tuple[tuple[int, int], ...]]] = field(
        default_factory=list
    )
    #: STEs enabled on every symbol (ALL_INPUT)
    always_mask: int = 0
    #: STEs additionally enabled on the first symbol (START_OF_DATA)
    start_mask: int = 0
    #: reporting STEs
    report_ste_mask: int = 0
    #: STE index -> report id (None for non-reporting STEs)
    ste_report_ids: list[Optional[str]] = field(default_factory=list)

    # -- module side (indexed in topological order) ------------------------
    module_ids: list[str] = field(default_factory=list)
    module_kinds: list[int] = field(default_factory=list)
    module_lo: list[int] = field(default_factory=list)
    module_hi: list[int] = field(default_factory=list)
    #: live / en_out / en_body bit-range masks (zeros for counters)
    bv_live_masks: list[int] = field(default_factory=list)
    bv_out_masks: list[int] = field(default_factory=list)
    bv_body_masks: list[int] = field(default_factory=list)
    #: per-op energy weight: hi / physical module bits (zeros for counters)
    bv_weights: list[float] = field(default_factory=list)
    #: module reports on en_out?
    module_reports: list[bool] = field(default_factory=list)
    module_report_ids: list[Optional[str]] = field(default_factory=list)
    #: start is ALL_INPUT (``pre`` re-armed every cycle)
    module_all_input: list[bool] = field(default_factory=list)
    #: initial prev_pre (START_OF_DATA or ALL_INPUT)
    module_initial_pre: list[bool] = field(default_factory=list)
    #: en_out -> STE targets, and the auxiliary output's STE targets
    #: (``en_fst`` for counters, ``en_body`` for bit vectors)
    out_ste_masks: list[int] = field(default_factory=list)
    aux_ste_masks: list[int] = field(default_factory=list)
    #: en_out / aux -> downstream module ports ((module index, port bit), ...)
    out_module_hooks: list[Optional[tuple[tuple[int, int], ...]]] = field(
        default_factory=list
    )
    aux_module_hooks: list[Optional[tuple[tuple[int, int], ...]]] = field(
        default_factory=list
    )
    #: STEs enabled every cycle by ALL_INPUT bit vectors' latched ``pre``
    #: (the reference re-arms those and enables their body STE each cycle)
    const_enable_mask: int = 0

    @property
    def n_stes(self) -> int:
        return len(self.ste_ids)

    @property
    def n_modules(self) -> int:
        return len(self.module_ids)

    def initial_dirty(self) -> set[int]:
        """Modules that must be processed even without input signals.

        The scanner maintains the invariant that any skipped module is
        at rest (zero bit-vector state, ``prev_pre`` equal to its
        resting value).  START_OF_DATA modules begin with a latched
        virtual ``pre``, so they start dirty.
        """
        return {
            i
            for i in range(self.n_modules)
            if self.module_initial_pre[i] != self.module_all_input[i]
        }


def compile_tables(network: Network) -> TransitionTables:
    """Lower ``network`` into :class:`TransitionTables`.

    Mirrors ``NetworkSimulator._build_wiring`` exactly -- same port
    vocabulary, same same-cycle topological order over module-to-module
    connections (``pre`` is latched and excluded from the ordering).
    """
    network.validate()
    tables = TransitionTables()

    stes = [node for node in network.nodes.values() if isinstance(node, STE)]
    ste_index = {ste.id: i for i, ste in enumerate(stes)}
    modules = [node for node in network.nodes.values() if not isinstance(node, STE)]
    module_topo = _topo_order(network, [m.id for m in modules])
    module_index = {module_id: i for i, module_id in enumerate(module_topo)}

    # -- STE tables --------------------------------------------------------
    tables.ste_ids = [ste.id for ste in stes]
    tables.match_masks = [0] * 256
    tables.succ_masks = [0] * len(stes)
    tables.ste_report_ids = [None] * len(stes)
    ste_hooks: list[list[tuple[int, int]]] = [[] for _ in stes]
    for i, ste in enumerate(stes):
        bit = 1 << i
        symbol_mask = ste.symbol_set.mask
        while symbol_mask:
            low = symbol_mask & -symbol_mask
            symbol_mask ^= low
            tables.match_masks[low.bit_length() - 1] |= bit
        if ste.start is StartType.ALL_INPUT:
            tables.always_mask |= bit
        elif ste.start is StartType.START_OF_DATA:
            tables.start_mask |= bit
        if ste.report:
            tables.report_ste_mask |= bit
            tables.ste_report_ids[i] = ste.report_id

    # -- module tables -----------------------------------------------------
    n_modules = len(module_topo)
    tables.module_ids = list(module_topo)
    tables.module_kinds = [0] * n_modules
    tables.module_lo = [0] * n_modules
    tables.module_hi = [0] * n_modules
    tables.bv_live_masks = [0] * n_modules
    tables.bv_out_masks = [0] * n_modules
    tables.bv_body_masks = [0] * n_modules
    tables.bv_weights = [0.0] * n_modules
    tables.module_reports = [False] * n_modules
    tables.module_report_ids = [None] * n_modules
    tables.module_all_input = [False] * n_modules
    tables.module_initial_pre = [False] * n_modules
    tables.out_ste_masks = [0] * n_modules
    tables.aux_ste_masks = [0] * n_modules
    out_hooks: list[list[tuple[int, int]]] = [[] for _ in range(n_modules)]
    aux_hooks: list[list[tuple[int, int]]] = [[] for _ in range(n_modules)]

    for module in modules:
        i = module_index[module.id]
        tables.module_lo[i] = module.lo
        tables.module_hi[i] = module.hi
        tables.module_reports[i] = module.report
        tables.module_report_ids[i] = module.report_id
        tables.module_all_input[i] = module.start is StartType.ALL_INPUT
        tables.module_initial_pre[i] = module.start in (
            StartType.START_OF_DATA,
            StartType.ALL_INPUT,
        )
        if isinstance(module, CounterNode):
            tables.module_kinds[i] = KIND_COUNTER
        else:
            assert isinstance(module, BitVectorNode)
            tables.module_kinds[i] = KIND_BIT_VECTOR
            tables.bv_live_masks[i] = _range_mask(1, module.hi)
            tables.bv_out_masks[i] = _range_mask(module.lo, module.hi)
            tables.bv_body_masks[i] = _range_mask(1, module.hi - 1)
            tables.bv_weights[i] = module.hi / GEOMETRY.bit_vector_bits_per_pe

    # -- connections -------------------------------------------------------
    for conn in network.connections:
        src_ste = ste_index.get(conn.source)
        dst_ste = ste_index.get(conn.target)
        if src_ste is not None and dst_ste is not None:
            tables.succ_masks[src_ste] |= 1 << dst_ste
        elif src_ste is not None:
            ste_hooks[src_ste].append(
                (module_index[conn.target], _PORT_BITS[conn.target_port])
            )
        else:
            src_mod = module_index[conn.source]
            is_aux = conn.source_port in ("en_fst", "en_body")
            if dst_ste is not None:
                if is_aux:
                    tables.aux_ste_masks[src_mod] |= 1 << dst_ste
                else:
                    tables.out_ste_masks[src_mod] |= 1 << dst_ste
            else:
                hook = (module_index[conn.target], _PORT_BITS[conn.target_port])
                (aux_hooks if is_aux else out_hooks)[src_mod].append(hook)

    tables.ste_module_hooks = [tuple(h) if h else None for h in ste_hooks]
    tables.out_module_hooks = [tuple(h) if h else None for h in out_hooks]
    tables.aux_module_hooks = [tuple(h) if h else None for h in aux_hooks]

    # ALL_INPUT bit vectors latch `pre` every cycle, which enables their
    # body STE every cycle -- fold that into one constant mask.
    for i in range(n_modules):
        if tables.module_all_input[i] and tables.module_kinds[i] == KIND_BIT_VECTOR:
            tables.const_enable_mask |= tables.aux_ste_masks[i]
    return tables


def _topo_order(network: Network, module_ids: list[str]) -> list[str]:
    """Same-cycle topological order of modules (latched ``pre`` edges
    excluded), identical to the reference simulator's ordering rule."""
    deps: dict[str, set[str]] = {module_id: set() for module_id in module_ids}
    for conn in network.connections:
        if (
            conn.source in deps
            and conn.target in deps
            and conn.target_port != "pre"
        ):
            deps[conn.target].add(conn.source)

    order: list[str] = []
    visiting: set[str] = set()
    done: set[str] = set()

    def visit(module_id: str) -> None:
        if module_id in done:
            return
        if module_id in visiting:
            raise ValueError("combinational cycle between modules")
        visiting.add(module_id)
        for dep in deps.get(module_id, ()):
            visit(dep)
        visiting.discard(module_id)
        done.add(module_id)
        order.append(module_id)

    for module_id in module_ids:
        visit(module_id)
    return order
