"""NumPy bit-parallel block scanner (the ``"block"`` backend).

:class:`~repro.engine.scanner.StreamScanner` interprets the transition
tables one byte at a time; every byte pays Python dispatch for the
enable/match/successor recurrence even though most of the work is
embarrassingly data-parallel across input positions.  This module
trades the per-byte loop for *per-block* vector sweeps, the same move
GPU IDS engines make when they batch the byte->class indirection
(Bellekens et al.): load a block of input, translate it to alphabet
classes in one gather, then evaluate STE occupancy over the whole
block with NumPy boolean lanes.

How a block is scanned
----------------------
For a network whose per-cycle activity is STE-only, STE ``v``'s
occupancy over a block is a boolean lane ``occ[v]`` (one element per
input position) satisfying::

    occ[v][t] = memb[v][t] and (always[v]
                                or occ[u][t-1] for some predecessor u
                                or carried enable at t == 0)

where ``memb[v] = class_row[v][byte_class[block]]`` is one vectorized
gather (shared by every STE with the same symbol set -- run chains
share one row).  Evaluating STEs in topological order turns the whole
recurrence into one shifted AND/OR per edge, and an STE whose
occupancy lane is all-zero prunes its entire downstream cone for the
block -- literal chains die after a couple of levels, which is where
the asymptotic win over the scalar interpreter comes from.  Self-loop
STEs (``a+``/``a*`` tails) stay vectorizable through the run-length
closed form: the self-loop holds at ``t`` iff some enable arrived
inside the current unbroken symbol run, i.e. ``last_enable_index >=
run_start_index``, both one ``np.maximum.accumulate`` away.  Networks
with longer feedback cycles fall back to the scalar interpreter
outright (``vector_ok`` is False).

Stats and reports are exact, not approximate: activations are
``count_nonzero`` per occupancy lane, report events are the nonzero
positions of reporting STEs' lanes, so the backend meets the same
``ActivityStats``-exact contract as the scalar engine.

Counter / bit-vector modules
----------------------------
Module activity runs *inside* the sweep whenever the combined
STE+module dependency graph is acyclic after
:mod:`repro.engine.block_modules` collapses the emitted one-STE
feedback loops (``en_fst`` re-arming a counter body, ``en_body``
holding a bit-vector body STE) into closed-form nodes: counter
registers become prefix sums over ``fst`` lanes, bit-vector shift
registers become windowed existence queries over entry lanes, and the
carried scalar state (registers, latched ``pre``, dirty set) is
written back at every block boundary.  Such blocks always commit --
no rescans -- and reports/stats stay exactly equal to the
interpreter's.

Tables whose module wiring genuinely cycles (nested counting,
multi-STE counter bodies) fall back to the *optimistic* strategy:
module side effects can only begin at an STE that drives a module
port (``ste_module_hooks``), and those STEs' occupancy lanes are
computed by the sweep anyway.  If no hook STE fired in the block and
every module was at rest when it started, the vector result is
committed; otherwise the block is rescanned by the embedded scalar
:class:`StreamScanner`, which owns all module state.  A streak of
consecutive aborted sweeps (no commit in between) disables further
vector attempts; the disable *decays* -- after enough consecutive
module-quiescent scalar blocks the scanner re-arms sweeps, so a
module-dense burst does not condemn the rest of the stream to scalar
speed.  :attr:`BlockScanner.sweep_stats` surfaces the commit/rescan/
re-enable counters.

NumPy is an optional dependency: importing this module never raises,
and :func:`numpy_or_none` reports what the backend registry should say
when the import failed.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Optional

from ..mnrl.network import Network
from . import block_modules
from .scanner import Chunk, StreamScanner, coerce_chunk
from .tables import KIND_BIT_VECTOR, SRC_OUT, TransitionTables, compile_tables

try:  # NumPy is optional: the registry degrades gracefully without it
    import numpy as _np

    _NUMPY_ERROR: Optional[str] = None
except Exception as exc:  # pragma: no cover - exercised via monkeypatch
    _np = None
    _NUMPY_ERROR = f"{type(exc).__name__}: {exc}"

__all__ = [
    "BlockScanner",
    "BlockSweepStats",
    "numpy_or_none",
    "numpy_unavailable_reason",
    "DEFAULT_BLOCK_SIZE",
]

#: Input positions evaluated per vector sweep.  Measured sweet spot on
#: Snort-scale STE-only tables: large enough to amortize per-STE NumPy
#: call overhead, small enough that occupancy lanes stay cache-resident.
DEFAULT_BLOCK_SIZE = 16384

#: Consecutive vector sweeps discarded (module activity detected, no
#: commit in between) before BlockScanner stops attempting sweeps.
#: Only reachable on tables whose module wiring defeats in-sweep
#: execution (``full_ok`` False).
_RESCAN_LIMIT = 8

#: Consecutive module-quiescent scalar blocks consumed while sweeps
#: are disabled before the scanner re-arms vector sweeping.
_REENABLE_AFTER = 4


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when it cannot be imported."""
    return _np


def numpy_unavailable_reason() -> Optional[str]:
    """Why NumPy is unavailable (``None`` when it imported fine)."""
    if _np is None:
        return _NUMPY_ERROR or "import numpy failed"
    return None


class _BlockProgram:
    """Per-tables derived arrays shared by every :class:`BlockScanner`.

    Building the STE graph and the class-row matrix is O(STEs + edges);
    scanners over the same tables share one program via
    :func:`_program_for`.
    """

    __slots__ = (
        "vector_ok",
        "pure",
        "full_ok",
        "topo",
        "preds",
        "succ_lists",
        "has_self",
        "always_flag",
        "start_flag",
        "report_flag",
        "hook_flag",
        "always_list",
        "always_eff_flag",
        "always_eff_list",
        "start_list",
        "row_of",
        "uniq_rows",
        "byte_class_arr",
        "mod_plans",
        "steps",
        "mod_preds",
    )

    def __init__(self, tables: TransitionTables):
        np = _np
        assert np is not None
        n = tables.n_stes
        succ = tables.succ_masks

        preds: list[list[int]] = [[] for _ in range(n)]
        succ_lists: list[list[int]] = [[] for _ in range(n)]
        has_self = [False] * n
        for i in range(n):
            mask = succ[i]
            while mask:
                low = mask & -mask
                mask ^= low
                j = low.bit_length() - 1
                if j == i:
                    has_self[i] = True
                else:
                    preds[j].append(i)
                    succ_lists[i].append(j)

        # Kahn topological order, self-loops excluded (they have a
        # vectorized closed form); any longer cycle makes the block
        # recurrence order-dependent and forces the scalar path.
        indegree = [len(p) for p in preds]
        queue = [i for i in range(n) if indegree[i] == 0]
        topo: list[int] = []
        while queue:
            v = queue.pop()
            topo.append(v)
            for w in succ_lists[v]:
                indegree[w] -= 1
                if indegree[w] == 0:
                    queue.append(w)
        self.vector_ok = len(topo) == n and tables.const_enable_mask == 0
        self.pure = tables.n_modules == 0
        self.topo = topo
        self.preds = preds
        self.succ_lists = succ_lists
        self.has_self = has_self

        self.always_flag = _mask_flags(tables.always_mask, n)
        self.start_flag = _mask_flags(tables.start_mask, n)
        self.report_flag = _mask_flags(tables.report_ste_mask, n)
        self.hook_flag = [hooks is not None for hooks in tables.ste_module_hooks]
        self.always_list = [i for i in range(n) if self.always_flag[i]]
        self.start_list = [i for i in range(n) if self.start_flag[i]]

        # STEs the interpreter enables every cycle regardless of
        # drives: ALL_INPUT starts plus const_enable targets (ALL_INPUT
        # bit vectors re-arming their body).  For lane purposes both
        # mean "occupancy is plain membership".
        const_flag = _mask_flags(tables.const_enable_mask, n)
        self.always_eff_flag = [
            a or c for a, c in zip(self.always_flag, const_flag)
        ]
        self.always_eff_list = [i for i in range(n) if self.always_eff_flag[i]]

        # In-sweep module execution: collapse emitted feedback loops
        # and demand a combined acyclic order (see block_modules).
        if tables.n_modules == 0:
            self.full_ok = self.vector_ok
            self.mod_plans = None
            self.steps = None
            self.mod_preds = None
        else:
            mod_program = block_modules.analyze(
                tables,
                preds,
                succ_lists,
                has_self,
                self.always_eff_flag,
                self.start_flag,
            )
            if mod_program is None:
                self.full_ok = False
                self.mod_plans = None
                self.steps = None
                self.mod_preds = None
            else:
                self.full_ok = True
                self.mod_plans = mod_program.plans
                self.steps = mod_program.steps
                self.mod_preds = mod_program.mod_preds

        # one bool row of n_classes per distinct symbol set; STEs with
        # identical symbol sets (all copies of an unfolded run) share a
        # row, so the per-block membership gather happens once per set
        match_rows = np.zeros((max(n, 1), tables.n_classes or 1), dtype=bool)
        for c, mask in enumerate(tables.match_masks):
            m = mask
            while m:
                low = m & -m
                m ^= low
                match_rows[low.bit_length() - 1, c] = True
        row_index: dict[bytes, int] = {}
        self.row_of = [0] * n
        for i in range(n):
            key = match_rows[i].tobytes()
            self.row_of[i] = row_index.setdefault(key, len(row_index))
        self.uniq_rows = np.zeros((max(len(row_index), 1), tables.n_classes or 1), dtype=bool)
        for i in range(n):
            self.uniq_rows[self.row_of[i]] = match_rows[i]
        self.byte_class_arr = np.frombuffer(tables.byte_class, dtype=np.uint8)


def _mask_flags(mask: int, n: int) -> list[bool]:
    return [bool((mask >> i) & 1) for i in range(n)]


# Programs are cached per tables object (keyed by id, cleaned up by a
# weakref finalizer) so repeated make_scanner calls over one compiled
# ruleset -- the facade builds a scanner per scan -- do not rebuild
# the graph.  TransitionTables is an eq-comparing dataclass and hence
# unhashable, so a WeakKeyDictionary is not an option.
_PROGRAMS: dict[int, _BlockProgram] = {}


def _program_for(tables: TransitionTables) -> _BlockProgram:
    key = id(tables)
    program = _PROGRAMS.get(key)
    if program is None:
        program = _BlockProgram(tables)
        _PROGRAMS[key] = program
        weakref.finalize(tables, _PROGRAMS.pop, key, None)
    return program


@dataclass(frozen=True)
class BlockSweepStats:
    """Sweep bookkeeping for one :class:`BlockScanner` stream.

    Makes claims like "this workload ran with zero scalar rescans"
    directly assertable instead of inferred from private attributes.
    """

    #: vector sweeps committed (pure or in-lane module blocks)
    committed_blocks: int
    #: sweeps discarded and replayed through the scalar interpreter
    rescans: int
    #: times the vector-disable streak decayed and sweeps re-armed
    reenables: int
    #: currently feeding scalar because of a rescan streak?
    sweeps_disabled: bool
    #: module activity runs inside sweeps on these tables (no-op True
    #: for module-free tables; False means the optimistic/rescan path)
    modules_vectorized: bool


class BlockScanner:
    """Drop-in :class:`StreamScanner` replacement with block sweeps.

    Same construction, streaming surface (``feed``/``finish``/
    ``reset``), report set, and ``ActivityStats`` as the scalar
    scanner; only the execution strategy differs.  ``feed`` returns the
    chunk's newly observed reports ordered by position (the scalar
    scanner's observation order is also position-ordered; ties between
    simultaneous reports may interleave differently).

    Raises :class:`RuntimeError` when NumPy is unavailable -- resolve
    through :mod:`repro.engine.backends` to degrade gracefully instead.
    """

    def __init__(
        self,
        source: TransitionTables | Network,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        if _np is None:
            raise RuntimeError(
                f"BlockScanner requires numpy ({numpy_unavailable_reason()})"
            )
        if isinstance(source, Network):
            source = compile_tables(source)
        if block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {block_size}")
        self.tables = source
        self.block_size = block_size
        self._scalar = StreamScanner(source)
        self._program = _program_for(source)
        #: total aborted sweeps (monotonic, introspection/tests)
        self._rescans = 0
        #: consecutive aborted sweeps since the last committed block
        self._fruitless = 0
        self._sweeps_disabled = False
        #: committed vector sweeps (monotonic)
        self._committed = 0
        #: disable-streak decays (monotonic)
        self._reenables = 0
        #: module-quiescent bytes consumed since sweeps were disabled
        self._quiet_bytes = 0

    # the embedded scalar scanner owns all mutable state, so fallback
    # blocks and vector commits observe one single source of truth
    @property
    def reports(self):
        """Distinct ``(position, report_id)`` pairs seen so far."""
        return self._scalar.reports

    @property
    def stats(self):
        return self._scalar.stats

    @property
    def bytes_fed(self) -> int:
        return self._scalar.bytes_fed

    @property
    def sweep_stats(self) -> BlockSweepStats:
        """Commit/rescan/re-enable counters for this stream so far."""
        program = self._program
        return BlockSweepStats(
            committed_blocks=self._committed,
            rescans=self._rescans,
            reenables=self._reenables,
            sweeps_disabled=self._sweeps_disabled,
            modules_vectorized=program.full_ok,
        )

    def reset(self) -> None:
        self._scalar.reset()
        self._rescans = 0
        self._fruitless = 0
        self._sweeps_disabled = False
        self._committed = 0
        self._reenables = 0
        self._quiet_bytes = 0

    def finish(self):
        """Mark end-of-stream; returns the distinct report set."""
        return self._scalar.finish()

    def feed(self, chunk: Chunk):
        """Consume one chunk; return reports newly added by it."""
        if self._scalar._finished:
            raise RuntimeError("feed() after finish(); call reset() to rescan")
        chunk = coerce_chunk(chunk)
        program = self._program

        if program.full_ok and not program.pure:
            # module activity runs inside the sweep: every block
            # commits, the scalar interpreter never replays anything
            arr = _np.frombuffer(chunk, dtype=_np.uint8)
            new: list[tuple[int, Optional[str]]] = []
            length = len(arr)
            offset = 0
            block = self.block_size
            while offset < length:
                end = min(offset + block, length)
                self._vector_block_modules(arr[offset:end], new)
                self._committed += 1
                offset = end
            return new

        if not program.vector_ok:
            return self._scalar.feed(chunk)

        arr = _np.frombuffer(chunk, dtype=_np.uint8)
        new = []
        length = len(arr)
        offset = 0
        block = self.block_size
        while offset < length:
            end = min(offset + block, length)
            if self._sweeps_disabled:
                # scalar blocks, but watch for module-quiescent runs
                # long enough to re-arm sweeping
                new.extend(self._scalar_feed_tracked(chunk[offset:end]))
            # modules holding state must see every byte: scalar block
            elif not program.pure and self._scalar._dirty:
                new.extend(self._scalar.feed(chunk[offset:end]))
            elif not self._vector_block(arr[offset:end], new):
                # a module port was signalled mid-block: discard the
                # sweep and replay the block through the interpreter
                self._rescans += 1
                self._fruitless += 1
                new.extend(self._scalar.feed(chunk[offset:end]))
                if self._fruitless >= _RESCAN_LIMIT:
                    # module-dense phase: stop paying for doomed sweeps
                    self._sweeps_disabled = True
                    self._quiet_bytes = 0
            offset = end
        return new

    def _scalar_feed_tracked(self, piece):
        """Scalar feed while sweeps are disabled; decays the disable
        after ``_REENABLE_AFTER`` blocks' worth of module-quiescent
        input so a module-dense burst is not a life sentence."""
        stats = self._scalar.stats
        ops_before = stats.counter_ops + stats.bit_vector_ops
        out = self._scalar.feed(piece)
        module_active = bool(self._scalar._dirty) or (
            stats.counter_ops + stats.bit_vector_ops != ops_before
        )
        if module_active:
            self._quiet_bytes = 0
        else:
            self._quiet_bytes += len(piece)
            if self._quiet_bytes >= _REENABLE_AFTER * self.block_size:
                self._sweeps_disabled = False
                self._fruitless = 0
                self._quiet_bytes = 0
                self._reenables += 1
        return out

    # -- one-shot conveniences (mirror StreamScanner) ----------------------
    def scan(self, data: Chunk):
        """Reset, consume ``data`` as one chunk, finish."""
        self.reset()
        self.feed(data)
        return self.finish()

    def match_ends(self, data: Chunk) -> list[int]:
        """Distinct report positions, for differential testing."""
        self.scan(data)
        return sorted({position for position, _ in self.reports})

    # -- the vector sweep --------------------------------------------------
    def _vector_block(self, arr, new: list) -> bool:
        """Sweep one block; commit and return True, or detect module
        activity and return False leaving all state untouched."""
        np = _np
        program = self._program
        tables = self.tables
        scalar = self._scalar
        enabled = scalar._enabled
        cycle = scalar._cycle
        blen = len(arr)

        cls = program.byte_class_arr[arr]
        topo = program.topo
        preds = program.preds
        succ_lists = program.succ_lists
        succ_masks = tables.succ_masks
        has_self = program.has_self
        always_flag = program.always_flag
        start_flag = program.start_flag
        report_flag = program.report_flag
        hook_flag = program.hook_flag
        row_of = program.row_of
        uniq_rows = program.uniq_rows
        rids = tables.ste_report_ids
        at_start = cycle == 0

        n = tables.n_stes
        occ: list = [None] * n
        needed = bytearray(n)
        touched: list[int] = []
        for v in program.always_list:
            needed[v] = 1
            touched.append(v)
        if at_start:
            for v in program.start_list:
                if not needed[v]:
                    needed[v] = 1
                    touched.append(v)
        mask = enabled
        while mask:
            low = mask & -mask
            mask ^= low
            v = low.bit_length() - 1
            if not needed[v]:
                needed[v] = 1
                touched.append(v)

        memb_cache: dict = {}
        idx = None
        activations = 0
        events = 0
        found: list[tuple[int, Optional[str]]] = []
        last_mask = 0
        for v in topo:
            if not needed[v]:
                continue
            row = row_of[v]
            memb = memb_cache.get(row)
            if memb is None:
                memb = uniq_rows[row][cls]
                memb_cache[row] = memb
            entry = bool((enabled >> v) & 1) or (at_start and start_flag[v])
            if always_flag[v]:
                # enabled on every symbol: occupancy is plain membership
                # (a self-loop adds nothing on top of ALL_INPUT)
                lane = memb
            else:
                live = [occ[u] for u in preds[v] if occ[u] is not None]
                if has_self[v]:
                    # self-loop closed form: held at t iff some enable
                    # arrived within the current unbroken symbol run
                    if idx is None:
                        idx = np.arange(blen)
                    drive = np.zeros(blen, dtype=bool)
                    drive[0] = entry
                    for lane_u in live:
                        np.logical_or(drive[1:], lane_u[:-1], out=drive[1:])
                    run_start = np.maximum.accumulate(np.where(memb, 0, idx + 1))
                    last_drive = np.maximum.accumulate(np.where(drive, idx, -1))
                    lane = memb & (last_drive >= run_start)
                elif len(live) == 1:
                    lane = np.empty(blen, dtype=bool)
                    np.logical_and(live[0][:-1], memb[1:], out=lane[1:])
                    lane[0] = entry and bool(memb[0])
                else:
                    lane = np.zeros(blen, dtype=bool)
                    lane[0] = entry
                    for lane_u in live:
                        np.logical_or(lane[1:], lane_u[:-1], out=lane[1:])
                    np.logical_and(lane, memb, out=lane)
            count = int(np.count_nonzero(lane))
            if count == 0:
                continue
            if hook_flag[v]:
                # this STE drives a counter/bit-vector port: the sweep's
                # no-module-activity premise is broken for this block
                return False
            occ[v] = lane
            activations += count
            if report_flag[v]:
                events += count
                rid = rids[v]
                base = cycle + 1
                for position in np.flatnonzero(lane).tolist():
                    found.append((base + position, rid))
            if lane[-1]:
                last_mask |= succ_masks[v]
            for w in succ_lists[v]:
                if not needed[w]:
                    needed[w] = 1
                    touched.append(w)

        # commit: the block held no module activity, so the modules'
        # rest state, pre latches, and counter registers are untouched
        # -- exactly what the interpreter's skip path would have done
        scalar._enabled = last_mask
        scalar._cycle = cycle + blen
        stats = scalar.stats
        stats.cycles += blen
        stats.ste_activations += activations
        stats.reports += events
        if found:
            reports = scalar.reports
            # by position only: report ids may mix None with str
            found.sort(key=lambda pair: pair[0])
            for pair in found:
                if pair not in reports:
                    reports.add(pair)
                    new.append(pair)
        self._fruitless = 0
        self._committed += 1
        return True

    # -- the module-aware vector sweep --------------------------------------
    def _vector_block_modules(self, arr, new: list) -> None:
        """Sweep one block with counter/bit-vector activity evaluated
        in-lane (``full_ok`` tables).  Always commits: reports, stats,
        and module registers land exactly where the interpreter would
        have put them, so there is nothing to rescan."""
        np = _np
        program = self._program
        tables = self.tables
        scalar = self._scalar
        enabled = scalar._enabled
        cycle = scalar._cycle
        blen = len(arr)

        cls = program.byte_class_arr[arr]
        preds = program.preds
        succ_lists = program.succ_lists
        succ_masks = tables.succ_masks
        has_self = program.has_self
        always_flag = program.always_flag
        always_eff = program.always_eff_flag
        start_flag = program.start_flag
        report_flag = program.report_flag
        row_of = program.row_of
        uniq_rows = program.uniq_rows
        rids = tables.ste_report_ids
        plans = program.mod_plans
        mod_preds = program.mod_preds
        out_ste_masks = tables.out_ste_masks
        aux_ste_masks = tables.aux_ste_masks
        at_start = cycle == 0
        base = cycle + 1

        n = tables.n_stes
        occ: list = [None] * n
        mod_out: list = [None] * tables.n_modules
        mod_aux: list = [None] * tables.n_modules
        needed = bytearray(n)
        for v in program.always_eff_list:
            needed[v] = 1
        if at_start:
            for v in program.start_list:
                needed[v] = 1
        mask = enabled
        while mask:
            low = mask & -mask
            mask ^= low
            needed[low.bit_length() - 1] = 1

        memb_cache: dict = {}

        def memb_for(v):
            row = row_of[v]
            memb = memb_cache.get(row)
            if memb is None:
                memb = uniq_rows[row][cls]
                memb_cache[row] = memb
            return memb

        idx = None
        activations = 0
        events = 0
        found: list[tuple[int, Optional[str]]] = []
        acc: list = [0, 0, 0.0]
        # the interpreter seeds every cycle's next_enabled with the
        # const mask (ALL_INPUT bit vectors re-arming their body STE)
        last_mask = tables.const_enable_mask
        for step_kind, index in program.steps:
            if step_kind == 0:
                v = index
                if not needed[v]:
                    continue
                memb = memb_for(v)
                entry = bool((enabled >> v) & 1) or (at_start and start_flag[v])
                if always_eff[v]:
                    # enabled on every symbol: occupancy is membership --
                    # except a const-enabled (not always) STE at stream
                    # start, which the cycle-0 base does not include
                    lane = memb
                    if at_start and not always_flag[v] and not entry and memb[0]:
                        lane = memb.copy()
                        lane[0] = False
                else:
                    live = [occ[u] for u in preds[v] if occ[u] is not None]
                    for j, src in mod_preds[v]:
                        lane_j = mod_out[j] if src == SRC_OUT else mod_aux[j]
                        if lane_j is not None:
                            live.append(lane_j)
                    if has_self[v]:
                        if idx is None:
                            idx = np.arange(blen)
                        drive = np.zeros(blen, dtype=bool)
                        drive[0] = entry
                        for lane_u in live:
                            np.logical_or(drive[1:], lane_u[:-1], out=drive[1:])
                        run_start = np.maximum.accumulate(np.where(memb, 0, idx + 1))
                        last_drive = np.maximum.accumulate(np.where(drive, idx, -1))
                        lane = memb & (last_drive >= run_start)
                    elif len(live) == 1:
                        lane = np.empty(blen, dtype=bool)
                        np.logical_and(live[0][:-1], memb[1:], out=lane[1:])
                        lane[0] = entry and bool(memb[0])
                    else:
                        lane = np.zeros(blen, dtype=bool)
                        lane[0] = entry
                        for lane_u in live:
                            np.logical_or(lane[1:], lane_u[:-1], out=lane[1:])
                        np.logical_and(lane, memb, out=lane)
                count = int(np.count_nonzero(lane))
                if count == 0:
                    continue
                occ[v] = lane
                activations += count
                if report_flag[v]:
                    events += count
                    rid = rids[v]
                    for position in np.flatnonzero(lane).tolist():
                        found.append((base + position, rid))
                if lane[-1]:
                    last_mask |= succ_masks[v]
                for w in succ_lists[v]:
                    needed[w] = 1
            else:
                plan = plans[index]
                s = plan.absorbed
                if s is not None:
                    memb = memb_for(s)
                    enabled_bit = bool((enabled >> s) & 1)
                else:
                    memb = None
                    enabled_bit = False
                s_occ, out_lane, aux_lane, pre_last = block_modules.eval_module(
                    np,
                    plan,
                    blen,
                    occ,
                    mod_out,
                    mod_aux,
                    memb,
                    enabled_bit,
                    scalar,
                    acc,
                )
                if s_occ is not None:
                    count = int(np.count_nonzero(s_occ))
                    if count:
                        occ[s] = s_occ
                        activations += count
                        if report_flag[s]:
                            events += count
                            rid = rids[s]
                            for position in np.flatnonzero(s_occ).tolist():
                                found.append((base + position, rid))
                        if s_occ[-1]:
                            last_mask |= succ_masks[s]
                        for w in succ_lists[s]:
                            needed[w] = 1
                if out_lane is not None:
                    mod_out[index] = out_lane
                    if plan.reports:
                        count = int(np.count_nonzero(out_lane))
                        events += count
                        rid = plan.report_id
                        for position in np.flatnonzero(out_lane).tolist():
                            found.append((base + position, rid))
                    if out_lane[-1]:
                        last_mask |= out_ste_masks[index]
                    for w in plan.out_targets:
                        needed[w] = 1
                if aux_lane is not None:
                    mod_aux[index] = aux_lane
                    if aux_lane[-1]:
                        last_mask |= aux_ste_masks[index]
                    for w in plan.aux_targets:
                        needed[w] = 1
                # the interpreter's pre-latch loop enables a bit
                # vector's body STE for the cycle after any pre pulse
                if pre_last and plan.kind == KIND_BIT_VECTOR:
                    last_mask |= aux_ste_masks[index]

        scalar._enabled = last_mask
        scalar._cycle = cycle + blen
        stats = scalar.stats
        stats.cycles += blen
        stats.ste_activations += activations
        stats.counter_ops += acc[0]
        stats.bit_vector_ops += acc[1]
        stats.bit_vector_weighted_ops += acc[2]
        stats.reports += events
        if found:
            reports = scalar.reports
            found.sort(key=lambda pair: pair[0])
            for pair in found:
                if pair not in reports:
                    reports.add(pair)
                    new.append(pair)
