"""NumPy bit-parallel block scanner (the ``"block"`` backend).

:class:`~repro.engine.scanner.StreamScanner` interprets the transition
tables one byte at a time; every byte pays Python dispatch for the
enable/match/successor recurrence even though most of the work is
embarrassingly data-parallel across input positions.  This module
trades the per-byte loop for *per-block* vector sweeps, the same move
GPU IDS engines make when they batch the byte->class indirection
(Bellekens et al.): load a block of input, translate it to alphabet
classes in one gather, then evaluate STE occupancy over the whole
block with NumPy boolean lanes.

How a block is scanned
----------------------
For a network whose per-cycle activity is STE-only, STE ``v``'s
occupancy over a block is a boolean lane ``occ[v]`` (one element per
input position) satisfying::

    occ[v][t] = memb[v][t] and (always[v]
                                or occ[u][t-1] for some predecessor u
                                or carried enable at t == 0)

where ``memb[v] = class_row[v][byte_class[block]]`` is one vectorized
gather (shared by every STE with the same symbol set -- run chains
share one row).  Evaluating STEs in topological order turns the whole
recurrence into one shifted AND/OR per edge, and an STE whose
occupancy lane is all-zero prunes its entire downstream cone for the
block -- literal chains die after a couple of levels, which is where
the asymptotic win over the scalar interpreter comes from.  Self-loop
STEs (``a+``/``a*`` tails) stay vectorizable through the run-length
closed form: the self-loop holds at ``t`` iff some enable arrived
inside the current unbroken symbol run, i.e. ``last_enable_index >=
run_start_index``, both one ``np.maximum.accumulate`` away.  Networks
with longer feedback cycles fall back to the scalar interpreter
outright (``vector_ok`` is False).

Stats and reports are exact, not approximate: activations are
``count_nonzero`` per occupancy lane, report events are the nonzero
positions of reporting STEs' lanes, so the backend meets the same
``ActivityStats``-exact contract as the scalar engine.

Counter / bit-vector modules
----------------------------
Blocks are vector-scanned *optimistically*: module side effects can
only begin at an STE that drives a module port (``ste_module_hooks``),
and those STEs' occupancy lanes are computed by the sweep anyway.  If
no hook STE fired in the block and every module was at rest when it
started, the vector result is committed; otherwise the block is
rescanned by the embedded scalar :class:`StreamScanner`, which owns
all module state.  A streak of consecutive aborted sweeps (no commit
in between) disables further vector attempts, so module-dense streams
run at plain scalar speed instead of paying for doomed sweeps.

NumPy is an optional dependency: importing this module never raises,
and :func:`numpy_or_none` reports what the backend registry should say
when the import failed.
"""

from __future__ import annotations

import weakref
from typing import Optional

from ..mnrl.network import Network
from .scanner import Chunk, StreamScanner, coerce_chunk
from .tables import TransitionTables, compile_tables

try:  # NumPy is optional: the registry degrades gracefully without it
    import numpy as _np

    _NUMPY_ERROR: Optional[str] = None
except Exception as exc:  # pragma: no cover - exercised via monkeypatch
    _np = None
    _NUMPY_ERROR = f"{type(exc).__name__}: {exc}"

__all__ = ["BlockScanner", "numpy_or_none", "numpy_unavailable_reason", "DEFAULT_BLOCK_SIZE"]

#: Input positions evaluated per vector sweep.  Measured sweet spot on
#: Snort-scale STE-only tables: large enough to amortize per-STE NumPy
#: call overhead, small enough that occupancy lanes stay cache-resident.
DEFAULT_BLOCK_SIZE = 16384

#: Consecutive vector sweeps discarded (module activity detected, no
#: commit in between) before BlockScanner stops attempting sweeps.
_RESCAN_LIMIT = 8


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when it cannot be imported."""
    return _np


def numpy_unavailable_reason() -> Optional[str]:
    """Why NumPy is unavailable (``None`` when it imported fine)."""
    if _np is None:
        return _NUMPY_ERROR or "import numpy failed"
    return None


class _BlockProgram:
    """Per-tables derived arrays shared by every :class:`BlockScanner`.

    Building the STE graph and the class-row matrix is O(STEs + edges);
    scanners over the same tables share one program via
    :func:`_program_for`.
    """

    __slots__ = (
        "vector_ok",
        "pure",
        "topo",
        "preds",
        "succ_lists",
        "has_self",
        "always_flag",
        "start_flag",
        "report_flag",
        "hook_flag",
        "always_list",
        "start_list",
        "row_of",
        "uniq_rows",
        "byte_class_arr",
    )

    def __init__(self, tables: TransitionTables):
        np = _np
        assert np is not None
        n = tables.n_stes
        succ = tables.succ_masks

        preds: list[list[int]] = [[] for _ in range(n)]
        succ_lists: list[list[int]] = [[] for _ in range(n)]
        has_self = [False] * n
        for i in range(n):
            mask = succ[i]
            while mask:
                low = mask & -mask
                mask ^= low
                j = low.bit_length() - 1
                if j == i:
                    has_self[i] = True
                else:
                    preds[j].append(i)
                    succ_lists[i].append(j)

        # Kahn topological order, self-loops excluded (they have a
        # vectorized closed form); any longer cycle makes the block
        # recurrence order-dependent and forces the scalar path.
        indegree = [len(p) for p in preds]
        queue = [i for i in range(n) if indegree[i] == 0]
        topo: list[int] = []
        while queue:
            v = queue.pop()
            topo.append(v)
            for w in succ_lists[v]:
                indegree[w] -= 1
                if indegree[w] == 0:
                    queue.append(w)
        self.vector_ok = len(topo) == n and tables.const_enable_mask == 0
        self.pure = tables.n_modules == 0
        self.topo = topo
        self.preds = preds
        self.succ_lists = succ_lists
        self.has_self = has_self

        self.always_flag = _mask_flags(tables.always_mask, n)
        self.start_flag = _mask_flags(tables.start_mask, n)
        self.report_flag = _mask_flags(tables.report_ste_mask, n)
        self.hook_flag = [hooks is not None for hooks in tables.ste_module_hooks]
        self.always_list = [i for i in range(n) if self.always_flag[i]]
        self.start_list = [i for i in range(n) if self.start_flag[i]]

        # one bool row of n_classes per distinct symbol set; STEs with
        # identical symbol sets (all copies of an unfolded run) share a
        # row, so the per-block membership gather happens once per set
        match_rows = np.zeros((max(n, 1), tables.n_classes or 1), dtype=bool)
        for c, mask in enumerate(tables.match_masks):
            m = mask
            while m:
                low = m & -m
                m ^= low
                match_rows[low.bit_length() - 1, c] = True
        row_index: dict[bytes, int] = {}
        self.row_of = [0] * n
        for i in range(n):
            key = match_rows[i].tobytes()
            self.row_of[i] = row_index.setdefault(key, len(row_index))
        self.uniq_rows = np.zeros((max(len(row_index), 1), tables.n_classes or 1), dtype=bool)
        for i in range(n):
            self.uniq_rows[self.row_of[i]] = match_rows[i]
        self.byte_class_arr = np.frombuffer(tables.byte_class, dtype=np.uint8)


def _mask_flags(mask: int, n: int) -> list[bool]:
    return [bool((mask >> i) & 1) for i in range(n)]


# Programs are cached per tables object (keyed by id, cleaned up by a
# weakref finalizer) so repeated make_scanner calls over one compiled
# ruleset -- the facade builds a scanner per scan -- do not rebuild
# the graph.  TransitionTables is an eq-comparing dataclass and hence
# unhashable, so a WeakKeyDictionary is not an option.
_PROGRAMS: dict[int, _BlockProgram] = {}


def _program_for(tables: TransitionTables) -> _BlockProgram:
    key = id(tables)
    program = _PROGRAMS.get(key)
    if program is None:
        program = _BlockProgram(tables)
        _PROGRAMS[key] = program
        weakref.finalize(tables, _PROGRAMS.pop, key, None)
    return program


class BlockScanner:
    """Drop-in :class:`StreamScanner` replacement with block sweeps.

    Same construction, streaming surface (``feed``/``finish``/
    ``reset``), report set, and ``ActivityStats`` as the scalar
    scanner; only the execution strategy differs.  ``feed`` returns the
    chunk's newly observed reports ordered by position (the scalar
    scanner's observation order is also position-ordered; ties between
    simultaneous reports may interleave differently).

    Raises :class:`RuntimeError` when NumPy is unavailable -- resolve
    through :mod:`repro.engine.backends` to degrade gracefully instead.
    """

    def __init__(
        self,
        source: TransitionTables | Network,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        if _np is None:
            raise RuntimeError(
                f"BlockScanner requires numpy ({numpy_unavailable_reason()})"
            )
        if isinstance(source, Network):
            source = compile_tables(source)
        if block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {block_size}")
        self.tables = source
        self.block_size = block_size
        self._scalar = StreamScanner(source)
        self._program = _program_for(source)
        #: total aborted sweeps (monotonic, introspection/tests)
        self._rescans = 0
        #: consecutive aborted sweeps since the last committed block
        self._fruitless = 0
        self._sweeps_disabled = False

    # the embedded scalar scanner owns all mutable state, so fallback
    # blocks and vector commits observe one single source of truth
    @property
    def reports(self):
        """Distinct ``(position, report_id)`` pairs seen so far."""
        return self._scalar.reports

    @property
    def stats(self):
        return self._scalar.stats

    @property
    def bytes_fed(self) -> int:
        return self._scalar.bytes_fed

    def reset(self) -> None:
        self._scalar.reset()
        self._rescans = 0
        self._fruitless = 0
        self._sweeps_disabled = False

    def finish(self):
        """Mark end-of-stream; returns the distinct report set."""
        return self._scalar.finish()

    def feed(self, chunk: Chunk):
        """Consume one chunk; return reports newly added by it."""
        if self._scalar._finished:
            raise RuntimeError("feed() after finish(); call reset() to rescan")
        chunk = coerce_chunk(chunk)
        program = self._program
        if not program.vector_ok or self._sweeps_disabled:
            return self._scalar.feed(chunk)

        arr = _np.frombuffer(chunk, dtype=_np.uint8)
        new: list[tuple[int, Optional[str]]] = []
        length = len(arr)
        offset = 0
        block = self.block_size
        while offset < length:
            end = min(offset + block, length)
            # modules holding state must see every byte: scalar block
            if not program.pure and self._scalar._dirty:
                new.extend(self._scalar.feed(chunk[offset:end]))
            elif not self._vector_block(arr[offset:end], new):
                # a module port was signalled mid-block: discard the
                # sweep and replay the block through the interpreter
                self._rescans += 1
                self._fruitless += 1
                new.extend(self._scalar.feed(chunk[offset:end]))
                if self._fruitless >= _RESCAN_LIMIT:
                    # module-dense phase: stop paying for doomed sweeps
                    self._sweeps_disabled = True
                    new.extend(self._scalar.feed(chunk[end:]))
                    return new
            offset = end
        return new

    # -- one-shot conveniences (mirror StreamScanner) ----------------------
    def scan(self, data: Chunk):
        """Reset, consume ``data`` as one chunk, finish."""
        self.reset()
        self.feed(data)
        return self.finish()

    def match_ends(self, data: Chunk) -> list[int]:
        """Distinct report positions, for differential testing."""
        self.scan(data)
        return sorted({position for position, _ in self.reports})

    # -- the vector sweep --------------------------------------------------
    def _vector_block(self, arr, new: list) -> bool:
        """Sweep one block; commit and return True, or detect module
        activity and return False leaving all state untouched."""
        np = _np
        program = self._program
        tables = self.tables
        scalar = self._scalar
        enabled = scalar._enabled
        cycle = scalar._cycle
        blen = len(arr)

        cls = program.byte_class_arr[arr]
        topo = program.topo
        preds = program.preds
        succ_lists = program.succ_lists
        succ_masks = tables.succ_masks
        has_self = program.has_self
        always_flag = program.always_flag
        start_flag = program.start_flag
        report_flag = program.report_flag
        hook_flag = program.hook_flag
        row_of = program.row_of
        uniq_rows = program.uniq_rows
        rids = tables.ste_report_ids
        at_start = cycle == 0

        n = tables.n_stes
        occ: list = [None] * n
        needed = bytearray(n)
        touched: list[int] = []
        for v in program.always_list:
            needed[v] = 1
            touched.append(v)
        if at_start:
            for v in program.start_list:
                if not needed[v]:
                    needed[v] = 1
                    touched.append(v)
        mask = enabled
        while mask:
            low = mask & -mask
            mask ^= low
            v = low.bit_length() - 1
            if not needed[v]:
                needed[v] = 1
                touched.append(v)

        memb_cache: dict = {}
        idx = None
        activations = 0
        events = 0
        found: list[tuple[int, Optional[str]]] = []
        last_mask = 0
        for v in topo:
            if not needed[v]:
                continue
            row = row_of[v]
            memb = memb_cache.get(row)
            if memb is None:
                memb = uniq_rows[row][cls]
                memb_cache[row] = memb
            entry = bool((enabled >> v) & 1) or (at_start and start_flag[v])
            if always_flag[v]:
                # enabled on every symbol: occupancy is plain membership
                # (a self-loop adds nothing on top of ALL_INPUT)
                lane = memb
            else:
                live = [occ[u] for u in preds[v] if occ[u] is not None]
                if has_self[v]:
                    # self-loop closed form: held at t iff some enable
                    # arrived within the current unbroken symbol run
                    if idx is None:
                        idx = np.arange(blen)
                    drive = np.zeros(blen, dtype=bool)
                    drive[0] = entry
                    for lane_u in live:
                        np.logical_or(drive[1:], lane_u[:-1], out=drive[1:])
                    run_start = np.maximum.accumulate(np.where(memb, 0, idx + 1))
                    last_drive = np.maximum.accumulate(np.where(drive, idx, -1))
                    lane = memb & (last_drive >= run_start)
                elif len(live) == 1:
                    lane = np.empty(blen, dtype=bool)
                    np.logical_and(live[0][:-1], memb[1:], out=lane[1:])
                    lane[0] = entry and bool(memb[0])
                else:
                    lane = np.zeros(blen, dtype=bool)
                    lane[0] = entry
                    for lane_u in live:
                        np.logical_or(lane[1:], lane_u[:-1], out=lane[1:])
                    np.logical_and(lane, memb, out=lane)
            count = int(np.count_nonzero(lane))
            if count == 0:
                continue
            if hook_flag[v]:
                # this STE drives a counter/bit-vector port: the sweep's
                # no-module-activity premise is broken for this block
                return False
            occ[v] = lane
            activations += count
            if report_flag[v]:
                events += count
                rid = rids[v]
                base = cycle + 1
                for position in np.flatnonzero(lane).tolist():
                    found.append((base + position, rid))
            if lane[-1]:
                last_mask |= succ_masks[v]
            for w in succ_lists[v]:
                if not needed[w]:
                    needed[w] = 1
                    touched.append(w)

        # commit: the block held no module activity, so the modules'
        # rest state, pre latches, and counter registers are untouched
        # -- exactly what the interpreter's skip path would have done
        scalar._enabled = last_mask
        scalar._cycle = cycle + blen
        stats = scalar.stats
        stats.cycles += blen
        stats.ste_activations += activations
        stats.reports += events
        if found:
            reports = scalar.reports
            # by position only: report ids may mix None with str
            found.sort(key=lambda pair: pair[0])
            for pair in found:
                if pair not in reports:
                    reports.add(pair)
                    new.append(pair)
        self._fruitless = 0
        return True
