"""Streaming table-driven execution of a compiled network.

:class:`StreamScanner` is the fast path promised by the paper's
architecture: one input symbol per "clock" (loop iteration), unbounded
input consumed chunk by chunk.  All per-byte work is integer bitmask
arithmetic over :class:`~repro.engine.tables.TransitionTables`; enable
vectors, counter registers, and bit-vector shift registers carry across
:meth:`feed` calls, so scanning a stream in arbitrary chunkings yields
exactly the same reports as one single-buffer pass.

Semantics contract (asserted by ``tests/engine/``):

* distinct ``(position, report_id)`` reports equal the reference
  :class:`~repro.hardware.simulator.NetworkSimulator`'s
  ``distinct_reports()`` on the concatenated input;
* :attr:`stats` equals the reference run's ``ActivityStats`` field for
  field, so :func:`~repro.hardware.cost.energy_of_run` prices both
  engines identically.

Like the hardware (and the reference simulator), the scanner reports
*every* prefix end; ``$``-anchor gating against end-of-data is the
facade's job (:meth:`repro.matching.RulesetMatcher.scan_stream` applies
it at :meth:`finish` time, when the stream length is known).

This is the *raw* scanner layer: ``feed`` returns newly observed
``(position, report_id)`` tuples in position order and ``finish``
returns the distinct-report ``set``.  User-facing code should scan
through :class:`repro.session.MatchSession` (via
``RulesetMatcher.session()``), which unifies both into offset-sorted
:class:`repro.session.Match` lists and applies the facade semantics.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..hardware.simulator import ActivityStats
from ..mnrl.network import Network
from .tables import KIND_COUNTER, PORT_BODY, PORT_FST, PORT_LST, PORT_PRE, TransitionTables, compile_tables

__all__ = ["StreamScanner", "scan_bytes", "Chunk", "coerce_chunk"]

#: Anything a scan entry point accepts as one chunk of input.  ``str``
#: is a convenience for latin-1 text; binary-safe callers should pass a
#: bytes-like object.
Chunk = Union[bytes, bytearray, memoryview, str]


def coerce_chunk(chunk: Chunk) -> "bytes | bytearray | memoryview":
    """Normalize one input chunk to a byte-indexable buffer.

    ``bytes`` and ``bytearray`` pass through untouched (no copy);
    ``memoryview``\\ s are recast to unsigned bytes (copying only when
    non-contiguous); ``str`` is encoded as latin-1, with a clear error
    -- instead of a bare :class:`UnicodeEncodeError` -- when the text
    contains code points above U+00FF.  Every scan entry point (scanner
    feed, one-shot facade scans, worker payloads) funnels through here,
    so all input flavours behave identically on every backend.
    """
    if isinstance(chunk, (bytes, bytearray)):
        return chunk
    if isinstance(chunk, memoryview):
        try:
            return chunk.cast("B")
        except TypeError:
            return chunk.tobytes()
    if isinstance(chunk, str):
        try:
            return chunk.encode("latin-1")
        except UnicodeEncodeError as exc:
            raise ValueError(
                "str input must be latin-1 encodable (the scan alphabet is "
                f"bytes 0-255), but {chunk[exc.start:exc.end]!r} at index "
                f"{exc.start} is not; encode the text yourself and pass "
                "bytes instead"
            ) from exc
    raise TypeError(
        f"expected a bytes-like or str chunk, got {type(chunk).__name__}"
    )


class StreamScanner:
    """Incremental scanner over precompiled transition tables.

    Args:
        source: a :class:`TransitionTables` (typically compiled once and
            shared across scanners/streams/processes) or a
            :class:`~repro.mnrl.network.Network` to compile on the fly.

    Use :meth:`feed` for each chunk and :meth:`finish` when the stream
    ends; :attr:`reports` then holds the distinct
    ``(position, report_id)`` pairs (positions are 1-based byte counts
    from the start of the *stream*, not the chunk).

    >>> from repro import StreamScanner, compile_pattern
    >>> scanner = StreamScanner(compile_pattern("abc").network)
    >>> scanner.feed(b"xxab")       # match incomplete across the boundary
    []
    >>> scanner.feed(b"c")
    [(5, 'abc')]
    """

    def __init__(self, source: TransitionTables | Network):
        if isinstance(source, Network):
            source = compile_tables(source)
        self.tables = source
        self.reset()

    def reset(self) -> None:
        tables = self.tables
        self._cycle = 0
        self._enabled = 0
        self._counts = [0] * tables.n_modules
        self._bv = [0] * tables.n_modules
        self._pre = list(tables.module_initial_pre)
        self._dirty = tables.initial_dirty()
        self._finished = False
        self.stats = ActivityStats()
        #: distinct (position, report_id) pairs seen so far
        self.reports: set[tuple[int, Optional[str]]] = set()

    @property
    def bytes_fed(self) -> int:
        return self._cycle

    # -- streaming ---------------------------------------------------------
    def feed(self, chunk: Chunk) -> list[tuple[int, Optional[str]]]:
        """Consume one chunk; return reports newly added by it.

        ``chunk`` may be any bytes-like object (``bytes``,
        ``bytearray``, ``memoryview``) or latin-1-encodable ``str``;
        see :func:`coerce_chunk`.  The return value lists the
        ``(position, report_id)`` pairs first observed during this
        chunk, in observation order (pairs already reported by earlier
        chunks are not repeated).
        """
        if self._finished:
            raise RuntimeError("feed() after finish(); call reset() to rescan")
        chunk = coerce_chunk(chunk)

        tables = self.tables
        byte_class = tables.byte_class
        match_masks = tables.match_masks
        succ_masks = tables.succ_masks
        ste_hooks = tables.ste_module_hooks
        ste_rids = tables.ste_report_ids
        report_mask = tables.report_ste_mask
        always = tables.always_mask
        start = tables.start_mask
        const_enable = tables.const_enable_mask
        n_modules = tables.n_modules
        kinds = tables.module_kinds
        los = tables.module_lo
        his = tables.module_hi
        live_masks = tables.bv_live_masks
        out_ranges = tables.bv_out_masks
        body_ranges = tables.bv_body_masks
        weights = tables.bv_weights
        mod_reports = tables.module_reports
        mod_rids = tables.module_report_ids
        all_input = tables.module_all_input
        out_ste = tables.out_ste_masks
        aux_ste = tables.aux_ste_masks
        out_hooks = tables.out_module_hooks
        aux_hooks = tables.aux_module_hooks

        enabled = self._enabled
        cycle = self._cycle
        counts = self._counts
        bv = self._bv
        pre = self._pre
        dirty = self._dirty
        reports = self.reports
        new: list[tuple[int, Optional[str]]] = []

        ste_activations = 0
        counter_ops = 0
        bv_ops = 0
        bv_weighted = 0.0
        n_events = 0

        for byte in chunk:
            base = enabled | always
            if cycle == 0:
                base |= start
            active = base & match_masks[byte_class[byte]]
            position = cycle + 1
            next_enabled = const_enable
            sig: Optional[dict[int, int]] = None

            if active:
                ste_activations += active.bit_count()
                rep = active & report_mask
                if rep:
                    n_events += rep.bit_count()
                    while rep:
                        low = rep & -rep
                        rep ^= low
                        pair = (position, ste_rids[low.bit_length() - 1])
                        if pair not in reports:
                            reports.add(pair)
                            new.append(pair)
                remaining = active
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    index = low.bit_length() - 1
                    next_enabled |= succ_masks[index]
                    hooks = ste_hooks[index]
                    if hooks is not None:
                        if sig is None:
                            sig = {}
                        for target, port_bit in hooks:
                            if target in sig:
                                sig[target] |= port_bit
                            else:
                                sig[target] = port_bit

            if sig is not None or dirty:
                if sig is None:
                    sig = {}
                sig_get = sig.get
                for i in range(n_modules):
                    signals = sig_get(i, 0)
                    if not signals and i not in dirty:
                        continue
                    if kinds[i] == KIND_COUNTER:
                        if signals & (PORT_FST | PORT_LST):
                            counter_ops += 1
                        if signals & PORT_FST:
                            counts[i] = 1 if pre[i] else counts[i] + 1
                        if signals & PORT_LST:
                            count = counts[i]
                            fired_out = los[i] <= count <= his[i]
                            fired_aux = count < his[i]
                        else:
                            fired_out = fired_aux = False
                        dirty.discard(i)
                    else:
                        value = bv[i]
                        if signals & PORT_BODY:
                            bv_ops += 1
                            bv_weighted += weights[i]
                            value = (value << 1) & live_masks[i]
                            if pre[i]:
                                value |= 1
                        else:
                            if value:
                                bv_ops += 1
                                bv_weighted += weights[i]
                            value = 0
                        bv[i] = value
                        fired_out = bool(value & out_ranges[i])
                        fired_aux = bool(value & body_ranges[i])
                        if value:
                            dirty.add(i)
                        else:
                            dirty.discard(i)
                    pre[i] = all_input[i]
                    if fired_out:
                        if mod_reports[i]:
                            n_events += 1
                            pair = (position, mod_rids[i])
                            if pair not in reports:
                                reports.add(pair)
                                new.append(pair)
                        next_enabled |= out_ste[i]
                        hooks = out_hooks[i]
                        if hooks is not None:
                            for target, port_bit in hooks:
                                if target in sig:
                                    sig[target] |= port_bit
                                else:
                                    sig[target] = port_bit
                    if fired_aux:
                        next_enabled |= aux_ste[i]
                        hooks = aux_hooks[i]
                        if hooks is not None:
                            for target, port_bit in hooks:
                                if target in sig:
                                    sig[target] |= port_bit
                                else:
                                    sig[target] = port_bit
                # Latch `pre` for the next cycle.  Any module may have
                # driven another's `pre` regardless of topological rank
                # (it is excluded from the ordering), so this runs after
                # the in-order pass, exactly like the reference.
                for i, signals in sig.items():
                    if signals & PORT_PRE:
                        pre[i] = True
                        if not all_input[i]:
                            dirty.add(i)
                        if kinds[i] != KIND_COUNTER:
                            next_enabled |= aux_ste[i]

            enabled = next_enabled
            cycle = position

        self._enabled = enabled
        self._cycle = cycle
        stats = self.stats
        stats.cycles += len(chunk)
        stats.ste_activations += ste_activations
        stats.counter_ops += counter_ops
        stats.bit_vector_ops += bv_ops
        stats.bit_vector_weighted_ops += bv_weighted
        stats.reports += n_events
        return new

    def finish(self) -> set[tuple[int, Optional[str]]]:
        """Mark end-of-stream; returns the distinct report set.

        After ``finish()`` further :meth:`feed` calls raise (use
        :meth:`reset` to scan a new stream with the same tables).
        """
        self._finished = True
        return self.reports

    # -- one-shot conveniences (mirror the reference simulator) ------------
    def scan(self, data: Chunk) -> set[tuple[int, Optional[str]]]:
        """Reset, consume ``data`` as one chunk, finish."""
        self.reset()
        self.feed(data)
        return self.finish()

    def match_ends(self, data: Chunk) -> list[int]:
        """Distinct report positions, for differential testing."""
        self.scan(data)
        return sorted({position for position, _ in self.reports})


def scan_bytes(
    source: TransitionTables | Network, chunks: Iterable[Chunk] | Chunk
) -> StreamScanner:
    """One-shot convenience: scan ``chunks`` (or a single buffer) and
    return the finished scanner (reports + stats)."""
    scanner = StreamScanner(source)
    if isinstance(chunks, (bytes, str, bytearray, memoryview)):
        chunks = (chunks,)
    for chunk in chunks:
        scanner.feed(chunk)
    scanner.finish()
    return scanner
