"""Lane-wise counter / bit-vector execution for the block scanner.

The scalar interpreter processes each module one byte at a time:
counters hold one register (reset-wins semantics), bit vectors hold a
shift register of token ages (the counting-set representation of
:mod:`repro.nca.counting_sets`, Section 3.2.1).  Those per-byte
recurrences have *closed forms over a block* once the module's input
signals are available as boolean lanes, which is exactly what the
block sweep computes for every STE anyway:

* **counter** -- ``count[t]`` follows ``fst`` pulses by prefix sums:
  with ``C = cumsum(fst)`` and ``r[t]`` the latest reset position
  (a ``fst`` pulse arriving with a latched ``pre``),
  ``count[t] = C[t] - C[r[t]] + 1`` after a reset and
  ``carry + C[t]`` before any; ``en_out``/``en_fst`` are then pure
  elementwise tests against ``[lo, hi]`` on ``lst`` cycles.
* **bit vector** -- a token entered at position ``e`` (a ``body``
  signal with latched ``pre``) holds value ``t - e + 1`` at ``t`` and
  survives exactly while the ``body`` signal run beginning at or
  before ``e`` is unbroken.  Every observable is therefore a windowed
  existence query over the *entry* lane -- ``en_out[t]`` asks for an
  entry in ``[max(t-hi+1, run_start[t]), t-lo+1]`` -- answered with
  one cumulative sum and two gathers.  Carried shift-register bits
  from the previous block become virtual entries at negative
  positions on a ``hi``-wide extension of the lane.

The catch is wiring: emitted module fragments always close a one-STE
feedback loop (``en_fst`` re-arms the counter body, ``en_body`` holds
the bit-vector body STE), so module lanes and STE lanes are mutually
recursive.  :func:`analyze` recognizes those loop shapes structurally
-- the *absorbed* templates below -- and collapses each loop into a
single node whose closed form covers both the module and its body
STE.  What remains must be acyclic (same-cycle module signals plus
next-cycle enables, jointly); any other feedback (multi-STE counter
bodies, nested counting) rejects the whole tables and the scanner
keeps its optimistic-sweep-plus-rescan fallback.

All closed forms reproduce the interpreter bit for bit: reports,
``ActivityStats`` (including per-module op counts and weighted
bit-vector ops), and the carried scalar state (enable mask, counter
registers, shift registers, latched ``pre``, dirty set) written back
at each block boundary, so vector and scalar blocks interleave freely
mid-stream.
"""

from __future__ import annotations

from typing import Optional

from .tables import (
    KIND_BIT_VECTOR,
    KIND_COUNTER,
    PORT_BODY,
    PORT_FST,
    PORT_LST,
    PORT_PRE,
    SRC_AUX,
    SRC_OUT,
    TransitionTables,
    module_wiring,
)

__all__ = ["ModulePlan", "ModuleProgram", "analyze", "eval_module", "MAX_VECTOR_SPAN"]

#: Largest module span (``hi``) the lane evaluator will build a
#: carry-window extension for.  Spans beyond this are absurd for real
#: rulesets (the hardware bit vector is a few hundred bits); reject
#: them instead of allocating giant per-block scratch arrays.
MAX_VECTOR_SPAN = 1 << 16


class ModulePlan:
    """One module's vector-execution recipe (see :func:`analyze`)."""

    __slots__ = (
        "index",
        "kind",
        "lo",
        "hi",
        "all_input",
        "weight",
        "reports",
        "report_id",
        "absorbed",
        "fst_stes",
        "fst_mods",
        "lst_stes",
        "lst_mods",
        "body_stes",
        "body_mods",
        "pre_stes",
        "pre_mods",
        "out_targets",
        "aux_targets",
    )


class ModuleProgram:
    """Combined STE+module evaluation order for one tables object.

    ``steps`` interleaves ``(0, ste_index)`` and ``(1, module_index)``
    entries in dependency order; ``absorbed_of`` maps each body STE
    folded into a module's closed form to that module; ``mod_preds``
    lists, per non-absorbed STE, the ``(module, SRC_*)`` outputs that
    enable it (the next-cycle analogue of ``succ_masks``).
    """

    __slots__ = ("plans", "steps", "absorbed_of", "mod_preds")


def _bits(mask: int) -> list[int]:
    out = []
    while mask:
        low = mask & -mask
        mask ^= low
        out.append(low.bit_length() - 1)
    return out


def _try_absorb(
    tables: TransitionTables,
    plan: ModulePlan,
    preds: list[list[int]],
    has_self: list[bool],
    always_eff: list[bool],
    start_flag: list[bool],
) -> Optional[int]:
    """The absorbed-loop templates.

    A module qualifies when its auxiliary output re-arms exactly one
    non-always STE ``s`` that is, in turn, the module's only body
    (bit vector) or fst+lst (counter) driver, and ``s`` is enabled by
    precisely the same sources that pulse the module's ``pre`` -- the
    shape :mod:`repro.compiler.emit` produces for every ``Sym``-body
    repetition.  Then ``s``'s occupancy and the module's outputs share
    one closed form and the feedback edge disappears from the graph.
    """
    m = plan.index
    aux_mask = tables.aux_ste_masks[m]
    if aux_mask == 0 or aux_mask & (aux_mask - 1):
        return None  # need exactly one re-armed STE
    s = aux_mask.bit_length() - 1
    if always_eff[s] or has_self[s]:
        return None
    if tables.aux_module_hooks[m]:
        return None
    if plan.all_input:
        return None  # ALL_INPUT loops pair with an always body STE
    if start_flag[s] != tables.module_initial_pre[m]:
        return None
    hooks = tables.ste_module_hooks[s] or ()
    if plan.kind == KIND_BIT_VECTOR:
        if set(hooks) != {(m, PORT_BODY)}:
            return None
        if plan.body_stes != (s,) or plan.body_mods:
            return None
    else:
        if set(hooks) != {(m, PORT_FST), (m, PORT_LST)}:
            return None
        if plan.fst_stes != (s,) or plan.lst_stes != (s,):
            return None
        if plan.fst_mods or plan.lst_mods:
            return None
    # s's enable sources must equal the module's `pre` sources, so
    # "s entered with a latched pre" is exactly "some upstream source
    # fired last cycle" -- the closed forms lean on that equivalence.
    if set(preds[s]) != set(plan.pre_stes):
        return None
    s_mod_drivers = set()
    for j in range(tables.n_modules):
        if (tables.out_ste_masks[j] >> s) & 1:
            s_mod_drivers.add((j, SRC_OUT))
        if (tables.aux_ste_masks[j] >> s) & 1 and j != m:
            s_mod_drivers.add((j, SRC_AUX))
    if s_mod_drivers != set(plan.pre_mods):
        return None
    return s


def analyze(
    tables: TransitionTables,
    preds: list[list[int]],
    succ_lists: list[list[int]],
    has_self: list[bool],
    always_eff: list[bool],
    start_flag: list[bool],
) -> Optional[ModuleProgram]:
    """Build the combined STE+module program, or ``None`` when these
    tables cannot run module activity inside vector sweeps."""
    n = tables.n_stes
    nm = tables.n_modules
    wiring = module_wiring(tables)

    plans: list[ModulePlan] = []
    for m in range(nm):
        plan = ModulePlan()
        plan.index = m
        plan.kind = tables.module_kinds[m]
        plan.lo = tables.module_lo[m]
        plan.hi = tables.module_hi[m]
        if plan.lo < 1 or plan.hi < plan.lo or plan.hi > MAX_VECTOR_SPAN:
            return None
        plan.all_input = tables.module_all_input[m]
        plan.weight = tables.bv_weights[m]
        plan.reports = tables.module_reports[m]
        plan.report_id = tables.module_report_ids[m]
        sd = wiring.ste_drivers[m]
        md = wiring.module_drivers[m]
        plan.fst_stes = sd.get(PORT_FST, ())
        plan.lst_stes = sd.get(PORT_LST, ())
        plan.body_stes = sd.get(PORT_BODY, ())
        plan.pre_stes = sd.get(PORT_PRE, ())
        plan.fst_mods = md.get(PORT_FST, ())
        plan.lst_mods = md.get(PORT_LST, ())
        plan.body_mods = md.get(PORT_BODY, ())
        plan.pre_mods = md.get(PORT_PRE, ())
        plans.append(plan)

    absorbed_of: dict[int, int] = {}
    for plan in plans:
        s = _try_absorb(tables, plan, preds, has_self, always_eff, start_flag)
        plan.absorbed = s
        if s is not None:
            if s in absorbed_of:
                return None  # two modules claiming one body STE
            absorbed_of[s] = plan.index

    # Remaining feedback (aux re-arming a live STE outside a template)
    # would make the sweep order-dependent; the combined topological
    # sort below is the single gate -- templates merely removed the
    # loop edges they proved closed-form-safe.
    for plan in plans:
        if plan.absorbed is not None:
            continue
        for s in _bits(tables.aux_ste_masks[plan.index]):
            if not always_eff[s]:
                return None

    # -- combined dependency graph ------------------------------------------
    # Node ids: STE i -> i (skipping absorbed STEs), module m -> n + m.
    # Edges point driver -> dependent; enables into always-on STEs add
    # no lane dependency (their occupancy is plain membership).
    total = n + nm

    def node_of_ste(i: int) -> int:
        owner = absorbed_of.get(i)
        return i if owner is None else n + owner

    present = [True] * total
    for s in absorbed_of:
        present[s] = False

    adj: list[list[int]] = [[] for _ in range(total)]
    indeg = [0] * total

    def add_edge(a: int, b: int) -> None:
        if a != b:
            adj[a].append(b)
            indeg[b] += 1

    for u in range(n):
        src = node_of_ste(u)
        for w in succ_lists[u]:
            if not always_eff[w]:
                add_edge(src, node_of_ste(w))
        hooks = tables.ste_module_hooks[u]
        if hooks is not None:
            for m, _port in hooks:
                add_edge(src, n + m)
    for m in range(nm):
        src = n + m
        for w in _bits(tables.out_ste_masks[m] | tables.aux_ste_masks[m]):
            if not always_eff[w]:
                add_edge(src, node_of_ste(w))
        for hooks in (tables.out_module_hooks[m], tables.aux_module_hooks[m]):
            if hooks is not None:
                for m2, _port in hooks:
                    add_edge(src, n + m2)

    n_present = sum(present)
    queue = [v for v in range(total) if present[v] and indeg[v] == 0]
    order: list[int] = []
    while queue:
        v = queue.pop()
        order.append(v)
        for w in adj[v]:
            indeg[w] -= 1
            if indeg[w] == 0:
                queue.append(w)
    if len(order) != n_present:
        return None  # genuine cycle: nested counting / odd wiring

    # Targets each module must wake downstream (pruning seeds); the
    # absorbed STE's own successors are handled through occ[s].
    for plan in plans:
        m = plan.index
        plan.out_targets = tuple(
            w for w in _bits(tables.out_ste_masks[m]) if not always_eff[w]
        )
        plan.aux_targets = tuple(
            w
            for w in _bits(tables.aux_ste_masks[m])
            if not always_eff[w] and w != plan.absorbed
        )

    mod_preds: list[tuple[tuple[int, int], ...]] = [()] * n
    acc: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for m in range(nm):
        for w in _bits(tables.out_ste_masks[m]):
            if w not in absorbed_of:
                acc[w].append((m, SRC_OUT))
        for w in _bits(tables.aux_ste_masks[m]):
            if w not in absorbed_of:
                acc[w].append((m, SRC_AUX))
    for w in range(n):
        if acc[w]:
            mod_preds[w] = tuple(acc[w])

    program = ModuleProgram()
    program.plans = plans
    program.steps = [
        (0, v) if v < n else (1, v - n) for v in order
    ]
    program.absorbed_of = absorbed_of
    program.mod_preds = mod_preds
    return program


# -- per-block lane evaluation ---------------------------------------------


def _gather(np, stes, mods, occ, mod_out, mod_aux):
    """OR together driver lanes; ``None`` when every driver is idle.
    The returned array may alias a driver lane -- callers treat it as
    read-only."""
    lane = None
    owned = False
    for u in stes:
        lu = occ[u]
        if lu is None:
            continue
        if lane is None:
            lane = lu
        elif owned:
            np.logical_or(lane, lu, out=lane)
        else:
            lane = np.logical_or(lane, lu)
            owned = True
    for j, src in mods:
        lj = mod_out[j] if src == SRC_OUT else mod_aux[j]
        if lj is None:
            continue
        if lane is None:
            lane = lj
        elif owned:
            np.logical_or(lane, lj, out=lane)
        else:
            lane = np.logical_or(lane, lj)
            owned = True
    return lane


def _settle(scalar, m: int, all_input: bool, pre_last: bool) -> None:
    """Block-boundary `pre`/dirty write-back shared by every path.

    The interpreter's latched ``pre`` lives exactly one cycle, so after
    a block only the last position's pulse (or ALL_INPUT re-arming)
    survives; a non-resting latch is what keeps a module on the
    interpreter's dirty list."""
    pre = all_input or pre_last
    scalar._pre[m] = pre
    if pre and not all_input:
        scalar._dirty.add(m)
    else:
        scalar._dirty.discard(m)


def _nonzero_or_none(np, lane):
    if lane is not None and not lane.any():
        return None
    return lane


def eval_module(np, plan, blen, occ, mod_out, mod_aux, memb, enabled_bit, scalar, acc):
    """Evaluate one module over a block.

    Returns ``(s_occ, out_lane, aux_lane, pre_last)``: the absorbed
    body STE's occupancy (``None`` for free-standing modules or when it
    never fires), the ``en_out`` / auxiliary output lanes (``None``
    when silent), and whether ``pre`` was pulsed on the block's last
    position.  Stats deltas go into ``acc = [counter_ops, bv_ops,
    bv_weighted]``; module registers / dirty bookkeeping are written
    back to ``scalar`` directly.
    """
    m = plan.index
    prep = _gather(np, plan.pre_stes, plan.pre_mods, occ, mod_out, mod_aux)
    pre_last = prep is not None and bool(prep[-1])
    pre0 = scalar._pre[m]

    if plan.kind == KIND_COUNTER:
        if plan.absorbed is not None:
            return _eval_counter_absorbed(
                np, plan, blen, memb, prep, pre0, enabled_bit, scalar, acc, pre_last
            )
        return _eval_counter_free(
            np, plan, blen, occ, mod_out, mod_aux, prep, pre0, scalar, acc, pre_last
        )
    if plan.absorbed is not None:
        return _eval_bv(
            np, plan, blen, memb, prep, pre0, scalar, acc, pre_last, absorbed=True
        )
    body = _gather(np, plan.body_stes, plan.body_mods, occ, mod_out, mod_aux)
    return _eval_bv(
        np, plan, blen, body, prep, pre0, scalar, acc, pre_last, absorbed=False
    )


def _pre_lane(np, blen, prep, pre0):
    """The `pre` value *consumed* at each position: latched one cycle
    earlier (carry at position 0)."""
    lane = np.zeros(blen, dtype=bool)
    lane[0] = pre0
    if prep is not None:
        lane[1:] = prep[:-1]
    return lane


def _eval_counter_free(
    np, plan, blen, occ, mod_out, mod_aux, prep, pre0, scalar, acc, pre_last
):
    """Free-standing counter: inputs are ordinary lanes, the register
    follows ``fst`` pulses by prefix sums with reset-wins gathers."""
    m = plan.index
    fst = _gather(np, plan.fst_stes, plan.fst_mods, occ, mod_out, mod_aux)
    lst = _gather(np, plan.lst_stes, plan.lst_mods, occ, mod_out, mod_aux)
    c_in = scalar._counts[m]
    if fst is None and lst is None:
        _settle(scalar, m, plan.all_input, pre_last)
        return None, None, None, pre_last

    if fst is None:
        # register untouched: `lst` only reads it
        out = lst if plan.lo <= c_in <= plan.hi else None
        aux = lst if c_in < plan.hi else None
        acc[0] += int(np.count_nonzero(lst))
    else:
        if plan.all_input:
            resets = fst  # `pre` re-armed every cycle: every fst resets
        else:
            resets = fst & _pre_lane(np, blen, prep, pre0)
        C = np.cumsum(fst)
        idx = np.arange(blen)
        r = np.maximum.accumulate(np.where(resets, idx, -1))
        unreset = r < 0
        count = C - C[np.maximum(r, 0)] + 1
        if unreset.any():
            count[unreset] = C[unreset] + c_in
        scalar._counts[m] = int(count[-1])
        if lst is None:
            out = aux = None
            acc[0] += int(np.count_nonzero(fst))
        else:
            out = lst & (count >= plan.lo) & (count <= plan.hi)
            aux = lst & (count < plan.hi)
            acc[0] += int(np.count_nonzero(fst | lst))
    _settle(scalar, m, plan.all_input, pre_last)
    return None, _nonzero_or_none(np, out), _nonzero_or_none(np, aux), pre_last


def _eval_counter_absorbed(
    np, plan, blen, memb, prep, pre0, enabled_bit, scalar, acc, pre_last
):
    """Counter fused with its single body STE ``s``.

    ``s`` holds (and the counter counts) exactly while the latest entry
    -- a `pre` pulse landing on a membership run -- is at most ``hi-1``
    positions back within that run; its register is the entry's age.
    The carried register becomes a virtual entry at a negative position
    on a ``hi``-wide lane extension, gated on ``s``'s carried enable
    bit (a carried enable implies ``count < hi``: it came from
    ``en_fst``, which fires only below ``hi``).
    """
    m = plan.index
    hi = plan.hi
    c_in = scalar._counts[m]
    if prep is None and not pre0 and not enabled_bit:
        _settle(scalar, m, False, pre_last)
        return None, None, None, pre_last

    pre = _pre_lane(np, blen, prep, pre0)
    ent = memb & pre
    if not ent.any() and not (enabled_bit and not pre0 and memb[0]):
        _settle(scalar, m, False, pre_last)
        return None, None, None, pre_last

    W = hi
    exlen = W + blen
    ente = np.zeros(exlen, dtype=bool)
    ente[W:] = ent
    if enabled_bit and not pre0:
        ente[W - min(c_in, W)] = True
    membe = np.ones(exlen, dtype=bool)
    membe[W:] = memb
    idxe = np.arange(-W, blen)
    rs = np.maximum.accumulate(np.where(membe, -W, idxe + 1))
    le = np.maximum.accumulate(np.where(ente, idxe, -W - 1))
    t = idxe[W:]
    le_in = le[W:]
    window_lo = np.maximum(t - (hi - 1), rs[W:])
    s_occ = memb & (le_in >= window_lo)
    if not s_occ.any():
        _settle(scalar, m, False, pre_last)
        return None, None, None, pre_last

    count = t - le_in + 1
    out = s_occ & (count >= plan.lo)
    aux = s_occ & (count < hi)
    acc[0] += int(np.count_nonzero(s_occ))  # fst and lst pulse together
    last_active = blen - 1 - int(np.argmax(s_occ[::-1]))
    scalar._counts[m] = int(count[last_active])
    _settle(scalar, m, False, pre_last)
    return s_occ, _nonzero_or_none(np, out), _nonzero_or_none(np, aux), pre_last


def _eval_bv(np, plan, blen, body, prep, pre0, scalar, acc, pre_last, absorbed):
    """Bit vector, fused or free-standing.

    ``body`` is the body-signal lane: the absorbed body STE's symbol
    membership (its occupancy *is* the token-aliveness lane the window
    query computes), or the gathered body-port drivers.  Tokens are the
    entry lane; every output is a windowed existence query answered via
    one cumulative sum; carried shift-register bits are virtual entries
    on the ``hi``-wide lane extension.
    """
    m = plan.index
    hi = plan.hi
    v_in = scalar._bv[m]
    if body is None and not absorbed:
        # no body signals at all: a carried value dies (one op) at the
        # first position, exactly like the interpreter's dirty pass
        if v_in:
            acc[1] += 1
            acc[2] += plan.weight
            scalar._bv[m] = 0
        _settle(scalar, m, plan.all_input, pre_last)
        return None, None, None, pre_last
    if absorbed and v_in == 0 and prep is None and not pre0:
        _settle(scalar, m, False, pre_last)
        return None, None, None, pre_last

    if plan.all_input:
        ent = body
    else:
        ent = body & _pre_lane(np, blen, prep, pre0)
    if v_in == 0 and not ent.any():
        if not absorbed:
            # body pulses but nothing ever enters: each pulse is still
            # a (shift-of-zero) op in the interpreter's accounting
            pulses = int(np.count_nonzero(body))
            acc[1] += pulses
            acc[2] += plan.weight * pulses
        # absorbed: the body STE only runs while a token holds it, so
        # with no tokens there are no body signals (and no ops) at all
        scalar._bv[m] = 0
        _settle(scalar, m, plan.all_input, pre_last)
        return None, None, None, pre_last

    W = hi
    exlen = W + blen
    ente = np.zeros(exlen, dtype=bool)
    ente[W:] = ent
    value = v_in
    while value:
        low = value & -value
        value ^= low
        j = low.bit_length() - 1  # value j+1 => entered j+1 cycles ago
        if j < W:
            ente[W - 1 - j] = True
    bodye = np.ones(exlen, dtype=bool)
    bodye[W:] = body
    idxe = np.arange(-W, blen)
    rs = np.maximum.accumulate(np.where(bodye, -W, idxe + 1))
    cum = np.empty(exlen + 1, dtype=np.int64)
    cum[0] = 0
    cum[1:] = np.cumsum(ente)
    t = idxe[W:]
    rs_in = rs[W:]
    window_lo = np.maximum(t - (hi - 1), rs_in) + W  # array position of A
    base = cum[window_lo]
    nz = body & (cum[t + W + 1] - base > 0)
    out = body & (cum[t - plan.lo + 1 + W + 1] - base > 0)
    if hi > 1:
        aux_lo = np.maximum(t - (hi - 2), rs_in) + W
        aux = body & (cum[t + W + 1] - cum[aux_lo] > 0)
    else:
        aux = None

    # one op per body signal or per carried-value decay step (for the
    # absorbed form the body STE's activity *is* the aliveness lane)
    prev_nz = np.empty(blen, dtype=bool)
    prev_nz[0] = v_in != 0
    prev_nz[1:] = nz[:-1]
    signals = nz if absorbed else body
    ops = int(np.count_nonzero(signals | prev_nz))
    acc[1] += ops
    acc[2] += plan.weight * ops

    T = blen - 1
    if nz[T]:
        a = int(window_lo[T])  # array position of the oldest live slot
        seg = ente[a : T + W + 1]
        v_out = 0
        for k in np.flatnonzero(seg).tolist():
            v_out |= 1 << (T + W - a - k)  # bit = token age at T
        scalar._bv[m] = v_out
    else:
        scalar._bv[m] = 0
    _settle(scalar, m, plan.all_input, pre_last)
    if scalar._bv[m]:
        scalar._dirty.add(m)
    s_occ = nz if absorbed else None
    return s_occ, _nonzero_or_none(np, out), _nonzero_or_none(np, aux), pre_last
