"""Batch and sharded scanning front-ends.

Two scale-out axes, matching how CAMA deployments scale (Section 4.1:
banks of arrays running rule subsets side by side, fed by independent
traffic streams):

* **many streams, one ruleset** -- :func:`scan_streams` fans a batch of
  input buffers over worker processes; the precompiled
  :class:`~repro.engine.tables.TransitionTables` (plain ints/lists)
  pickle once per worker via the pool initializer, so workers never
  recompile.
* **one stream, many shards** -- :class:`ShardedMatcher` splits a rule
  set round-robin across independently compiled
  :class:`~repro.matching.RulesetMatcher` shards (mirroring rules
  spread over separate banks), scans them all, and merges the per-shard
  :class:`~repro.matching.ScanResult`\\ s (union of matches, summed
  energy -- each shard's bank burns its own power -- and merged
  :class:`~repro.matching.CompileInfo` provenance).

:class:`ShardedMatcher` implements the same
:class:`~repro.session.Matcher` protocol as the single-network facade:
:meth:`ShardedMatcher.session` opens a
:class:`~repro.session.MatchSession` holding one sub-scanner per shard
and merges their incremental :class:`~repro.session.Match` emission in
offset order, so session-oriented serving code (including
:class:`~repro.session.MultiStreamScanner` multi-stream demultiplexing
over ``scan_streams``-style batches) never distinguishes sharded from
unsharded matchers.

Every shard's tables carry their own alphabet-class map (the partition
is per-network, so a shard's scanners all share one 256-byte map plus
``k`` class masks); compile options -- including ``opt_level``,
``cache_dir`` for the persistent ruleset cache, and ``engine`` (an
execution-backend name from :mod:`repro.engine.backends`, or
``"auto"``) -- forward to each shard's matcher unchanged, and the
backend *name* ships to worker processes, which re-resolve it against
their own registry per shard.

Process pools are best-effort: ``processes <= 1``, pool start-up
failure, or unpicklable platforms silently fall back to in-process
serial scanning with identical results.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, TYPE_CHECKING

from ..hardware.simulator import ActivityStats
from ..session import MatchSession, MatchSink, SessionPart
from .backends import AUTO_ENGINE, resolve_backend
from .scanner import Chunk, coerce_chunk
from .tables import TransitionTables

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..matching import CompileInfo, ResourceSummary, RulesetMatcher, ScanResult

__all__ = [
    "shard_rules",
    "scan_streams",
    "merge_scan_results",
    "mp_context",
    "ShardedMatcher",
    "FeedPool",
]


def mp_context(prefer: Sequence[str] = ("fork", "spawn")):
    """The best available :mod:`multiprocessing` context, or ``None``.

    ``fork`` first: workers inherit the parent's compiled tables and
    module state for free (the process-grid idiom of :func:`_run_pool`
    and the serve fleet's worker spawn both want that); ``spawn`` as
    the portable fallback.  ``None`` means no multiprocessing at all
    (restricted sandbox) -- callers degrade the same way the pools in
    this module do.
    """
    try:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        for method in prefer:
            if method in methods:
                return multiprocessing.get_context(method)
    except Exception:
        pass
    return None


def shard_rules(
    rules: Iterable[str] | Sequence[tuple[str, str]], shards: int
) -> list[list[tuple[str, str]]]:
    """Split rules round-robin into ``shards`` buckets.

    Bare pattern strings get the same ``rule{index}`` ids that
    :func:`~repro.compiler.pipeline.compile_ruleset` would assign, so a
    sharded compilation reports the same rule ids as an unsharded one.
    This is *the* shard-assignment policy: the network cluster layer
    (:class:`~repro.serve.cluster.LocalShardCluster`) calls the same
    function, so a ruleset splits identically whether the shards are
    threads in this process or match servers on other machines.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    from ..compiler.pipeline import normalize_rules

    named = normalize_rules(rules)
    buckets: list[list[tuple[str, str]]] = [[] for _ in range(shards)]
    for index, rule in enumerate(named):
        buckets[index % shards].append(rule)
    return buckets


# -- worker plumbing -------------------------------------------------------
class FeedPool:
    """Best-effort worker pool for CPU-bound ``feed()`` offload.

    The serving layer (:mod:`repro.serve`) must keep backend scan work
    off the event loop, but a :class:`~repro.session.MatchSession`
    carries live mutable scanner state, so -- unlike the per-stream
    batch grid of :func:`scan_streams`, which ships picklable tables to
    *processes* -- serving offload uses **threads** sharing the
    compiled tables.  Same pragmatics as :func:`_run_pool`, though: if
    a pool cannot be created (restricted sandbox, no threading), work
    degrades to synchronous in-caller execution with identical
    results.

    :meth:`submit` always returns a :class:`concurrent.futures.Future`
    (already resolved on the degraded path), so callers -- including
    ``asyncio`` code via :func:`asyncio.wrap_future` -- never branch
    on which mode they got.

        >>> from repro.engine.parallel import FeedPool
        >>> with FeedPool(workers=2) as pool:
        ...     pool.submit(sum, [1, 2, 3]).result()
        6
    """

    def __init__(self, workers: Optional[int] = None):
        self._pool = None
        try:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-feed"
            )
        except Exception:
            self._pool = None  # degraded: run inline

    @property
    def degraded(self) -> bool:
        """True when submissions run synchronously in the caller."""
        return self._pool is None

    def submit(self, fn, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` on a worker; return its Future."""
        if self._pool is not None:
            try:
                return self._pool.submit(fn, *args, **kwargs)
            except RuntimeError:
                pass  # pool already shut down: fall through to inline
        from concurrent.futures import Future

        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - future carries it
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Release the workers (idempotent; queued work completes when
        ``wait`` is true)."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait)

    def __enter__(self) -> "FeedPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False


_WORKER_TABLES: Optional[list[TransitionTables]] = None
_WORKER_ENGINE: str = AUTO_ENGINE


def _pool_init(tables_list: list[TransitionTables], engine: str = AUTO_ENGINE) -> None:
    global _WORKER_TABLES, _WORKER_ENGINE
    _WORKER_TABLES = tables_list
    _WORKER_ENGINE = engine


def _pool_scan(task: tuple[int, int, bytes]):
    shard_index, stream_index, data = task
    assert _WORKER_TABLES is not None
    tables = _WORKER_TABLES[shard_index]
    # resolved per task against this shard's tables: "auto" may pick a
    # different backend per shard (one shard module-free, one not)
    scanner = resolve_backend(_WORKER_ENGINE, tables).make_scanner(tables)
    scanner.feed(data)
    scanner.finish()
    return shard_index, stream_index, len(data), scanner.reports, scanner.stats


def scan_streams(
    tables_list: Sequence[TransitionTables],
    streams: Sequence[Chunk],
    processes: int = 0,
    engine: str = AUTO_ENGINE,
) -> list[list[tuple[int, set, ActivityStats]]]:
    """Scan every stream against every shard's tables.

    Returns ``result[stream_index][shard_index]`` as
    ``(bytes_scanned, distinct reports, stats)``.  With
    ``processes > 1`` the (shard, stream) grid is fanned over a process
    pool; otherwise (or if the pool cannot start) it runs serially.
    ``engine`` is any registry name (or ``"auto"``); the choice ships
    to the workers, which resolve it against their own registry.
    """
    if engine != AUTO_ENGINE:
        resolve_backend(engine)  # fail fast on unknown/unavailable names
    payloads = [bytes(coerce_chunk(stream)) for stream in streams]
    tasks = [
        (shard_index, stream_index, data)
        for stream_index, data in enumerate(payloads)
        for shard_index in range(len(tables_list))
    ]
    outcomes = None
    if processes > 1 and len(tasks) > 1:
        outcomes = _run_pool(list(tables_list), tasks, processes, engine)
    if outcomes is None:
        _pool_init(list(tables_list), engine)
        outcomes = [_pool_scan(task) for task in tasks]

    results: list[list] = [[None] * len(tables_list) for _ in payloads]
    for shard_index, stream_index, n_bytes, reports, stats in outcomes:
        results[stream_index][shard_index] = (n_bytes, reports, stats)
    return results


def _run_pool(tables_list, tasks, processes, engine):
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=processes,
            initializer=_pool_init,
            initargs=(tables_list, engine),
        ) as pool:
            return list(pool.map(_pool_scan, tasks))
    except Exception:
        # No usable multiprocessing here (restricted sandbox, missing
        # semaphores, ...): correctness over parallelism.
        return None


def merge_scan_results(results: "Sequence[ScanResult]") -> "ScanResult":
    """Merge per-shard results for the *same* input stream.

    Matches are unioned per rule id; energy sums (each shard occupies
    its own CAM arrays, so per-byte energies add); compile provenance
    merges via :func:`~repro.matching.merge_compile_infos` (summed
    compile seconds, all-shards-warm cache flag) when every input
    carries it, instead of being dropped.

    The merge has an identity: an **empty** input returns the neutral
    result (zero bytes, no matches) and a one-element input returns an
    equal result unchanged -- so scatter-gather callers (the network
    cluster path, :mod:`repro.serve.cluster`) can fold whatever shard
    subset responded without special-casing 0 or 1 shards.

    >>> from repro import ScanResult, merge_scan_results
    >>> merged = merge_scan_results(
    ...     [ScanResult(5, {"a": [3]}), ScanResult(5, {"b": [5]})])
    >>> merged.matches
    {'a': [3], 'b': [5]}
    >>> merge_scan_results([]) == ScanResult(0, {})
    True
    >>> merge_scan_results([merged]) == merged
    True
    """
    from ..matching import ScanResult, merge_compile_infos

    if not results:
        return ScanResult(bytes_scanned=0, matches={})
    lengths = {result.bytes_scanned for result in results}
    if len(lengths) > 1:
        raise ValueError(f"shard results disagree on stream length: {lengths}")
    matches: dict[str, set[int]] = {}
    for result in results:
        for rule, ends in result.matches.items():
            matches.setdefault(rule, set()).update(ends)
    infos = [result.compile_info for result in results]
    return ScanResult(
        bytes_scanned=lengths.pop(),
        matches={rule: sorted(ends) for rule, ends in sorted(matches.items())},
        energy_nj_per_byte=sum(result.energy_nj_per_byte for result in results),
        compile_info=(
            merge_compile_infos(infos) if all(info is not None for info in infos)
            else None
        ),
    )


class ShardedMatcher:
    """Round-robin ruleset sharding over independent matchers.

    Same surface as :class:`~repro.matching.RulesetMatcher` for the
    scanning entry points (:meth:`scan`, :meth:`scan_stream`,
    :meth:`scan_many`), with per-shard results merged transparently.

    >>> from repro import ShardedMatcher
    >>> sharded = ShardedMatcher([("a", "abc"), ("b", "xyz")], shards=2)
    >>> sharded.scan(b"abcxyz").matches
    {'a': [3], 'b': [6]}

    Args:
        rules: as for :class:`~repro.matching.RulesetMatcher`.
        shards: number of round-robin shards (>= 1).
        processes: default worker-process count for :meth:`scan_many`
            (0/1 = serial).
        **kwargs: forwarded to every shard's matcher.
    """

    def __init__(
        self,
        rules: Iterable[str] | Sequence[tuple[str, str]],
        shards: int = 2,
        processes: int = 0,
        **kwargs,
    ):
        from ..compiler.pipeline import dedupe_rules
        from ..matching import RulesetMatcher

        self.processes = processes
        #: default execution backend, forwarded to every shard and to
        #: worker processes (any registry name, or "auto")
        self.engine: str = kwargs.get("engine", AUTO_ENGINE)
        # Deduplicate rule ids *before* sharding: round-robin would
        # otherwise scatter duplicates across shards where no single
        # compile_ruleset call can see the collision, silently
        # compiling the same id twice.
        unique, self._duplicate_skipped = dedupe_rules(rules)
        self.shards: list[RulesetMatcher] = [
            RulesetMatcher(bucket, **kwargs)
            for bucket in shard_rules(unique, shards)
        ]

    @property
    def skipped(self) -> list[tuple[str, str]]:
        return self._duplicate_skipped + [
            entry for shard in self.shards for entry in shard.skipped
        ]

    @property
    def compile_infos(self) -> "list":
        """Per-shard :class:`~repro.matching.CompileInfo` (cache hits
        and compile timings, in shard order)."""
        return [shard.compile_info for shard in self.shards]

    @property
    def compile_info(self) -> "CompileInfo":
        """Merged compilation provenance across all shards (summed
        seconds, all-warm cache flag); also attached to every
        :class:`~repro.matching.ScanResult` this matcher produces."""
        from ..matching import merge_compile_infos

        return merge_compile_infos(self.compile_infos)

    def resources(self) -> "ResourceSummary":
        from ..matching import ResourceSummary

        parts = [shard.resources() for shard in self.shards]
        return ResourceSummary(
            rules_compiled=sum(p.rules_compiled for p in parts),
            rules_skipped=sum(p.rules_skipped for p in parts),
            stes=sum(p.stes for p in parts),
            counters=sum(p.counters for p in parts),
            bit_vectors=sum(p.bit_vectors for p in parts),
            cam_arrays=sum(p.cam_arrays for p in parts),
            pes=sum(p.pes for p in parts),
            area_mm2=sum(p.area_mm2 for p in parts),
            waste_mm2=sum(p.waste_mm2 for p in parts),
            opt_level=max((p.opt_level for p in parts), default=0),
            merged_stes=sum(p.merged_stes for p in parts),
            removed_nodes=sum(p.removed_nodes for p in parts),
            # each shard holds its own k-entry match table, so the
            # total table width across banks is the sum
            alphabet_classes=sum(p.alphabet_classes for p in parts),
        )

    def session(
        self,
        engine: Optional[str] = None,
        *,
        stream: Optional[str] = None,
        on_match: Optional[MatchSink] = None,
    ) -> MatchSession:
        """Open a :class:`~repro.session.MatchSession` spanning every
        shard.

        The session holds one fresh sub-scanner per shard; each
        ``feed`` runs the chunk through all of them in lockstep and
        merges the newly observed :class:`~repro.session.Match` events
        in offset order, so incremental emission is indistinguishable
        from an unsharded matcher's (the rule partition is invisible).
        """
        engine = engine or self.engine
        parts = [
            SessionPart(
                scanner=shard._scanner(engine),
                end_anchored=frozenset(shard._end_anchored),
                finalize=shard._result_from_reports,
            )
            for shard in self.shards
        ]
        return MatchSession(parts, stream=stream, on_match=on_match)

    def scan(self, data: Chunk, engine: Optional[str] = None) -> "ScanResult":
        with self.session(engine=engine) as session:
            session.feed(data)
        return session.result()

    def scan_stream(
        self, chunks: Iterable[Chunk], engine: Optional[str] = None
    ) -> "ScanResult":
        """Feed one stream of chunks through every shard in lockstep
        (the chunk iterable is consumed exactly once)."""
        with self.session(engine=engine) as session:
            for chunk in chunks:
                session.feed(chunk)
        return session.result()

    def matched_rules(self, data: Chunk) -> set[str]:
        """Convenience: just the ids of rules that matched."""
        return self.scan(data).matched_rules()

    def scan_many(
        self,
        streams: Sequence[Chunk],
        processes: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> list["ScanResult"]:
        """Scan a batch of independent streams; one merged result each.

        With ``processes > 1`` the (shard, stream) grid fans out over
        worker processes; otherwise each stream runs through an
        in-process per-shard session.  Results are identical.
        """
        if processes is None:
            processes = self.processes
        if processes <= 1:
            return [self.scan(stream, engine=engine) for stream in streams]
        grid = scan_streams(
            [shard.tables for shard in self.shards],
            streams,
            processes=processes,
            engine=engine or self.engine,
        )
        merged: list["ScanResult"] = []
        for per_shard in grid:
            results = [
                shard._result_from_reports(reports, n_bytes, stats)
                for shard, (n_bytes, reports, stats) in zip(self.shards, per_shard)
            ]
            merged.append(merge_scan_results(results))
        return merged
