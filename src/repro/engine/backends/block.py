"""The ``"block"`` backend: NumPy vectorized block sweeps.

Wraps :class:`~repro.engine.block.BlockScanner`.  Availability is
gated on the optional NumPy dependency -- when the import fails the
registry reports the backend unavailable with the import error as the
reason, and ``engine="auto"`` quietly degrades to ``"stream"``.

The backend applies to *every* network (module-bearing blocks replay
through the embedded scalar interpreter), but ``auto`` only prefers it
where the sweeps actually pay off: module-free tables whose STE graph
is acyclic up to self-loops -- the Snort/Suricata-style common case.
"""

from __future__ import annotations

from typing import Optional

from .. import block as block_engine
from ..tables import TransitionTables
from .base import Backend

__all__ = ["BlockBackend"]


class BlockBackend(Backend):
    name = "block"
    aliases = ()
    description = (
        "NumPy bit-parallel block scanner (vector sweeps on STE-only "
        "activity, scalar replay around module activity)"
    )
    stats_exact = True
    streaming = True

    def availability(self) -> tuple[bool, Optional[str]]:
        if block_engine.numpy_or_none() is None:
            return False, block_engine.numpy_unavailable_reason()
        return True, None

    def auto_priority(self, tables: TransitionTables) -> Optional[int]:
        if tables.n_modules != 0:
            return None
        # building the program also answers acyclicity; it is cached
        # per tables object, so this is free after the first ask
        if not block_engine._program_for(tables).vector_ok:
            return None
        return 30

    def make_scanner(self, tables: TransitionTables) -> "block_engine.BlockScanner":
        return block_engine.BlockScanner(tables)
