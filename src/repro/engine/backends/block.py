"""The ``"block"`` backend: NumPy vectorized block sweeps.

Wraps :class:`~repro.engine.block.BlockScanner`.  Availability is
gated on the optional NumPy dependency -- when the import fails the
registry reports the backend unavailable with the import error as the
reason, and ``engine="auto"`` quietly degrades to ``"stream"``.

The backend applies to *every* network (module-bearing blocks that
defeat in-lane execution replay through the embedded scalar
interpreter), and ``auto`` prefers it wherever sweeps actually pay
off: module-free tables whose STE graph is acyclic up to self-loops
-- the Snort/Suricata-style common case -- and module-bearing tables
whose combined STE+module graph admits in-sweep closed-form module
execution (``{n,m}`` bounded repeats, gap rules).  Only tables with
genuine feedback cycles (nested counting, multi-STE counter bodies)
rank below ``"stream"``, because there every sweep risks a scalar
replay.
"""

from __future__ import annotations

from typing import Optional

from .. import block as block_engine
from ..tables import TransitionTables
from .base import Backend

__all__ = ["BlockBackend"]


class BlockBackend(Backend):
    name = "block"
    aliases = ()
    description = (
        "NumPy bit-parallel block scanner (vector sweeps with in-lane "
        "counter/bit-vector execution, scalar replay only around "
        "genuinely cyclic module wiring)"
    )
    stats_exact = True
    streaming = True

    def availability(self) -> tuple[bool, Optional[str]]:
        if block_engine.numpy_or_none() is None:
            return False, block_engine.numpy_unavailable_reason()
        return True, None

    def auto_priority(self, tables: TransitionTables) -> Optional[int]:
        # building the program also answers acyclicity; it is cached
        # per tables object, so this is free after the first ask
        program = block_engine._program_for(tables)
        if program.pure:
            return 30 if program.vector_ok else None
        if program.full_ok:
            # modules run inside the sweep: every block commits
            return 25
        # optimistic sweeps risk scalar replays; let "stream" win
        return None

    def make_scanner(self, tables: TransitionTables) -> "block_engine.BlockScanner":
        return block_engine.BlockScanner(tables)
