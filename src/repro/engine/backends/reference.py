"""The ``"reference"`` backend: the node-by-node executable spec.

Wraps :class:`~repro.hardware.simulator.NetworkSimulator` behind the
scanner surface.  The simulator steps one byte at a time over Python
node objects and carries all state on itself, so the adapter streams
chunk by chunk without buffering -- ``feed`` simply extends the run
and diffs the distinct-report set.

This backend interprets the *network*, not the lowered tables, so it
is only applicable when the tables still carry their source network
(``TransitionTables.network`` -- set by ``compile_tables`` and
preserved through pickling, cache artifacts, and worker shipment).  It
is never picked by ``engine="auto"``: it exists as the semantics
oracle the fast backends are differentially tested against, at a
couple of orders of magnitude lower throughput.
"""

from __future__ import annotations

from typing import Optional

from ...hardware.simulator import NetworkSimulator
from ..scanner import Chunk, coerce_chunk
from ..tables import TransitionTables
from .base import Backend

__all__ = ["ReferenceBackend", "ReferenceScanner"]


class ReferenceScanner:
    """Streaming scanner surface over the reference simulator."""

    def __init__(self, tables: TransitionTables):
        if tables.network is None:
            raise ValueError(
                "reference backend needs TransitionTables.network; these "
                "tables were built without their source network"
            )
        self.tables = tables
        self._sim = NetworkSimulator(tables.network)
        self.reset()

    def reset(self) -> None:
        self._sim.reset()
        self._finished = False
        #: distinct (position, report_id) pairs seen so far
        self.reports: set[tuple[int, Optional[str]]] = set()

    @property
    def stats(self):
        return self._sim.stats

    @property
    def bytes_fed(self) -> int:
        return self._sim.cycle

    def feed(self, chunk: Chunk) -> list[tuple[int, Optional[str]]]:
        """Consume one chunk; return reports newly added by it."""
        if self._finished:
            raise RuntimeError("feed() after finish(); call reset() to rescan")
        chunk = coerce_chunk(chunk)
        seen_events = len(self._sim.reports)
        self._sim.run(chunk)
        new: list[tuple[int, Optional[str]]] = []
        for event in self._sim.reports[seen_events:]:
            pair = (event.position, event.report_id)
            if pair not in self.reports:
                self.reports.add(pair)
                new.append(pair)
        return new

    def finish(self) -> set[tuple[int, Optional[str]]]:
        """Mark end-of-stream; returns the distinct report set."""
        self._finished = True
        return self.reports

    def scan(self, data: Chunk) -> set[tuple[int, Optional[str]]]:
        """Reset, consume ``data`` as one chunk, finish."""
        self.reset()
        self.feed(data)
        return self.finish()

    def match_ends(self, data: Chunk) -> list[int]:
        """Distinct report positions, for differential testing."""
        self.scan(data)
        return sorted({position for position, _ in self.reports})


class ReferenceBackend(Backend):
    name = "reference"
    aliases = ()
    description = (
        "cycle-accurate node-by-node simulator (the executable "
        "specification; slow, for validation)"
    )
    stats_exact = True
    streaming = True

    def applicable(self, tables: TransitionTables) -> bool:
        return tables.network is not None

    def auto_priority(self, tables: TransitionTables) -> Optional[int]:
        # never auto-picked: it is the oracle, not a serving engine
        return None

    def make_scanner(self, tables: TransitionTables) -> ReferenceScanner:
        return ReferenceScanner(tables)
