"""The execution-backend protocol.

A *backend* is a named strategy for executing one compiled
:class:`~repro.engine.tables.TransitionTables`: it advertises its
capabilities (availability, stats guarantees, streaming support) and
manufactures *scanners*.  A scanner is anything with the
:class:`~repro.engine.scanner.StreamScanner` streaming surface::

    scanner.feed(chunk) -> list[(position, report_id)]   # new reports
    scanner.finish()    -> set[(position, report_id)]    # distinct set
    scanner.reset()
    scanner.reports     # distinct (position, report_id) pairs so far
    scanner.stats       # hardware ActivityStats
    scanner.bytes_fed   # stream offset

All backends share one semantics contract: identical distinct report
sets to the reference :class:`~repro.hardware.simulator.NetworkSimulator`
on every input and chunking.  Backends with :attr:`Backend.stats_exact`
additionally guarantee :class:`~repro.hardware.simulator.ActivityStats`
equivalence (``ActivityStats.equivalent``), so energy pricing is
backend-independent.

Because every backend's ``feed`` reports *incrementally* (the newly
observed pairs of the chunk, in position order), the session layer
(:mod:`repro.session`) works over any registered backend unchanged:
a :class:`~repro.session.MatchSession` wraps one scanner per ruleset
shard and re-dresses these raw pairs as offset-sorted
:class:`~repro.session.Match` events -- new backends get incremental
emission for free by meeting this contract.

Concrete backends register with
:func:`~repro.engine.backends.registry.register_backend`; consumers
resolve by name (or ``"auto"``) through
:func:`~repro.engine.backends.registry.resolve_backend`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..tables import TransitionTables

__all__ = ["Backend", "BackendInfo", "BackendUnavailable"]


class BackendUnavailable(ValueError):
    """Raised when a named backend exists but cannot run here (for
    example ``"block"`` without NumPy).  A :class:`ValueError` so that
    facade callers can treat bad and unusable engine names uniformly."""


@dataclass(frozen=True)
class BackendInfo:
    """Introspection snapshot of one registered backend."""

    name: str
    aliases: tuple[str, ...]
    description: str
    #: importable/usable in this process right now?
    available: bool
    #: why not, when ``available`` is False
    unavailable_reason: Optional[str]
    #: guarantees ActivityStats equivalence with the reference
    stats_exact: bool
    #: consumes chunks incrementally (no whole-stream buffering)
    streaming: bool


class Backend(ABC):
    """One execution strategy over compiled transition tables."""

    #: canonical registry name (``matcher.scan(engine=<name>)``)
    name: str = ""
    #: accepted alternate names (kept for backwards compatibility)
    aliases: tuple[str, ...] = ()
    #: one-line capability summary for docs/CLI
    description: str = ""
    #: ActivityStats identical to the reference simulator?
    stats_exact: bool = True
    #: feeds chunks incrementally?
    streaming: bool = True

    def availability(self) -> tuple[bool, Optional[str]]:
        """``(available, reason-if-not)`` in this process."""
        return True, None

    @property
    def available(self) -> bool:
        return self.availability()[0]

    def applicable(self, tables: TransitionTables) -> bool:
        """Can :meth:`make_scanner` serve these particular tables?"""
        return True

    def auto_priority(self, tables: TransitionTables) -> Optional[int]:
        """Rank for ``engine="auto"`` selection over ``tables``.

        Higher wins; ``None`` means "never pick me automatically"
        (explicit selection still works).  Only consulted when the
        backend is available and applicable.
        """
        return None

    @abstractmethod
    def make_scanner(self, tables: TransitionTables):
        """A fresh scanner over ``tables`` (see module docstring)."""

    def info(self) -> BackendInfo:
        available, reason = self.availability()
        return BackendInfo(
            name=self.name,
            aliases=self.aliases,
            description=self.description,
            available=available,
            unavailable_reason=reason,
            stats_exact=self.stats_exact,
            streaming=self.streaming,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
