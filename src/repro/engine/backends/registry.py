"""Backend registry: one name -> strategy map for every consumer.

The facade (:class:`~repro.matching.RulesetMatcher`), the parallel
front-ends (:mod:`repro.engine.parallel`), and the CLI all resolve
execution engines here, so an engine name means the same thing -- and
an unknown name produces the same error -- everywhere.  Third parties
(and tests) can plug in additional backends with
:func:`register_backend`; ``"auto"`` picks the fastest available
backend that applies to the compiled tables at hand.
"""

from __future__ import annotations

from typing import Optional

from ..tables import TransitionTables
from .base import Backend, BackendInfo, BackendUnavailable

__all__ = [
    "AUTO_ENGINE",
    "register_backend",
    "get_backend",
    "resolve_backend",
    "backend_names",
    "engine_choices",
    "available_backends",
    "validated_backend_names",
    "unknown_engine_error",
]

#: The pseudo-name that defers backend choice until the tables are known.
AUTO_ENGINE = "auto"

_BACKENDS: dict[str, Backend] = {}
_ALIASES: dict[str, str] = {}


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Register ``backend`` under its name and aliases.

    Re-registering an existing name (or an alias clashing with one)
    raises unless ``replace`` is True.  Returns the backend, so the
    call composes as a decorator-style one-liner.
    """
    names = (backend.name, *backend.aliases)
    if not backend.name:
        raise ValueError("backend must declare a non-empty name")
    for name in names:
        if name == AUTO_ENGINE:
            raise ValueError(f"{AUTO_ENGINE!r} is reserved for automatic selection")
        taken = name in _BACKENDS or name in _ALIASES
        if taken and not replace:
            raise ValueError(f"backend name {name!r} already registered")
    for alias in list(_ALIASES):
        if _ALIASES[alias] == backend.name:
            del _ALIASES[alias]
    _BACKENDS[backend.name] = backend
    for alias in backend.aliases:
        _ALIASES[alias] = backend.name
    return backend


def backend_names() -> list[str]:
    """Canonical names of all registered backends, registration order."""
    return list(_BACKENDS)


def engine_choices() -> list[str]:
    """Every accepted engine spelling: ``auto``, names, then aliases
    (what the CLI ``--engine`` flag and the facade accept)."""
    return [AUTO_ENGINE, *_BACKENDS, *_ALIASES]


def available_backends() -> list[BackendInfo]:
    """Introspection snapshot of every registered backend.

    >>> from repro import available_backends
    >>> sorted(info.name for info in available_backends())
    ['block', 'reference', 'stream']
    """
    return [backend.info() for backend in _BACKENDS.values()]


def unknown_engine_error(name: object) -> ValueError:
    """The single, consistent unknown-engine error every entry point
    raises (satisfying callers who match on the message)."""
    return ValueError(
        f"unknown engine {name!r}; available engines: "
        + ", ".join(engine_choices())
    )


def get_backend(name: str) -> Backend:
    """Look up a backend by canonical name or alias.

    Raises the shared unknown-engine :class:`ValueError` for names that
    are not registered (``"auto"`` included -- it is not a backend; use
    :func:`resolve_backend` to let it pick one).
    """
    backend = _BACKENDS.get(name)
    if backend is None:
        canonical = _ALIASES.get(name)
        if canonical is not None:
            backend = _BACKENDS.get(canonical)
    if backend is None:
        raise unknown_engine_error(name)
    return backend


def resolve_backend(
    name: str, tables: Optional[TransitionTables] = None
) -> Backend:
    """Resolve an engine name to a usable backend for ``tables``.

    ``"auto"`` picks the available backend with the highest
    :meth:`~repro.engine.backends.base.Backend.auto_priority` for the
    tables (falling back over backends that decline).  Explicit names
    resolve through aliases and then insist the backend is available
    and applicable, raising :class:`BackendUnavailable` (a
    ``ValueError``) with the reason otherwise.

    >>> from repro import resolve_backend
    >>> resolve_backend("table").name     # aliases resolve
    'stream'
    """
    if name == AUTO_ENGINE:
        best: Optional[Backend] = None
        best_rank: Optional[int] = None
        for backend in _BACKENDS.values():
            if not backend.available:
                continue
            if tables is not None and not backend.applicable(tables):
                continue
            rank = (
                backend.auto_priority(tables)
                if tables is not None
                else (0 if backend.streaming else None)
            )
            if rank is None:
                continue
            if best_rank is None or rank > best_rank:
                best, best_rank = backend, rank
        if best is None:
            raise BackendUnavailable(
                "no registered backend is available for automatic selection"
            )
        return best

    backend = get_backend(name)
    available, reason = backend.availability()
    if not available:
        raise BackendUnavailable(
            f"engine {backend.name!r} is unavailable: {reason}"
        )
    if tables is not None and not backend.applicable(tables):
        raise BackendUnavailable(
            f"engine {backend.name!r} cannot execute these tables "
            "(compiled without the state it needs)"
        )
    return backend


def validated_backend_names(tables: TransitionTables) -> list[str]:
    """Backends (canonical names) that are available *and* applicable
    to ``tables`` right now -- what compiled-ruleset cache artifacts
    record as the set the tables were validated against."""
    return [
        backend.name
        for backend in _BACKENDS.values()
        if backend.available and backend.applicable(tables)
    ]
