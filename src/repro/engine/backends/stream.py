"""The ``"stream"`` backend: the scalar table-driven interpreter.

Wraps :class:`~repro.engine.scanner.StreamScanner` -- the always-on
baseline every deployment can rely on: pure standard library, exact
``ActivityStats``, streaming, applicable to every network the compiler
can emit.  Registered under its historical alias ``"table"`` too, so
pre-registry callers (``engine="table"``) keep working.
"""

from __future__ import annotations

from typing import Optional

from ..scanner import StreamScanner
from ..tables import TransitionTables
from .base import Backend

__all__ = ["StreamBackend"]


class StreamBackend(Backend):
    name = "stream"
    aliases = ("table",)
    description = (
        "scalar bitmask interpreter over precompiled transition tables "
        "(stdlib-only baseline)"
    )
    stats_exact = True
    streaming = True

    def auto_priority(self, tables: TransitionTables) -> Optional[int]:
        # the universal fallback: always willing, never the flashiest
        return 10

    def make_scanner(self, tables: TransitionTables) -> StreamScanner:
        return StreamScanner(tables)
