"""Pluggable execution backends for compiled transition tables.

The paper's thesis is codesign: throughput comes from matching the
execution substrate to the workload.  This package is the software
expression of that idea -- one :class:`~repro.engine.backends.base.Backend`
protocol, a process-wide registry, and three built-in strategies:

======================  =====================================================
``"stream"`` (alias ``"table"``)  scalar bitmask interpreter; stdlib-only,
                        always available, exact stats
``"block"``             NumPy vectorized block sweeps; optional dependency,
                        fastest on module-free (STE-only) rulesets,
                        exact stats
``"reference"``         node-by-node cycle-accurate simulator; the
                        executable spec the others are tested against
======================  =====================================================

``engine="auto"`` resolves to the highest-priority available backend
that applies to the tables at hand (block for module-free acyclic
rulesets when NumPy imports, stream otherwise; reference is never
auto-picked).  New backends -- a hardware-cost-model-guided
dispatcher, a native extension, ... -- plug in via
:func:`register_backend` and every consumer (facade, sharded/batch
front-ends, CLI) picks them up by name.
"""

from .base import Backend, BackendInfo, BackendUnavailable
from .block import BlockBackend
from .reference import ReferenceBackend, ReferenceScanner
from .registry import (
    AUTO_ENGINE,
    available_backends,
    backend_names,
    engine_choices,
    get_backend,
    register_backend,
    resolve_backend,
    unknown_engine_error,
    validated_backend_names,
)
from .stream import StreamBackend

__all__ = [
    "AUTO_ENGINE",
    "Backend",
    "BackendInfo",
    "BackendUnavailable",
    "BlockBackend",
    "ReferenceBackend",
    "ReferenceScanner",
    "StreamBackend",
    "available_backends",
    "backend_names",
    "engine_choices",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "unknown_engine_error",
    "validated_backend_names",
]

# Built-ins register at import time, in auto-preference display order.
register_backend(StreamBackend())
register_backend(BlockBackend())
register_backend(ReferenceBackend())
