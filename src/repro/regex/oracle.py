"""Reference matcher based on Brzozowski derivatives.

This is the project's ground-truth semantics.  Every other execution
path -- NCA token interpretation, the compiled counting-set matcher,
the unfolded NFA, and the MNRL/hardware functional simulator -- is
differentially tested against this oracle on randomized regexes and
inputs.  Derivatives extend naturally to counting::

    D_a(r{m,n}) = D_a(r) . r{max(m-1,0), n-1}

which avoids any unfolding, so the oracle stays small even for large
bounds.  Smart constructors keep terms in a weak normal form (ACI for
alternation) so that repeated differentiation does not blow up.
"""

from __future__ import annotations

from .ast import (
    EMPTY,
    EPSILON,
    Alt,
    Concat,
    Empty,
    Epsilon,
    Regex,
    Repeat,
    Star,
    Sym,
    alternation,
    concat,
    repeat,
    star,
)

__all__ = ["derivative", "accepts", "match_ends", "DerivativeMatcher"]


def derivative(node: Regex, byte: int) -> Regex:
    """Brzozowski derivative of ``node`` with respect to one byte."""
    if isinstance(node, (Empty, Epsilon)):
        return EMPTY
    if isinstance(node, Sym):
        return EPSILON if byte in node.cls else EMPTY
    if isinstance(node, Alt):
        return alternation(*(derivative(p, byte) for p in node.parts))
    if isinstance(node, Concat):
        head, tail = node.parts[0], node.parts[1:]
        rest = tail[0] if len(tail) == 1 else Concat(tail)
        result = concat(derivative(head, byte), rest)
        if head.nullable():
            result = alternation(result, derivative(rest, byte))
        return result
    if isinstance(node, Star):
        return concat(derivative(node.inner, byte), node)
    if isinstance(node, Repeat):
        if node.hi == 0:
            return EMPTY
        hi = None if node.hi is None else node.hi - 1
        remainder = repeat(node.inner, max(node.lo - 1, 0), hi)
        return concat(derivative(node.inner, byte), remainder)
    raise TypeError(f"unknown node {type(node).__name__}")


class DerivativeMatcher:
    """Stateful streaming oracle with derivative memoization.

    Feeding bytes advances the current derivative; :attr:`accepting`
    tells whether the prefix consumed so far is in the language.
    Memoization is shared per matcher, keyed on (regex, byte); this
    keeps property tests fast when many inputs hit the same states.
    """

    def __init__(self, root: Regex):
        self.root = root
        self.current = root
        self._memo: dict[tuple[Regex, int], Regex] = {}

    def reset(self) -> None:
        self.current = self.root

    def feed(self, byte: int) -> None:
        key = (self.current, byte)
        nxt = self._memo.get(key)
        if nxt is None:
            nxt = derivative(self.current, byte)
            self._memo[key] = nxt
        self.current = nxt

    @property
    def accepting(self) -> bool:
        return self.current.nullable()

    @property
    def dead(self) -> bool:
        """True when no extension of the input can ever match."""
        return isinstance(self.current, Empty)


def accepts(root: Regex, data: bytes | str) -> bool:
    """Whole-string membership test: ``data in [[root]]``."""
    if isinstance(data, str):
        data = data.encode("latin-1")
    matcher = DerivativeMatcher(root)
    for byte in data:
        matcher.feed(byte)
        if matcher.dead:
            return False
    return matcher.accepting


def match_ends(root: Regex, data: bytes | str) -> list[int]:
    """End positions (1-based, i.e. #bytes consumed) of matching prefixes.

    This is the streaming-report semantics the hardware implements: a
    report fires on every cycle where a final STE/token is active.  For
    unanchored search semantics, pass an AST already prefixed with
    ``Sigma*`` (see :meth:`repro.regex.parser.Pattern.search_ast`).
    """
    if isinstance(data, str):
        data = data.encode("latin-1")
    matcher = DerivativeMatcher(root)
    ends: list[int] = []
    if matcher.accepting:
        ends.append(0)
    for index, byte in enumerate(data, start=1):
        matcher.feed(byte)
        if matcher.accepting:
            ends.append(index)
        if matcher.dead:
            break
    return ends
