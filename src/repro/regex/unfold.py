"""Unfolding of bounded repetition (the baseline the paper beats).

"The naive approach for dealing with counting operators is to rewrite
them by unfolding.  For example, ``r{n,n}`` is unfolded into
``r . r ... r`` (n-fold concatenation)" (Section 1).  Existing
in-memory architectures (AP, CA, Impala, CAMA) only support counting
through this rewriting, which costs Theta(n) STEs per occurrence.

This module implements:

* :func:`unfold_repeat` -- one occurrence, ``r{m,n} -> r^m (r|eps)^(n-m)``;
* :func:`unfold_all` -- the full-unfolding baseline ("unfold all" in
  Figures 9/10);
* :func:`unfold_up_to` -- threshold-k partial unfolding (the x-axis of
  Figures 9/10): occurrences with upper bound <= k unfold, larger ones
  survive for counter/bit-vector implementation.
"""

from __future__ import annotations

from .ast import (
    EPSILON,
    Alt,
    Concat,
    Regex,
    Repeat,
    Star,
    alternation,
    concat,
    star,
)

__all__ = ["unfold_repeat", "unfold_all", "unfold_up_to"]


def unfold_repeat(inner: Regex, lo: int, hi: int | None) -> Regex:
    """Unfold one occurrence: ``r{m,n} -> r^m . (r + eps)^(n-m)``.

    The optional tail uses the *flat* form (a chain of ``r + eps``
    factors) rather than nested optionals; both have Theta(n) Glushkov
    positions and the flat form mirrors how AP-style toolchains lay out
    unfolded repetitions as STE chains with skip edges.
    """
    if hi is None:
        # r{m,} -> r^m . r*
        return concat(*([inner] * lo), star(inner))
    optional = alternation(inner, EPSILON)
    return concat(*([inner] * lo), *([optional] * (hi - lo)))


def unfold_all(root: Regex) -> Regex:
    """Replace every counting occurrence by its unfolding (pure NFA)."""
    return unfold_up_to(root, None)


def unfold_up_to(root: Regex, threshold: int | None) -> Regex:
    """Unfold occurrences with upper bound <= ``threshold``.

    ``threshold=None`` unfolds everything; ``threshold=0`` unfolds
    nothing bounded (unbounded ``{m,}`` always unfolds since no bounded
    counter can implement it).  Processing is bottom-up, so a nested
    occurrence that unfolds inside a surviving outer occurrence is
    duplicated correctly, and an unfolded outer occurrence duplicates
    its surviving inner occurrences (each copy later receives its own
    counter).
    """

    def rewrite(node: Regex) -> Regex:
        if isinstance(node, Concat):
            return concat(*(rewrite(p) for p in node.parts))
        if isinstance(node, Alt):
            return alternation(*(rewrite(p) for p in node.parts))
        if isinstance(node, Star):
            return star(rewrite(node.inner))
        if isinstance(node, Repeat):
            inner = rewrite(node.inner)
            if node.hi is None:
                return unfold_repeat(inner, node.lo, None)
            if threshold is None or node.hi <= threshold:
                return unfold_repeat(inner, node.lo, node.hi)
            return Repeat(inner, node.lo, node.hi)
        return node

    return rewrite(root)
