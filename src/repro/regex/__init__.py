"""Regex frontend: classes, AST, parser, rewrites, metrics, oracle."""

from .ast import (
    EMPTY,
    EPSILON,
    Alt,
    Concat,
    Empty,
    Epsilon,
    Regex,
    Repeat,
    RepeatInstance,
    Star,
    Sym,
    alternation,
    collect_repeats,
    concat,
    literal,
    repeat,
    star,
    sym,
)
from .charclass import ALPHABET_SIZE, DOT_NO_NEWLINE, EMPTY as EMPTY_CLASS, SIGMA, CharClass
from .equivalence import distinguishing_string, equivalent
from .errors import RegexError, RegexSyntaxError, UnsupportedFeatureError
from .metrics import RegexShape, count_instances, has_counting, mu, shape_of
from .oracle import DerivativeMatcher, accepts, derivative, match_ends
from .parser import Pattern, parse, parse_to_ast
from .rewrite import simplify
from .unfold import unfold_all, unfold_repeat, unfold_up_to

__all__ = [
    "ALPHABET_SIZE",
    "CharClass",
    "SIGMA",
    "DOT_NO_NEWLINE",
    "EMPTY_CLASS",
    "Regex",
    "Empty",
    "Epsilon",
    "Sym",
    "Concat",
    "Alt",
    "Star",
    "Repeat",
    "EMPTY",
    "EPSILON",
    "sym",
    "concat",
    "alternation",
    "star",
    "repeat",
    "literal",
    "RepeatInstance",
    "collect_repeats",
    "RegexError",
    "RegexSyntaxError",
    "UnsupportedFeatureError",
    "Pattern",
    "parse",
    "parse_to_ast",
    "simplify",
    "mu",
    "has_counting",
    "count_instances",
    "RegexShape",
    "shape_of",
    "unfold_repeat",
    "unfold_all",
    "unfold_up_to",
    "equivalent",
    "distinguishing_string",
    "DerivativeMatcher",
    "accepts",
    "derivative",
    "match_ends",
]
