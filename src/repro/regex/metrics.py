"""Structural metrics over regexes.

Provides the "measure of complexity" from Section 3.3 (``mu(r)``, the
maximum repetition upper bound over all occurrences of counting) plus
the censuses needed for Table 1 and the node-count predictions that
drive Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import Alt, Concat, Regex, Repeat, Star, Sym

__all__ = [
    "mu",
    "has_counting",
    "count_instances",
    "counting_depth",
    "position_count",
    "unfolded_position_count",
    "RegexShape",
    "shape_of",
]


def mu(root: Regex) -> int:
    """Maximum repetition upper bound over all counting occurrences.

    ``mu(sigma1{1,5} sigma2 sigma3{4}) = 5`` (the paper's example).
    Regexes without counting have ``mu = 0``.  Unbounded repetitions
    contribute their lower bound (they are lowered to ``r{m} r*`` before
    analysis anyway).
    """
    best = 0
    for node in root.walk():
        if isinstance(node, Repeat):
            bound = node.hi if node.hi is not None else node.lo
            best = max(best, bound)
    return best


def has_counting(root: Regex) -> bool:
    """True iff at least one ``Repeat`` occurs (Table 1 "# counting")."""
    return any(isinstance(node, Repeat) for node in root.walk())


def count_instances(root: Regex) -> int:
    """Number of ``Repeat`` occurrences."""
    return sum(1 for node in root.walk() if isinstance(node, Repeat))


def counting_depth(root: Regex) -> int:
    """Maximum nesting depth of ``Repeat`` nodes (Fig. 1 has depth 2)."""

    def depth(node: Regex) -> int:
        inner = max((depth(child) for child in node.children()), default=0)
        return inner + 1 if isinstance(node, Repeat) else inner

    return depth(root)


def position_count(root: Regex) -> int:
    """Number of Glushkov positions (Sym leaves) without unfolding."""
    return sum(1 for node in root.walk() if isinstance(node, Sym))


def unfolded_position_count(root: Regex, threshold: int | None = None) -> int:
    """Positions after unfolding counting occurrences up to ``threshold``.

    ``threshold=None`` means *unfold everything* (the pure-NFA baseline);
    otherwise only occurrences with upper bound <= threshold unfold and
    the rest contribute their body once (they will be implemented by a
    counter or bit-vector module).  This predicts the STE demand that
    Figure 9 plots as "# of MNRL nodes".
    """

    def count(node: Regex) -> int:
        if isinstance(node, Sym):
            return 1
        if isinstance(node, Repeat):
            body = count(node.inner)
            hi = node.hi if node.hi is not None else node.lo
            if threshold is None or hi <= threshold:
                return body * max(hi, 1)
            return body
        if isinstance(node, Star):
            return count(node.inner)
        return sum(count(child) for child in node.children())

    return count(root)


@dataclass(frozen=True)
class RegexShape:
    """Summary record used by workload statistics and experiment tables."""

    size: int
    positions: int
    mu: int
    instances: int
    depth: int

    @staticmethod
    def of(root: Regex) -> "RegexShape":
        return RegexShape(
            size=root.size(),
            positions=position_count(root),
            mu=mu(root),
            instances=count_instances(root),
            depth=counting_depth(root),
        )


def shape_of(root: Regex) -> RegexShape:
    """Convenience alias for :meth:`RegexShape.of`."""
    return RegexShape.of(root)
