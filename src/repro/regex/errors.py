"""Exception hierarchy for the regex frontend.

The paper (Section 3.3) distinguishes *supported* regexes (the regular
fragment with counting) from unsupported ones (backreferences and other
non-regular features found in Snort/Suricata/SpamAssassin rules).  The
parser raises :class:`UnsupportedFeatureError` for the latter so that
workload censuses can count them, mirroring the "# supported" column of
Table 1.
"""

from __future__ import annotations

__all__ = [
    "RegexError",
    "RegexSyntaxError",
    "UnsupportedFeatureError",
]


class RegexError(Exception):
    """Base class for all errors raised by the regex frontend."""


class RegexSyntaxError(RegexError):
    """The pattern is not well-formed (unbalanced groups, bad ranges...).

    Attributes:
        pattern: the offending pattern text.
        position: index into ``pattern`` where the error was detected.
    """

    def __init__(self, message: str, pattern: str = "", position: int = -1):
        self.pattern = pattern
        self.position = position
        if position >= 0:
            message = f"{message} (at position {position} in {pattern!r})"
        super().__init__(message)


class UnsupportedFeatureError(RegexError):
    """The pattern uses a feature outside the supported regular fragment.

    Examples: backreferences ``\\1``, lookaround ``(?=...)``, word
    boundaries ``\\b`` used mid-pattern.  These correspond to the rows
    filtered out between "# total" and "# supported" in Table 1.
    """

    def __init__(self, feature: str, pattern: str = "", position: int = -1):
        self.feature = feature
        self.pattern = pattern
        self.position = position
        message = f"unsupported feature: {feature}"
        if position >= 0:
            message = f"{message} (at position {position} in {pattern!r})"
        super().__init__(message)
