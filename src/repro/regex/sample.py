"""Sampling random members of a regex's language.

Used by the workload generators to plant true matches inside synthetic
input streams (so that the simulated hardware actually exercises its
counters, bit vectors and report paths), and by tests as a source of
guaranteed-accepting inputs.
"""

from __future__ import annotations

import random
from typing import Optional

from .ast import Alt, Concat, Empty, Epsilon, Regex, Repeat, Star, Sym

__all__ = ["sample_match", "CannotSampleError"]


class CannotSampleError(Exception):
    """The regex denotes the empty language."""


def sample_match(
    node: Regex,
    rng: random.Random,
    star_mean: float = 1.5,
    repeat_cap: Optional[int] = 8,
) -> bytes:
    """Draw one string from the language of ``node``.

    Args:
        node: the regex (rewrite normal form not required).
        rng: seeded random source (determinism is on the caller).
        star_mean: mean number of iterations sampled for ``r*``.
        repeat_cap: cap on how far above ``lo`` a ``Repeat`` iterates
            (keeps planted matches short even for ``{0,1024}`` bounds);
            ``None`` samples uniformly from the full range.
    """
    if isinstance(node, Empty):
        raise CannotSampleError("empty language")
    if isinstance(node, Epsilon):
        return b""
    if isinstance(node, Sym):
        members = list(node.cls)
        if not members:
            raise CannotSampleError("empty character class")
        printable = [b for b in members if 0x20 <= b < 0x7F]
        pool = printable if printable else members
        return bytes([rng.choice(pool)])
    if isinstance(node, Concat):
        return b"".join(sample_match(p, rng, star_mean, repeat_cap) for p in node.parts)
    if isinstance(node, Alt):
        order = list(node.parts)
        rng.shuffle(order)
        last_error: Optional[CannotSampleError] = None
        for part in order:
            try:
                return sample_match(part, rng, star_mean, repeat_cap)
            except CannotSampleError as err:
                last_error = err
        raise last_error or CannotSampleError("no viable alternative")
    if isinstance(node, Star):
        count = 0
        while rng.random() < star_mean / (star_mean + 1):
            count += 1
            if count > 16:
                break
        try:
            return b"".join(
                sample_match(node.inner, rng, star_mean, repeat_cap)
                for _ in range(count)
            )
        except CannotSampleError:
            return b""
    if isinstance(node, Repeat):
        lo = node.lo
        hi = node.hi if node.hi is not None else lo + (repeat_cap or 8)
        if repeat_cap is not None:
            hi = min(hi, lo + repeat_cap)
        hi = max(hi, lo)
        count = rng.randint(lo, hi)
        if count == 0:
            return b""
        return b"".join(
            sample_match(node.inner, rng, star_mean, repeat_cap)
            for _ in range(count)
        )
    raise TypeError(f"unknown node {type(node).__name__}")
