"""POSIX/PCRE-style regex parser for the supported regular fragment.

Produces :class:`Pattern` values wrapping a ``repro.regex.ast`` tree
plus anchoring information.  The supported syntax mirrors what the
paper's benchmarks need (Section 3.3): literals, ``.``, character
classes with ranges and negation, escapes (including ``\\xHH`` bytes,
ubiquitous in Snort/ClamAV rules), groups, alternation, ``* + ?`` and
counting ``{m} {m,} {m,n}``, the ``(?i)`` case-insensitivity flag, and
edge anchors ``^``/``$``.

Non-regular or out-of-scope features raise
:class:`~repro.regex.errors.UnsupportedFeatureError`: backreferences,
lookaround, word boundaries, and mid-pattern anchors.  Workload
censuses catch this error to populate the "# supported" column of
Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import charclass as cc
from .ast import (
    EPSILON,
    Regex,
    Sym,
    alternation,
    concat,
    repeat,
    star,
    sym,
)
from .charclass import CharClass
from .errors import RegexSyntaxError, UnsupportedFeatureError

__all__ = ["Pattern", "parse", "parse_to_ast"]

_ESCAPE_CLASSES = {
    "d": cc.DIGITS,
    "D": cc.DIGITS.complement(),
    "w": cc.WORD,
    "W": cc.WORD.complement(),
    "s": cc.SPACE,
    "S": cc.SPACE.complement(),
}

_ESCAPE_CHARS = {
    "n": 0x0A,
    "r": 0x0D,
    "t": 0x09,
    "f": 0x0C,
    "v": 0x0B,
    "a": 0x07,
    "e": 0x1B,
    "0": 0x00,
}

_POSIX_CLASSES = {
    "alpha": CharClass.of_range(65, 90) | CharClass.of_range(97, 122),
    "digit": cc.DIGITS,
    "alnum": cc.DIGITS | CharClass.of_range(65, 90) | CharClass.of_range(97, 122),
    "space": cc.SPACE,
    "upper": CharClass.of_range(65, 90),
    "lower": CharClass.of_range(97, 122),
    "punct": CharClass.of_bytes(
        v for v in range(0x21, 0x7F) if not (48 <= v <= 57 or 65 <= v <= 90 or 97 <= v <= 122)
    ),
    "xdigit": cc.DIGITS | CharClass.of_range(65, 70) | CharClass.of_range(97, 102),
    "print": CharClass.of_range(0x20, 0x7E),
    "graph": CharClass.of_range(0x21, 0x7E),
    "cntrl": CharClass.of_range(0x00, 0x1F) | CharClass.of_byte(0x7F),
    "blank": CharClass.of_string(" \t"),
}


@dataclass(frozen=True)
class Pattern:
    """A parsed pattern: AST plus anchoring and provenance.

    ``anchored_start``/``anchored_end`` record whether the pattern was
    written with ``^``/``$``.  The hardware always *searches* a stream,
    so unanchored patterns are compiled with an implicit ``Sigma*``
    prefix (an always-on start STE in AP terminology); helper methods
    materialize that convention.
    """

    ast: Regex
    anchored_start: bool = False
    anchored_end: bool = False
    source: str = ""

    def search_ast(self) -> Regex:
        """AST for streaming search: ``Sigma* r`` unless ``^``-anchored."""
        if self.anchored_start:
            return self.ast
        return concat(star(Sym(cc.SIGMA)), self.ast)

    def membership_ast(self) -> Regex:
        """AST whose language is exactly the set of *whole* strings matched.

        Adds ``Sigma*`` on unanchored sides, so membership of a string
        coincides with "a match is found somewhere in the string".
        """
        result = self.ast
        if not self.anchored_start:
            result = concat(star(Sym(cc.SIGMA)), result)
        if not self.anchored_end:
            result = concat(result, star(Sym(cc.SIGMA)))
        return result


def parse(pattern: str, max_bound: int | None = None) -> Pattern:
    """Parse ``pattern`` into a :class:`Pattern`.

    >>> from repro import parse
    >>> parsed = parse(r"ab{2,4}c$")
    >>> (parsed.anchored_start, parsed.anchored_end)
    (False, True)

    Args:
        pattern: the POSIX/PCRE-style source text.
        max_bound: optional cap on repetition bounds; exceeding it raises
            :class:`RegexSyntaxError` (guards against pathological rules).
    """
    return _Parser(pattern, max_bound).parse()


def parse_to_ast(pattern: str, max_bound: int | None = None) -> Regex:
    """Convenience: parse and return just the AST (anchors rejected)."""
    parsed = parse(pattern, max_bound)
    if parsed.anchored_start or parsed.anchored_end:
        raise RegexSyntaxError("anchors not allowed here", pattern)
    return parsed.ast


class _Parser:
    """Recursive-descent parser over the pattern text."""

    def __init__(self, pattern: str, max_bound: int | None = None):
        self.text = pattern
        self.pos = 0
        self.max_bound = max_bound
        self.case_insensitive = False
        self.anchored_start = False
        self.anchored_end = False

    # -- character-level helpers ------------------------------------------
    def _peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _next(self) -> str:
        ch = self._peek()
        self.pos += 1
        return ch

    def _eat(self, expected: str) -> None:
        if self._peek() != expected:
            raise RegexSyntaxError(f"expected {expected!r}", self.text, self.pos)
        self.pos += 1

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.text, self.pos)

    def _unsupported(self, feature: str) -> UnsupportedFeatureError:
        return UnsupportedFeatureError(feature, self.text, self.pos)

    # -- grammar -----------------------------------------------------------
    def parse(self) -> Pattern:
        if self._peek() == "^":
            self.anchored_start = True
            self.pos += 1
        body = self._parse_alternation(depth=0)
        if self.pos < len(self.text):
            raise self._error(f"unexpected {self._peek()!r}")
        return Pattern(
            ast=body,
            anchored_start=self.anchored_start,
            anchored_end=self.anchored_end,
            source=self.text,
        )

    def _parse_alternation(self, depth: int) -> Regex:
        branches = [self._parse_concat(depth)]
        while self._peek() == "|":
            self.pos += 1
            branches.append(self._parse_concat(depth))
        return alternation(*branches) if len(branches) > 1 else branches[0]

    def _parse_concat(self, depth: int) -> Regex:
        factors: list[Regex] = []
        while True:
            ch = self._peek()
            if ch in ("", "|", ")"):
                break
            if ch == "$":
                # Valid only at the very end of the whole pattern.
                if self.pos == len(self.text) - 1 and depth == 0:
                    self.anchored_end = True
                    self.pos += 1
                    break
                raise self._unsupported("mid-pattern anchor '$'")
            if ch == "^":
                raise self._unsupported("mid-pattern anchor '^'")
            factors.append(self._parse_quantified(depth))
        return concat(*factors) if factors else EPSILON

    def _parse_quantified(self, depth: int) -> Regex:
        atom = self._parse_atom(depth)
        while True:
            ch = self._peek()
            if ch == "*":
                self.pos += 1
                atom = star(atom)
            elif ch == "+":
                self.pos += 1
                atom = concat(atom, star(atom))
            elif ch == "?":
                self.pos += 1
                atom = repeat(atom, 0, 1)
            elif ch == "{":
                bounds = self._try_parse_bounds()
                if bounds is None:
                    break  # literal '{'
                lo, hi = bounds
                atom = repeat(atom, lo, hi)
            else:
                break
            # A '?' directly after a quantifier is PCRE laziness; it does
            # not change the matched language, so it is consumed silently.
            if self._peek() == "?":
                self.pos += 1
        return atom

    def _try_parse_bounds(self) -> tuple[int, int | None] | None:
        """Parse ``{m}``, ``{m,}`` or ``{m,n}``; None if '{' is literal."""
        start = self.pos
        self.pos += 1  # consume '{'
        lo_digits = self._take_digits()
        if lo_digits is None:
            self.pos = start
            return None
        lo = int(lo_digits)
        hi: int | None
        if self._peek() == ",":
            self.pos += 1
            hi_digits = self._take_digits()
            if hi_digits is None:
                hi = None
            else:
                hi = int(hi_digits)
        else:
            hi = lo
        if self._peek() != "}":
            self.pos = start
            return None
        self.pos += 1
        if hi is not None and hi < lo:
            raise RegexSyntaxError(
                f"bad repetition bounds {{{lo},{hi}}}", self.text, start
            )
        if self.max_bound is not None:
            for bound in (lo, hi):
                if bound is not None and bound > self.max_bound:
                    raise RegexSyntaxError(
                        f"repetition bound {bound} exceeds limit {self.max_bound}",
                        self.text,
                        start,
                    )
        return lo, hi

    def _take_digits(self) -> str | None:
        start = self.pos
        while self._peek().isdigit():
            self.pos += 1
        return self.text[start : self.pos] if self.pos > start else None

    def _parse_atom(self, depth: int) -> Regex:
        ch = self._peek()
        if ch == "(":
            return self._parse_group(depth)
        if ch == "[":
            return sym(self._parse_class())
        if ch == ".":
            self.pos += 1
            return Sym(cc.DOT_NO_NEWLINE)
        if ch == "\\":
            return self._parse_escape_atom()
        if ch in "*+?":
            raise self._error(f"quantifier {ch!r} with nothing to repeat")
        if ch == "{":
            bounds_probe = self._try_parse_bounds()
            if bounds_probe is not None:
                raise self._error("counting with nothing to repeat")
        self.pos += 1
        return Sym(self._fold_case(CharClass.of_char(ch)))

    def _parse_group(self, depth: int) -> Regex:
        self._eat("(")
        restore_flags: bool | None = None
        if self._peek() == "?":
            self.pos += 1
            mod = self._peek()
            if mod == ":":
                self.pos += 1
            elif mod in "=!":
                raise self._unsupported("lookahead group")
            elif mod == "<":
                nxt = self.text[self.pos + 1] if self.pos + 1 < len(self.text) else ""
                if nxt in "=!":
                    raise self._unsupported("lookbehind group")
                raise self._unsupported("named group")
            elif mod in "iIsmx-":
                saved = self.case_insensitive
                self._parse_inline_flags()
                if self._peek() == ")":
                    # (?i) applies to the rest of the pattern
                    self.pos += 1
                    return EPSILON
                # (?i:...) scopes the flags to the group body
                restore_flags = saved
                self._eat(":")
            elif mod == "P":
                raise self._unsupported("named group")
            elif mod == ">":
                raise self._unsupported("atomic group")
            else:
                raise self._error(f"unknown group modifier (?{mod}")
        body = self._parse_alternation(depth + 1)
        self._eat(")")
        if restore_flags is not None:
            self.case_insensitive = restore_flags
        return body

    def _parse_inline_flags(self) -> None:
        """Consume inline flags like ``i``, ``s``, ``m`` (case folding only).

        ``(?i)`` toggles case-insensitivity for the rest of the pattern;
        the other flags are accepted and ignored because they do not
        change byte-level language under our conventions.
        """
        negate = False
        while self._peek() and self._peek() not in ":)":
            flag = self._next()
            if flag == "-":
                negate = True
            elif flag in "iI":
                self.case_insensitive = not negate
            elif flag in "smx":
                pass
            else:
                raise self._error(f"unknown inline flag {flag!r}")

    # -- escapes -------------------------------------------------------
    def _parse_escape_atom(self) -> Regex:
        value = self._parse_escape(in_class=False)
        if isinstance(value, CharClass):
            return sym(self._fold_case(value))
        return sym(self._fold_case(CharClass.of_byte(value)))

    def _parse_escape(self, in_class: bool) -> CharClass | int:
        r"""Parse one escape sequence after the backslash.

        Returns either a full :class:`CharClass` (e.g. ``\d``) or a
        single byte value (e.g. ``\x2f``).  Raising for the non-regular
        escapes keeps Table 1's supported/unsupported split honest.
        """
        self._eat("\\")
        ch = self._peek()
        if ch == "":
            raise self._error("dangling backslash")
        self.pos += 1
        if ch in _ESCAPE_CLASSES:
            return _ESCAPE_CLASSES[ch]
        if ch in _ESCAPE_CHARS and not (ch == "0" and self._peek().isdigit()):
            return _ESCAPE_CHARS[ch]
        if ch == "x":
            return self._parse_hex_escape()
        if ch.isdigit():
            raise self._unsupported(f"backreference \\{ch}")
        if ch in "bB" and not in_class:
            raise self._unsupported(f"word boundary \\{ch}")
        if ch == "b" and in_class:
            return 0x08  # backspace inside a class, as in POSIX
        if ch in "AzZ":
            raise self._unsupported(f"anchor escape \\{ch}")
        if ch in "kgK":
            raise self._unsupported(f"escape \\{ch}")
        code = ord(ch)
        if code >= cc.ALPHABET_SIZE:
            raise self._error(f"escaped character {ch!r} outside byte alphabet")
        return code

    def _parse_hex_escape(self) -> int:
        digits = ""
        if self._peek() == "{":
            self.pos += 1
            while self._peek() not in ("", "}"):
                digits += self._next()
            self._eat("}")
        else:
            for _ in range(2):
                if self._peek() and self._peek() in "0123456789abcdefABCDEF":
                    digits += self._next()
        if not digits:
            raise self._error("empty \\x escape")
        try:
            value = int(digits, 16)
        except ValueError:
            raise self._error(f"bad hex digits in \\x{{{digits}}}") from None
        if value >= cc.ALPHABET_SIZE:
            raise self._error(f"\\x{{{digits}}} outside byte alphabet")
        return value

    # -- character classes ----------------------------------------------
    def _parse_class(self) -> CharClass:
        self._eat("[")
        negated = False
        if self._peek() == "^":
            negated = True
            self.pos += 1
        result = cc.EMPTY
        first = True
        while True:
            ch = self._peek()
            if ch == "":
                raise self._error("unterminated character class")
            if ch == "]" and not first:
                self.pos += 1
                break
            first = False
            if ch == "[" and self.text.startswith("[:", self.pos):
                result = result | self._parse_posix_class()
                continue
            item = self._parse_class_item()
            if isinstance(item, CharClass):
                result = result | item
                continue
            # Possibly a range a-z.
            if self._peek() == "-" and self.pos + 1 < len(self.text) and self.text[self.pos + 1] != "]":
                self.pos += 1
                upper = self._parse_class_item()
                if isinstance(upper, CharClass):
                    raise self._error("character class range with class endpoint")
                if upper < item:
                    raise self._error(f"reversed range {chr(item)}-{chr(upper)}")
                result = result | CharClass.of_range(item, upper)
            else:
                result = result | CharClass.of_byte(item)
        if negated:
            result = result.complement()
        return self._fold_case(result)

    def _parse_class_item(self) -> CharClass | int:
        ch = self._peek()
        if ch == "\\":
            return self._parse_escape(in_class=True)
        self.pos += 1
        code = ord(ch)
        if code >= cc.ALPHABET_SIZE:
            raise self._error(f"character {ch!r} outside byte alphabet")
        return code

    def _parse_posix_class(self) -> CharClass:
        end = self.text.find(":]", self.pos + 2)
        if end < 0:
            raise self._error("unterminated POSIX class")
        name = self.text[self.pos + 2 : end]
        if name not in _POSIX_CLASSES:
            raise self._error(f"unknown POSIX class [:{name}:]")
        self.pos = end + 2
        return _POSIX_CLASSES[name]

    # -- case folding -----------------------------------------------------
    def _fold_case(self, klass: CharClass) -> CharClass:
        if not self.case_insensitive:
            return klass
        folded = klass
        for value in klass:
            if 65 <= value <= 90:
                folded = folded | CharClass.of_byte(value + 32)
            elif 97 <= value <= 122:
                folded = folded | CharClass.of_byte(value - 32)
        return folded
