"""Abstract syntax trees for regexes with counting.

The grammar is the one from Section 2 of the paper::

    r ::= epsilon | sigma | r . r | r + r | r* | r{m,n}

plus an explicit empty language ``Empty`` (useful for the derivative
oracle) and an unbounded upper limit in ``Repeat`` (``r{m,}``), which the
rewrite pass lowers to ``r{m}; r*`` before any analysis.

Nodes are immutable and hash-consed only through structural equality;
they can be freely shared.  Every combinator validates its children, so
an AST constructed through this module is well-formed by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from .charclass import CharClass

__all__ = [
    "Regex",
    "Empty",
    "Epsilon",
    "Sym",
    "Concat",
    "Alt",
    "Star",
    "Repeat",
    "EMPTY",
    "EPSILON",
    "sym",
    "concat",
    "alternation",
    "star",
    "repeat",
    "literal",
    "RepeatInstance",
    "collect_repeats",
]


@dataclass(frozen=True)
class Regex:
    """Base class for regex AST nodes."""

    def children(self) -> tuple["Regex", ...]:
        return ()

    # -- structural helpers ------------------------------------------------
    def size(self) -> int:
        """Number of AST nodes (repetition bounds count as 1)."""
        return 1 + sum(child.size() for child in self.children())

    def walk(self) -> Iterator["Regex"]:
        """Preorder traversal of the tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def nullable(self) -> bool:
        """True iff the empty string is in the language."""
        raise NotImplementedError

    def to_pattern(self) -> str:
        """Render back to POSIX-style pattern text (parse round-trips)."""
        raise NotImplementedError

    def _precedence(self) -> int:
        """Printing precedence: 0 alt, 1 concat, 2 postfix, 3 atom."""
        raise NotImplementedError

    def _wrap(self, parent_prec: int) -> str:
        text = self.to_pattern()
        if self._precedence() < parent_prec:
            return f"(?:{text})"
        return text

    def __str__(self) -> str:
        return self.to_pattern()


@dataclass(frozen=True)
class Empty(Regex):
    """The empty language (matches nothing)."""

    def nullable(self) -> bool:
        return False

    def to_pattern(self) -> str:
        return "[]"

    def _precedence(self) -> int:
        return 3


@dataclass(frozen=True)
class Epsilon(Regex):
    """The empty string."""

    def nullable(self) -> bool:
        return True

    def to_pattern(self) -> str:
        return "(?:)"

    def _precedence(self) -> int:
        return 3


@dataclass(frozen=True)
class Sym(Regex):
    """A single-symbol predicate (character class) over the alphabet."""

    cls: CharClass

    def __post_init__(self):
        if not isinstance(self.cls, CharClass):
            raise TypeError("Sym expects a CharClass")

    def nullable(self) -> bool:
        return False

    def to_pattern(self) -> str:
        return self.cls.to_pattern()

    def _precedence(self) -> int:
        return 3


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation of two or more factors."""

    parts: tuple[Regex, ...]

    def __post_init__(self):
        if len(self.parts) < 2:
            raise ValueError("Concat needs at least two parts")

    def children(self) -> tuple[Regex, ...]:
        return self.parts

    def nullable(self) -> bool:
        return all(part.nullable() for part in self.parts)

    def to_pattern(self) -> str:
        return "".join(part._wrap(2) for part in self.parts)

    def _precedence(self) -> int:
        return 1


@dataclass(frozen=True)
class Alt(Regex):
    """Nondeterministic choice between two or more alternatives."""

    parts: tuple[Regex, ...]

    def __post_init__(self):
        if len(self.parts) < 2:
            raise ValueError("Alt needs at least two parts")

    def children(self) -> tuple[Regex, ...]:
        return self.parts

    def nullable(self) -> bool:
        return any(part.nullable() for part in self.parts)

    def to_pattern(self) -> str:
        return "|".join(part._wrap(1) for part in self.parts)

    def _precedence(self) -> int:
        return 0


@dataclass(frozen=True)
class Star(Regex):
    """Kleene iteration ``r*``."""

    inner: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.inner,)

    def nullable(self) -> bool:
        return True

    def to_pattern(self) -> str:
        return f"{self.inner._wrap(3)}*"

    def _precedence(self) -> int:
        return 2


@dataclass(frozen=True)
class Repeat(Regex):
    """Bounded repetition ``r{lo,hi}`` (``hi is None`` means ``r{lo,}``).

    This is the *counting* construct the paper is about.  Invariants:
    ``lo >= 0`` and, when bounded, ``lo <= hi``.
    """

    inner: Regex
    lo: int
    hi: Optional[int]

    def __post_init__(self):
        if self.lo < 0:
            raise ValueError("repetition lower bound must be >= 0")
        if self.hi is not None and self.hi < self.lo:
            raise ValueError("repetition upper bound below lower bound")

    def children(self) -> tuple[Regex, ...]:
        return (self.inner,)

    def nullable(self) -> bool:
        return self.lo == 0 or self.inner.nullable()

    def bounds_pattern(self) -> str:
        if self.hi is None:
            return f"{{{self.lo},}}"
        if self.lo == self.hi:
            return f"{{{self.lo}}}"
        return f"{{{self.lo},{self.hi}}}"

    def to_pattern(self) -> str:
        return f"{self.inner._wrap(3)}{self.bounds_pattern()}"

    def _precedence(self) -> int:
        return 2


# ----------------------------------------------------------------------
# Smart constructors.  These do the *cheap, always-safe* normalizations
# (identity elements, flattening); the deliberate paper rewrites from
# Section 4.2 live in ``repro.regex.rewrite``.
# ----------------------------------------------------------------------
EMPTY = Empty()
EPSILON = Epsilon()


def sym(cls: CharClass) -> Regex:
    """Symbol node; the empty class collapses to the empty language."""
    if cls.is_empty():
        return EMPTY
    return Sym(cls)


def concat(*parts: Regex) -> Regex:
    """N-ary concatenation with flattening and identity/zero laws."""
    flat: list[Regex] = []
    for part in parts:
        if isinstance(part, Empty):
            return EMPTY
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def alternation(*parts: Regex) -> Regex:
    """N-ary alternation with flattening, dedup, and zero laws."""
    flat: list[Regex] = []
    seen: set[Regex] = set()
    for part in parts:
        if isinstance(part, Empty):
            continue
        candidates = part.parts if isinstance(part, Alt) else (part,)
        for cand in candidates:
            if cand not in seen:
                seen.add(cand)
                flat.append(cand)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Alt(tuple(flat))


def star(inner: Regex) -> Regex:
    """Kleene star with ``Empty* = Epsilon* = Epsilon`` and ``r** = r*``."""
    if isinstance(inner, (Empty, Epsilon)):
        return EPSILON
    if isinstance(inner, Star):
        return inner
    return Star(inner)


def repeat(inner: Regex, lo: int, hi: Optional[int]) -> Regex:
    """Bounded repetition; degenerate bounds collapse immediately.

    ``r{0,0}`` is epsilon, ``r{1,1}`` is ``r`` and ``r{0,}`` is ``r*``;
    repeating epsilon or the empty language also collapses.  All other
    shapes (including ``{0,1}``) are kept as ``Repeat`` so that the
    rewrite pass can report/unfold them uniformly.
    """
    if isinstance(inner, Epsilon):
        return EPSILON
    if isinstance(inner, Empty):
        return EPSILON if lo == 0 else EMPTY
    if hi == 0:
        return EPSILON
    if lo == 1 and hi == 1:
        return inner
    if lo == 0 and hi is None:
        return star(inner)
    return Repeat(inner, lo, hi)


def literal(text: str | bytes) -> Regex:
    """Concatenation of singleton classes spelling out ``text``."""
    if isinstance(text, str):
        text = text.encode("latin-1")
    return concat(*(Sym(CharClass.of_byte(b)) for b in text))


# ----------------------------------------------------------------------
# Repeat-instance bookkeeping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RepeatInstance:
    """A specific occurrence of bounded repetition inside a regex.

    The static analysis of Section 3 is performed *per occurrence*
    ("the checker supports the analysis of counter-ambiguity for each
    instance of bounded repetition inside a regex").  Instances are
    identified by their preorder index among ``Repeat`` nodes and by
    their tree path (sequence of child indices from the root), which
    survives reconstruction of equal trees.
    """

    index: int
    path: tuple[int, ...]
    node: Repeat = field(compare=False)

    @property
    def lo(self) -> int:
        return self.node.lo

    @property
    def hi(self) -> Optional[int]:
        return self.node.hi

    def describe(self) -> str:
        return f"#{self.index}:{self.node.inner._wrap(3)}{self.node.bounds_pattern()}"


def collect_repeats(root: Regex) -> list[RepeatInstance]:
    """All Repeat occurrences in preorder, with paths from the root."""
    found: list[RepeatInstance] = []

    def visit(node: Regex, path: tuple[int, ...]) -> None:
        if isinstance(node, Repeat):
            found.append(RepeatInstance(len(found), path, node))
        for i, child in enumerate(node.children()):
            visit(child, path + (i,))

    visit(root, ())
    return found


def replace_at_path(root: Regex, path: Sequence[int], replacement: Regex) -> Regex:
    """Rebuild ``root`` with the node at ``path`` swapped for ``replacement``.

    Used by the over-approximate analysis (Section 3.2) to replace every
    counting occurrence *except one* with a Kleene star.
    """
    if not path:
        return replacement
    head, rest = path[0], path[1:]
    kids = list(root.children())
    kids[head] = replace_at_path(kids[head], rest, replacement)
    return _rebuild(root, tuple(kids))


def map_children(node: Regex, fn: Callable[[Regex], Regex]) -> Regex:
    """Rebuild ``node`` with ``fn`` applied to each direct child."""
    kids = node.children()
    if not kids:
        return node
    return _rebuild(node, tuple(fn(kid) for kid in kids))


def _rebuild(node: Regex, kids: tuple[Regex, ...]) -> Regex:
    if isinstance(node, Concat):
        return Concat(kids)
    if isinstance(node, Alt):
        return Alt(kids)
    if isinstance(node, Star):
        return Star(kids[0])
    if isinstance(node, Repeat):
        return Repeat(kids[0], node.lo, node.hi)
    raise TypeError(f"cannot rebuild {type(node).__name__}")
