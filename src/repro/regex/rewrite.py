"""Regex simplification pass (Section 4.2, compiler step 1).

The paper's compiler "parses the regex and simplifies it with certain
rewrite rules, including the unfolding of repetitions with upper bound
< 2 and the merging of character classes inside simple alternations
(e.g., ``[a]|[b]`` is rewritten to ``[ab]``)".  This module implements
exactly those rules plus the language-preserving normalizations they
rely on:

* ``r{0,0}`` -> epsilon, ``r{1,1}`` -> ``r``, ``r{0,1}`` -> ``r + eps``
  (so every surviving ``Repeat`` has upper bound >= 2 and is a genuine
  counting instance);
* ``r{m,}`` -> ``r{m} r*`` (unbounded upper limits are lowered so that
  every surviving counter is bounded, as required for NCAs with bounded
  counters, Section 2);
* ``[a]|[b]`` -> ``[ab]`` (merging classes in simple alternations);
* flattening of nested concatenations/alternations, epsilon and empty
  propagation, ``(r*)* -> r*`` (done by the smart constructors).

The pass is idempotent and language-preserving; both properties are
checked by the test suite (the latter differentially against the
derivative oracle).
"""

from __future__ import annotations

from .ast import (
    EPSILON,
    Alt,
    Concat,
    Regex,
    Repeat,
    Star,
    Sym,
    alternation,
    concat,
    repeat,
    star,
    sym,
)

__all__ = ["simplify"]


def simplify(root: Regex) -> Regex:
    """Apply the Section 4.2 rewrite rules bottom-up.

    >>> from repro.regex.parser import parse_to_ast
    >>> from repro import simplify
    >>> simplify(parse_to_ast("a{1,1}"))
    Sym(cls=CharClass('a'))
    """
    if isinstance(root, Concat):
        return concat(*(simplify(p) for p in root.parts))
    if isinstance(root, Alt):
        return _simplify_alt([simplify(p) for p in root.parts])
    if isinstance(root, Star):
        return star(simplify(root.inner))
    if isinstance(root, Repeat):
        return _simplify_repeat(simplify(root.inner), root.lo, root.hi)
    return root


def _simplify_alt(parts: list[Regex]) -> Regex:
    """Alternation with character-class merging.

    All ``Sym`` alternatives fuse into a single ``Sym`` whose class is
    the union: this is the ``[a]|[b] -> [ab]`` rule.  The merged class
    is placed where the first ``Sym`` alternative appeared.
    """
    merged: list[Regex] = []
    class_slot = -1
    for part in parts:
        if isinstance(part, Sym):
            if class_slot < 0:
                class_slot = len(merged)
                merged.append(part)
            else:
                merged[class_slot] = Sym(merged[class_slot].cls | part.cls)
        else:
            merged.append(part)
    return alternation(*merged)


def _simplify_repeat(inner: Regex, lo: int, hi: int | None) -> Regex:
    """Repetition lowering: small upper bounds unfold, ``{m,}`` splits."""
    if hi is None:
        # r{m,} == r{m} r*  (bounded counting followed by free iteration)
        if lo == 0:
            return star(inner)
        return concat(_simplify_repeat(inner, lo, lo), star(inner))
    if hi == 0:
        return EPSILON
    if hi == 1:
        # Upper bound < 2: unfold rather than spend a counter.
        if lo == 1:
            return inner
        return alternation(inner, EPSILON)
    return repeat(inner, lo, hi)
