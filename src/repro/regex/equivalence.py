"""Decision procedure for regex language equivalence.

A Brzozowski/Antimirov-style bisimulation: two regexes are equivalent
iff no reachable derivative pair disagrees on nullability.  Since
derivatives of counted regexes stay counted (no unfolding), this
decides equivalence of ``r{m,n}`` patterns without materializing the
bounds -- the same succinctness argument the paper makes for NCAs.

Used by the test suite to verify that the Section 4.2 rewrites and the
unfolding transformations are exactly language-preserving (stronger
than the sampled differential checks), and exposed as public API
because a regex toolchain without an equivalence oracle is hard to
trust.
"""

from __future__ import annotations

from typing import Optional

from .ast import Regex
from .charclass import CharClass
from .oracle import derivative

__all__ = ["equivalent", "distinguishing_string", "EquivalenceBudgetError"]


class EquivalenceBudgetError(Exception):
    """The bisimulation exceeded its derivative-pair budget."""


def _alphabet_atoms(*nodes: Regex) -> list[CharClass]:
    """Coarsest byte-class partition the regexes can distinguish."""
    from .ast import Sym

    predicates: list[CharClass] = []
    seen: set[int] = set()
    for node in nodes:
        for sub in node.walk():
            if isinstance(sub, Sym) and sub.cls.mask not in seen:
                seen.add(sub.cls.mask)
                predicates.append(sub.cls)
    atoms = [CharClass.sigma()]
    for pred in predicates:
        refined: list[CharClass] = []
        for atom in atoms:
            inside = atom & pred
            outside = atom - pred
            if not inside.is_empty():
                refined.append(inside)
            if not outside.is_empty():
                refined.append(outside)
        atoms = refined
    return atoms


def distinguishing_string(
    left: Regex, right: Regex, max_pairs: int = 50_000
) -> Optional[bytes]:
    """A shortest-ish string in exactly one of the two languages.

    Returns None when the regexes are equivalent.  BFS over derivative
    pairs with the alphabet partitioned into atoms, so each step tries
    one representative byte per distinguishable class.
    """
    start = (left, right)
    visited = {start}
    queue: list[tuple[tuple[Regex, Regex], bytes]] = [(start, b"")]
    count = 0
    while queue:
        (l, r), prefix = queue.pop(0)
        if l.nullable() != r.nullable():
            return prefix
        for atom in _alphabet_atoms(l, r):
            byte = atom.sample()
            pair = (derivative(l, byte), derivative(r, byte))
            if pair in visited:
                continue
            visited.add(pair)
            count += 1
            if count > max_pairs:
                raise EquivalenceBudgetError(
                    f"equivalence check exceeded {max_pairs} derivative pairs"
                )
            queue.append((pair, prefix + bytes([byte])))
    return None


def equivalent(left: Regex, right: Regex, max_pairs: int = 50_000) -> bool:
    """True iff the two regexes denote the same language."""
    return distinguishing_string(left, right, max_pairs) is None
