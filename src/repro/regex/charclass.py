"""Character classes: predicates over the 8-bit byte alphabet.

The hardware processes 8-bit symbols (Section 4.1: a 256-entry one-hot
encoding addresses the state-matching memory), so the alphabet is fixed
to the 256 byte values.  A :class:`CharClass` is an immutable 256-bit
mask with full set algebra.  It plays the role of the predicates
``sigma`` over the alphabet from Definition 2.1, and of the per-STE
symbol sets stored in the CAM arrays.

Design notes
------------
* The mask is a plain Python ``int`` used as a bitset; bit ``i`` is set
  iff byte value ``i`` is in the class.  Python integers give us cheap
  union/intersection/complement and hashing.
* Instances are interned for the handful of very common classes (empty,
  Sigma, dot) to keep allocation down during Glushkov construction.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = [
    "ALPHABET_SIZE",
    "CharClass",
    "EMPTY",
    "SIGMA",
    "DOT_NO_NEWLINE",
]

ALPHABET_SIZE = 256
_FULL_MASK = (1 << ALPHABET_SIZE) - 1

_PRINTABLE_ESCAPES = {
    0x09: "\\t",
    0x0A: "\\n",
    0x0D: "\\r",
}
# Characters that need escaping when printed inside a class.
_CLASS_SPECIALS = frozenset(b"]\\^-")
# Characters that need escaping when printed as a bare literal.
_LITERAL_SPECIALS = frozenset(b".*+?()[]{}|^$\\")


class CharClass:
    """An immutable predicate over the 256-symbol byte alphabet.

    Supports set algebra (``|``, ``&``, ``~``, ``-``), containment
    tests, iteration over members, and parsing/printing helpers.  Equal
    masks compare and hash equal, so classes can key dictionaries (used
    heavily by the product construction of Section 3.1, which labels
    product edges with predicate intersections).
    """

    __slots__ = ("mask",)

    def __init__(self, mask: int):
        if not 0 <= mask <= _FULL_MASK:
            raise ValueError(f"mask out of range: {mask:#x}")
        object.__setattr__(self, "mask", mask)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("CharClass is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "CharClass":
        return EMPTY

    @staticmethod
    def sigma() -> "CharClass":
        return SIGMA

    @staticmethod
    def of_byte(value: int) -> "CharClass":
        """Singleton class ``{value}``."""
        if not 0 <= value < ALPHABET_SIZE:
            raise ValueError(f"byte value out of range: {value}")
        return CharClass(1 << value)

    @staticmethod
    def of_char(char: str) -> "CharClass":
        """Singleton class for a one-character string (must be Latin-1)."""
        if len(char) != 1:
            raise ValueError("of_char expects a single character")
        code = ord(char)
        if code >= ALPHABET_SIZE:
            raise ValueError(f"character {char!r} outside byte alphabet")
        return CharClass.of_byte(code)

    @staticmethod
    def of_bytes(values: Iterable[int]) -> "CharClass":
        """Class containing exactly the given byte values."""
        mask = 0
        for value in values:
            if not 0 <= value < ALPHABET_SIZE:
                raise ValueError(f"byte value out of range: {value}")
            mask |= 1 << value
        return CharClass(mask)

    @staticmethod
    def of_string(chars: str | bytes) -> "CharClass":
        """Class containing every character of ``chars``."""
        if isinstance(chars, str):
            chars = chars.encode("latin-1")
        return CharClass.of_bytes(chars)

    @staticmethod
    def of_range(lo: int, hi: int) -> "CharClass":
        """Class for the inclusive byte range ``[lo, hi]``."""
        if not (0 <= lo <= hi < ALPHABET_SIZE):
            raise ValueError(f"bad range: {lo}-{hi}")
        width = hi - lo + 1
        return CharClass(((1 << width) - 1) << lo)

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "CharClass") -> "CharClass":
        return CharClass(self.mask | other.mask)

    def intersect(self, other: "CharClass") -> "CharClass":
        return CharClass(self.mask & other.mask)

    def complement(self) -> "CharClass":
        return CharClass(self.mask ^ _FULL_MASK)

    def difference(self, other: "CharClass") -> "CharClass":
        return CharClass(self.mask & ~other.mask)

    __or__ = union
    __and__ = intersect
    __invert__ = complement
    __sub__ = difference

    def is_empty(self) -> bool:
        return self.mask == 0

    def is_sigma(self) -> bool:
        return self.mask == _FULL_MASK

    def overlaps(self, other: "CharClass") -> bool:
        """True iff the intersection is non-empty.

        This is the emptiness test used when building product-system
        edges (Section 3.1: add an edge labeled ``sigma1 & sigma2`` only
        when that intersection is non-empty).
        """
        return (self.mask & other.mask) != 0

    def is_subset(self, other: "CharClass") -> bool:
        return (self.mask & ~other.mask) == 0

    # ------------------------------------------------------------------
    # Membership and enumeration
    # ------------------------------------------------------------------
    def contains(self, value: int) -> bool:
        return 0 <= value < ALPHABET_SIZE and bool((self.mask >> value) & 1)

    __contains__ = contains

    def __iter__(self) -> Iterator[int]:
        mask = self.mask
        value = 0
        while mask:
            if mask & 1:
                yield value
            mask >>= 1
            value += 1

    def __len__(self) -> int:
        return self.mask.bit_count()

    def count(self) -> int:
        """Number of byte values in the class."""
        return self.mask.bit_count()

    def sample(self) -> int:
        """Smallest member; used to materialize witness strings (§3.3).

        Prefers a printable ASCII member when one exists so that
        reported witnesses are human-readable.
        """
        if self.mask == 0:
            raise ValueError("cannot sample from the empty class")
        printable = self.mask & (((1 << (0x7F - 0x20)) - 1) << 0x20)
        mask = printable if printable else self.mask
        return (mask & -mask).bit_length() - 1

    def sample_char(self) -> str:
        return chr(self.sample())

    # ------------------------------------------------------------------
    # Hashing / equality / printing
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, CharClass) and self.mask == other.mask

    def __reduce__(self):
        # The immutability guard in __setattr__ breaks the default
        # slots-state pickling; rebuild from the mask instead (compiled
        # networks are pickled by the ruleset cache and worker pools).
        return (CharClass, (self.mask,))

    def __hash__(self) -> int:
        return hash(("CharClass", self.mask))

    def __repr__(self) -> str:
        return f"CharClass({self.to_pattern()!r})"

    def ranges(self) -> list[tuple[int, int]]:
        """Maximal inclusive ranges of member bytes, ascending."""
        result: list[tuple[int, int]] = []
        start = None
        prev = None
        for value in self:
            if start is None:
                start = prev = value
            elif value == prev + 1:
                prev = value
            else:
                result.append((start, prev))
                start = prev = value
        if start is not None:
            result.append((start, prev))
        return result

    def to_pattern(self) -> str:
        """Render as POSIX-ish regex source text.

        Produces ``.`` for Sigma, a bare (escaped) literal for
        singletons, and a ``[...]`` class otherwise, negated when that
        is shorter.  ``parse_pattern(to_pattern())`` round-trips.
        """
        if self.is_sigma():
            return "(.|\\n)" if False else "[\\x00-\\xff]"
        if self.mask == DOT_NO_NEWLINE.mask:
            return "."
        if self.is_empty():
            return "[]"
        if self.count() == 1:
            return _escape_literal(next(iter(self)))
        negated = self.count() > ALPHABET_SIZE // 2
        body_cc = self.complement() if negated else self
        parts = []
        for lo, hi in body_cc.ranges():
            if hi - lo >= 2:
                parts.append(f"{_escape_in_class(lo)}-{_escape_in_class(hi)}")
            else:
                parts.extend(_escape_in_class(v) for v in range(lo, hi + 1))
        prefix = "^" if negated else ""
        return f"[{prefix}{''.join(parts)}]"


def _escape_in_class(value: int) -> str:
    if value in _PRINTABLE_ESCAPES:
        return _PRINTABLE_ESCAPES[value]
    if value in _CLASS_SPECIALS:
        return "\\" + chr(value)
    if 0x20 <= value < 0x7F:
        return chr(value)
    return f"\\x{value:02x}"


def _escape_literal(value: int) -> str:
    if value in _PRINTABLE_ESCAPES:
        return _PRINTABLE_ESCAPES[value]
    if value in _LITERAL_SPECIALS:
        return "\\" + chr(value)
    if 0x20 <= value < 0x7F:
        return chr(value)
    return f"\\x{value:02x}"


EMPTY = CharClass(0)
SIGMA = CharClass(_FULL_MASK)
#: POSIX ``.``: every byte except newline.
DOT_NO_NEWLINE = CharClass(_FULL_MASK ^ (1 << 0x0A))

# Named classes used by escape sequences (PCRE/POSIX-compatible subsets).
DIGITS = CharClass.of_range(ord("0"), ord("9"))
WORD = (
    CharClass.of_range(ord("a"), ord("z"))
    | CharClass.of_range(ord("A"), ord("Z"))
    | DIGITS
    | CharClass.of_char("_")
)
SPACE = CharClass.of_string(" \t\n\r\x0b\x0c")
