"""Operator control channel: a unix-socket line protocol for the fleet.

Signals only carry one bit, and only from the same machine's shell;
fleet tooling (health checks, deploy scripts, the CI smoke) wants a
real request/response channel.  :class:`ControlServer` listens on a
unix domain socket next to the serving port and speaks five verbs,
newline-framed UTF-8, one reply line per command::

    PING              -> PONG
    GEN               -> GEN <generation>
    STATS             -> STATS <one-line ServerStats JSON>
    RELOAD            -> OK RELOAD <new-generation>   (or ERR <why>)
    STOP              -> OK STOP   (then the target begins draining)

The server is deliberately duck-typed over its ``target``: anything
with a ``generation`` attribute, ``stats() -> ServerStats``, and
``reload() -> int`` works -- a :class:`~repro.serve.fleet.WorkerFleet`
directly, or a thin adapter over a single in-process
:class:`~repro.serve.server.MatchServer` (the CLI builds one for
``repro serve --workers 1 --control``).  ``STOP`` invokes the
``on_stop`` callback, so shutdown policy stays with the owner.

Commands are handled sequentially per connection and the handler is
one thread per client -- a control socket sees operators and scripts,
not traffic, so simplicity beats concurrency here.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from typing import Callable, Optional

__all__ = ["ControlServer", "ControlClient"]

#: one control line (request or reply) never exceeds this
MAX_CONTROL_LINE = 1 << 20


class ControlServer:
    """Serve the control verbs for ``target`` on a unix socket ``path``.

    Starts a daemon accept thread (:meth:`start`), one handler thread
    per connection; :meth:`stop` closes the listener and unlinks the
    socket path.  A stale socket file from a crashed previous run is
    replaced on bind.
    """

    def __init__(
        self,
        target,
        path: str,
        on_stop: Optional[Callable[[], None]] = None,
    ):
        self.target = target
        self.path = path
        self.on_stop = on_stop
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._closing = False

    def start(self) -> "ControlServer":
        if self._sock is not None:
            raise RuntimeError("control server already started")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            try:
                sock.bind(self.path)
            except OSError:
                # a previous run's stale socket file: confirm nothing
                # is listening, then replace it
                probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    probe.connect(self.path)
                except OSError:
                    probe.close()
                    os.unlink(self.path)
                    sock.bind(self.path)
                else:
                    probe.close()
                    raise
            sock.listen(8)
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self._closing = False
        self._thread = threading.Thread(
            target=self._accept_loop, name="repro-control", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Close the listener and remove the socket file (idempotent)."""
        self._closing = True
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "ControlServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- internals ---------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing:
            sock = self._sock
            if sock is None:
                return
            try:
                client, _ = sock.accept()
            except OSError:
                return  # listener closed: shutting down
            threading.Thread(
                target=self._handle, args=(client,), daemon=True
            ).start()

    def _handle(self, client: socket.socket) -> None:
        with client:
            reader = client.makefile("rb")
            try:
                for raw in reader:
                    if len(raw) > MAX_CONTROL_LINE:
                        break
                    line = raw.decode("utf-8", "replace").strip()
                    if not line:
                        continue
                    if line == "QUIT":
                        client.sendall(b"BYE\n")
                        return
                    try:
                        reply = self._dispatch(line)
                    except Exception as exc:  # noqa: BLE001 - wire reply
                        reply = f"ERR {type(exc).__name__}: {exc}"
                    try:
                        client.sendall(reply.encode("utf-8") + b"\n")
                    except OSError:
                        return
                    if line == "STOP" and self.on_stop is not None:
                        # reply first, then trigger: the caller sees
                        # the acknowledgement even if stopping tears
                        # this very socket down
                        self.on_stop()
            finally:
                reader.close()

    def _dispatch(self, line: str) -> str:
        if line == "PING":
            return "PONG"
        if line == "GEN":
            return f"GEN {self.target.generation}"
        if line == "STATS":
            snapshot = self.target.stats().as_dict()
            return "STATS " + json.dumps(snapshot, sort_keys=True)
        if line == "RELOAD":
            return f"OK RELOAD {self.target.reload()}"
        if line == "STOP":
            return "OK STOP"
        return f"ERR unknown control command {line!r}"


class ControlClient:
    """Blocking client for :class:`ControlServer` (operator tooling).

    >>> # doctest-style usage (needs a running server):
    >>> # with ControlClient("/run/repro.sock") as ctl:
    >>> #     ctl.ping(); ctl.generation(); ctl.reload(); ctl.stats()
    """

    def __init__(self, path: str, timeout: float = 30.0):
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(path)
        self._reader = self._sock.makefile("rb")

    def command(self, line: str) -> str:
        """Send one verb, return its (stripped) reply line."""
        self._sock.sendall(line.encode("utf-8") + b"\n")
        reply = self._reader.readline()
        if not reply:
            raise ConnectionError("control server closed the connection")
        return reply.decode("utf-8").strip()

    def ping(self) -> bool:
        return self.command("PING") == "PONG"

    def generation(self) -> int:
        reply = self.command("GEN")
        return int(reply.split(" ", 1)[1])

    def reload(self) -> int:
        reply = self.command("RELOAD")
        if not reply.startswith("OK RELOAD "):
            raise RuntimeError(reply)
        return int(reply.rsplit(" ", 1)[1])

    def stats(self) -> dict:
        reply = self.command("STATS")
        if not reply.startswith("STATS "):
            raise RuntimeError(reply)
        return json.loads(reply.split(" ", 1)[1])

    def stop(self) -> None:
        reply = self.command("STOP")
        if reply != "OK STOP":
            raise RuntimeError(reply)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ControlClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
