"""The asyncio match server: one compiled ruleset, N client connections.

:class:`MatchServer` is the serving layer over the PR-4 session
machinery: it accepts TCP connections speaking the
:mod:`repro.serve.protocol` line protocol, gives every connection its
own set of tagged :class:`~repro.session.MatchSession`\\ s (all sharing
the server's one compiled :class:`~repro.session.Matcher` -- sharded
or not, any registered backend), and streams :class:`Match` events
back as scanning observes them.

Concurrency model (one event loop, CPU work off-loop):

* the **event loop** owns all sockets, parsing, and bookkeeping;
* every connection has a **reader** coroutine (frames -> job queue)
  and a **worker** coroutine (job queue -> sessions -> reply lines);
  jobs execute strictly in arrival order per connection, so stream
  semantics are the client's send order;
* the worker off-loads every CPU-bound ``feed``/``finish`` into the
  server-wide :class:`~repro.engine.parallel.FeedPool` (threads
  sharing the compiled tables), so one client scanning a huge chunk
  never freezes the loop for the others;
* **backpressure** is structural: the per-connection job queue is
  bounded (``queue_depth``), the reader ``await``\\ s the queue before
  reading more bytes, and a full queue therefore stops socket reads
  -- TCP flow control pushes back to the client.  Nothing is dropped;
  outbound pressure is ``writer.drain()`` after every batch of match
  lines.

Shutdown (:meth:`MatchServer.stop`) is a **graceful drain**: the
listener closes first, every connection's already-queued work is
finished and its matches flushed, clients get a ``BYE``, and only
then do transports close (bounded by ``drain_timeout``).

Matches are delivered through the PR-4 sink machinery: each session
is created with the connection's emit buffer as its ``on_match``
sink, so the wire sees exactly what any local sink would --
same events, same order, same ``$``-gating -- and a served stream is
byte-for-byte comparable to an offline
:class:`~repro.session.MultiStreamScanner` run (the e2e tests assert
exactly that equality).
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from typing import Callable, Optional, Union

from ..engine.parallel import FeedPool
from ..session import Match, Matcher, MatchSession
from .protocol import (
    Command,
    MAX_LINE,
    ProtocolError,
    format_match,
    parse_command,
)
from .stats import ServerStats, StatsCounters

__all__ = ["MatchServer", "MatcherHandle"]

#: default per-connection job-queue depth (frames in flight before the
#: reader stops reading the socket and TCP backpressure kicks in)
DEFAULT_QUEUE_DEPTH = 32


class _Shutdown:
    """Sentinel job: finish what is queued ahead of this, say BYE."""


_SHUTDOWN = _Shutdown()
_EOF = object()  # reader saw end-of-stream: stop the worker quietly


class MatcherHandle:
    """A swappable reference to the server's live matcher.

    The hot-reload primitive: the server reads the handle, never the
    matcher directly, and :meth:`swap` replaces the matcher *and* bumps
    the ruleset generation in one attribute store -- atomic under the
    GIL, so connections racing a reload see either the old
    ``(generation, matcher)`` pair or the new one, never a torn mix.
    Streams pin the pair at ``OPEN`` and drain on it; only streams
    opened after the swap scan with the new tables.

    >>> from repro.serve.server import MatcherHandle
    >>> handle = MatcherHandle("tables-v0")
    >>> handle.current()
    (0, 'tables-v0')
    >>> handle.swap("tables-v1")
    1
    >>> handle.current()
    (1, 'tables-v1')
    """

    def __init__(self, matcher: Matcher, generation: int = 0):
        self._current: tuple[int, Matcher] = (generation, matcher)

    @property
    def generation(self) -> int:
        """The live ruleset generation (0 until the first swap)."""
        return self._current[0]

    @property
    def matcher(self) -> Matcher:
        """The live matcher."""
        return self._current[1]

    def current(self) -> tuple[int, Matcher]:
        """One consistent ``(generation, matcher)`` pair."""
        return self._current

    def swap(self, matcher: Matcher, generation: Optional[int] = None) -> int:
        """Install ``matcher`` atomically; return its generation.

        ``generation=None`` auto-increments; a fleet supervisor passes
        an explicit parent-assigned generation so every worker agrees.
        """
        if generation is None:
            generation = self._current[0] + 1
        self._current = (generation, matcher)
        return generation


class _Connection:
    """One accepted client: its sessions, job queue, and two tasks."""

    def __init__(self, server: "MatchServer", reader, writer):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.jobs: asyncio.Queue = asyncio.Queue(maxsize=server.queue_depth)
        self.sessions: dict[str, MatchSession] = {}
        self.match_counts: dict[str, int] = {}
        #: ruleset generation each open stream is pinned to (set at
        #: OPEN from the handle, constant for the stream's life)
        self.generations: dict[str, int] = {}
        self.closing = False
        #: the per-connection ``on_match`` sink target: sessions append
        #: here during (threaded) feed/finish; the worker drains it to
        #: the wire right after each backend call returns.  Only one
        #: job runs at a time per connection, so no locking is needed.
        self.emitted: list[Match] = []

    # -- lifecycle ---------------------------------------------------------
    async def run(self) -> None:
        """Pump frames and execute jobs until either side finishes.

        The worker owns the connection's lifetime: it returns on client
        EOF (via the reader's ``_EOF`` sentinel), ``QUIT``, a fatal
        protocol error, or server shutdown -- after which the reader
        (possibly parked on a backpressured queue or an idle socket) is
        cancelled and the transport closed.
        """
        reader_task = asyncio.ensure_future(self._pump())
        try:
            await self._work()
        finally:
            reader_task.cancel()
            await asyncio.gather(reader_task, return_exceptions=True)
            self._abandon_sessions()
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _pump(self) -> None:
        await self._read_frames()
        await self.jobs.put(_EOF)

    def _abandon_sessions(self) -> None:
        """Drop still-open sessions (client left without CLOSE); their
        end-gated matches are unobservable by design -- the stream did
        not actually end, it was abandoned."""
        for _ in self.sessions:
            self.server._stats.stream_closed()
        self.sessions.clear()
        self.generations.clear()

    # -- reader: socket -> bounded job queue -------------------------------
    async def _read_frames(self) -> None:
        while not self.closing:
            try:
                line = await self.reader.readline()
            except ValueError:
                # over-long control line: a framing violation
                await self.jobs.put(("ERRFATAL", "control line too long"))
                return
            except (ConnectionError, OSError):
                return  # transport died: treat like EOF, nothing to say
            if not line:
                return  # clean EOF / client disconnect
            stripped = line.rstrip(b"\r\n")
            if not stripped:
                continue  # blank keep-alive line
            try:
                command = parse_command(stripped)
            except ProtocolError as exc:
                await self.jobs.put(("ERRFATAL", str(exc)))
                return
            payload = b""
            if command.verb == "FEED" and command.nbytes:
                try:
                    payload = await self.reader.readexactly(command.nbytes)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return  # died mid-payload: nothing sane to answer
            # bounded put: a full queue suspends reading (backpressure)
            await self.jobs.put((command, payload))
            if command.verb == "QUIT":
                return

    # -- worker: job queue -> sessions -> reply lines ----------------------
    async def _work(self) -> None:
        stashed = None
        while True:
            if stashed is not None:
                job, stashed = stashed, None
            else:
                job = await self.jobs.get()
            if job is _EOF:
                return
            if job is _SHUTDOWN:
                self.closing = True
                self._write_line(b"BYE\n")
                await self._drain_quietly()
                return
            if isinstance(job, tuple) and job[0] == "ERRFATAL":
                self.server._stats.record_error()
                self._write_line(f"ERR {job[1]}\n".encode("latin-1"))
                await self._drain_quietly()
                self.closing = True
                return
            command, payload = job
            payloads = [payload]
            if command.verb == "FEED":
                # batch every already-queued FEED for the same stream
                # into one executor hop: under load the queue fills
                # while a scan runs, and draining it in one threaded
                # call amortizes loop wake-ups, match flushes, and GIL
                # handoffs (the job order is preserved; the first
                # non-matching job is stashed for the next iteration)
                while stashed is None:
                    try:
                        nxt = self.jobs.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if (
                        isinstance(nxt, tuple)
                        and isinstance(nxt[0], Command)
                        and nxt[0].verb == "FEED"
                        and nxt[0].stream == command.stream
                    ):
                        payloads.append(nxt[1])
                    else:
                        stashed = nxt
            try:
                done = await self._execute(command, payloads)
                await self.writer.drain()
            except (ConnectionError, OSError):
                self.closing = True
                return
            if done:
                return

    async def _execute(self, command: Command, payloads: list[bytes]) -> bool:
        """Run one command (for FEED: a batch of same-stream payloads);
        return True when the connection should end."""
        verb, tag = command.verb, command.stream
        server = self.server
        if verb == "OPEN":
            if tag in self.sessions:
                self._error(f"OPEN {tag}: stream already open")
                return False
            # pin (generation, matcher) in one read: the stream drains
            # on these tables even if a reload swaps the handle mid-life
            generation, matcher = server.handle.current()
            self.sessions[tag] = matcher.session(
                engine=server.engine,
                stream=tag,
                on_match=self.emitted.append,
            )
            self.generations[tag] = generation
            # reset, not setdefault: reusing a tag after CLOSE is a
            # fresh stream, so its CLOSED summary must not accumulate
            # the previous incarnation's match count
            self.match_counts[tag] = 0
            server._stats.stream_opened()
            self._write_line(f"OK OPEN {tag} {generation}\n".encode("latin-1"))
        elif verb == "FEED":
            session = self.sessions.get(tag)
            if session is None:
                # one ERR per rejected frame, so the reply stream is
                # identical whether the frames were batched or not
                for _ in payloads:
                    self._error(f"FEED {tag}: stream not open")
                return False

            def feed_batch():
                for payload in payloads:
                    session.feed(payload)

            _, seconds = await server._offload(feed_batch)
            emitted = self._flush_matches(tag)
            server._stats.record_feed(
                sum(len(payload) for payload in payloads),
                emitted,
                seconds,
                frames=len(payloads),
            )
        elif verb == "CLOSE":
            session = self.sessions.pop(tag, None)
            if session is None:
                self._error(f"CLOSE {tag}: stream not open")
                return False
            _, seconds = await server._offload(session.finish)
            emitted = self._flush_matches(tag)
            server._stats.record_finish(emitted, seconds)
            server._stats.stream_closed()
            self._write_line(
                f"CLOSED {tag} {session.bytes_fed} "
                f"{self.match_counts[tag]} "
                f"{self.generations.pop(tag, 0)}\n".encode("latin-1")
            )
        elif verb == "STATS":
            snapshot = server.stats().as_dict()
            self._write_line(
                b"STATS " + json.dumps(snapshot, sort_keys=True).encode("latin-1")
                + b"\n"
            )
        elif verb == "PING":
            self._write_line(b"PONG\n")
        elif verb == "QUIT":
            self._write_line(b"BYE\n")
            await self._drain_quietly()
            self.closing = True
            return True
        return False

    # -- write helpers -----------------------------------------------------
    def _flush_matches(self, tag: str) -> int:
        """Write every match the last backend call emitted; return the
        count (order is the session's emission order)."""
        emitted = self.emitted
        if not emitted:
            return 0
        generation = self.generations.get(tag, 0)
        self.writer.writelines(
            format_match(match, generation) for match in emitted
        )
        count = len(emitted)
        self.match_counts[tag] = self.match_counts.get(tag, 0) + count
        emitted.clear()
        return count

    def _write_line(self, line: bytes) -> None:
        self.writer.write(line)

    def _error(self, message: str) -> None:
        self.server._stats.record_error()
        self._write_line(f"ERR {message}\n".encode("latin-1"))

    async def _drain_quietly(self) -> None:
        try:
            await self.writer.drain()
        except (ConnectionError, OSError):
            pass


class MatchServer:
    """Serve one compiled ruleset to N concurrent line-protocol clients.

    Args:
        matcher: any :class:`~repro.session.Matcher`
            (:class:`~repro.matching.RulesetMatcher` or
            :class:`~repro.engine.parallel.ShardedMatcher`), already
            compiled -- the server never recompiles -- or a
            :class:`MatcherHandle` for hot-reload deployments (a bare
            matcher is wrapped in a fresh handle at generation 0).
        host / port: bind address (``port=0`` picks an ephemeral port,
            readable from :attr:`port` after :meth:`start`).
        engine: execution-backend override for every session (``None``
            uses the matcher's own default, usually ``"auto"``).
        queue_depth: per-connection bounded job-queue depth -- the
            backpressure knob (frames in flight before socket reads
            stop).
        workers: thread count of the shared
            :class:`~repro.engine.parallel.FeedPool` (``None`` lets
            the pool pick).
        drain_timeout: seconds :meth:`stop` waits for per-connection
            graceful drain before cancelling.
        sock: an already-bound listening socket to serve on instead of
            binding ``host:port`` (the fleet's fd-passing fallback on
            platforms without ``SO_REUSEPORT``).
        reuse_port: bind with ``SO_REUSEPORT`` so N processes can
            listen on the same ``host:port`` and the kernel shards
            accepted connections across them.
        worker: this server's index within a fleet, stamped into
            :class:`~repro.serve.stats.ServerStats` (``None`` for a
            lone server).

    Usage (also the shape of ``python -m repro serve``)::

        async with MatchServer(matcher, port=0) as server:
            print(server.port)          # bound ephemeral port
            await server.serve_forever()

    or explicitly: ``await server.start()`` ... ``await server.stop()``.
    """

    def __init__(
        self,
        matcher: Union[Matcher, MatcherHandle],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        engine: Optional[str] = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        workers: Optional[int] = None,
        drain_timeout: float = 10.0,
        sock: Optional[socket.socket] = None,
        reuse_port: bool = False,
        worker: Optional[int] = None,
    ):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if sock is not None and reuse_port:
            raise ValueError("sock and reuse_port are mutually exclusive")
        self.handle = (
            matcher
            if isinstance(matcher, MatcherHandle)
            else MatcherHandle(matcher)
        )
        self.host = host
        self.port = port
        self.engine = engine
        self.queue_depth = queue_depth
        self.workers = workers
        self.drain_timeout = drain_timeout
        self.reuse_port = reuse_port
        self.worker = worker
        self._sock = sock
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[FeedPool] = None
        self._handlers: set[asyncio.Task] = set()
        self._connections: set[_Connection] = set()
        self._stats = StatsCounters(
            engine=engine or getattr(self.handle.matcher, "engine", "auto"),
            worker=worker,
        )

    @property
    def matcher(self) -> Matcher:
        """The live matcher (reads through the swap-aware handle)."""
        return self.handle.matcher

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "MatchServer":
        """Bind and start accepting; resolves the ephemeral port.

        Bind failures (port in use, privileged port, SO_REUSEPORT
        unsupported) propagate as ``OSError``/``ValueError`` -- callers
        own the bind-error UX.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        self._pool = FeedPool(self.workers)
        self._stats = StatsCounters(
            engine=self._stats.engine, worker=self.worker
        )
        try:
            if self._sock is not None:
                self._server = await asyncio.start_server(
                    self._handle, sock=self._sock, limit=MAX_LINE * 16
                )
            else:
                self._server = await asyncio.start_server(
                    self._handle,
                    host=self.host,
                    port=self.port,
                    limit=MAX_LINE * 16,
                    reuse_port=self.reuse_port or None,
                )
        except BaseException:
            self._pool.shutdown()
            self._pool = None
            raise
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self

    async def serve_forever(self) -> None:
        """Block until the server is stopped or cancelled."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting and shut down, gracefully by default.

        ``drain=True``: every connection finishes its queued work,
        flushes pending matches, and receives ``BYE`` before its
        transport closes (bounded by ``drain_timeout`` per the whole
        fleet).  ``drain=False`` cancels connection tasks immediately.
        """
        listener, self._server = self._server, None
        if listener is not None:
            # close() alone stops accepting; wait_closed() is deferred
            # because on 3.12+ it also waits for every live handler,
            # which would deadlock the drain handshake below
            listener.close()
        if drain:
            for conn in list(self._connections):
                conn.closing = True
                try:
                    conn.jobs.put_nowait(_SHUTDOWN)
                except asyncio.QueueFull:
                    pass  # worker is saturated; the timeout bounds us
            if self._handlers:
                await asyncio.wait(self._handlers, timeout=self.drain_timeout)
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()
        if listener is not None:
            try:
                await asyncio.wait_for(listener.wait_closed(), timeout=1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                pass
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    async def __aenter__(self) -> "MatchServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.stop()
        return False

    # -- introspection -----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return (self.host, self.port)

    @property
    def connections(self) -> int:
        """Currently connected clients."""
        return len(self._connections)

    def stats(self) -> ServerStats:
        """A point-in-time :class:`~repro.serve.stats.ServerStats`."""
        self._stats.generation = self.handle.generation
        return self._stats.snapshot()

    # -- hot reload --------------------------------------------------------
    async def reload(
        self,
        build: Callable[[], Matcher],
        generation: Optional[int] = None,
    ) -> int:
        """Hot-swap the ruleset; return the new generation.

        ``build`` (typically ``lambda: RulesetMatcher(rules, cache_dir=...)``)
        runs on the FeedPool, so compiling/loading the new tables never
        blocks the event loop or in-flight scans.  The swap itself is
        :meth:`MatcherHandle.swap` -- atomic; already-open streams keep
        draining on the tables they pinned at ``OPEN``, streams opened
        afterwards scan (and stamp their lines) with the new
        generation.  ``generation=None`` auto-increments; a fleet
        supervisor passes its own fleet-wide number.
        """
        if self._pool is not None:
            matcher, _ = await self._offload(build)
        else:  # not started yet: nothing to keep responsive
            matcher = build()
        return self.handle.swap(matcher, generation)

    # -- internals ---------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        from .client import _set_nodelay

        _set_nodelay(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        conn = _Connection(self, reader, writer)
        self._connections.add(conn)
        self._stats.connection_opened()
        try:
            await conn.run()
        except asyncio.CancelledError:
            conn.writer.close()
            raise
        finally:
            self._connections.discard(conn)
            self._stats.connection_closed()

    async def _offload(self, fn, *args):
        """Run a CPU-bound session call on the FeedPool; return
        ``(result, seconds)`` with the seconds measured inside the
        worker thread (pure backend time, no queue wait)."""
        assert self._pool is not None, "server not started"

        def timed():
            start = time.perf_counter()
            result = fn(*args)
            return result, time.perf_counter() - start

        return await asyncio.wrap_future(self._pool.submit(timed))
