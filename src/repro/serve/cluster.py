"""Cluster scatter-gather: one logical matcher over N remote ruleset shards.

:class:`~repro.engine.parallel.ShardedMatcher` splits a ruleset
round-robin across matchers *in this process*; this module applies the
identical shard policy **across servers**.  A
:class:`RemoteShardedMatcher` implements the ordinary
:class:`~repro.session.Matcher` protocol, but each shard is a remote
:class:`~repro.serve.server.MatchServer` reached through its own
:class:`~repro.serve.client.MatchClient` connection -- the "CRAM string
matching at scale" shape: ruleset capacity and scan throughput grow
horizontally with the shard count, while callers keep the one-matcher
surface (``session``/``scan``/``scan_many``/``MultiStreamScanner``).

How a session works over the wire:

* ``session()`` opens one tagged stream *on every shard* (the tag is
  made unique per session, so concurrent sessions never collide on a
  connection);
* ``feed(chunk)`` fans the same ``FEED`` frame out to all shards, then
  issues a ``PING`` barrier per shard.  ``PONG`` proves every earlier
  frame on that connection was processed and its matches flushed
  (protocol FIFO), so once all shards answered, this chunk's matches
  have fully arrived.  The per-shard streams are merged and sorted by
  :attr:`~repro.session.Match.sort_key` -- the same deterministic
  order an offline sharded session emits;
* ``finish()`` closes the stream on every shard (delivering the
  ``$``-gated matches, which the *servers* gate -- the client never
  needs the rulesets), and ``result()`` folds the per-shard
  :class:`~repro.matching.ScanResult`\\ s with
  :func:`~repro.engine.parallel.merge_scan_results`;
* :meth:`RemoteShardedMatcher.stats` folds per-shard ``STATS``
  snapshots with :func:`~repro.serve.stats.merge_server_stats`.

Failure semantics: a shard dying mid-flight raises
:class:`ClusterPartialResultError` naming the shard, its address, and
the streams affected; every match already delivered stays available on
the error's :attr:`~ClusterPartialResultError.delivered` map (no hang,
no silent loss).  Shard (re)attachment reuses
:meth:`MatchClient.connect`'s ``retries=N`` jittered backoff.

:class:`LocalShardCluster` is the dev/CI harness: it shards one rule
list with the same dedup + round-robin policy as ``ShardedMatcher``
(:func:`~repro.compiler.pipeline.dedupe_rules` then
:func:`~repro.engine.parallel.shard_rules`) and spawns one
``MatchServer`` per bucket -- in-process on a private event loop, or
one OS process per shard (``processes=True``) for real parallelism.
:class:`ClusterSpec` is the picklable recipe both the ``repro
cluster`` CLI and tests build from.  Topology and sizing guidance:
``docs/SERVING.md`` "Cluster deployment".
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, fields as dataclass_fields
from typing import Iterable, Iterator, Optional, Sequence, Union

from ..engine.scanner import Chunk, coerce_chunk
from ..session import Match, MatchSink, match_dict
from .client import MatchClient, StreamSummary
from .protocol import validate_stream_tag
from .stats import ServerStats, merge_server_stats

__all__ = [
    "ClusterPartialResultError",
    "ClusterSpec",
    "LocalShardCluster",
    "RemoteShardedMatcher",
    "parse_endpoint",
]

#: default seconds a cluster operation may spend before the caller
#: gives up (generous: covers a full drain of queued frames per shard)
DEFAULT_OP_TIMEOUT = 60.0


def parse_endpoint(text: str) -> tuple[str, int]:
    """Parse one ``host:port`` endpoint string.

    >>> parse_endpoint("10.0.0.7:7401")
    ('10.0.0.7', 7401)
    >>> parse_endpoint("7401")
    ('127.0.0.1', 7401)
    """
    host, sep, port = text.strip().rpartition(":")
    if not sep:
        host, port = "127.0.0.1", text.strip()
    try:
        number = int(port)
    except ValueError:
        raise ValueError(f"bad endpoint {text!r}: port {port!r} is not an int")
    if not host:
        host = "127.0.0.1"
    return (host, number)


class ClusterPartialResultError(RuntimeError):
    """A shard died mid-flight; the scatter-gather result is partial.

    The already-delivered matches are *not* lost: everything emitted
    before the failure was pushed to sinks in order and is preserved on
    :attr:`delivered` (keyed by stream tag).  The error names the first
    failed shard; simultaneous multi-shard failures are listed in
    :attr:`failures`.

    >>> err = ClusterPartialResultError(
    ...     op="FEED", shard=1, address=("10.0.0.7", 7401),
    ...     streams=("s1", "s2"), delivered={},
    ...     cause=ConnectionResetError("peer reset"))
    >>> print(err)                          # doctest: +ELLIPSIS
    shard 1 (10.0.0.7:7401) failed during FEED: peer reset; streams affected: s1, s2...
    """

    def __init__(
        self,
        *,
        op: str,
        shard: int,
        address: tuple[str, int],
        streams: tuple[str, ...],
        delivered: dict[str, list[Match]],
        cause: BaseException,
        failures: Optional[list[tuple[int, tuple[str, int], BaseException]]] = None,
    ):
        #: wire operation that surfaced the failure (OPEN/FEED/CLOSE/...)
        self.op = op
        #: index of the (first) failed shard
        self.shard = shard
        #: ``(host, port)`` of the failed shard
        self.address = address
        #: tags of the streams open at failure time
        self.streams = streams
        #: matches already emitted per affected stream, in emission order
        self.delivered = delivered
        #: underlying per-shard failure(s): ``(index, address, exc)``
        self.failures = failures or [(shard, address, cause)]
        affected = ", ".join(streams) if streams else "(none open)"
        super().__init__(
            f"shard {shard} ({address[0]}:{address[1]}) failed during {op}: "
            f"{cause}; streams affected: {affected} "
            f"(matches delivered before the failure are intact in .delivered)"
        )
        self.__cause__ = cause


class _LoopThread:
    """A private asyncio loop on a daemon thread.

    The cluster client keeps the synchronous :class:`Matcher` surface
    (so a ``MatchServer`` can even serve a ``RemoteShardedMatcher`` as
    a scatter-gather proxy); all socket work runs here and callers
    block on :meth:`run`.
    """

    def __init__(self, name: str = "repro-cluster"):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name=name, daemon=True
        )
        self._thread.start()

    def run(self, coro, timeout: Optional[float] = None):
        """Run ``coro`` on the loop; block for (and return) its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except TimeoutError:
            future.cancel()
            raise TimeoutError(
                f"cluster operation did not complete within {timeout}s"
            ) from None

    def stop(self) -> None:
        if self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._thread.is_alive():
            self._loop.close()


def _stats_from_payload(payload: dict) -> ServerStats:
    """Rebuild a :class:`ServerStats` from its ``STATS`` wire dict
    (derived keys like ``throughput_bps`` are dropped)."""
    names = {field.name for field in dataclass_fields(ServerStats)}
    return ServerStats(**{k: v for k, v in payload.items() if k in names})


class ClusterSession:
    """One logical stream scanned by every shard of a cluster.

    Duck-types the :class:`~repro.session.MatchSession` surface
    (``feed``/``finish``/``matches``/``result``, ``bytes_fed``,
    ``finished``, context manager, ``on_match`` sink) so
    :class:`~repro.session.MultiStreamScanner` and the serving layer
    drive remote sessions exactly like local ones.  Built by
    :meth:`RemoteShardedMatcher.session`, not directly.
    """

    def __init__(
        self,
        matcher: "RemoteShardedMatcher",
        *,
        stream: Optional[str] = None,
        on_match: Optional[MatchSink] = None,
    ):
        self._matcher = matcher
        #: tag carried by every match this session emits
        self.stream = stream
        #: sink called once per emitted match, in emission order
        self.on_match = on_match
        self._wire = matcher._claim_wire_tag(stream)
        self._cursors = [0] * matcher.shard_count
        self._delivered: list[Match] = []
        self._bytes = 0
        self._finished = False
        self._summaries: Optional[list[StreamSummary]] = None
        self._result = None
        matcher._open_sessions[self._wire] = self
        try:
            matcher._fanout(
                lambda client: client.open(self._wire), op="OPEN", session=self
            )
        except BaseException:
            # never-opened sessions must not linger as "affected
            # streams" of every later failure
            matcher._open_sessions.pop(self._wire, None)
            raise

    # -- introspection -----------------------------------------------------
    @property
    def bytes_fed(self) -> int:
        """Total stream bytes consumed so far."""
        return self._bytes

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def delivered(self) -> list[Match]:
        """Every match emitted so far, in emission order (survives a
        mid-flight shard failure)."""
        return list(self._delivered)

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "ClusterSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.finish()
        return False

    # -- streaming ---------------------------------------------------------
    def feed(self, chunk: Chunk) -> list[Match]:
        """Fan one chunk out to every shard; return its new matches.

        Lockstep: a ``PING`` barrier follows the ``FEED`` on each
        connection, so on return every shard has scanned the chunk and
        flushed its matches -- the returned list is complete for this
        chunk and sorted by :attr:`~repro.session.Match.sort_key`,
        exactly like an offline session's ``feed``.
        """
        if self._finished:
            raise RuntimeError(
                "feed() after finish(); open a new session to scan again"
            )
        payload = bytes(coerce_chunk(chunk))

        async def op(client: MatchClient) -> None:
            await client.feed(self._wire, payload)
            await client.ping()  # barrier: PONG proves the FEED was scanned

        self._matcher._fanout(op, op="FEED", session=self)
        self._bytes += len(payload)
        return self._collect()

    def finish(self) -> list[Match]:
        """Close the stream on every shard; return the matches the
        end-of-data unlocks (the servers gate ``$``-anchored rules).
        Idempotent: a second call returns ``[]``."""
        if self._finished:
            return []
        summaries = self._matcher._fanout(
            lambda client: client.close_stream(self._wire),
            op="CLOSE",
            session=self,
        )
        self._finished = True
        self._summaries = summaries
        self._matcher._open_sessions.pop(self._wire, None)
        return self._collect()

    def matches(self, chunks: Iterable[Chunk]) -> Iterator[Match]:
        """Lazily scan an iterable of chunks, yielding matches as they
        arrive (and the end-gated ones after the last chunk)."""
        for chunk in chunks:
            yield from self.feed(chunk)
        yield from self.finish()

    def result(self):
        """The merged :class:`~repro.matching.ScanResult` across all
        shards (finishing the stream if needed)."""
        from ..engine.parallel import merge_scan_results
        from ..matching import ScanResult

        if not self._finished:
            self.finish()
        if self._result is None:
            assert self._summaries is not None
            shard_results = []
            for index, client in enumerate(self._matcher._clients):
                events = client._events.get(self._wire, [])
                shard_results.append(
                    ScanResult(
                        bytes_scanned=self._summaries[index].bytes_scanned,
                        matches=match_dict(
                            Match(rule=rule, end=end, stream=self.stream,
                                  generation=gen)
                            for rule, end, gen in events
                        ),
                    )
                )
            self._result = merge_scan_results(shard_results)
        return self._result

    def summaries(self) -> list[StreamSummary]:
        """Per-shard ``CLOSED`` summaries (after :meth:`finish`)."""
        if self._summaries is None:
            raise RuntimeError("stream not finished yet")
        return list(self._summaries)

    # -- plumbing ----------------------------------------------------------
    def _collect(self) -> list[Match]:
        """Drain newly arrived per-shard events past each cursor, merge
        and re-tag them, and emit in deterministic order."""
        fresh: list[Match] = []
        for index, client in enumerate(self._matcher._clients):
            events = client._events.get(self._wire, [])
            seen = len(events)
            for rule, end, gen in events[self._cursors[index]:seen]:
                fresh.append(
                    Match(rule=rule, end=end, stream=self.stream, generation=gen)
                )
            self._cursors[index] = seen
        fresh.sort(key=lambda match: match.sort_key)
        if self.on_match is not None:
            for match in fresh:
                self.on_match(match)
        self._delivered.extend(fresh)
        return fresh


class RemoteShardedMatcher:
    """The :class:`~repro.session.Matcher` protocol over network shards.

    Attaches one :class:`~repro.serve.client.MatchClient` per shard
    address (``retries`` jittered-backoff attempts each, via
    :meth:`MatchClient.connect`); every session fans each chunk out to
    all shards in lockstep and merges the match streams.  Synchronous
    by design -- socket work runs on a private loop thread -- so it
    drops into any code written against the protocol
    (:class:`~repro.session.MultiStreamScanner`, the CLI, even a
    ``MatchServer`` acting as a scatter-gather proxy).

    Args:
        shards: shard endpoints -- ``(host, port)`` tuples or
            ``"host:port"`` strings, one per shard server.
        retries: extra connection attempts per shard (exponential
            backoff with full jitter), for attach and :meth:`reattach`.
        timeout: seconds any one fan-out operation may take before
            :class:`TimeoutError` (a liveness backstop; protocol errors
            surface much earlier).

    Use as a context manager (or call :meth:`close`) to release the
    connections::

        with RemoteShardedMatcher(["10.0.0.7:7401", "10.0.0.8:7401"]) as m:
            result = m.scan(b"payload...")
    """

    def __init__(
        self,
        shards: Sequence[Union[str, tuple[str, int]]],
        *,
        retries: int = 5,
        timeout: float = DEFAULT_OP_TIMEOUT,
    ):
        if not shards:
            raise ValueError("a cluster needs at least one shard endpoint")
        self._addresses: list[tuple[str, int]] = [
            parse_endpoint(entry) if isinstance(entry, str) else (entry[0], entry[1])
            for entry in shards
        ]
        #: Matcher-protocol engine name; backend choice is per shard
        #: *server* configuration, invisible on this side of the wire
        self.engine: str = "remote"
        self.retries = retries
        self.timeout = timeout
        self._loop = _LoopThread()
        self._open_sessions: dict[str, ClusterSession] = {}
        self._session_seq = 0
        self._closed = False
        self._clients: list[MatchClient] = []
        try:
            self._clients = self._loop.run(self._attach_all(), timeout=timeout)
        except BaseException:
            self._loop.stop()
            raise

    async def _attach_all(self) -> list[MatchClient]:
        clients: list[MatchClient] = []
        for index, (host, port) in enumerate(self._addresses):
            try:
                clients.append(
                    await MatchClient.connect(host, port, retries=self.retries)
                )
            except (ConnectionError, OSError) as exc:
                for client in clients:
                    await client.aclose()
                raise ConnectionError(
                    f"cannot attach shard {index} at {host}:{port}: {exc}"
                ) from exc
        return clients

    # -- introspection -----------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._addresses)

    @property
    def addresses(self) -> list[tuple[str, int]]:
        """Shard ``(host, port)`` endpoints, in shard order."""
        return list(self._addresses)

    @property
    def skipped(self) -> list[tuple[str, str]]:
        """Matcher-protocol compile skips: compilation happened on the
        shard servers, so the remote facade reports none."""
        return []

    def resources(self):
        """Matcher-protocol hardware footprint: the shards do not expose
        theirs over the wire, so every count is zero."""
        from ..matching import ResourceSummary

        return ResourceSummary(
            rules_compiled=0, rules_skipped=0, stes=0, counters=0,
            bit_vectors=0, cam_arrays=0, pes=0, area_mm2=0.0, waste_mm2=0.0,
        )

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """QUIT every shard connection (best effort) and stop the loop."""
        if self._closed:
            return
        self._closed = True

        async def hang_up() -> None:
            for client in self._clients:
                try:
                    await asyncio.wait_for(client.quit(), timeout=5.0)
                except Exception:  # noqa: BLE001 - already dead is fine
                    await client.aclose()

        try:
            self._loop.run(hang_up(), timeout=self.timeout)
        finally:
            self._loop.stop()

    def __enter__(self) -> "RemoteShardedMatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def reattach(self, shard: int, address: Optional[Union[str, tuple[str, int]]] = None,
                 retries: Optional[int] = None) -> None:
        """Reconnect one shard (after a failure or server restart).

        Reuses :meth:`MatchClient.connect`'s jittered-backoff retries.
        Sessions that were open when the shard died stay failed -- a
        reattached shard has no memory of their streams -- but sessions
        opened afterwards use the fresh connection.  ``address``
        replaces the shard's endpoint (a restarted server rarely keeps
        its ephemeral port).
        """
        if address is not None:
            self._addresses[shard] = (
                parse_endpoint(address) if isinstance(address, str) else address
            )
        host, port = self._addresses[shard]
        attempts = self.retries if retries is None else retries

        async def swap() -> None:
            old = self._clients[shard]
            await old.aclose()
            self._clients[shard] = await MatchClient.connect(
                host, port, retries=attempts
            )

        self._loop.run(swap(), timeout=self.timeout)

    # -- the Matcher protocol ----------------------------------------------
    def session(
        self,
        engine: Optional[str] = None,
        *,
        stream: Optional[str] = None,
        on_match: Optional[MatchSink] = None,
    ) -> ClusterSession:
        """Open a :class:`ClusterSession` spanning every shard.

        ``engine`` is accepted for protocol compatibility and ignored:
        the execution backend is each shard *server*'s configuration.
        """
        del engine
        return ClusterSession(self, stream=stream, on_match=on_match)

    def scan(self, data: Chunk, engine: Optional[str] = None):
        with self.session(engine=engine) as session:
            session.feed(data)
        return session.result()

    def scan_stream(self, chunks: Iterable[Chunk], engine: Optional[str] = None):
        """Feed one stream of chunks through every shard in lockstep."""
        with self.session(engine=engine) as session:
            for chunk in chunks:
                session.feed(chunk)
        return session.result()

    def scan_many(
        self,
        streams: Sequence[Chunk],
        processes: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> list:
        """Scan a batch of independent streams; one merged result each
        (``processes`` is accepted for protocol compatibility -- the
        parallelism here is the shard servers, not local workers)."""
        del processes
        return [self.scan(stream, engine=engine) for stream in streams]

    def matched_rules(self, data: Chunk) -> set[str]:
        """Convenience: just the ids of rules that matched."""
        return self.scan(data).matched_rules()

    # -- cluster-wide operations -------------------------------------------
    def ping(self) -> None:
        """Liveness barrier across every shard."""
        self._fanout(lambda client: client.ping(), op="PING")

    def shard_stats(self) -> list[ServerStats]:
        """Per-shard ``STATS`` snapshots, in shard order."""
        payloads = self._fanout(lambda client: client.stats(), op="STATS")
        return [_stats_from_payload(payload) for payload in payloads]

    def stats(self) -> ServerStats:
        """One cluster-wide snapshot: per-shard ``STATS`` folded with
        :func:`~repro.serve.stats.merge_server_stats` (``workers``
        counts the shards)."""
        return merge_server_stats(self.shard_stats())

    # -- plumbing ----------------------------------------------------------
    def _claim_wire_tag(self, stream: Optional[str]) -> str:
        """A per-session wire tag, unique across this matcher's life.

        The user's tag is kept visible (prefixed) for server-side logs
        and debugging, but uniqueness comes from the sequence number:
        two concurrent sessions on the same logical tag must not
        collide in the shards' stream tables.
        """
        self._session_seq += 1
        base = stream if stream is not None else "anon"
        tag = f"{base}~{self._session_seq}"
        if len(tag) > 128:
            tag = f"{base[:100]}~{self._session_seq}"
        return validate_stream_tag(tag)

    def _fanout(self, op_fn, *, op: str,
                session: Optional[ClusterSession] = None) -> list:
        """Run one client operation on every shard concurrently.

        Any shard failure -- connection loss, server ``ERR``, timeout
        -- is wrapped into :class:`ClusterPartialResultError` carrying
        the shard identity, the streams open at failure time, and every
        match already delivered to their sinks.
        """
        if self._closed:
            raise ConnectionError("cluster already closed")

        async def gathered():
            return await asyncio.gather(
                *(op_fn(client) for client in self._clients),
                return_exceptions=True,
            )

        outcomes = self._loop.run(gathered(), timeout=self.timeout)
        failures = [
            (index, self._addresses[index], outcome)
            for index, outcome in enumerate(outcomes)
            if isinstance(outcome, BaseException)
        ]
        if failures:
            raise self._partial_error(op, failures, session)
        return list(outcomes)

    def _partial_error(
        self,
        op: str,
        failures: list[tuple[int, tuple[str, int], BaseException]],
        session: Optional[ClusterSession],
    ) -> ClusterPartialResultError:
        affected: dict[str, ClusterSession] = dict(self._open_sessions)
        if session is not None:
            affected.setdefault(session._wire, session)
        names: list[str] = []
        delivered: dict[str, list[Match]] = {}
        for open_session in affected.values():
            name = (
                open_session.stream
                if open_session.stream is not None
                else open_session._wire
            )
            names.append(name)
            delivered[name] = open_session.delivered
        shard, address, cause = failures[0]
        return ClusterPartialResultError(
            op=op,
            shard=shard,
            address=address,
            streams=tuple(names),
            delivered=delivered,
            cause=cause,
            failures=failures,
        )


@dataclass(frozen=True)
class ClusterSpec:
    """A picklable recipe for one cluster deployment.

    Two modes, mirroring the ``repro cluster`` CLI:

    * **attach** -- ``addresses`` names running shard servers
      (production: each shard is its own ``repro serve`` / fleet);
    * **spawn** -- ``rules`` + ``shards`` describe a
      :class:`LocalShardCluster` to start locally (dev/CI).

    >>> spec = ClusterSpec.attach(["10.0.0.7:7401", "10.0.0.8:7401"])
    >>> spec.mode, spec.addresses
    ('attach', (('10.0.0.7', 7401), ('10.0.0.8', 7401)))
    >>> ClusterSpec.spawn([("hit", "abc")], shards=3).mode
    'spawn'
    """

    #: shard endpoints (attach mode)
    addresses: tuple[tuple[str, int], ...] = ()
    #: normalized ``(id, pattern)`` rules to shard locally (spawn mode)
    rules: tuple[tuple[str, str], ...] = ()
    #: local shard-server count (spawn mode)
    shards: int = 0
    engine: Optional[str] = None
    unfold_threshold: float = 0
    opt_level: int = 0
    cache_dir: Optional[str] = None
    host: str = "127.0.0.1"
    #: fixed ports for spawned shards (empty = ephemeral)
    ports: tuple[int, ...] = ()

    @property
    def mode(self) -> str:
        return "attach" if self.addresses else "spawn"

    @classmethod
    def attach(cls, endpoints: Iterable[Union[str, tuple[str, int]]]) -> "ClusterSpec":
        """Spec for an existing fleet of shard servers."""
        parsed = tuple(
            parse_endpoint(entry) if isinstance(entry, str) else (entry[0], entry[1])
            for entry in endpoints
        )
        if not parsed:
            raise ValueError("attach mode needs at least one host:port endpoint")
        return cls(addresses=parsed)

    @classmethod
    def spawn(
        cls,
        rules: Union[Iterable[str], Sequence[tuple[str, str]]],
        shards: int = 3,
        **options,
    ) -> "ClusterSpec":
        """Spec for a locally spawned :class:`LocalShardCluster`."""
        from ..compiler.pipeline import normalize_rules

        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        return cls(rules=tuple(normalize_rules(rules)), shards=shards, **options)

    def start(self, processes: bool = False, **overrides) -> "LocalShardCluster":
        """Spawn-mode: build and start the local shard cluster."""
        if self.mode != "spawn":
            raise ValueError("start() is for spawn-mode specs; use connect()")
        cluster = LocalShardCluster(
            list(self.rules),
            shards=self.shards,
            host=self.host,
            ports=self.ports,
            engine=self.engine,
            unfold_threshold=self.unfold_threshold,
            opt_level=self.opt_level,
            cache_dir=self.cache_dir,
            processes=processes,
            **overrides,
        )
        cluster.start()
        return cluster

    def connect(self, retries: int = 5,
                timeout: float = DEFAULT_OP_TIMEOUT) -> RemoteShardedMatcher:
        """Attach-mode: connect a :class:`RemoteShardedMatcher`."""
        if self.mode != "attach":
            raise ValueError("connect() is for attach-mode specs; use start()")
        return RemoteShardedMatcher(
            self.addresses, retries=retries, timeout=timeout
        )


# -- local shard-server harness --------------------------------------------
def _shard_worker_main(spec, host, port, queue_depth, threads,
                       drain_timeout, conn):
    """Process entry point: serve one ruleset shard until told to stop.

    Module-level (not a closure) so it works under the ``spawn`` start
    method.  SIGINT is ignored (terminal Ctrl-C hits the whole group;
    the parent coordinates shutdown); SIGTERM drains gracefully.
    """
    import signal

    if hasattr(signal, "SIGINT"):
        try:
            signal.signal(signal.SIGINT, signal.SIG_IGN)
        except (OSError, ValueError):  # pragma: no cover - exotic env
            pass
    try:
        asyncio.run(
            _shard_worker_async(
                spec, host, port, queue_depth, threads, drain_timeout, conn
            )
        )
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        try:
            conn.send({"event": "error", "message": f"{type(exc).__name__}: {exc}"})
        except (OSError, BrokenPipeError, ValueError):
            pass
        raise


async def _shard_worker_async(spec, host, port, queue_depth, threads,
                              drain_timeout, conn):
    import signal

    from .server import MatchServer

    loop = asyncio.get_running_loop()
    matcher = spec.build()
    server = MatchServer(
        matcher,
        host=host,
        port=port,
        engine=spec.engine,
        queue_depth=queue_depth,
        workers=threads,
        drain_timeout=drain_timeout,
    )
    await server.start()

    mailbox: asyncio.Queue = asyncio.Queue()

    def on_readable() -> None:
        try:
            while conn.poll():
                mailbox.put_nowait(conn.recv())
        except (EOFError, OSError):
            # parent hung up: immediate stop
            mailbox.put_nowait({"cmd": "stop", "drain": False})

    loop.add_reader(conn.fileno(), on_readable)
    if hasattr(signal, "SIGTERM"):
        try:
            loop.add_signal_handler(
                signal.SIGTERM,
                lambda: mailbox.put_nowait({"cmd": "stop", "drain": True}),
            )
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    conn.send({"event": "ready", "port": server.port})
    message = await mailbox.get()
    drain = bool(message.get("drain", True))
    loop.remove_reader(conn.fileno())
    await server.stop(drain=drain)
    try:
        conn.send({"event": "stopped", "stats": server.stats().as_dict()})
    except (OSError, BrokenPipeError, ValueError):  # pragma: no cover
        pass


class LocalShardCluster:
    """Spawn M local shard ``MatchServer``\\ s from one ruleset (dev/CI).

    The shard policy is *identical* to
    :class:`~repro.engine.parallel.ShardedMatcher`:
    :func:`~repro.compiler.pipeline.dedupe_rules` first (round-robin
    would otherwise scatter duplicate ids where no single compile sees
    the collision), then :func:`~repro.engine.parallel.shard_rules`
    round-robin -- so a remote cluster reports the same rule ids, the
    same matches, as the in-process sharded matcher.

    ``processes=False`` (default) runs every shard server on one
    private event loop in this process -- fastest startup, perfect for
    tests.  ``processes=True`` forks one OS process per shard (real
    CPU parallelism, the production-shaped dev topology); when
    multiprocessing is unavailable it degrades to in-process serving
    with identical semantics (:attr:`mode` says which you got).

    Usage::

        cluster = LocalShardCluster(rules, shards=3)
        addresses = cluster.start()
        matcher = RemoteShardedMatcher(addresses)
        ...
        matcher.close()
        final = cluster.stop()          # merged ServerStats
    """

    def __init__(
        self,
        rules: Union[Iterable[str], Sequence[tuple[str, str]]],
        shards: int = 3,
        *,
        host: str = "127.0.0.1",
        ports: Sequence[int] = (),
        engine: Optional[str] = None,
        unfold_threshold: float = 0,
        opt_level: int = 0,
        cache_dir: Optional[str] = None,
        queue_depth: int = 32,
        threads: Optional[int] = None,
        drain_timeout: float = 10.0,
        processes: bool = False,
    ):
        from ..compiler.pipeline import dedupe_rules
        from ..engine.parallel import shard_rules
        from .fleet import MatcherSpec

        if ports and len(ports) != shards:
            raise ValueError(
                f"got {len(ports)} port(s) for {shards} shard(s)"
            )
        unique, self.duplicate_skipped = dedupe_rules(rules)
        self._buckets = shard_rules(unique, shards)
        self._specs = [
            MatcherSpec(
                rules=tuple(bucket),
                engine=engine,
                unfold_threshold=unfold_threshold,
                opt_level=opt_level,
                cache_dir=cache_dir,
            )
            for bucket in self._buckets
        ]
        self.host = host
        self.ports = tuple(ports) if ports else tuple(0 for _ in range(shards))
        self.engine = engine
        self.queue_depth = queue_depth
        self.threads = threads
        self.drain_timeout = drain_timeout
        self._want_processes = processes
        #: "in-process" or "processes" once started
        self.mode: Optional[str] = None
        self._addresses: list[tuple[str, int]] = []
        self._loop: Optional[_LoopThread] = None
        self._servers: list = []
        self._matchers: list = []
        self._procs: list = []
        self._conns: list = []
        self._alive: list[bool] = []
        self._stopped = False
        self._final_stats: Optional[ServerStats] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> list[tuple[str, int]]:
        """Start every shard server; return their addresses."""
        if self.mode is not None:
            raise RuntimeError("cluster already started")
        if self._want_processes and self._start_processes():
            self.mode = "processes"
        else:
            self._start_in_process()
            self.mode = "in-process"
        self._alive = [True] * self.shard_count
        return self.addresses

    def _start_in_process(self) -> None:
        from .server import MatchServer

        self._loop = _LoopThread("repro-shard-servers")
        try:
            self._matchers = [spec.build() for spec in self._specs]
            for matcher, port in zip(self._matchers, self.ports):
                server = MatchServer(
                    matcher,
                    host=self.host,
                    port=port,
                    engine=self.engine,
                    queue_depth=self.queue_depth,
                    workers=self.threads,
                    drain_timeout=self.drain_timeout,
                )
                self._loop.run(server.start(), timeout=30.0)
                self._servers.append(server)
        except BaseException:
            for server in self._servers:
                try:
                    self._loop.run(server.stop(drain=False), timeout=10.0)
                except Exception:  # noqa: BLE001 - already tearing down
                    pass
            self._loop.stop()
            raise
        self._addresses = [(server.host, server.port) for server in self._servers]

    def _start_processes(self) -> bool:
        """Fork one server process per shard; False = cannot (degrade)."""
        from ..engine.parallel import mp_context

        context = mp_context()
        if context is None:
            return False
        procs, conns, addresses = [], [], []
        try:
            for spec, port in zip(self._specs, self.ports):
                parent_conn, child_conn = context.Pipe()
                proc = context.Process(
                    target=_shard_worker_main,
                    args=(spec, self.host, port, self.queue_depth,
                          self.threads, self.drain_timeout, child_conn),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                procs.append(proc)
                conns.append(parent_conn)
                if not parent_conn.poll(120.0):
                    raise RuntimeError("shard worker did not report ready")
                event = parent_conn.recv()
                if event.get("event") != "ready":
                    raise RuntimeError(
                        f"shard worker failed: {event.get('message', event)}"
                    )
                addresses.append((self.host, int(event["port"])))
        except Exception:
            for proc in procs:
                if proc.is_alive():
                    proc.kill()
                proc.join(timeout=5.0)
            return False
        self._procs, self._conns, self._addresses = procs, conns, addresses
        return True

    def stop(self, drain: bool = True) -> ServerStats:
        """Stop every live shard; return the merged final stats
        (:func:`~repro.serve.stats.merge_server_stats` over whatever
        shards were still reachable -- a neutral snapshot if none)."""
        if self._stopped:
            assert self._final_stats is not None
            return self._final_stats
        self._stopped = True
        snapshots: list[ServerStats] = []
        if self.mode == "processes":
            for index, (proc, conn) in enumerate(zip(self._procs, self._conns)):
                if not self._alive[index]:
                    continue
                try:
                    conn.send({"cmd": "stop", "drain": drain})
                    if conn.poll(self.drain_timeout + 10.0):
                        event = conn.recv()
                        if event.get("event") == "stopped":
                            snapshots.append(
                                _stats_from_payload(event["stats"])
                            )
                except (OSError, BrokenPipeError, EOFError, ValueError):
                    pass
                proc.join(timeout=self.drain_timeout + 10.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.kill()
                    proc.join(timeout=5.0)
        elif self.mode == "in-process":
            assert self._loop is not None
            for index, server in enumerate(self._servers):
                if self._alive[index]:
                    try:
                        self._loop.run(
                            server.stop(drain=drain),
                            timeout=self.drain_timeout + 10.0,
                        )
                    except Exception:  # noqa: BLE001 - keep stopping others
                        pass
                snapshots.append(server.stats())
            self._loop.stop()
        self._final_stats = merge_server_stats(snapshots)
        return self._final_stats

    def __enter__(self) -> "LocalShardCluster":
        if self.mode is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- introspection / test hooks ----------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._specs)

    @property
    def addresses(self) -> list[tuple[str, int]]:
        """Shard server ``(host, port)`` addresses (after :meth:`start`)."""
        return list(self._addresses)

    @property
    def buckets(self) -> list[list[tuple[str, str]]]:
        """The round-robin rule buckets, in shard order."""
        return [list(bucket) for bucket in self._buckets]

    @property
    def rule_count(self) -> int:
        """Deduplicated rules served across all shards."""
        return sum(len(bucket) for bucket in self._buckets)

    @property
    def compile_info(self):
        """Merged compile provenance across shard matchers
        (:func:`~repro.matching.merge_compile_infos`; ``None`` in
        processes mode, where compilation happens in the children)."""
        from ..matching import merge_compile_infos

        if self.mode != "in-process" or not self._matchers:
            return None
        return merge_compile_infos(
            [matcher.compile_info for matcher in self._matchers]
        )

    def kill_shard(self, shard: int) -> None:
        """Hard-kill one shard server (no drain) -- the fault-injection
        hook the cluster tests use to simulate a shard dying."""
        if not self._alive[shard]:
            return
        self._alive[shard] = False
        if self.mode == "processes":
            proc = self._procs[shard]
            proc.kill()
            proc.join(timeout=10.0)
        else:
            assert self._loop is not None
            self._loop.run(
                self._servers[shard].stop(drain=False), timeout=10.0
            )

    def restart_shard(self, shard: int) -> tuple[str, int]:
        """Start a fresh server for one (killed) shard's bucket; returns
        its new address (ephemeral port: the old one may still linger in
        TIME_WAIT).  Pairs with
        :meth:`RemoteShardedMatcher.reattach`."""
        from .server import MatchServer

        if self._alive[shard]:
            raise RuntimeError(f"shard {shard} is still running")
        if self.mode == "processes":
            from ..engine.parallel import mp_context

            context = mp_context()
            assert context is not None  # processes mode implies a context
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_shard_worker_main,
                args=(self._specs[shard], self.host, 0, self.queue_depth,
                      self.threads, self.drain_timeout, child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            if not parent_conn.poll(120.0):
                proc.kill()
                raise RuntimeError("restarted shard did not report ready")
            event = parent_conn.recv()
            if event.get("event") != "ready":
                raise RuntimeError(
                    f"restarted shard failed: {event.get('message', event)}"
                )
            self._procs[shard] = proc
            self._conns[shard] = parent_conn
            address = (self.host, int(event["port"]))
        else:
            assert self._loop is not None
            server = MatchServer(
                self._matchers[shard],
                host=self.host,
                port=0,
                engine=self.engine,
                queue_depth=self.queue_depth,
                workers=self.threads,
                drain_timeout=self.drain_timeout,
            )
            self._loop.run(server.start(), timeout=30.0)
            self._servers[shard] = server
            address = (server.host, server.port)
        self._alive[shard] = True
        self._addresses[shard] = address
        return address
