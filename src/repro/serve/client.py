"""Client side of the match-serving protocol.

:class:`MatchClient` is an asyncio client for
:class:`~repro.serve.server.MatchServer`: it demultiplexes the
server's reply stream -- asynchronous ``MATCH`` events interleaved
with FIFO command acknowledgements -- into per-stream match lists and
awaitable command results.  It exists for four consumers: the
``python -m repro connect`` smoke-test CLI, the end-to-end test
suite, the cluster scatter-gather layer (:mod:`repro.serve.cluster`
holds one ``MatchClient`` per remote ruleset shard and uses
``PING``/``PONG`` as its lockstep barrier), and as the reference
implementation of the framing rules in ``docs/SERVING.md`` (anything
that can speak it can be a client; the grammar is six verbs).

The synchronous convenience :func:`scan_tagged_remote` mirrors
:meth:`repro.session.MultiStreamScanner.scan_tagged` over the wire:
feed interleaved ``(tag, chunk)`` pairs, get per-stream matches back
-- the serving-vs-offline equality the e2e tests pin is stated in
terms of these two functions.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from ..engine.scanner import Chunk, coerce_chunk
from ..session import Match
from .protocol import (
    MAX_FEED,
    ProtocolError,
    unescape_token,
    validate_stream_tag,
)

__all__ = [
    "MatchClient",
    "ServerError",
    "StreamSummary",
    "backoff_delays",
    "scan_tagged_remote",
]


@dataclass(frozen=True)
class StreamSummary:
    """The server's ``CLOSED`` acknowledgement for one stream."""

    stream: str
    bytes_scanned: int
    matches_emitted: int
    #: ruleset generation the stream was pinned to (0 = initial)
    generation: int = 0


def backoff_delays(
    attempts: int,
    base: float = 0.05,
    cap: float = 2.0,
    jitter=None,
) -> Iterator[float]:
    """Exponential-backoff sleep schedule with full jitter.

    Yields one delay per retry *attempt*: each drawn uniformly from
    ``[0, min(cap, base * 2**i)]`` ("full jitter", the AWS
    decorrelation scheme) -- so a fleet of clients reconnecting after
    a mass restart spreads out instead of thundering back in lockstep.
    ``jitter`` is the uniform sampler (injectable for tests; defaults
    to :func:`random.uniform`).

    >>> delays = list(backoff_delays(4, base=0.1, cap=0.5,
    ...                              jitter=lambda lo, hi: hi))
    >>> [round(d, 2) for d in delays]
    [0.1, 0.2, 0.4, 0.5]
    """
    if jitter is None:
        jitter = random.uniform
    for attempt in range(attempts):
        yield jitter(0.0, min(cap, base * (2.0 ** attempt)))


class ServerError(RuntimeError):
    """The server answered ``ERR`` to a command."""


def _set_nodelay(writer: asyncio.StreamWriter) -> None:
    """Disable Nagle: the protocol pipelines small control lines, and
    coalescing them behind delayed ACKs only adds latency."""
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (OSError, AttributeError):  # pragma: no cover - exotic AF
            pass


@dataclass
class _Pending:
    """One in-flight acknowledged command (FIFO with the server)."""

    verb: str  # the command verb sent (OPEN/CLOSE/STATS/PING/QUIT)
    ack: str  # the reply verb that resolves it (OK/CLOSED/STATS/...)
    future: Optional[asyncio.Future] = None


class MatchClient:
    """One connection to a :class:`~repro.serve.server.MatchServer`.

    Matches arrive asynchronously and are collected per stream tag in
    :attr:`matches` (also observable live via the ``on_match``
    callback).  Commands that carry acknowledgements (``open``,
    ``close_stream``, ``stats``, ``ping``, ``quit``) return once the
    server answers; :meth:`feed` is pipelined and returns as soon as
    the bytes are written (backpressure via the transport's drain).

    Use :meth:`connect` to construct::

        client = await MatchClient.connect("127.0.0.1", port)
        await client.open("s1")
        await client.feed("s1", b"...chunk...")
        summary = await client.close_stream("s1")
        client.matches["s1"]       # [Match, ...] in emission order
        await client.quit()
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
                 on_match=None):
        self._reader = reader
        self._writer = writer
        self.on_match = on_match
        #: parsed ``(rule, end, generation)`` events per stream, in
        #: emission order; Match objects are materialized lazily by
        #: :attr:`matches`
        self._events: dict[str, list[tuple[str, int, int]]] = {}
        self._built: dict[str, list[Match]] = {}
        #: ``ERR`` lines that acknowledge nothing (rejected pipelined
        #: FEEDs, server-side protocol complaints), in arrival order
        self.errors: list[str] = []
        self._pending: list[_Pending] = []
        self._closed = False
        self._error: Optional[Exception] = None
        self._demux_task = asyncio.ensure_future(self._demux())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        on_match=None,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> "MatchClient":
        """Open a TCP connection and start the reply demultiplexer.

        ``retries`` extra attempts are made on ``ConnectionError`` /
        ``OSError``, sleeping per :func:`backoff_delays` between them
        (exponential with full jitter -- a restarting fleet is not
        greeted by a thundering herd of synchronized reconnects); the
        last failure propagates.
        """
        delays = backoff_delays(retries, base=backoff_base, cap=backoff_cap)
        while True:
            try:
                reader, writer = await asyncio.open_connection(host, port)
                break
            except (ConnectionError, OSError):
                delay = next(delays, None)
                if delay is None:
                    raise
                await asyncio.sleep(delay)
        _set_nodelay(writer)
        return cls(reader, writer, on_match=on_match)

    @property
    def matches(self) -> dict[str, list[Match]]:
        """Per-stream :class:`~repro.session.Match` lists, in server
        emission order (materialized lazily from the parsed wire
        events; reading mid-stream is fine)."""
        for stream, events in self._events.items():
            built = self._built.setdefault(stream, [])
            if len(built) < len(events):
                built.extend(
                    Match(rule=rule, end=end, stream=stream, generation=gen)
                    for rule, end, gen in events[len(built):]
                )
        return self._built

    # -- commands ----------------------------------------------------------
    async def open(self, stream: str) -> None:
        """Open a tagged stream (``OPEN``; awaits the ``OK``)."""
        validate_stream_tag(stream)
        self._events.setdefault(stream, [])
        await self._command(f"OPEN {stream}", ack="OK")

    async def feed(self, stream: str, chunk: Chunk) -> None:
        """Stream one chunk (``FEED``; pipelined, no acknowledgement).

        Chunks larger than the protocol's frame cap are split
        transparently; an empty chunk is a no-op frame.
        """
        payload = bytes(coerce_chunk(chunk))
        offset = 0
        while True:
            part = payload[offset : offset + MAX_FEED]
            self._check_alive()
            self._writer.write(
                f"FEED {stream} {len(part)}\n".encode("latin-1") + part
            )
            await self._writer.drain()
            offset += len(part)
            if offset >= len(payload):
                return

    async def close_stream(self, stream: str) -> StreamSummary:
        """End a stream (``CLOSE``); returns the server's summary after
        every match for the stream -- the ``$``-gated ones included --
        has been delivered."""
        line = await self._command(f"CLOSE {stream}", ack="CLOSED")
        fields = line.split(" ")
        return StreamSummary(
            stream=fields[1],
            bytes_scanned=int(fields[2]),
            matches_emitted=int(fields[3]),
            generation=int(fields[4]) if len(fields) > 4 else 0,
        )

    async def stats(self) -> dict:
        """The server's :class:`~repro.serve.stats.ServerStats` snapshot
        as a plain dict (``STATS``)."""
        line = await self._command("STATS", ack="STATS")
        return json.loads(line.split(" ", 1)[1])

    async def ping(self) -> None:
        """Liveness round-trip (``PING``/``PONG``)."""
        await self._command("PING", ack="PONG")

    async def quit(self) -> None:
        """Drain and hang up (``QUIT``; awaits the ``BYE``)."""
        try:
            await self._command("QUIT", ack="BYE")
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Tear the connection down without the QUIT handshake.

        Any still-pending command futures are failed with
        :class:`ConnectionError` -- a caller awaiting one must never
        hang on a connection that no longer exists (the protocol-fuzz
        suite pins this)."""
        if self._closed:
            return
        self._closed = True
        self._demux_task.cancel()
        await asyncio.gather(self._demux_task, return_exceptions=True)
        if self._pending:
            abandoned = ConnectionError("client closed with commands in flight")
            for pending in self._pending:
                if not pending.future.done():
                    pending.future.set_exception(abandoned)
                    # a future nobody ever awaits (write raised before
                    # the await) would otherwise log "exception was
                    # never retrieved"; exception() marks it retrieved
                    # without consuming it for real awaiters
                    pending.future.exception()
            self._pending.clear()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- plumbing ----------------------------------------------------------
    def _check_alive(self) -> None:
        if self._error is not None:
            raise self._error
        if self._closed:
            raise ConnectionError("client already closed")

    async def _command(self, line: str, ack: str) -> str:
        self._check_alive()
        pending = _Pending(line.split(" ", 1)[0], ack)
        pending.future = asyncio.get_running_loop().create_future()
        self._pending.append(pending)
        self._writer.write(line.encode("latin-1") + b"\n")
        await self._writer.drain()
        return await pending.future

    async def _demux(self) -> None:
        """Route server lines: MATCH events to the per-stream lists,
        everything else to the oldest pending command future.

        Reads the socket in bulk and splits lines manually: a busy
        stream delivers thousands of MATCH lines per read, and one
        ``bytes.split`` over the gulp is several times cheaper than a
        ``readline`` round-trip per line.
        """
        buffer = b""
        try:
            while True:
                gulp = await self._reader.read(65536)
                if not gulp:
                    raise ConnectionError("server closed the connection")
                buffer += gulp
                *lines, buffer = buffer.split(b"\n")
                for raw in lines:
                    self._dispatch(raw)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced to every caller
            self._error = exc
            for pending in self._pending:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            self._pending.clear()

    def _dispatch(self, raw: bytes) -> None:
        if raw.startswith(b"MATCH "):
            # hot path: split once, defer Match construction (several
            # thousand of these per busy stream compete with the
            # server's own scanning for the GIL)
            try:
                _, stream, end, gen, rule = (
                    raw.decode("latin-1").rstrip("\r").split(" ", 4)
                )
                event = (unescape_token(rule), int(end), int(gen))
            except ValueError:
                raise ProtocolError(f"malformed MATCH line: {raw[:80]!r}") from None
            self._events.setdefault(stream, []).append(event)
            if self.on_match is not None:
                self.on_match(
                    Match(
                        rule=event[0],
                        end=event[1],
                        stream=stream,
                        generation=event[2],
                    )
                )
            return
        line = raw.decode("latin-1").rstrip("\r")
        if not line:
            return
        verb = line.split(" ", 1)[0]
        if verb == "ERR":
            self._route_error(line[4:])
        elif verb == "BYE" and not self._expecting("BYE"):
            # unsolicited BYE: server is draining/shutting down
            raise ConnectionError("server shut down")
        else:
            self._resolve(line)

    def _expecting(self, ack: str) -> bool:
        return bool(self._pending) and self._pending[0].ack == ack

    def _route_error(self, message: str) -> None:
        """Server ``ERR`` messages lead with the offending verb; those
        for acknowledged commands fail that command's future, the rest
        (pipelined FEED rejections, framing complaints) land in
        :attr:`errors`."""
        offender = message.split(" ", 1)[0].rstrip(":")
        if self._pending and self._pending[0].verb == offender:
            self._resolve(ServerError(message))
        else:
            self.errors.append(message)

    def _resolve(self, outcome) -> None:
        if not self._pending:
            raise ProtocolError(f"unsolicited server line: {outcome!r}")
        pending = self._pending.pop(0)
        if pending.future.done():
            return
        if isinstance(outcome, Exception):
            pending.future.set_exception(outcome)
        else:
            pending.future.set_result(outcome)


async def _scan_tagged(
    host: str,
    port: int,
    pairs: Sequence[tuple[str, bytes]],
    retries: int = 0,
) -> tuple[dict[str, list[Match]], dict[str, StreamSummary], dict]:
    client = await MatchClient.connect(host, port, retries=retries)
    try:
        seen: list[str] = []
        for tag, chunk in pairs:
            if tag not in client.matches:
                seen.append(tag)
                await client.open(tag)
            await client.feed(tag, chunk)
        summaries = {tag: await client.close_stream(tag) for tag in seen}
        stats = await client.stats()
        await client.quit()
        return client.matches, summaries, stats
    finally:
        await client.aclose()


def scan_tagged_remote(
    host: str,
    port: int,
    pairs: Iterable[tuple[str, Chunk]],
    retries: int = 0,
) -> tuple[dict[str, list[Match]], dict[str, StreamSummary], dict]:
    """One-shot remote mirror of
    :meth:`~repro.session.MultiStreamScanner.scan_tagged`.

    Connects, opens each tag on first sight, feeds the interleaved
    ``(tag, chunk)`` pairs in order, closes every stream, and returns
    ``(matches, summaries, server_stats)`` -- ``matches`` keyed by tag
    in emission order, exactly what the offline scanner's sinks would
    have seen.  Runs its own event loop; call it from synchronous code
    only (the CLI and tests do).
    """
    material = [(tag, bytes(coerce_chunk(chunk))) for tag, chunk in pairs]
    return asyncio.run(_scan_tagged(host, port, material, retries=retries))
