"""Wire protocol for the match server: framing grammar and codec.

One TCP connection carries many logical *streams* (the tags of
:class:`~repro.session.MultiStreamScanner`), multiplexed over a
text-line control channel with length-prefixed binary payloads -- the
same framing shape as Redis inline commands or HTTP chunked bodies,
chosen so both sides can be written against ``asyncio`` stream
readers with no lookahead.

Grammar (every line ends in ``\\n``; tokens are latin-1, separated by
single spaces)::

    client -> server
      OPEN <stream>                open a tagged session
      FEED <stream> <nbytes>       followed by exactly <nbytes> raw
                                   payload bytes (NOT newline-framed)
      CLOSE <stream>               end-of-data for the stream
      STATS                        request a ServerStats snapshot
      PING                         liveness probe
      QUIT                         drain pending work, then hang up

    server -> client
      OK OPEN <stream> <gen>       session opened, pinned to ruleset
                                   generation <gen>
      MATCH <stream> <end> <gen> <rule>
                                   one match event (rule is the rest
                                   of the line, backslash-escaped;
                                   <gen> is the ruleset generation the
                                   match was scanned against)
      CLOSED <stream> <bytes> <n> <gen>
                                   stream ended: bytes scanned, total
                                   matches emitted, ruleset generation
      STATS <json>                 one-line JSON snapshot
      PONG                         liveness reply
      BYE                          connection closing (QUIT/shutdown)
      ERR <message>                command rejected (see below)

The **ruleset generation** is a monotonically increasing integer the
server bumps on every hot ruleset reload (:meth:`MatchServer.reload`,
or the fleet's SIGHUP/``RELOAD`` path).  A stream is *pinned* to the
generation current at its ``OPEN``: every one of its matches carries
that generation, in-flight streams drain on the tables they started
on, and only streams opened after a swap scan with the new ruleset --
which is how clients observe a cutover without ever seeing a mixed
stream.  Servers that never reload stamp generation ``0`` everywhere.

``FEED`` is **pipelined**: it carries no acknowledgement, so a client
can stream chunks at full speed; backpressure is applied by the
server simply not reading (bounded per-connection work queue -> TCP
flow control), never by dropping bytes.  ``OPEN``/``CLOSE``/``STATS``/
``PING``/``QUIT`` are answered in command order, so a client can match
replies to requests FIFO.  That FIFO makes ``PING`` double as a
**barrier**: a ``PONG`` proves every frame sent earlier on the
connection has been fully processed and its ``MATCH`` lines written --
the property the cluster scatter-gather layer
(:mod:`repro.serve.cluster`) uses to keep M ruleset shards in
lockstep per chunk.

Stream tags are 1..128 printable latin-1 characters with no
whitespace (:func:`validate_stream_tag`); rule ids are arbitrary and
therefore backslash-escaped on the wire (:func:`escape_token` /
:func:`unescape_token`).

Protocol violations (unknown verb, malformed counts, oversized
frames) raise :class:`ProtocolError`; servers answer ``ERR`` and drop
the connection, because after a framing error the byte stream can no
longer be trusted.  Application-level rejections (feeding an unknown
stream, reopening a live tag) are also ``ERR`` but keep the
connection: the framing is still sound.

Doctest-able codec round-trip:

    >>> from repro.serve.protocol import format_match, parse_match
    >>> from repro.session import Match
    >>> line = format_match(Match(rule="evil exe", end=17, stream="s1"))
    >>> line
    b'MATCH s1 17 0 evil exe\\n'
    >>> parse_match(line)
    Match(rule='evil exe', end=17, stream='s1', code=None, generation=0)
    >>> format_match(Match(rule="evil exe", end=17, stream="s1"), generation=3)
    b'MATCH s1 17 3 evil exe\\n'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..session import Match

__all__ = [
    "MAX_LINE",
    "MAX_FEED",
    "ProtocolError",
    "Command",
    "validate_stream_tag",
    "parse_command",
    "format_command",
    "escape_token",
    "unescape_token",
    "format_match",
    "parse_match",
]

#: hard cap on one control line (a line longer than this is a framing
#: error, not data -- payload bytes travel length-prefixed, never inline)
MAX_LINE = 4096
#: hard cap on one FEED payload; callers chunk larger streams (the cap
#: bounds per-connection buffering, it does not bound stream length)
MAX_FEED = 8 * 1024 * 1024

ENCODING = "latin-1"

#: client-side verbs, in the grammar's order
CLIENT_VERBS = ("OPEN", "FEED", "CLOSE", "STATS", "PING", "QUIT")


class ProtocolError(ValueError):
    """The byte stream violated the framing grammar."""


@dataclass(frozen=True)
class Command:
    """One parsed client command.

    ``nbytes`` is only meaningful for ``FEED`` (the length of the raw
    payload that follows the line); ``stream`` is ``None`` for the
    stream-less verbs (``STATS``/``PING``/``QUIT``).

    >>> parse_command(b"FEED s1 5")
    Command(verb='FEED', stream='s1', nbytes=5)
    """

    verb: str
    stream: Optional[str] = None
    nbytes: int = 0


def validate_stream_tag(tag: str) -> str:
    """Return ``tag`` if it is a legal wire tag, else raise.

    Legal: 1..128 characters, latin-1, no whitespace or control
    characters (tags appear unescaped between spaces on control
    lines).

    >>> validate_stream_tag("client-7")
    'client-7'
    >>> validate_stream_tag("a b")
    Traceback (most recent call last):
        ...
    repro.serve.protocol.ProtocolError: illegal stream tag 'a b'
    """
    if (
        not tag
        or len(tag) > 128
        or any(ch.isspace() or ord(ch) < 0x21 or ord(ch) > 0xFF for ch in tag)
    ):
        raise ProtocolError(f"illegal stream tag {tag!r}")
    return tag


def parse_command(line: bytes) -> Command:
    """Parse one client control line (without the trailing newline)."""
    try:
        text = line.decode(ENCODING)
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise ProtocolError(f"undecodable command line: {exc}") from None
    fields = text.split(" ")
    verb = fields[0]
    if verb in ("STATS", "PING", "QUIT"):
        if len(fields) != 1:
            raise ProtocolError(f"{verb} takes no arguments: {text!r}")
        return Command(verb)
    if verb in ("OPEN", "CLOSE"):
        if len(fields) != 2:
            raise ProtocolError(f"usage: {verb} <stream>, got {text!r}")
        return Command(verb, validate_stream_tag(fields[1]))
    if verb == "FEED":
        if len(fields) != 3:
            raise ProtocolError(f"usage: FEED <stream> <nbytes>, got {text!r}")
        tag = validate_stream_tag(fields[1])
        try:
            nbytes = int(fields[2])
        except ValueError:
            raise ProtocolError(f"FEED length not an integer: {fields[2]!r}") from None
        if not 0 <= nbytes <= MAX_FEED:
            raise ProtocolError(
                f"FEED length {nbytes} outside [0, {MAX_FEED}]"
            )
        return Command(verb, tag, nbytes)
    raise ProtocolError(f"unknown verb {verb!r}")


def format_command(command: Command) -> bytes:
    """The control line (newline included) for ``command``.

    >>> format_command(Command("OPEN", "s1"))
    b'OPEN s1\\n'
    """
    if command.verb == "FEED":
        body = f"FEED {command.stream} {command.nbytes}"
    elif command.verb in ("OPEN", "CLOSE"):
        body = f"{command.verb} {command.stream}"
    else:
        body = command.verb
    return body.encode(ENCODING) + b"\n"


# -- rule-id escaping ------------------------------------------------------
def escape_token(token: str) -> str:
    """Backslash-escape a token so it survives line framing.

    Rule ids are user-controlled (rule files accept anything between
    tabs), so newlines and returns are escaped; spaces are legal
    because the rule id is always the *last* field of its line.

    >>> escape_token("a\\nb")
    'a\\\\nb'
    """
    if "\\" not in token and "\n" not in token and "\r" not in token:
        return token  # fast path: one call per MATCH line on the server
    return (
        token.replace("\\", "\\\\").replace("\n", "\\n").replace("\r", "\\r")
    )


def unescape_token(token: str) -> str:
    """Inverse of :func:`escape_token`."""
    if "\\" not in token:  # fast path: nothing was escaped (hot -- one
        return token  # call per MATCH line on the client)
    out: list[str] = []
    it = iter(token)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", "r": "\r", "\\": "\\"}.get(nxt, nxt))
    return "".join(out)


def format_match(match: Match, generation: Optional[int] = None) -> bytes:
    """The wire line for one :class:`~repro.session.Match` event.

    ``generation`` overrides the match's own ``generation`` field; both
    unset stamps ``0`` (the never-reloaded ruleset).
    """
    if generation is None:
        generation = match.generation or 0
    return (
        f"MATCH {match.stream} {match.end} {generation} "
        f"{escape_token(match.rule)}\n"
    ).encode(ENCODING)


def parse_match(line: bytes) -> Match:
    """Parse a ``MATCH`` line back into a :class:`~repro.session.Match`.

    The raw hardware ``code`` does not travel on the wire (the facade
    rule id is the serving contract), so it comes back ``None``; the
    ruleset generation does, and lands in ``Match.generation``.
    """
    text = line.decode(ENCODING).rstrip("\n")
    fields = text.split(" ", 4)
    if len(fields) != 5 or fields[0] != "MATCH":
        raise ProtocolError(f"not a MATCH line: {text!r}")
    _, stream, end, gen, rule = fields
    try:
        position = int(end)
        generation = int(gen)
    except ValueError:
        raise ProtocolError(
            f"MATCH offset/generation not integers: {end!r} {gen!r}"
        ) from None
    return Match(
        rule=unescape_token(rule),
        end=position,
        stream=stream,
        generation=generation,
    )
