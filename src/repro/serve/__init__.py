"""repro.serve: the async match-serving subsystem.

The network layer over the session API (:mod:`repro.session`): one
compiled ruleset -- any :class:`~repro.session.Matcher`, any
registered execution backend -- served to N concurrent TCP clients,
each multiplexing tagged streams over a line protocol with
length-prefixed payloads.  The pieces:

* :mod:`repro.serve.protocol` -- the framing grammar and codec
  (spec: ``docs/SERVING.md``);
* :mod:`repro.serve.server` -- :class:`MatchServer`: asyncio
  acceptor, per-connection bounded job queues (backpressure by not
  reading), CPU-bound ``feed``/``finish`` off-loaded to the shared
  :class:`~repro.engine.parallel.FeedPool`, graceful drain on stop;
* :mod:`repro.serve.stats` -- :class:`ServerStats` load snapshots
  (the ``STATS`` wire command);
* :mod:`repro.serve.client` -- :class:`MatchClient` and the one-shot
  :func:`scan_tagged_remote`, mirrors of
  :class:`~repro.session.MultiStreamScanner` over the wire;
* :mod:`repro.serve.fleet` -- :class:`WorkerFleet`: N worker
  processes sharing one ``host:port`` via ``SO_REUSEPORT`` (or a
  passed listener), each a full ``MatchServer`` warmed from the
  shared ruleset cache, with hot ruleset reload (generation-stamped
  ``MATCH`` lines, atomic :class:`MatcherHandle` swap) and crash
  respawn;
* :mod:`repro.serve.control` -- :class:`ControlServer` /
  :class:`ControlClient`: the unix-socket operator channel
  (``PING``/``GEN``/``STATS``/``RELOAD``/``STOP``);
* :mod:`repro.serve.cluster` -- :class:`RemoteShardedMatcher`: the
  :class:`~repro.session.Matcher` protocol over M remote servers each
  holding one ruleset *shard* (same dedup + round-robin policy as
  :class:`~repro.engine.parallel.ShardedMatcher`), with lockstep
  FEED fan-out, merged match streams, and
  :class:`ClusterPartialResultError` on mid-flight shard failure;
  :class:`LocalShardCluster`/:class:`ClusterSpec` spawn or describe
  the shard servers.

CLI: ``python -m repro serve --rules ... --port ... [--workers N
--reload --control PATH]``, ``python -m repro connect --port ...``,
and ``python -m repro cluster [--rules ... --shards M | --attach
host:port,...]``.

A served stream emits exactly the matches an offline session would --
same events, same order, same ``$``-gating -- which the end-to-end
tests (``tests/serve/test_server.py``) assert against
:class:`~repro.session.MultiStreamScanner` down to the event level.
"""

from .client import (
    MatchClient,
    ServerError,
    StreamSummary,
    backoff_delays,
    scan_tagged_remote,
)
from .cluster import (
    ClusterPartialResultError,
    ClusterSpec,
    LocalShardCluster,
    RemoteShardedMatcher,
)
from .control import ControlClient, ControlServer
from .fleet import FleetError, MatcherSpec, WorkerFleet, reuse_port_supported
from .protocol import ProtocolError
from .server import MatcherHandle, MatchServer
from .stats import ServerStats, merge_server_stats

__all__ = [
    "MatchServer",
    "MatcherHandle",
    "MatchClient",
    "ServerStats",
    "StreamSummary",
    "ProtocolError",
    "ServerError",
    "WorkerFleet",
    "MatcherSpec",
    "FleetError",
    "ControlServer",
    "ControlClient",
    "ClusterPartialResultError",
    "ClusterSpec",
    "LocalShardCluster",
    "RemoteShardedMatcher",
    "backoff_delays",
    "merge_server_stats",
    "reuse_port_supported",
    "scan_tagged_remote",
]
