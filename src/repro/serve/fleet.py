"""Process-sharded serving: a supervisor over N ``MatchServer`` workers.

One asyncio :class:`~repro.serve.server.MatchServer` is GIL-bound:
aggregate serve throughput is capped near one core's sweep rate no
matter how many clients connect.  :class:`WorkerFleet` is the
scale-out layer -- the same story as kernel-sharded IDS deployments:

* the parent **reserves** one ``host:port`` and forks N worker
  processes; each worker binds the same address with ``SO_REUSEPORT``,
  so the kernel shards accepted connections across workers by 4-tuple
  hash (zero parent involvement per connection).  On platforms
  without ``SO_REUSEPORT`` the parent binds one listening socket and
  passes it to every worker instead (classic pre-fork accept);
* each worker runs a **full** server -- own
  :class:`~repro.matching.RulesetMatcher`, own
  :class:`~repro.engine.parallel.FeedPool` -- built from a picklable
  :class:`MatcherSpec`.  The parent compiles the spec once first, so
  every worker warm-starts from the shared compiled-ruleset cache
  (``cache_hit`` is reported in each worker's ready event);
* **hot reload** (:meth:`WorkerFleet.reload`): the parent compiles
  the new ruleset into the cache, assigns the next fleet-wide
  generation, and broadcasts; each worker loads the artifact off-loop
  and atomically swaps its
  :class:`~repro.serve.server.MatcherHandle`.  In-flight streams
  drain on the tables they pinned at ``OPEN``; streams opened after
  the swap scan -- and stamp their ``MATCH``/``CLOSED`` lines -- with
  the new generation.  No connection is dropped;
* **supervision**: a monitor thread respawns crashed workers (at the
  current generation and spec) within ``restart_budget``;
  :meth:`WorkerFleet.stats` merges per-worker snapshots into one
  fleet-wide :class:`~repro.serve.stats.ServerStats` via
  :func:`~repro.serve.stats.merge_server_stats`.

Parent and workers talk over per-worker :func:`multiprocessing.Pipe`
duplex channels carrying small dict messages (``ready`` / ``reload``
/ ``stats`` / ``stop`` / ``stopped``); the data plane never touches
the parent.  The supervisor is synchronous by design -- it is control
plane only, driven from the CLI's signal handlers or a
:class:`~repro.serve.control.ControlServer`.
"""

from __future__ import annotations

import os
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence, Union

from ..engine.parallel import mp_context
from .stats import ServerStats, merge_server_stats

__all__ = [
    "FleetError",
    "MatcherSpec",
    "WorkerFleet",
    "reuse_port_supported",
]

#: worker startup allowance (first-ever compile of a big ruleset can
#: be slow; respawns and warm starts are far under this)
READY_TIMEOUT = 120.0
#: per-worker allowance for a reload acknowledgement
RELOAD_TIMEOUT = 120.0
#: per-worker allowance for a stats round-trip
STATS_TIMEOUT = 10.0


class FleetError(RuntimeError):
    """The fleet could not start, reload, or reach its workers."""


def reuse_port_supported() -> bool:
    """True when this platform accepts ``SO_REUSEPORT`` on TCP sockets."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    except OSError:  # pragma: no cover - no TCP at all
        return False
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    except OSError:  # pragma: no cover - kernel without the option
        return False
    finally:
        probe.close()
    return True


def _normalize_rules(
    rules: Union[Iterable[str], Sequence[tuple[str, str]]]
) -> tuple[tuple[str, str], ...]:
    from ..compiler.pipeline import normalize_rules

    return tuple(normalize_rules(rules))


@dataclass(frozen=True)
class MatcherSpec:
    """A picklable recipe for building one worker's Matcher.

    Workers cannot receive a live matcher (scanner state is not
    picklable and must not be shared across processes anyway), so the
    fleet ships the *recipe*: the normalized rules plus the compile
    options of ``repro scan``/``serve``.  :meth:`build` is the single
    construction path used by the parent's validation compile, every
    worker's startup, and every reload.
    """

    rules: tuple[tuple[str, str], ...]
    engine: Optional[str] = None
    unfold_threshold: float = 0
    opt_level: int = 0
    cache_dir: Optional[str] = None
    shards: int = 1

    def build(self):
        """Compile (or warm-start from cache) and return the matcher."""
        from ..engine.backends import AUTO_ENGINE
        from ..engine.parallel import ShardedMatcher
        from ..matching import RulesetMatcher

        options = dict(
            unfold_threshold=self.unfold_threshold,
            engine=self.engine or AUTO_ENGINE,
            opt_level=self.opt_level,
            cache_dir=self.cache_dir,
        )
        if self.shards > 1:
            return ShardedMatcher(list(self.rules), shards=self.shards, **options)
        return RulesetMatcher(list(self.rules), **options)


def _cache_hit(matcher) -> bool:
    """Did ``matcher`` warm-start entirely from the shared cache?"""
    info = getattr(matcher, "compile_info", None)
    if info is not None:
        return bool(info.cache_hit)
    infos = getattr(matcher, "compile_infos", None) or ()
    return bool(infos) and all(info.cache_hit for info in infos)


@dataclass(frozen=True)
class _WorkerConfig:
    """Per-worker serving parameters (picklable, like the spec)."""

    index: int
    host: str
    port: int
    engine: Optional[str]
    queue_depth: int
    threads: Optional[int]
    drain_timeout: float
    reuse_port: bool
    generation: int


# -- worker process --------------------------------------------------------
def _worker_main(spec, config, conn, listen_sock=None):
    """Process entry point: run one MatchServer until told to stop.

    Module-level (not a closure) so it works under the ``spawn`` start
    method too.  SIGHUP/SIGINT are ignored here -- the *parent* owns
    reload and shutdown coordination, and terminal-delivered signals
    hit the whole process group; a direct SIGTERM still drains
    gracefully as a fallback for kill-one-worker operations.
    """
    import asyncio

    for signum in ("SIGHUP", "SIGINT"):
        if hasattr(signal, signum):
            try:
                signal.signal(getattr(signal, signum), signal.SIG_IGN)
            except (OSError, ValueError):  # pragma: no cover - exotic env
                pass
    try:
        asyncio.run(_worker_async(spec, config, conn, listen_sock))
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        try:
            conn.send(
                {
                    "event": "error",
                    "worker": config.index,
                    "message": f"{type(exc).__name__}: {exc}",
                }
            )
        except (OSError, BrokenPipeError, ValueError):
            pass
        raise


async def _worker_async(spec, config, conn, listen_sock):
    import asyncio

    from .server import MatcherHandle, MatchServer

    loop = asyncio.get_running_loop()
    matcher = spec.build()
    handle = MatcherHandle(matcher, generation=config.generation)
    server = MatchServer(
        handle,
        host=config.host,
        port=config.port,
        engine=config.engine,
        queue_depth=config.queue_depth,
        workers=config.threads,
        drain_timeout=config.drain_timeout,
        sock=listen_sock,
        reuse_port=config.reuse_port,
        worker=config.index,
    )
    await server.start()

    mailbox: asyncio.Queue = asyncio.Queue()

    def on_readable() -> None:
        try:
            while conn.poll():
                mailbox.put_nowait(conn.recv())
        except (EOFError, OSError):
            # parent hung up: treat as an immediate stop request
            mailbox.put_nowait({"cmd": "stop", "drain": False})

    loop.add_reader(conn.fileno(), on_readable)
    if hasattr(signal, "SIGTERM"):
        try:
            loop.add_signal_handler(
                signal.SIGTERM,
                lambda: mailbox.put_nowait({"cmd": "stop", "drain": True}),
            )
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    conn.send(
        {
            "event": "ready",
            "worker": config.index,
            "pid": os.getpid(),
            "port": server.port,
            "generation": handle.generation,
            "cache_hit": _cache_hit(matcher),
        }
    )
    drain = True
    while True:
        message = await mailbox.get()
        cmd = message.get("cmd")
        if cmd == "stop":
            drain = bool(message.get("drain", True))
            break
        if cmd == "stats":
            conn.send(
                {
                    "event": "stats",
                    "worker": config.index,
                    "stats": server.stats().as_dict(),
                }
            )
        elif cmd == "reload":
            new_spec = message.get("spec") or spec
            try:
                generation = await server.reload(
                    new_spec.build, generation=message.get("generation")
                )
            except Exception as exc:  # noqa: BLE001 - reported, not fatal:
                # the worker keeps serving the old generation
                conn.send(
                    {
                        "event": "reload_failed",
                        "worker": config.index,
                        "message": f"{type(exc).__name__}: {exc}",
                    }
                )
            else:
                spec = new_spec
                conn.send(
                    {
                        "event": "reloaded",
                        "worker": config.index,
                        "generation": generation,
                    }
                )
        elif cmd == "ping":
            conn.send({"event": "pong", "worker": config.index})
    loop.remove_reader(conn.fileno())
    await server.stop(drain=drain)
    try:
        conn.send(
            {
                "event": "stopped",
                "worker": config.index,
                "stats": server.stats().as_dict(),
            }
        )
    except (OSError, BrokenPipeError, ValueError):
        pass


# -- parent supervisor -----------------------------------------------------
@dataclass
class _Worker:
    """Parent-side record of one live worker process."""

    index: int
    process: object
    conn: object
    pid: Optional[int] = None
    cache_hit: bool = False


def _stats_from_dict(payload: dict) -> ServerStats:
    fields = {
        key: value
        for key, value in payload.items()
        if key in ServerStats.__dataclass_fields__
    }
    return ServerStats(**fields)


class WorkerFleet:
    """Supervise N ``MatchServer`` processes sharing one ``host:port``.

    Synchronous control-plane API (see the module docstring for the
    architecture)::

        fleet = WorkerFleet(rules, workers=4, port=0)
        fleet.start()                  # forks, waits for every ready
        fleet.port                     # the shared bound port
        fleet.stats()                  # merged fleet ServerStats
        fleet.reload()                 # recompile + swap, same rules
        fleet.reload(rules=new_rules)  # swap to a new ruleset
        fleet.stop(drain=True)         # graceful fleet-wide drain

    Args mirror ``MatchServer`` plus the fleet knobs: ``workers``
    (process count), ``threads`` (each worker's FeedPool),
    ``restart_budget`` (crash respawns before the fleet gives up),
    ``reuse_port`` (``None`` auto-detects; ``False`` forces the
    pass-the-listener fallback), ``cache_dir`` (``None`` makes a
    private temp cache so workers still warm-start).
    """

    def __init__(
        self,
        rules: Union[Iterable[str], Sequence[tuple[str, str]]],
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        engine: Optional[str] = None,
        unfold_threshold: float = 0,
        opt_level: int = 0,
        cache_dir: Optional[str] = None,
        shards: int = 1,
        queue_depth: int = 32,
        threads: Optional[int] = None,
        drain_timeout: float = 10.0,
        restart_budget: int = 3,
        reuse_port: Optional[bool] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._spec = MatcherSpec(
            rules=_normalize_rules(rules),
            engine=engine,
            unfold_threshold=unfold_threshold,
            opt_level=opt_level,
            cache_dir=cache_dir,
            shards=shards,
        )
        self.workers = workers
        self.host = host
        self.port = port
        self.engine = engine
        self.queue_depth = queue_depth
        self.threads = threads
        self.drain_timeout = drain_timeout
        self.restart_budget = restart_budget
        self.generation = 0
        self.restarts = 0
        #: merged final ServerStats captured by :meth:`stop`
        self.final_stats: Optional[ServerStats] = None
        self._reuse_requested = reuse_port
        self._reuse = False
        self._ctx = None
        self._workers: list[_Worker] = []
        self._placeholder: Optional[socket.socket] = None
        self._listener: Optional[socket.socket] = None
        self._tmp_cache: Optional[tempfile.TemporaryDirectory] = None
        self._lock = threading.RLock()
        self._stop_event = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "WorkerFleet":
        """Reserve the port, fork the workers, wait for every ready.

        Bind failures propagate as ``OSError`` (the CLI turns them
        into a one-line error); worker startup failures raise
        :class:`FleetError` after tearing down what already started.
        """
        if self._started:
            raise RuntimeError("fleet already started")
        self._ctx = mp_context()
        if self._ctx is None:
            raise FleetError("multiprocessing is unavailable on this platform")
        try:
            import multiprocessing

            multiprocessing.allow_connection_pickling()
        except Exception:  # pragma: no cover - best-effort (spawn only)
            pass
        if self._spec.cache_dir is None:
            # a private cache still pays off: the parent's validation
            # compile below populates it, so all N workers warm-start
            self._tmp_cache = tempfile.TemporaryDirectory(
                prefix="repro-fleet-cache-"
            )
            self._spec = replace(self._spec, cache_dir=self._tmp_cache.name)
        # compile once in the parent: validates the ruleset before any
        # worker exists and fills the shared cache
        self._spec.build()
        self._reserve_port()
        self._started = True
        try:
            for index in range(self.workers):
                self._workers.append(self._spawn(index))
        except BaseException:
            self.stop(drain=False)
            raise
        self._stop_event.clear()
        self._monitor = threading.Thread(
            target=self._watch, name="repro-fleet-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _reserve_port(self) -> None:
        self._reuse = (
            reuse_port_supported()
            if self._reuse_requested is None
            else self._reuse_requested
        )
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if self._reuse:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, self.port))
        except BaseException:
            sock.close()
            raise
        self.host, self.port = sock.getsockname()[:2]
        if self._reuse:
            # bound but never listen()ed: a non-listening socket gets
            # no SYNs, so it only pins the port for the workers' own
            # SO_REUSEPORT binds (and keeps it across respawns)
            self._placeholder = sock
        else:
            # fallback: one parent listening socket shared by every
            # worker (the kernel wakes one acceptor per connection)
            sock.listen(128)
            self._listener = sock

    def _spawn(self, index: int) -> _Worker:
        """Fork worker ``index`` at the current spec + generation and
        wait for its ready event.  Callers hold the lock (or are
        single-threaded start)."""
        parent_conn, child_conn = self._ctx.Pipe()
        config = _WorkerConfig(
            index=index,
            host=self.host,
            port=self.port,
            engine=self.engine,
            queue_depth=self.queue_depth,
            threads=self.threads,
            drain_timeout=self.drain_timeout,
            reuse_port=self._reuse,
            generation=self.generation,
        )
        process = self._ctx.Process(
            target=_worker_main,
            args=(self._spec, config, child_conn, self._listener),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(index, process, parent_conn, pid=process.pid)
        event = self._await_event(worker, {"ready"}, READY_TIMEOUT)
        worker.cache_hit = bool(event.get("cache_hit"))
        return worker

    def _await_event(self, worker: _Worker, kinds: set, timeout: float) -> dict:
        """Next event of one of ``kinds`` from ``worker`` (stray late
        events from earlier broadcasts are dropped)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise FleetError(
                    f"worker {worker.index} (pid {worker.pid}): no "
                    f"{'/'.join(sorted(kinds))} event within {timeout:.0f}s"
                )
            try:
                if not worker.conn.poll(min(remaining, 0.5)):
                    if not worker.process.is_alive():
                        raise FleetError(
                            f"worker {worker.index} (pid {worker.pid}) died "
                            f"(exit code {worker.process.exitcode})"
                        )
                    continue
                message = worker.conn.recv()
            except (EOFError, OSError):
                raise FleetError(
                    f"worker {worker.index} (pid {worker.pid}) hung up"
                ) from None
            if message.get("event") == "error":
                raise FleetError(
                    f"worker {worker.index}: {message.get('message')}"
                )
            if message.get("event") in kinds:
                return message

    # -- control plane -----------------------------------------------------
    def reload(self, rules=None) -> int:
        """Hot-swap the fleet's ruleset; return the new generation.

        ``rules=None`` recompiles the current rules (a cache-warm
        no-op swap -- useful to confirm the path); otherwise the new
        ruleset replaces the old one fleet-wide.  The parent compiles
        first, so an unusable ruleset -- empty, or every rule failed
        to compile -- fails *here* as :class:`FleetError` with no
        worker touched (partial skips stay permissive, mirroring
        ``repro serve`` startup), and the workers' own builds are
        cache warm starts.  Every worker acknowledges before this
        returns; in-flight client streams are never dropped (they
        drain on their pinned tables).
        """
        with self._lock:
            self._require_started()
            if rules is None:
                new_spec = self._spec
            else:
                new_spec = replace(self._spec, rules=_normalize_rules(rules))
            matcher = new_spec.build()
            skipped = list(getattr(matcher, "skipped", ()) or ())
            if rules is not None and skipped and len(skipped) >= len(
                new_spec.rules
            ):
                reasons = "; ".join(f"{tag}: {why}" for tag, why in skipped)
                raise FleetError(
                    f"reload rejected, no rule compiled ({reasons})"
                )
            generation = self.generation + 1
            payload = {
                "cmd": "reload",
                "generation": generation,
                "spec": None if rules is None else new_spec,
            }
            for worker in self._workers:
                worker.conn.send(payload)
            for worker in self._workers:
                event = self._await_event(
                    worker, {"reloaded", "reload_failed"}, RELOAD_TIMEOUT
                )
                if event["event"] != "reloaded":
                    raise FleetError(
                        f"worker {worker.index} reload failed: "
                        f"{event.get('message')}"
                    )
            self._spec = new_spec
            self.generation = generation
            return generation

    def worker_stats(self) -> list[ServerStats]:
        """One fresh :class:`ServerStats` per reachable worker."""
        with self._lock:
            self._require_started()
            snapshots: list[ServerStats] = []
            for worker in self._workers:
                try:
                    worker.conn.send({"cmd": "stats"})
                    event = self._await_event(worker, {"stats"}, STATS_TIMEOUT)
                except (FleetError, OSError, BrokenPipeError):
                    continue  # mid-crash: the monitor will respawn it
                snapshots.append(_stats_from_dict(event["stats"]))
            if not snapshots:
                raise FleetError("no live workers answered STATS")
            return snapshots

    def stats(self) -> ServerStats:
        """The merged fleet-wide snapshot (counters summed across
        workers; see :func:`~repro.serve.stats.merge_server_stats`)."""
        return merge_server_stats(self.worker_stats())

    @property
    def alive(self) -> int:
        """Currently live worker processes."""
        with self._lock:
            return sum(1 for w in self._workers if w.process.is_alive())

    @property
    def cache_hits(self) -> list[bool]:
        """Per-worker warm-start flags (did each worker load its
        compiled ruleset from the shared cache instead of compiling?).
        All-true after a normal start: the parent's validation compile
        fills the cache before any worker forks."""
        with self._lock:
            return [w.cache_hit for w in self._workers]

    @property
    def address(self) -> tuple[str, int]:
        """The shared ``(host, port)`` every worker serves on."""
        return (self.host, self.port)

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("fleet not started")

    # -- supervision -------------------------------------------------------
    def _watch(self) -> None:
        """Monitor thread: respawn dead workers within the budget."""
        while not self._stop_event.wait(0.2):
            with self._lock:
                if self._stop_event.is_set():
                    return
                for slot, worker in enumerate(self._workers):
                    if worker.process.is_alive():
                        continue
                    if self.restarts >= self.restart_budget:
                        return  # budget exhausted: stop supervising
                    self.restarts += 1
                    try:
                        worker.conn.close()
                    except OSError:
                        pass
                    try:
                        self._workers[slot] = self._spawn(worker.index)
                    except (FleetError, OSError):
                        continue  # next tick retries (budget permitting)

    # -- shutdown ----------------------------------------------------------
    def stop(self, drain: bool = True) -> None:
        """Stop every worker (gracefully by default) and release the
        port.  Idempotent.  Captures :attr:`final_stats` from the
        workers' parting snapshots when draining."""
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        with self._lock:
            finals: list[ServerStats] = []
            for worker in self._workers:
                try:
                    worker.conn.send({"cmd": "stop", "drain": drain})
                except (OSError, BrokenPipeError, ValueError):
                    pass
            deadline = time.monotonic() + (
                self.drain_timeout + 5.0 if drain else 5.0
            )
            for worker in self._workers:
                if drain:
                    try:
                        event = self._await_event(
                            worker,
                            {"stopped"},
                            max(0.1, deadline - time.monotonic()),
                        )
                        finals.append(_stats_from_dict(event["stats"]))
                    except FleetError:
                        pass
                worker.process.join(max(0.1, deadline - time.monotonic()))
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(5.0)
                try:
                    worker.conn.close()
                except OSError:
                    pass
            if finals:
                self.final_stats = merge_server_stats(finals)
            self._workers = []
        for sock_attr in ("_placeholder", "_listener"):
            sock = getattr(self, sock_attr)
            if sock is not None:
                sock.close()
                setattr(self, sock_attr, None)
        if self._tmp_cache is not None:
            self._tmp_cache.cleanup()
            self._tmp_cache = None
        self._started = False

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop(drain=exc_type is None)
        return False
