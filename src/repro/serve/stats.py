"""Server load accounting: live counters and immutable snapshots.

The server mutates one :class:`StatsCounters` from its event loop and
worker callbacks; :meth:`StatsCounters.snapshot` freezes it into a
:class:`ServerStats` -- the thing the ``STATS`` wire command, the CLI,
and the tests observe.  Throughput is derived, not sampled: the
workers accumulate the wall-clock seconds actually spent inside
backend ``feed``/``finish`` calls (``busy_seconds``), so
``throughput_bps`` is the compiled ruleset's measured scan rate under
serving load, directly comparable to the offline numbers in
``BENCH_engine.json``.

    >>> from repro.serve.stats import StatsCounters
    >>> counters = StatsCounters(engine="stream")
    >>> counters.record_feed(nbytes=1024, matches=3, seconds=0.5)
    >>> snap = counters.snapshot()
    >>> (snap.bytes_scanned, snap.matches_emitted, snap.throughput_bps)
    (1024, 3, 2048.0)
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

__all__ = ["ServerStats", "StatsCounters", "merge_server_stats"]


@dataclass(frozen=True)
class ServerStats:
    """One immutable load snapshot of a running match server.

    Counters are cumulative since server start unless suffixed
    ``_open`` (current).  ``engine`` is the *requested* backend name
    (``auto`` resolves per compiled ruleset); ``throughput_bps`` is
    ``bytes_scanned / busy_seconds`` -- the scan rate while actually
    scanning, independent of client idle time.
    """

    #: backend name the server resolves sessions against
    engine: str
    #: currently connected clients / ever-accepted clients
    connections_open: int = 0
    connections_total: int = 0
    #: currently open tagged streams / ever-opened streams
    streams_open: int = 0
    streams_total: int = 0
    #: payload bytes scanned through sessions (post-framing)
    bytes_scanned: int = 0
    #: Match events written to clients
    matches_emitted: int = 0
    #: FEED frames processed
    feeds: int = 0
    #: ERR lines sent (protocol + application rejections)
    errors: int = 0
    #: wall seconds spent inside backend feed()/finish() calls
    busy_seconds: float = 0.0
    #: seconds since the server started
    uptime_seconds: float = 0.0
    #: current ruleset generation (bumped by hot reloads; 0 = initial)
    generation: int = 0
    #: worker index within a fleet (``None`` for a lone server)
    worker: Optional[int] = None
    #: number of live workers behind this snapshot (1 for a lone
    #: server, N for a merged fleet snapshot)
    workers: int = 1

    @property
    def throughput_bps(self) -> Optional[float]:
        """Scan throughput in bytes/second while busy (``None`` until
        the first byte is scanned)."""
        if self.busy_seconds <= 0:
            return None
        return self.bytes_scanned / self.busy_seconds

    def as_dict(self) -> dict:
        """JSON-ready mapping (includes the derived throughput)."""
        payload = asdict(self)
        payload["throughput_bps"] = self.throughput_bps
        return payload


@dataclass
class StatsCounters:
    """The mutable accumulator behind :class:`ServerStats`.

    All mutation happens on the server's event loop (worker threads
    hand their timings back through the loop), so plain int/float
    fields need no locking.
    """

    engine: str
    connections_open: int = 0
    connections_total: int = 0
    streams_open: int = 0
    streams_total: int = 0
    bytes_scanned: int = 0
    matches_emitted: int = 0
    feeds: int = 0
    errors: int = 0
    busy_seconds: float = 0.0
    generation: int = 0
    worker: Optional[int] = None
    started: float = field(default_factory=time.monotonic)

    def connection_opened(self) -> None:
        self.connections_open += 1
        self.connections_total += 1

    def connection_closed(self) -> None:
        self.connections_open -= 1

    def stream_opened(self) -> None:
        self.streams_open += 1
        self.streams_total += 1

    def stream_closed(self) -> None:
        self.streams_open -= 1

    def record_feed(
        self, nbytes: int, matches: int, seconds: float, frames: int = 1
    ) -> None:
        """Account one executed FEED batch: total payload size, emitted
        matches, backend seconds, and how many wire frames it covered
        (the server batches same-stream frames per executor hop)."""
        self.feeds += frames
        self.bytes_scanned += nbytes
        self.matches_emitted += matches
        self.busy_seconds += seconds

    def record_finish(self, matches: int, seconds: float) -> None:
        """Account one CLOSE: end-gated matches and backend time."""
        self.matches_emitted += matches
        self.busy_seconds += seconds

    def record_error(self) -> None:
        self.errors += 1

    def snapshot(self) -> ServerStats:
        """Freeze the current counters into a :class:`ServerStats`."""
        return ServerStats(
            engine=self.engine,
            connections_open=self.connections_open,
            connections_total=self.connections_total,
            streams_open=self.streams_open,
            streams_total=self.streams_total,
            bytes_scanned=self.bytes_scanned,
            matches_emitted=self.matches_emitted,
            feeds=self.feeds,
            errors=self.errors,
            busy_seconds=self.busy_seconds,
            uptime_seconds=time.monotonic() - self.started,
            generation=self.generation,
            worker=self.worker,
        )


def merge_server_stats(snapshots: Sequence[ServerStats]) -> ServerStats:
    """Fold per-worker snapshots into one fleet-wide :class:`ServerStats`.

    Counters sum (including ``busy_seconds`` -- the fleet's aggregate
    ``throughput_bps`` is total bytes over total backend seconds, i.e.
    per-worker average, not wall-clock rate); ``uptime_seconds`` takes
    the oldest worker; ``generation`` takes the minimum, so a fleet
    mid-rollout reports the generation every worker has *at least*
    reached; ``worker`` collapses to ``None`` and ``workers`` counts
    the inputs.

    The merge has an identity: an **empty** input returns a neutral
    snapshot (``engine="none"``, ``workers=0``, every counter zero) and
    a one-element input returns its counters unchanged (``worker``
    still collapses to ``None``; ``workers`` keeps the input's count).
    Scatter-gather callers (:mod:`repro.serve.cluster`) fold whatever
    shard subset responded without special-casing 0 or 1 shards.

    >>> from repro.serve.stats import ServerStats, merge_server_stats
    >>> a = ServerStats(engine="block", bytes_scanned=10, generation=2)
    >>> b = ServerStats(engine="block", bytes_scanned=32, generation=1)
    >>> merged = merge_server_stats([a, b])
    >>> (merged.bytes_scanned, merged.generation, merged.workers)
    (42, 1, 2)
    >>> empty = merge_server_stats([])
    >>> (empty.engine, empty.workers, empty.bytes_scanned)
    ('none', 0, 0)
    >>> merge_server_stats([a]).bytes_scanned
    10
    """
    if not snapshots:
        return ServerStats(engine="none", workers=0)
    return ServerStats(
        engine=snapshots[0].engine,
        connections_open=sum(s.connections_open for s in snapshots),
        connections_total=sum(s.connections_total for s in snapshots),
        streams_open=sum(s.streams_open for s in snapshots),
        streams_total=sum(s.streams_total for s in snapshots),
        bytes_scanned=sum(s.bytes_scanned for s in snapshots),
        matches_emitted=sum(s.matches_emitted for s in snapshots),
        feeds=sum(s.feeds for s in snapshots),
        errors=sum(s.errors for s in snapshots),
        busy_seconds=sum(s.busy_seconds for s in snapshots),
        uptime_seconds=max(s.uptime_seconds for s in snapshots),
        generation=min(s.generation for s in snapshots),
        worker=None,
        workers=sum(s.workers for s in snapshots),
    )
