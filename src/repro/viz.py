"""Graphviz/DOT export for NCAs and MNRL networks.

Debugging and documentation aid: render the automata the way the
paper's figures draw them (state circles annotated with counters,
edges labeled ``sigma, guard / action``; module nodes as boxes with
their ports).  Output is plain DOT text; no graphviz dependency.
"""

from __future__ import annotations

from .mnrl.network import Network
from .mnrl.nodes import BitVectorNode, CounterNode, STE
from .nca.automaton import NCA, SetAction

__all__ = ["nca_to_dot", "network_to_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def nca_to_dot(nca: NCA, name: str = "nca") -> str:
    """Render an NCA in the style of the paper's Figures 1/4(a)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", '  node [shape=circle];']
    for q in nca.states:
        label = f"q{q}"
        counters = sorted(nca.counters_of(q))
        if counters:
            label += " : " + ",".join(f"x{c}" for c in counters)
        shape_bits = []
        if q in nca.finals:
            shape_bits.append("shape=doublecircle")
            guards = nca.finals[q]
            if guards:
                label += "\\n" + " & ".join(g.describe() for g in guards)
        if q == nca.initial:
            shape_bits.append("style=bold")
        attrs = ", ".join([f'label="{_escape(label)}"'] + shape_bits)
        lines.append(f"  q{q} [{attrs}];")
    for t in nca.transitions:
        pred = nca.predicate_of(t.target)
        parts = [pred.to_pattern() if pred is not None else "eps"]
        parts.extend(g.describe() for g in t.guard)
        label = ", ".join(parts)
        actions = []
        for action in t.actions:
            if isinstance(action, SetAction):
                actions.append(f"x{action.counter} := {action.value}")
            else:
                actions.append(f"x{action.counter}++")
        if actions:
            label += " / " + ", ".join(actions)
        lines.append(f'  q{t.source} -> q{t.target} [label="{_escape(label)}"];')
    lines.append("}")
    return "\n".join(lines)


def network_to_dot(network: Network, name: str = "network") -> str:
    """Render a compiled network in the style of Figures 4(d)/6/7."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for node in network.nodes.values():
        nid = node.id.replace(".", "_").replace("-", "_")
        if isinstance(node, STE):
            label = node.symbol_set.to_pattern()
            attrs = [f'label="{_escape(label)}"', "shape=circle"]
            if node.report:
                attrs.append("shape=doublecircle")
            if node.start.value != "none":
                attrs.append('style=bold')
                attrs[0] = f'label="{_escape(label)}\\n({node.start.value})"'
        elif isinstance(node, CounterNode):
            attrs = [
                f'label="ctr [{node.lo},{node.hi}]"',
                "shape=box",
                "style=rounded",
            ]
        else:
            assert isinstance(node, BitVectorNode)
            attrs = [
                f'label="bitvec [{node.lo},{node.hi}] ({node.size}b)"',
                "shape=box3d",
            ]
        lines.append(f"  {nid} [{', '.join(attrs)}];")
    for conn in network.connections:
        src = conn.source.replace(".", "_").replace("-", "_")
        dst = conn.target.replace(".", "_").replace("-", "_")
        label = ""
        if conn.source_port != "o" or conn.target_port != "i":
            label = f' [label="{conn.source_port}->{conn.target_port}", fontsize=9]'
        lines.append(f"  {src} -> {dst}{label};")
    lines.append("}")
    return "\n".join(lines)
