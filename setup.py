"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this
file exists so that ``pip install -e .`` keeps working on offline
machines whose setuptools lacks the ``wheel`` package required by the
PEP 660 editable-install path (``--no-use-pep517`` then falls back to
``setup.py develop``).
"""

from setuptools import setup

setup()
