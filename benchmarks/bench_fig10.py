"""Benchmark + regeneration of Figure 10 (energy/area vs threshold).

Times one full evaluation point (map + simulate + cost accounting) and
archives the four-suite sweep with per-byte energy, total area, and
bit-vector waste -- the paper's headline "up to 76% energy / 58% area
reduction" experiment.
"""

import pytest

from repro.compiler.mapping import map_network
from repro.experiments.fig10 import format_fig10, run_fig10
from repro.experiments.fig9 import run_fig9
from repro.experiments.runner import emit_suite, prep_rules
from repro.hardware.cost import area_of_mapping, energy_of_run
from repro.hardware.simulator import NetworkSimulator
from repro.workloads.inputs import stream_for_style
from repro.workloads.synth import snort_like

from conftest import save_report


@pytest.fixture(scope="module")
def snort_network():
    return emit_suite(prep_rules(snort_like(total=100)), unfold_threshold=10)


def test_map_and_simulate_speed(benchmark, snort_network):
    data = stream_for_style("network", 1024, seed=2)

    def run():
        mapping = map_network(snort_network)
        sim = NetworkSimulator(snort_network)
        sim.run(data)
        return energy_of_run(sim.stats, mapping), area_of_mapping(mapping)

    energy, area = benchmark(run)
    assert energy.nj_per_byte > 0
    assert area.total_mm2 > 0


def test_regenerate_fig10(benchmark):
    def run():
        fig9 = run_fig9(scale=0.2)
        return run_fig10(scale=0.2, stream_len=2048, prepped=fig9.prepped)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig10", format_fig10(result))
    # the paper's headline shape
    assert result.energy_reduction("Snort") > 0.4
    assert result.energy_reduction("Suricata") > 0.4
    assert result.area_reduction("Snort") > 0.2
    # threshold-invariant match results
    for points in result.series.values():
        assert len({p.reports for p in points}) == 1
