"""Benchmark + regeneration of Figure 9 (MNRL nodes vs threshold).

Times whole-suite emission at a threshold (analysis amortized away, as
in a real compiler server) and archives the node-count sweep for all
four application suites.
"""

import math

import pytest

from repro.experiments.fig9 import format_fig9, run_fig9
from repro.experiments.runner import emit_suite, prep_rules
from repro.workloads.synth import snort_like

from conftest import save_report


@pytest.fixture(scope="module")
def snort_prepped():
    return prep_rules(snort_like(total=120))


@pytest.mark.parametrize("threshold", [5, 100, math.inf], ids=["k5", "k100", "all"])
def test_emit_speed(benchmark, snort_prepped, threshold):
    network = benchmark(emit_suite, snort_prepped, threshold)
    assert network.node_count() > 0


def test_regenerate_fig9(benchmark):
    result = benchmark.pedantic(
        run_fig9, kwargs={"scale": 0.2}, rounds=1, iterations=1
    )
    save_report("fig9", format_fig9(result))
    # monotone node counts, large-bound suites reduce most
    for suite, points in result.series.items():
        nodes = [p.nodes for p in points]
        assert nodes == sorted(nodes)
    assert result.reduction("Snort") > result.reduction("SpamAssassin")
