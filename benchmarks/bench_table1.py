"""Benchmark + regeneration of Table 1 (benchmark censuses).

Times the hybrid counter-ambiguity census per suite and archives the
full five-suite table with the paper's column fractions alongside.
"""

import pytest

from repro.experiments.table1 import format_table1, run_table1
from repro.workloads.stats import census
from repro.workloads.synth import (
    clamav_like,
    protomata_like,
    snort_like,
    spamassassin_like,
    suricata_like,
)

from conftest import save_report

SUITES = {
    "snort": lambda: snort_like(total=120),
    "suricata": lambda: suricata_like(total=100),
    "protomata": lambda: protomata_like(total=60),
    "spamassassin": lambda: spamassassin_like(total=80),
    "clamav": lambda: clamav_like(total=200),
}


@pytest.mark.parametrize("name", list(SUITES))
def test_census_speed(benchmark, name):
    suite = SUITES[name]()
    row = benchmark(census, suite)
    assert row.supported <= row.total
    assert row.ambiguous <= row.counting


def test_regenerate_table1(benchmark):
    result = benchmark.pedantic(run_table1, kwargs={"scale": 0.3}, rounds=1, iterations=1)
    save_report("table1", format_table1(result))
    assert len(result.rows) == 5
