"""Benchmark + regeneration of Figure 2 (analysis cost vs mu).

Times each of the four analysis variants (E/A/H/HW) on fixed counting
rules drawn from the suites, then archives the per-bucket summaries of
both Fig. 2(a) (running time) and Fig. 2(b) (created token pairs).
"""

import pytest

from repro.analysis.hybrid import analyze_pattern
from repro.analysis.result import Method
from repro.experiments.fig2 import format_fig2, run_fig2
from repro.workloads.synth import protomata_like, snort_like, suricata_like

from conftest import save_report

#: representative per-variant timing targets: an unambiguous guarded
#: run with a large bound (the expensive shape for the exact variant)
HARD_UNAMBIGUOUS = r"[^a-m][a-m]{200}|[^g-z][g-z]{200}"

VARIANTS = {
    "E": (Method.EXACT, False),
    "A": (Method.APPROXIMATE, False),
    "H": (Method.HYBRID, False),
    "HW": (Method.HYBRID, True),
}


@pytest.mark.parametrize("label", list(VARIANTS))
def test_variant_speed_on_hard_rule(benchmark, label):
    method, witness = VARIANTS[label]
    result = benchmark(
        analyze_pattern, HARD_UNAMBIGUOUS, method=method, record_witness=witness
    )
    assert not result.ambiguous


def test_regenerate_fig2(benchmark):
    suites = [snort_like(total=90), suricata_like(total=70), protomata_like(total=40)]
    result = benchmark.pedantic(
        run_fig2, kwargs={"suites": suites}, rounds=1, iterations=1
    )
    report = format_fig2(result, metric="time") + "\n\n" + format_fig2(
        result, metric="pairs"
    )
    save_report("fig2", report)
    # hybrid never costs much more than exact in aggregate (on the
    # ambiguous rules it pays a small aborted-approximation probe on
    # top of the exact fallback; its wins are on the expensive
    # unambiguous outliers, checked per-rule in bench_fig3)
    for suite in ("Snort", "Suricata"):
        exact = sum(p.pairs for p in result.series(suite, "E"))
        hybrid = sum(p.pairs for p in result.series(suite, "H"))
        assert hybrid <= exact * 1.25
