"""Ablation benchmarks: each codesign mechanism earns its place.

Not a paper figure, but DESIGN.md commits to ablating the design
choices: (1) both module types are necessary -- counters alone
collapse on all-ambiguous Protomata, bit vectors alone collapse on the
multi-state guarded runs of Snort/Suricata; (2) the body-level
module-safety gate (a soundness fix discovered during this
reproduction) is essentially free on benchmark-shaped rules.
"""

import pytest

from repro.experiments.ablation import (
    format_policy_ablation,
    format_strictness_ablation,
    run_policy_ablation,
    run_strictness_ablation,
)

from conftest import save_report


def test_policy_ablation(benchmark):
    result = benchmark.pedantic(
        run_policy_ablation, kwargs={"scale": 0.15}, rounds=1, iterations=1
    )
    save_report("ablation_policy", format_policy_ablation(result))

    # Protomata (all-ambiguous gaps): bit vectors do the work; a
    # counter-only design degenerates toward unfold-all
    proto_full = result.point("Protomata", "full")
    proto_ctr = result.point("Protomata", "counter-only")
    proto_unfold = result.point("Protomata", "unfold-all")
    assert proto_full.nodes < proto_ctr.nodes
    assert proto_ctr.nodes == proto_unfold.nodes

    # Snort (guarded multi-state runs): counters do the work; a
    # bit-vector-only design loses most of the win
    snort_full = result.point("Snort", "full")
    snort_bv = result.point("Snort", "bitvector-only")
    snort_unfold = result.point("Snort", "unfold-all")
    assert snort_full.nodes < snort_bv.nodes
    assert snort_full.nodes < snort_unfold.nodes

    # and the full policy is never worse than either ablation
    for suite in ("Protomata", "Snort", "Suricata"):
        full = result.point(suite, "full").nodes
        assert full <= result.point(suite, "counter-only").nodes
        assert full <= result.point(suite, "bitvector-only").nodes


def test_strictness_ablation(benchmark):
    rows = benchmark.pedantic(
        run_strictness_ablation, kwargs={"scale": 0.15}, rounds=1, iterations=1
    )
    save_report("ablation_strictness", format_strictness_ablation(rows))
    for row in rows:
        # the soundness gate demotes (at most) a tiny fraction of
        # counter candidates on benchmark-shaped rules
        assert row.demoted <= max(1, row.counter_candidates // 10)
        assert row.nodes_strict >= row.nodes_naive  # demotions only add STEs
