"""Benchmark + regeneration of Table 2 (component parameters).

The Table 2 scalars are inputs (our documented SPICE substitution), so
the benchmark here times what depends on them operationally: the
functional simulator's cycle rate on augmented networks, plus the
delay-slack verification behind the paper's "no performance penalty"
claim.
"""

from repro.compiler.pipeline import compile_ruleset
from repro.experiments.table2 import format_table2, run_table2
from repro.hardware.simulator import NetworkSimulator
from repro.workloads.inputs import network_stream

from conftest import save_report

RULES = [
    ("r1", r"[^a]a{2,200}"),
    ("r2", r"foo.{2,120}bar"),
    ("r3", r"GET /[a-z]{1,40} HTTP"),
    ("r4", r"\x00[^\x00]{8,64}\x00"),
]


def test_simulator_cycle_rate(benchmark):
    rs = compile_ruleset(RULES)
    data = network_stream(4096, seed=1)
    sim = NetworkSimulator(rs.network)

    def run():
        sim.reset()
        sim.run(data)
        return sim.stats.cycles

    cycles = benchmark(run)
    assert cycles == len(data)


def test_regenerate_table2(benchmark):
    result = benchmark(run_table2)
    save_report("table2", format_table2(result))
    assert result.no_performance_penalty
