"""Benchmark: table-driven streaming engine vs the reference simulator.

The engine exists for throughput (the paper's hardware processes one
symbol per clock over Snort-scale rulesets); this benchmark measures
both engines in bytes/sec on a synthetic Snort-style workload with
planted matches, checks byte-identical report sets, and asserts the
acceptance floor: the table-driven ``StreamScanner`` must be at least
5x faster than ``NetworkSimulator.run``.
"""

import time

import pytest

from repro.compiler.pipeline import compile_ruleset
from repro.engine.scanner import StreamScanner
from repro.engine.tables import compile_tables
from repro.hardware.simulator import NetworkSimulator
from repro.workloads.inputs import plant_matches, stream_for_style
from repro.workloads.synth import snort_like

from conftest import save_report

SPEEDUP_FLOOR = 5.0
STREAM_BYTES = 120_000
CHUNK = 1 << 14


@pytest.fixture(scope="module")
def workload():
    suite = snort_like(total=40, seed=7)
    ruleset = compile_ruleset(suite.patterns())
    background = stream_for_style(suite.input_style, STREAM_BYTES, seed=5)
    data = plant_matches(background, [r.pattern for r in suite.rules], seed=6)
    return ruleset, data


def _time(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_table_engine_speedup_and_equivalence(workload):
    ruleset, data = workload
    tables = compile_tables(ruleset.network)

    sim = NetworkSimulator(ruleset.network)

    def run_reference():
        sim.reset()
        sim.run(data)

    scanner = StreamScanner(tables)

    def run_table():
        scanner.reset()
        for offset in range(0, len(data), CHUNK):
            scanner.feed(data[offset : offset + CHUNK])
        scanner.finish()

    t_reference = _time(run_reference)
    t_table = _time(run_table)

    # byte-identical reports and activity stats from the timed runs
    assert scanner.reports == sim.distinct_reports()
    assert scanner.stats.equivalent(sim.stats)
    assert scanner.stats.reports > 0  # the planted matches fired

    ref_bps = len(data) / t_reference
    table_bps = len(data) / t_table
    speedup = table_bps / ref_bps
    report = (
        "Engine throughput (synthetic Snort-style workload, "
        f"{len(data)} bytes, {ruleset.network.node_count()} MNRL nodes)\n"
        f"  reference NetworkSimulator.run : {ref_bps / 1e3:9.1f} KB/s\n"
        f"  table-driven StreamScanner     : {table_bps / 1e3:9.1f} KB/s "
        f"({CHUNK}-byte chunks)\n"
        f"  speedup                        : {speedup:9.1f}x "
        f"(floor {SPEEDUP_FLOOR}x)\n"
        f"  distinct reports (identical)   : {len(scanner.reports)}"
    )
    save_report("engine", report)
    assert speedup >= SPEEDUP_FLOOR, report


def test_table_engine_throughput(benchmark, workload):
    """pytest-benchmark timing of the fast path alone."""
    ruleset, data = workload
    scanner = StreamScanner(compile_tables(ruleset.network))

    def run():
        scanner.reset()
        scanner.feed(data)
        return scanner.finish()

    reports = benchmark(run)
    assert reports
