"""Benchmark: table-driven streaming engine vs the reference simulator.

The engine exists for throughput (the paper's hardware processes one
symbol per clock over Snort-scale rulesets); this benchmark measures
both engines in bytes/sec on a synthetic Snort-style workload with
planted matches, checks byte-identical report sets, and asserts the
acceptance floor: the table-driven ``StreamScanner`` must be at least
5x faster than ``NetworkSimulator.run`` -- both with the optimisation
passes off (-O0, stats-exact) and on (-O1, report-set equivalent).

It also measures what the compile-side work of this codebase buys:

* alphabet-class compression of the match tables (k class entries +
  a 256-byte map vs 256 dense entries);
* cross-rule prefix sharing / dead-node elimination (merged STEs,
  CAM-area savings via the cost model);
* cold-vs-warm compile time through the persistent ruleset cache.

Everything is archived machine-readably in
``results/BENCH_engine.json`` so the perf trajectory is tracked
across PRs.
"""

import tempfile
import time

import pytest

from repro.compiler.pipeline import compile_ruleset
from repro.engine.backends import available_backends, get_backend, resolve_backend
from repro.engine.scanner import StreamScanner
from repro.engine.tables import compile_tables, table_stats
from repro.hardware.cost import savings_of_mappings
from repro.compiler.mapping import map_network
from repro.hardware.simulator import NetworkSimulator
from repro.matching import RulesetMatcher
from repro.workloads.inputs import plant_matches, stream_for_style
from repro.workloads.synth import module_heavy, snort_like

from conftest import save_json, save_report, update_json

SPEEDUP_FLOOR = 5.0
#: acceptance floor for the NumPy block backend over the scalar stream
#: interpreter on the STE-only (fully unfolded) suite
BLOCK_SPEEDUP_FLOOR = 2.0
STREAM_BYTES = 120_000
CHUNK = 1 << 14
#: the reference simulator is orders of magnitude slower on the
#: unfolded network -- time it on a prefix and verify reports there
REFERENCE_SLICE = 24_576


@pytest.fixture(scope="module")
def workload():
    suite = snort_like(total=40, seed=7)
    rules = suite.patterns()
    ruleset = compile_ruleset(rules)
    optimized = compile_ruleset(rules, opt_level=1)
    background = stream_for_style(suite.input_style, STREAM_BYTES, seed=5)
    data = plant_matches(background, [r.pattern for r in suite.rules], seed=6)
    return rules, ruleset, optimized, data


def _time(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _timed_chunked_scan(tables, data):
    scanner = StreamScanner(tables)

    def run():
        scanner.reset()
        for offset in range(0, len(data), CHUNK):
            scanner.feed(data[offset : offset + CHUNK])
        scanner.finish()

    return scanner, _time(run)


def test_table_engine_speedup_and_equivalence(workload):
    rules, ruleset, optimized, data = workload
    tables = compile_tables(ruleset.network)
    opt_tables = compile_tables(optimized.network)

    sim = NetworkSimulator(ruleset.network)

    def run_reference():
        sim.reset()
        sim.run(data)

    t_reference = _time(run_reference)
    scanner, t_table = _timed_chunked_scan(tables, data)
    opt_scanner, t_opt = _timed_chunked_scan(opt_tables, data)

    # -O0: byte-identical reports and activity stats from the timed runs
    assert scanner.reports == sim.distinct_reports()
    assert scanner.stats.equivalent(sim.stats)
    assert scanner.stats.reports > 0  # the planted matches fired
    # -O1: exact report-set equivalence against the reference simulator
    assert opt_scanner.reports == sim.distinct_reports()

    ref_bps = len(data) / t_reference
    table_bps = len(data) / t_table
    opt_bps = len(data) / t_opt
    speedup = table_bps / ref_bps
    opt_speedup = opt_bps / ref_bps

    # compile-side wins: table compression + pass savings + warm starts
    stats = table_stats(tables)
    opt_stats = table_stats(opt_tables)
    savings = savings_of_mappings(
        map_network(ruleset.network), map_network(optimized.network)
    )
    opt_report = optimized.optimization
    with tempfile.TemporaryDirectory() as cache_dir:
        t0 = time.perf_counter()
        cold = RulesetMatcher(rules, opt_level=1, cache_dir=cache_dir)
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = RulesetMatcher(rules, opt_level=1, cache_dir=cache_dir)
        t_warm = time.perf_counter() - t0
        assert not cold.compile_info.cache_hit
        assert warm.compile_info.cache_hit
        probe = data[:4096]
        assert warm.scan(probe) == cold.scan(probe)

    report = (
        "Engine throughput (synthetic Snort-style workload, "
        f"{len(data)} bytes, {ruleset.network.node_count()} MNRL nodes)\n"
        f"  reference NetworkSimulator.run : {ref_bps / 1e3:9.1f} KB/s\n"
        f"  table-driven StreamScanner -O0 : {table_bps / 1e3:9.1f} KB/s "
        f"({CHUNK}-byte chunks)\n"
        f"  table-driven StreamScanner -O1 : {opt_bps / 1e3:9.1f} KB/s\n"
        f"  speedup -O0 / -O1              : {speedup:9.1f}x /{opt_speedup:6.1f}x "
        f"(floor {SPEEDUP_FLOOR}x)\n"
        f"  distinct reports (identical)   : {len(scanner.reports)}\n"
        f"  match table                    : {stats.n_classes} classes of 256 "
        f"({stats.match_mask_bytes + stats.byte_class_bytes} B vs "
        f"{stats.dense_match_bytes} B dense, "
        f"{stats.match_table_reduction:.0%} smaller)\n"
        f"  -O1 passes                     : {opt_report.merged_stes} STEs merged, "
        f"{opt_report.removed_nodes} dead removed "
        f"({savings.stes_before} -> {savings.stes_after} STEs, "
        f"area {savings.area_reduction:.0%} down)\n"
        f"  ruleset cache                  : cold {t_cold * 1e3:.1f} ms -> "
        f"warm {t_warm * 1e3:.1f} ms ({t_cold / max(t_warm, 1e-9):.0f}x)"
    )
    save_report("engine", report)
    save_json(
        "engine",
        {
            "stream_bytes": len(data),
            "chunk_bytes": CHUNK,
            "mnrl_nodes": ruleset.network.node_count(),
            "reference_bps": ref_bps,
            "table_bps": table_bps,
            "table_bps_opt1": opt_bps,
            "speedup": speedup,
            "speedup_opt1": opt_speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "distinct_reports": len(scanner.reports),
            "tables": {
                "O0": {
                    "n_stes": stats.n_stes,
                    "n_classes": stats.n_classes,
                    "match_mask_bytes": stats.match_mask_bytes,
                    "byte_class_bytes": stats.byte_class_bytes,
                    "dense_match_bytes": stats.dense_match_bytes,
                    "match_table_reduction": stats.match_table_reduction,
                },
                "O1": {
                    "n_stes": opt_stats.n_stes,
                    "n_classes": opt_stats.n_classes,
                    "match_mask_bytes": opt_stats.match_mask_bytes,
                    "byte_class_bytes": opt_stats.byte_class_bytes,
                    "dense_match_bytes": opt_stats.dense_match_bytes,
                    "match_table_reduction": opt_stats.match_table_reduction,
                },
            },
            "optimization": {
                "merged_stes": opt_report.merged_stes,
                "removed_nodes": opt_report.removed_nodes,
                "stes_before": savings.stes_before,
                "stes_after": savings.stes_after,
                "cam_arrays_before": savings.cam_arrays_before,
                "cam_arrays_after": savings.cam_arrays_after,
                "area_reduction": savings.area_reduction,
            },
            "cache": {
                "cold_compile_s": t_cold,
                "warm_compile_s": t_warm,
                "warm_speedup": t_cold / max(t_warm, 1e-9),
            },
        },
    )
    assert speedup >= SPEEDUP_FLOOR, report
    assert opt_speedup >= SPEEDUP_FLOOR, report


def test_warm_start_skips_compilation(workload):
    """The cache artifact must load measurably faster than compiling
    (parsing + analysis + emission + lowering are all skipped)."""
    rules, _, _, _ = workload
    with tempfile.TemporaryDirectory() as cache_dir:
        cold = RulesetMatcher(rules, opt_level=1, cache_dir=cache_dir)
        warm = RulesetMatcher(rules, opt_level=1, cache_dir=cache_dir)
        assert warm.compile_info.cache_hit
        assert warm.compile_info.seconds < cold.compile_info.seconds


@pytest.fixture(scope="module")
def ste_only_workload():
    """The same Snort-style suite with every counting construct
    unfolded into STE chains: the module-free common case the block
    backend is built for."""
    suite = snort_like(total=40, seed=7)
    rules = suite.patterns()
    ruleset = compile_ruleset(rules, unfold_threshold=float("inf"))
    tables = compile_tables(ruleset.network)
    background = stream_for_style(suite.input_style, STREAM_BYTES, seed=5)
    data = plant_matches(background, [r.pattern for r in suite.rules], seed=6)
    return rules, tables, data


def test_backend_throughput_matrix(ste_only_workload):
    """Per-backend bytes/sec on the STE-only suite, archived to
    BENCH_engine.json; asserts identical reports across all registered
    backends and the block backend's >= 2x floor over stream."""
    _, tables, data = ste_only_workload
    assert tables.n_modules == 0  # the STE-only suite really is STE-only

    matrix: dict = {}
    report_sets: dict = {}
    for info in available_backends():
        if not info.available:
            matrix[info.name] = {
                "available": False,
                "reason": info.unavailable_reason,
            }
            continue
        sample = data[:REFERENCE_SLICE] if info.name == "reference" else data
        scanner = get_backend(info.name).make_scanner(tables)

        def run(scanner=scanner, sample=sample):
            scanner.reset()
            for offset in range(0, len(sample), CHUNK):
                scanner.feed(sample[offset : offset + CHUNK])
            scanner.finish()

        elapsed = _time(run)
        matrix[info.name] = {
            "available": True,
            "bytes": len(sample),
            "bps": len(sample) / elapsed,
            "stats_exact": info.stats_exact,
        }
        report_sets[info.name] = set(scanner.reports)

    # identical reports everywhere: full-stream across the fast
    # backends, and on the timed prefix for the reference oracle
    # (streaming reports at position p depend only on the first p bytes)
    want = report_sets["stream"]
    want_prefix = {pair for pair in want if pair[0] <= REFERENCE_SLICE}
    for name, reports in report_sets.items():
        if name == "reference":
            assert reports == want_prefix, name
        else:
            assert reports == want, name

    auto_choice = resolve_backend("auto", tables).name
    block = matrix.get("block", {})
    block_speedup = (
        block["bps"] / matrix["stream"]["bps"] if block.get("available") else None
    )
    update_json(
        "engine",
        {
            "backends_ste_only": {
                "stream_bytes": len(data),
                "chunk_bytes": CHUNK,
                "n_stes": tables.n_stes,
                "auto_choice": auto_choice,
                "block_speedup_floor": BLOCK_SPEEDUP_FLOOR,
                "block_speedup_vs_stream": block_speedup,
                "matrix": matrix,
            }
        },
    )
    lines = [
        f"Backend throughput (STE-only Snort-style suite, {tables.n_stes} STEs, "
        f"{len(data)} bytes, auto -> {auto_choice})"
    ]
    for name, row in matrix.items():
        if row.get("available"):
            lines.append(f"  {name:<10}: {row['bps'] / 1e3:9.1f} KB/s ({row['bytes']} B)")
        else:
            lines.append(f"  {name:<10}: unavailable ({row['reason']})")
    if block_speedup is not None:
        lines.append(
            f"  block / stream: {block_speedup:.2f}x (floor {BLOCK_SPEEDUP_FLOOR}x)"
        )
    save_report("engine_backends", "\n".join(lines))

    if block.get("available"):
        assert auto_choice == "block"
        assert block_speedup >= BLOCK_SPEEDUP_FLOOR, "\n".join(lines)
    else:
        # graceful degradation: auto serves the suite on the interpreter
        assert auto_choice == "stream"


@pytest.fixture(scope="module")
def module_heavy_workload():
    """Every rule bears a counter/bit-vector module (threshold 0 keeps
    them as modules): the workload in-sweep module execution exists
    for."""
    suite = module_heavy(total=24, seed=0x40D5)
    rules = suite.patterns()
    ruleset = compile_ruleset(rules)
    tables = compile_tables(ruleset.network)
    background = stream_for_style(suite.input_style, STREAM_BYTES, seed=5)
    data = plant_matches(background, [r.pattern for r in suite.rules], seed=6)
    return rules, tables, data


def test_backend_throughput_matrix_modules(module_heavy_workload):
    """Per-backend bytes/sec on the module-heavy suite, archived under
    ``backends_modules`` in BENCH_engine.json.  Acceptance: the block
    backend must beat stream by >= 2x *with zero scalar rescans* --
    module activity runs inside the vector sweeps, not around them."""
    _, tables, data = module_heavy_workload
    assert tables.n_modules > 0  # the module-heavy suite really has modules

    matrix: dict = {}
    report_sets: dict = {}
    sweep_stats = None
    for info in available_backends():
        if not info.available:
            matrix[info.name] = {
                "available": False,
                "reason": info.unavailable_reason,
            }
            continue
        sample = data[:REFERENCE_SLICE] if info.name == "reference" else data
        scanner = get_backend(info.name).make_scanner(tables)

        def run(scanner=scanner, sample=sample):
            scanner.reset()
            for offset in range(0, len(sample), CHUNK):
                scanner.feed(sample[offset : offset + CHUNK])
            scanner.finish()

        elapsed = _time(run)
        matrix[info.name] = {
            "available": True,
            "bytes": len(sample),
            "bps": len(sample) / elapsed,
            "stats_exact": info.stats_exact,
        }
        report_sets[info.name] = set(scanner.reports)
        if info.name == "block":
            sweep_stats = scanner.sweep_stats

    want = report_sets["stream"]
    want_prefix = {pair for pair in want if pair[0] <= REFERENCE_SLICE}
    for name, reports in report_sets.items():
        if name == "reference":
            assert reports == want_prefix, name
        else:
            assert reports == want, name

    auto_choice = resolve_backend("auto", tables).name
    block = matrix.get("block", {})
    block_speedup = (
        block["bps"] / matrix["stream"]["bps"] if block.get("available") else None
    )
    update_json(
        "engine",
        {
            "backends_modules": {
                "stream_bytes": len(data),
                "chunk_bytes": CHUNK,
                "n_stes": tables.n_stes,
                "n_modules": tables.n_modules,
                "auto_choice": auto_choice,
                "block_speedup_floor": BLOCK_SPEEDUP_FLOOR,
                "block_speedup_vs_stream": block_speedup,
                "block_sweep": None
                if sweep_stats is None
                else {
                    "committed_blocks": sweep_stats.committed_blocks,
                    "rescans": sweep_stats.rescans,
                    "reenables": sweep_stats.reenables,
                    "modules_vectorized": sweep_stats.modules_vectorized,
                },
                "matrix": matrix,
            }
        },
    )
    lines = [
        f"Backend throughput (module-heavy suite, {tables.n_stes} STEs + "
        f"{tables.n_modules} modules, {len(data)} bytes, auto -> {auto_choice})"
    ]
    for name, row in matrix.items():
        if row.get("available"):
            lines.append(f"  {name:<10}: {row['bps'] / 1e3:9.1f} KB/s ({row['bytes']} B)")
        else:
            lines.append(f"  {name:<10}: unavailable ({row['reason']})")
    if block_speedup is not None:
        lines.append(
            f"  block / stream: {block_speedup:.2f}x (floor {BLOCK_SPEEDUP_FLOOR}x), "
            f"{sweep_stats.rescans} rescans over "
            f"{sweep_stats.committed_blocks} committed sweeps"
        )
    save_report("engine_backends_modules", "\n".join(lines))

    if block.get("available"):
        assert auto_choice == "block"
        # the acceptance claim: fast AND never replaying scalar blocks
        assert sweep_stats.modules_vectorized
        assert sweep_stats.rescans == 0, "\n".join(lines)
        assert block_speedup >= BLOCK_SPEEDUP_FLOOR, "\n".join(lines)
    else:
        # graceful degradation: module rules fall back to the interpreter
        assert auto_choice == "stream"


#: acceptance ceiling for the session layer's cost over driving a raw
#: backend scanner directly (same backend, same chunking)
SESSION_OVERHEAD_CEILING = 0.10


def test_session_overhead(ste_only_workload):
    """The session layer (Match construction, sorting, ``$`` gating
    bookkeeping) must cost < 10% of raw scanner throughput on the
    STE-only suite; measured per run and archived to BENCH_engine.json.
    """
    rules, _, data = ste_only_workload
    matcher = RulesetMatcher(rules, unfold_threshold=float("inf"))
    backend = resolve_backend("auto", matcher.tables)
    chunks = [data[offset : offset + CHUNK] for offset in range(0, len(data), CHUNK)]

    def raw():
        scanner = backend.make_scanner(matcher.tables)
        for chunk in chunks:
            scanner.feed(chunk)
        scanner.finish()
        return scanner

    def via_session():
        with matcher.session() as session:
            for chunk in chunks:
                session.feed(chunk)
        return session

    t_raw = _time(raw, rounds=5)
    t_session = _time(via_session, rounds=5)
    raw_bps = len(data) / t_raw
    session_bps = len(data) / t_session
    overhead = t_session / t_raw - 1.0

    # same reports either way (the session only re-dresses them)
    scanner, session = raw(), via_session()
    assert session.result().matches
    assert len(session.scanners) == 1
    assert session.scanners[0].reports == scanner.reports

    update_json(
        "engine",
        {
            "session_overhead": {
                "backend": backend.name,
                "chunk_bytes": CHUNK,
                "stream_bytes": len(data),
                "raw_bps": raw_bps,
                "session_bps": session_bps,
                "overhead": overhead,
                "ceiling": SESSION_OVERHEAD_CEILING,
            }
        },
    )
    report = (
        f"Session-layer overhead ({backend.name} backend, STE-only suite)\n"
        f"  raw scanner    : {raw_bps / 1e3:9.1f} KB/s\n"
        f"  via session    : {session_bps / 1e3:9.1f} KB/s\n"
        f"  overhead       : {overhead:9.1%} (ceiling "
        f"{SESSION_OVERHEAD_CEILING:.0%})"
    )
    save_report("engine_session", report)
    assert overhead < SESSION_OVERHEAD_CEILING, report


#: acceptance ceiling for the serving layer's cost (framing, the event
#: loop, executor hand-offs, match emission) over the offline
#: multi-stream scanner on the same traffic
SERVE_OVERHEAD_CEILING = 0.30
SERVE_CONNECTIONS = 8
SERVE_CHUNK = 1 << 16
SERVE_ROUNDS = 3

#: the client fleet runs in its OWN process (like real clients): the
#: server process pays only its own serving costs, and the driver
#: reports wall time from first feed to last CLOSED plus a CRC over
#: every (tag, rule, end) event for the offline-equality check.
#: Per round it opens fresh connections/streams (tags are namespaced
#: by round), so rounds are independent and best-of-N is honest.
_SERVE_DRIVER = r"""
import asyncio, sys, time, zlib

src, host, port, path, chunk, conns, rounds = sys.argv[1:8]
port, chunk, conns, rounds = int(port), int(chunk), int(conns), int(rounds)
sys.path.insert(0, src)
from repro.serve import MatchClient

with open(path, "rb") as handle:
    data = handle.read()
chunks = [data[o : o + chunk] for o in range(0, len(data), chunk)]

async def one_round(index):
    clients = []
    for i in range(conns):
        client = await MatchClient.connect(host, port)
        await client.open(f"r{index}-s{i}")
        clients.append(client)

    async def pump(i, client):
        tag = f"r{index}-s{i}"
        for piece in chunks:
            await client.feed(tag, piece)
        await client.close_stream(tag)

    start = time.perf_counter()
    await asyncio.gather(*(pump(i, c) for i, c in enumerate(clients)))
    elapsed = time.perf_counter() - start
    lines = sorted(
        f"s{i} {m.rule} {m.end}"
        for i, c in enumerate(clients)
        for m in c.matches[f"r{index}-s{i}"]
    )
    crc = zlib.crc32("\n".join(lines).encode("latin-1"))
    count = len(lines)
    for client in clients:
        await client.quit()
    return elapsed, count, crc

async def main():
    print("READY", flush=True)
    sys.stdin.readline()  # GO
    for index in range(rounds):
        elapsed, count, crc = await one_round(index)
        print(f"ROUND {elapsed:.6f} {count} {crc}", flush=True)

asyncio.run(main())
"""


def test_serve_throughput(ste_only_workload, tmp_path):
    """N concurrent connections through a real MatchServer (clients in
    a separate process, as deployed) vs the same total traffic through
    the offline MultiStreamScanner in-process; asserts per-stream match
    equality (CRC over every event) and the serving-overhead ceiling,
    and appends a ``serve`` section to BENCH_engine.json."""
    import asyncio
    import os
    import subprocess
    import sys
    import threading
    import zlib

    import repro
    from repro.serve import MatchServer
    from repro.session import MultiStreamScanner

    rules, _, data = ste_only_workload
    matcher = RulesetMatcher(rules, unfold_threshold=float("inf"))
    chunks = [
        data[offset : offset + SERVE_CHUNK]
        for offset in range(0, len(data), SERVE_CHUNK)
    ]
    tags = [f"s{i}" for i in range(SERVE_CONNECTIONS)]

    # -- offline baseline (and the expected event CRC) ---------------------
    def offline():
        mux = MultiStreamScanner(matcher)
        events = []
        for tag in tags:
            session = mux.session(tag)
            for chunk in chunks:
                for match in session.feed(chunk):
                    events.append((tag, match.rule, match.end))
        for tag in tags:
            for match in mux.finish(tag):
                events.append((tag, match.rule, match.end))
        return events

    t_offline = _time(offline, rounds=SERVE_ROUNDS)
    expected = sorted(f"{t} {r} {e}" for t, r, e in offline())
    expected_crc = zlib.crc32("\n".join(expected).encode("latin-1"))

    # -- the server, on its own event loop in this process -----------------
    ready = threading.Event()
    box: dict = {}

    def server_thread():
        async def run():
            server = MatchServer(matcher, port=0)
            await server.start()
            stop = asyncio.Event()
            box["port"] = server.port
            box["stop"] = (asyncio.get_running_loop(), stop)
            ready.set()
            await stop.wait()
            box["stats"] = server.stats()
            await server.stop()

        asyncio.run(run())

    thread = threading.Thread(target=server_thread, daemon=True)
    thread.start()
    assert ready.wait(timeout=30)

    data_path = tmp_path / "serve_stream.bin"
    data_path.write_bytes(data)
    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    driver = subprocess.Popen(
        [
            sys.executable, "-c", _SERVE_DRIVER, src_dir, "127.0.0.1",
            str(box["port"]), str(data_path), str(SERVE_CHUNK),
            str(SERVE_CONNECTIONS), str(SERVE_ROUNDS),
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        assert driver.stdout.readline().strip() == "READY"
        driver.stdin.write("GO\n")
        driver.stdin.flush()
        rounds = []
        for _ in range(SERVE_ROUNDS):
            fields = driver.stdout.readline().split()
            assert fields and fields[0] == "ROUND", (fields, driver.stderr.read())
            rounds.append((float(fields[1]), int(fields[2]), int(fields[3])))
        driver.wait(timeout=30)
    finally:
        if driver.poll() is None:
            driver.kill()
        loop, stop = box["stop"]
        loop.call_soon_threadsafe(stop.set)
        thread.join(timeout=30)

    # every round's served events are identical to the offline scanner's
    for _, count, crc in rounds:
        assert count == len(expected)
        assert crc == expected_crc

    t_serve = min(elapsed for elapsed, _, _ in rounds)
    stats = box["stats"]
    total_bytes = len(data) * SERVE_CONNECTIONS
    offline_bps = total_bytes / t_offline
    serve_bps = total_bytes / t_serve
    overhead = t_serve / t_offline - 1.0

    update_json(
        "engine",
        {
            "serve": {
                "connections": SERVE_CONNECTIONS,
                "chunk_bytes": SERVE_CHUNK,
                "stream_bytes": len(data),
                "total_bytes": total_bytes,
                "offline_bps": offline_bps,
                "serve_bps": serve_bps,
                "overhead": overhead,
                "ceiling": SERVE_OVERHEAD_CEILING,
                "matches_per_round": len(expected),
                "server_busy_seconds": stats.busy_seconds,
            }
        },
    )
    report = (
        f"Serving overhead ({SERVE_CONNECTIONS} concurrent connections from "
        f"a separate client process,\n"
        f"    {SERVE_CHUNK}-byte frames, {total_bytes} total bytes, "
        f"{len(expected)} matches streamed per round)\n"
        f"  offline MultiStreamScanner : {offline_bps / 1e3:9.1f} KB/s\n"
        f"  served over TCP            : {serve_bps / 1e3:9.1f} KB/s\n"
        f"  overhead                   : {overhead:9.1%} (ceiling "
        f"{SERVE_OVERHEAD_CEILING:.0%})"
    )
    save_report("engine_serve", report)
    assert overhead < SERVE_OVERHEAD_CEILING, report


#: fleet size for the scaling benchmark and the linear-scaling floor it
#: must clear (aggregate bps of the fleet vs one worker, same traffic)
FLEET_WORKERS = 4
FLEET_LINEAR_FLOOR = 0.7
FLEET_ROUNDS = 2

#: like _SERVE_DRIVER, but *steered*: SO_REUSEPORT shards by 4-tuple
#: hash, which on a handful of connections can pile everything onto one
#: worker and make any scaling number meaningless.  The driver fills a
#: per-worker connection quota (reading the STATS ``worker`` field,
#: redialing until every worker holds its share) so the measurement
#: exercises all N workers; if steering stalls it falls back to
#: whatever the kernel dealt.
_FLEET_DRIVER = r"""
import asyncio, sys, time

src, host, port, path, chunk, workers, per_worker, rounds = sys.argv[1:9]
port, chunk, workers, per_worker, rounds = (
    int(port), int(chunk), int(workers), int(per_worker), int(rounds))
sys.path.insert(0, src)
from repro.serve import MatchClient

with open(path, "rb") as handle:
    data = handle.read()
chunks = [data[o : o + chunk] for o in range(0, len(data), chunk)]

async def steered_clients():
    total = workers * per_worker
    want = {w: per_worker for w in range(workers)}
    clients, spare = [], []
    dials = 0
    while sum(want.values()) and dials < 64 * workers:
        dials += 1
        client = await MatchClient.connect(host, port, retries=5)
        stats = await client.stats()
        worker = stats.get("worker") or 0
        if want.get(worker, 0):
            want[worker] -= 1
            clients.append(client)
        else:
            spare.append(client)
    while len(clients) < total and spare:
        clients.append(spare.pop())
    for client in spare:
        await client.quit()
    return clients

async def one_round(index):
    clients = await steered_clients()
    for i, client in enumerate(clients):
        await client.open(f"r{index}-s{i}")

    async def pump(i, client):
        tag = f"r{index}-s{i}"
        for piece in chunks:
            await client.feed(tag, piece)
        return await client.close_stream(tag)

    start = time.perf_counter()
    summaries = await asyncio.gather(
        *(pump(i, c) for i, c in enumerate(clients)))
    elapsed = time.perf_counter() - start
    count = sum(s.matches_emitted for s in summaries)
    for client in clients:
        await client.quit()
    return elapsed, count

async def main():
    print("READY", flush=True)
    sys.stdin.readline()  # GO
    for index in range(rounds):
        elapsed, count = await one_round(index)
        print(f"ROUND {elapsed:.6f} {count}", flush=True)

asyncio.run(main())
"""


def test_serve_fleet_scaling(ste_only_workload, tmp_path):
    """ISSUE 7 acceptance: a 4-worker SO_REUSEPORT fleet must reach
    >= 0.7x linear aggregate throughput over one worker on the same
    traffic (4 concurrent full-stream connections, worker-steered).

    Always *measures* and writes the ``serve_fleet`` section of
    BENCH_engine.json; the scaling floor is only *asserted* when the
    machine has enough cores for 4 workers plus the client driver to
    actually run in parallel (the measurement is still recorded, with
    the skip reason, on smaller boxes -- a 1-CPU container cannot
    exhibit process-level speedup)."""
    import os
    import subprocess
    import sys

    import repro
    from repro.serve.fleet import WorkerFleet
    from repro.session import MultiStreamScanner

    rules, _, data = ste_only_workload
    conns = FLEET_WORKERS  # identical total traffic in both runs
    data_path = tmp_path / "fleet_stream.bin"
    data_path.write_bytes(data)
    src_dir = os.path.dirname(os.path.dirname(repro.__file__))

    # expected matches per stream, for the served-correctly check
    matcher = RulesetMatcher(rules, unfold_threshold=float("inf"))
    mux = MultiStreamScanner(matcher)
    per_stream = sum(1 for _ in mux.feed("s", data)) + sum(
        1 for _ in mux.finish("s")
    )

    def measure(workers):
        per_worker = conns // workers
        with WorkerFleet(
            rules,
            workers=workers,
            port=0,
            unfold_threshold=float("inf"),
        ) as fleet:
            driver = subprocess.Popen(
                [
                    sys.executable, "-c", _FLEET_DRIVER, src_dir,
                    fleet.host, str(fleet.port), str(data_path),
                    str(SERVE_CHUNK), str(workers), str(per_worker),
                    str(FLEET_ROUNDS),
                ],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            try:
                assert driver.stdout.readline().strip() == "READY"
                driver.stdin.write("GO\n")
                driver.stdin.flush()
                rounds = []
                for _ in range(FLEET_ROUNDS):
                    fields = driver.stdout.readline().split()
                    assert fields and fields[0] == "ROUND", (
                        fields, driver.stderr.read(),
                    )
                    rounds.append((float(fields[1]), int(fields[2])))
                driver.wait(timeout=30)
            finally:
                if driver.poll() is None:
                    driver.kill()
            distribution = [
                snap.bytes_scanned for snap in fleet.worker_stats()
            ]
        for _, count in rounds:
            assert count == conns * per_stream
        best = min(elapsed for elapsed, _ in rounds)
        return conns * len(data) / best, distribution

    single_bps, _ = measure(1)
    fleet_bps, distribution = measure(FLEET_WORKERS)
    scaling = fleet_bps / single_bps
    linear_fraction = scaling / FLEET_WORKERS
    cpus = os.cpu_count() or 1
    # 4 scanning workers + the client driver need their own cores for
    # process-level scaling to be observable at all
    asserted = cpus >= FLEET_WORKERS + 1
    section = {
        "workers": FLEET_WORKERS,
        "connections": conns,
        "stream_bytes": len(data),
        "single_worker_bps": single_bps,
        "fleet_bps": fleet_bps,
        "scaling": scaling,
        "linear_fraction": linear_fraction,
        "floor": FLEET_LINEAR_FLOOR,
        "worker_bytes": distribution,
        "cpus": cpus,
        "asserted": asserted,
    }
    if not asserted:
        section["skip_reason"] = (
            f"scaling floor needs >= {FLEET_WORKERS + 1} CPUs, have {cpus}"
        )
    update_json("engine", {"serve_fleet": section})
    report = (
        f"Fleet scaling ({FLEET_WORKERS} workers vs 1, {conns} steered "
        f"connections, {conns * len(data)} total bytes)\n"
        f"  single worker : {single_bps / 1e3:9.1f} KB/s\n"
        f"  {FLEET_WORKERS}-worker fleet: {fleet_bps / 1e3:9.1f} KB/s\n"
        f"  scaling       : {scaling:9.2f}x "
        f"({linear_fraction:.0%} of linear, floor "
        f"{FLEET_LINEAR_FLOOR:.0%}, {cpus} CPU(s))"
    )
    save_report("engine_serve_fleet", report)
    if asserted:
        assert scaling >= FLEET_LINEAR_FLOOR * FLEET_WORKERS, report


CLUSTER_SHARDS = 3
#: a 3-shard scatter-gather scan must stay under this multiple of the
#: 1-shard remote baseline (every shard scans every byte, but each
#: holds 1/3 of the rules -- the scan work roughly conserves; what
#: this bounds is the tripled framing + per-feed PING-barrier cost)
CLUSTER_OVERHEAD_CEILING = 2.0
CLUSTER_ROUNDS = 3


def test_serve_cluster_overhead(ste_only_workload):
    """ISSUE 10 acceptance: scatter-gather fan-out over 3 shard-server
    processes costs < 2x the 1-shard remote baseline on the same
    stream, with merged matches identical to the offline scanner.

    Always measures and writes the ``serve_cluster`` section of
    BENCH_engine.json; like the fleet benchmark, the ceiling is a
    latency bound (barrier + framing), not a parallelism claim, so it
    is asserted regardless of core count."""
    import os

    from repro import LocalShardCluster, RemoteShardedMatcher

    rules, _, data = ste_only_workload
    chunks = [
        data[offset : offset + SERVE_CHUNK]
        for offset in range(0, len(data), SERVE_CHUNK)
    ]
    offline = RulesetMatcher(rules, unfold_threshold=float("inf")).scan_stream(
        chunks
    )

    def measure(shards):
        with LocalShardCluster(
            rules,
            shards=shards,
            unfold_threshold=float("inf"),
            processes=True,
        ) as cluster:
            with RemoteShardedMatcher(cluster.addresses) as remote:
                result = remote.scan_stream(chunks)
                assert result.matches == offline.matches
                assert result.bytes_scanned == offline.bytes_scanned
                elapsed = _time(
                    lambda: remote.scan_stream(chunks), rounds=CLUSTER_ROUNDS
                )
            mode = cluster.mode
        return elapsed, mode

    t_single, _ = measure(1)
    t_cluster, mode = measure(CLUSTER_SHARDS)
    single_bps = len(data) / t_single
    cluster_bps = len(data) / t_cluster
    ratio = t_cluster / t_single

    update_json(
        "engine",
        {
            "serve_cluster": {
                "shards": CLUSTER_SHARDS,
                "mode": mode,
                "chunk_bytes": SERVE_CHUNK,
                "stream_bytes": len(data),
                "single_shard_bps": single_bps,
                "cluster_bps": cluster_bps,
                "fanout_ratio": ratio,
                "ceiling": CLUSTER_OVERHEAD_CEILING,
                "matches": sum(len(e) for e in offline.matches.values()),
                "cpus": os.cpu_count() or 1,
            }
        },
    )
    report = (
        f"Cluster fan-out overhead ({CLUSTER_SHARDS} shard-server "
        f"processes vs 1, {SERVE_CHUNK}-byte frames,\n"
        f"    {len(data)} stream bytes, lockstep FEED+PING barrier "
        f"per frame, mode {mode})\n"
        f"  1 shard : {single_bps / 1e3:9.1f} KB/s\n"
        f"  {CLUSTER_SHARDS} shards: {cluster_bps / 1e3:9.1f} KB/s\n"
        f"  ratio   : {ratio:9.2f}x (ceiling "
        f"{CLUSTER_OVERHEAD_CEILING:.1f}x)"
    )
    save_report("engine_serve_cluster", report)
    assert ratio < CLUSTER_OVERHEAD_CEILING, report


RULES_CORPUS_SIZE = 2000
#: the cache must buy at least this over a cold ruleset compile
#: (measured ~13x; keep headroom for slow CI runners)
RULES_WARM_FLOOR = 3.0


def test_rules_compile_scale(tmp_path):
    """The Snort-rule frontend at corpus scale: triage a synthetic
    multi-thousand-rule corpus (every rule classified), compile the
    survivors cold then warm through the persistent cache, and scan —
    the `rules_frontend` section of BENCH_engine.json."""
    from repro.rules import load_rules_text
    from repro.workloads.snort_rules import corpus_text

    started = time.perf_counter()
    loaded = load_rules_text(
        corpus_text(total=RULES_CORPUS_SIZE), file="synthetic.rules"
    )
    triage_seconds = time.perf_counter() - started
    report = loaded.report
    assert report.total == RULES_CORPUS_SIZE
    assert sum(report.counts.values()) == report.total  # zero unclassified

    cache_dir = str(tmp_path / "cache")
    started = time.perf_counter()
    cold, folded = loaded.compile(cache_dir=cache_dir, opt_level=1)
    cold_seconds = time.perf_counter() - started
    assert not cold.compile_info.cache_hit
    assert sum(folded.counts.values()) == folded.total

    started = time.perf_counter()
    warm, _ = loaded.compile(cache_dir=cache_dir, opt_level=1)
    warm_seconds = time.perf_counter() - started
    assert warm.compile_info.cache_hit

    background = stream_for_style("network", STREAM_BYTES, seed=11)
    started = time.perf_counter()
    result = warm.scan(background)
    scan_seconds = time.perf_counter() - started
    throughput = len(background) / scan_seconds

    speedup = cold_seconds / warm_seconds
    update_json(
        "engine",
        {
            "rules_frontend": {
                "corpus_rules": report.total,
                "triage_counts": dict(report.counts),
                "triage_seconds": round(triage_seconds, 3),
                "compile_cold_seconds": round(cold_seconds, 3),
                "compile_warm_seconds": round(warm_seconds, 3),
                "warm_speedup": round(speedup, 1),
                "warm_speedup_floor": RULES_WARM_FLOOR,
                "scan_bytes": len(background),
                "scan_bytes_per_second": round(throughput),
            }
        },
    )
    counts = report.counts
    save_report(
        "engine_rules_frontend",
        f"rules frontend: {report.total} rules "
        f"({counts['compiled']} compiled / {counts['rewritten']} rewritten / "
        f"{counts['rejected']} rejected) triaged in {triage_seconds:.2f}s; "
        f"compile cold {cold_seconds:.2f}s, warm {warm_seconds:.2f}s "
        f"({speedup:.1f}x, floor {RULES_WARM_FLOOR:.0f}x); "
        f"scan {throughput / 1e6:.2f} MB/s over {len(background)} bytes "
        f"({result.total_matches()} matches)",
    )
    assert speedup >= RULES_WARM_FLOOR


def test_table_engine_throughput(benchmark, workload):
    """pytest-benchmark timing of the fast path alone (optimizer on)."""
    _, _, optimized, data = workload
    scanner = StreamScanner(compile_tables(optimized.network))

    def run():
        scanner.reset()
        scanner.feed(data)
        return scanner.finish()

    reports = benchmark(run)
    assert reports
