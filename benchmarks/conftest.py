"""Benchmark-harness helpers.

Every benchmark regenerates one of the paper's tables/figures: it
times the underlying experiment driver with pytest-benchmark and
archives the paper-style text rendering under ``benchmarks/results/``
(also echoed to stdout) so the artifacts survive the run.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_report(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def save_json(name: str, payload: dict) -> str:
    """Archive machine-readable results as ``BENCH_<name>.json`` so the
    perf trajectory can be tracked across PRs."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[json saved to {path}]")
    return path


def update_json(name: str, payload: dict) -> str:
    """Merge ``payload``'s top-level keys into ``BENCH_<name>.json``,
    so independent benchmark tests can contribute sections to one
    artifact without clobbering each other."""
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    merged: dict = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            merged = json.load(handle)
    except (FileNotFoundError, ValueError):
        pass
    merged.update(payload)
    return save_json(name, merged)
