"""Benchmark + regeneration of Figure 3 (exact vs hybrid runtime).

Times the exact and hybrid analyses head-to-head on the hard
``Sigma*(~s1 s1{n} + ~s2 s2{n})`` family with overlapping classes --
the family behind the paper's above-diagonal outliers -- and archives
the scatter summary over the IDS suites.
"""

import pytest

from repro.analysis.hybrid import analyze_pattern
from repro.analysis.result import Method
from repro.experiments.fig3 import (
    format_fig3,
    run_fig3,
    run_fig3_family,
)

from conftest import save_report

FAMILY_N = 300
FAMILY = rf".*([^a-m][a-m]{{{FAMILY_N}}}|[^g-z][g-z]{{{FAMILY_N}}})"


def test_exact_on_family(benchmark):
    result = benchmark(analyze_pattern, FAMILY, method=Method.EXACT)
    assert not result.ambiguous


def test_hybrid_on_family(benchmark):
    result = benchmark(analyze_pattern, FAMILY, method=Method.HYBRID)
    assert not result.ambiguous


def test_regenerate_fig3(benchmark):
    def run():
        family = run_fig3_family(bounds=(50, 100, 200, 400))
        suites = run_fig3(scale=0.15)
        family.points.extend(suites.points)
        return family

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig3", format_fig3(result))
    # the hybrid wins grow with the bound on the hard family
    family_points = [p for p in result.points if p.suite == "family"]
    speedups = [p.speedup for p in family_points]
    assert speedups[-1] > speedups[0] > 1
