"""Benchmark + regeneration of Figure 8 (module vs unfolding sweeps).

Times the compile+simulate round for the module and unfolded variants
of the micro-benchmark regexes and archives the full static sweep
(energy and area versus the repetition bound n, both sub-figure
pairs).
"""

import pytest

from repro.compiler.pipeline import compile_pattern
from repro.experiments.fig8 import format_fig8, run_fig8, validate_point
from repro.hardware.simulator import NetworkSimulator

from conftest import save_report

N = 512


@pytest.mark.parametrize("threshold", [0, float("inf")], ids=["module", "unfold"])
def test_compile_and_simulate(benchmark, threshold):
    data = b"a" * 1024

    def run():
        compiled = compile_pattern(f"^a{{{N}}}", unfold_threshold=threshold)
        sim = NetworkSimulator(compiled.network)
        sim.run(data)
        return sim.stats.cycles

    assert benchmark(run) == len(data)


def test_regenerate_fig8(benchmark):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    save_report("fig8", format_fig8(result))
    assert result.counter_series[-1].energy_ratio > 100


def test_dynamic_cross_check(benchmark):
    point = benchmark.pedantic(
        validate_point, args=(600,), kwargs={"ambiguous": False}, rounds=1, iterations=1
    )
    assert point.reports_agree
    assert point.module_nj_per_byte < point.unfold_nj_per_byte
