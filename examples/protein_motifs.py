#!/usr/bin/env python3
"""Protein motif search: PROSITE-style patterns on amino-acid streams.

Protomata-style motifs are the paper's all-ambiguous benchmark: the
``x(m,n)`` wildcard gaps always need bit vectors (Table 1: 1675 of
1675 counting motifs are counter-ambiguous).  This script scans a
synthetic protein database with a motif set and shows the bit-vector
modules doing the counting.

Run:  python examples/protein_motifs.py
"""

from repro import NetworkSimulator, analyze_pattern, compile_ruleset, map_network
from repro.hardware.cost import area_of_mapping
from repro.workloads.inputs import plant_matches, protein_stream
from repro.workloads.synth import protomata_like

# A few hand-written PROSITE-style motifs (zinc-finger-ish shapes):
#   C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H
HAND_MOTIFS = [
    ("zf-C2H2", r"C.{2,4}C.{3}[LIVMFYWC].{8}H.{3,5}H"),
    ("eph-A", r"[DE]{2}[LIVM].{4,12}C[FY]"),
    ("walker-A", r"[AG].{4}GK[ST]"),
]


def main() -> None:
    print("hand-written motifs:")
    for name, motif in HAND_MOTIFS:
        analysis = analyze_pattern(motif)
        gaps = [
            f"{{{i.lo},{i.hi}}}{'A' if i.treat_as_ambiguous else 'U'}"
            for i in analysis.instances
        ]
        print(f"  {name:10s} {motif}")
        print(f"             gaps: {' '.join(gaps)}  (A=ambiguous, U=unambiguous)")

    suite = protomata_like(total=40)
    rules = HAND_MOTIFS + suite.patterns()[:20]
    compiled = compile_ruleset(rules)
    print(
        f"\ncompiled {len(compiled.patterns)} motifs: "
        f"{compiled.network.ste_count()} STEs, "
        f"{compiled.network.bit_vector_count()} bit-vector modules, "
        f"{compiled.network.counter_count()} counters"
    )

    mapping = map_network(compiled.network)
    area = area_of_mapping(mapping)
    print(
        f"placement: {mapping.bank.pes_used} PEs, "
        f"{mapping.bank.bv_modules_used} physical bit-vector modules "
        f"({mapping.bank.bv_bits_used} bits used, "
        f"{mapping.bank.bv_waste_bits} waste)"
    )
    print(f"area: {area.total_mm2:.4f} mm^2 (waste {area.waste_mm2:.4f} mm^2)")

    # scan a synthetic proteome with planted motif hits
    database = protein_stream(20000, seed=11)
    database = plant_matches(database, [m for _, m in HAND_MOTIFS], seed=12, density=0.01)
    sim = NetworkSimulator(compiled.network)
    sim.run(database)
    by_rule: dict[str, int] = {}
    for position, rule in sim.distinct_reports():
        by_rule[rule] = by_rule.get(rule, 0) + 1
    print(f"\nscanned {len(database)} residues, matches per motif:")
    for rule, count in sorted(by_rule.items(), key=lambda kv: -kv[1])[:10]:
        print(f"  {rule:14s} {count}")


if __name__ == "__main__":
    main()
