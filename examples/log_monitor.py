#!/usr/bin/env python3
"""Runtime verification: sliding-window monitoring with bounded repetition.

Section 3.2.1 notes that the bit-vector operations (set lowest bit,
shift, disjunction of high-order bits) are "similar to how queues and
sliding windows are used for runtime verification with metric temporal
logic (MTL)": the interval operators [m,n] of MTL are the counting
operators {m,n} of regexes.

This script encodes MTL-ish monitoring properties over a byte-encoded
event log (one event = one byte) as counting regexes and runs them on
the simulated hardware:

  * "alarm A is followed by acknowledgment K within 3..20 events"
    -- violation pattern: A [^K]{20} (20 non-acks after an alarm);
  * "no burst of 5+ errors within any window" -- E{5};
  * "a request R gets a response P after exactly 4..8 events"
    -- R .{3,7} P as the service-level check.

Run:  python examples/log_monitor.py
"""

import random

from repro.matching import RulesetMatcher

EVENTS = {
    "A": "alarm",
    "K": "ack",
    "E": "error",
    "R": "request",
    "P": "response",
    ".": "heartbeat",
}

MONITORS = [
    # violation monitors: a report = property violated at that offset
    ("missed-ack", r"A[^K]{20}"),          # alarm never acknowledged in time
    ("error-burst", r"E{5}"),              # >= 5 consecutive errors
    ("slow-response", r"R[^P]{8}"),        # no response within 8 events
    # service-level match: response arrived inside the 4..8 window
    ("in-window-response", r"R.{3,7}P"),
]


def synthesize_log(length: int, seed: int) -> bytes:
    """A plausible event stream with a few planted violations."""
    rng = random.Random(seed)
    log = []
    i = 0
    while len(log) < length:
        roll = rng.random()
        if roll < 0.05:
            log.append("A")
            # acknowledged quickly most of the time
            delay = rng.randint(2, 12) if rng.random() < 0.8 else 30
            log.extend("." * min(delay, 40))
            if delay <= 20:
                log.append("K")
        elif roll < 0.10:
            burst = rng.randint(1, 7)
            log.extend("E" * burst)
        elif roll < 0.2:
            log.append("R")
            delay = rng.randint(2, 12)
            log.extend("." * delay)
            log.append("P")
        else:
            log.append(".")
    return "".join(log[:length]).encode()


def main() -> None:
    matcher = RulesetMatcher(MONITORS)
    res = matcher.resources()
    print(
        f"{res.rules_compiled} monitors compiled: {res.stes} STEs, "
        f"{res.counters} counters, {res.bit_vectors} bit vectors "
        f"({res.area_mm2 * 1000:.1f} x10^-3 mm^2)"
    )
    for rule_id, pattern in MONITORS:
        from repro.analysis import analyze_pattern

        verdict = analyze_pattern(pattern)
        kinds = [
            "bit-vector" if inst.treat_as_ambiguous else "counter"
            for inst in verdict.instances
        ]
        print(f"  {rule_id:20s} {pattern:14s} windows -> {', '.join(kinds)}")

    log = synthesize_log(20000, seed=13)
    result = matcher.scan(log)
    print(f"\nmonitored {result.bytes_scanned} events "
          f"({result.energy_nj_per_byte:.4f} nJ per event):")
    for rule_id, _ in MONITORS:
        ends = result.matches.get(rule_id, [])
        kind = "OK (no events)" if not ends else f"{len(ends)} event(s)"
        label = "violations" if rule_id != "in-window-response" else "matches"
        print(f"  {rule_id:20s} {kind:18s} "
              f"first at {ends[0] if ends else '-'} ({label})")


if __name__ == "__main__":
    main()
