#!/usr/bin/env python3
"""Network intrusion detection: a Snort-like ruleset on HTTP traffic.

This is the workload class the paper's introduction motivates: IDS
rules with bounded repetition (overlong-header checks, digit runs,
payload gaps) matched at line rate.  The script compiles a synthetic
Snort-like suite at several unfolding thresholds, simulates the same
traffic through each configuration, and prints the node/energy/area
sweep -- a miniature of Figures 9 and 10.

Run:  python examples/network_ids.py
"""

from repro.compiler.mapping import map_network
from repro.experiments.runner import emit_suite, format_table, prep_rules
from repro.hardware.cost import area_of_mapping, energy_of_run
from repro.hardware.simulator import NetworkSimulator
from repro.workloads.inputs import plant_matches, stream_for_style
from repro.workloads.synth import snort_like


def main() -> None:
    suite = snort_like(total=120)
    print(f"suite: {suite.name} ({len(suite.rules)} rules) -- {suite.description}")

    prepped = prep_rules(suite)
    print(f"supported rules after parsing/analysis: {len(prepped)}")

    ambiguous = sum(
        1 for rule in prepped if any(rule.ambiguous.values())
    )
    counting = sum(1 for rule in prepped if rule.ambiguous)
    print(f"rules with counting: {counting}, counter-ambiguous: {ambiguous}\n")

    # 16 KiB of HTTP-flavoured traffic with planted true positives.
    background = stream_for_style("network", 16384, seed=7)
    data = plant_matches(
        background, [r.pattern.source for r in prepped[:30]], seed=8, density=0.03
    )

    rows = []
    reference_reports = None
    for threshold in (5, 25, 100, float("inf")):
        network = emit_suite(prepped, threshold)
        mapping = map_network(network)
        sim = NetworkSimulator(network)
        sim.run(data)
        energy = energy_of_run(sim.stats, mapping)
        area = area_of_mapping(mapping)
        reports = sim.distinct_reports()
        if reference_reports is None:
            reference_reports = reports
        assert reports == reference_reports, "configs must agree on matches"
        label = "all" if threshold == float("inf") else f"{threshold:g}"
        rows.append(
            [
                label,
                network.node_count(),
                network.counter_count(),
                network.bit_vector_count(),
                mapping.bank.cam_arrays_used,
                f"{energy.nj_per_byte:.4f}",
                f"{area.total_mm2:.4f}",
                len(reports),
            ]
        )

    print(
        format_table(
            [
                "threshold",
                "#nodes",
                "#ctr",
                "#bv",
                "#arrays",
                "energy nJ/B",
                "area mm2",
                "matches",
            ],
            rows,
            title="Snort-like suite vs unfolding threshold",
        )
    )
    full = float(rows[-1][5])
    best = min(float(r[5]) for r in rows)
    print(
        f"\nenergy reduction vs unfold-all: {100 * (1 - best / full):.0f}% "
        f"(paper reports up to 76% on the real Snort set)"
    )


if __name__ == "__main__":
    main()
