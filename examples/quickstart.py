#!/usr/bin/env python3
"""Quickstart: one pattern through the whole codesign stack.

Takes the paper's running example ``a(bc){1,3}d`` (Figure 4) from
source text to: static analysis verdict, compiled MNRL network,
hardware placement, functional simulation, and Table 2-based cost
accounting.

Run:  python examples/quickstart.py
"""

from repro import (
    NetworkSimulator,
    analyze_pattern,
    area_of_mapping,
    compile_pattern,
    energy_of_run,
    map_network,
)
from repro.mnrl.serialize import dumps


def main() -> None:
    pattern = r"a(bc){1,3}d"
    print(f"pattern: {pattern}\n")

    # 1. Static analysis (Section 3): is the counting occurrence
    #    counter-ambiguous?
    analysis = analyze_pattern(pattern, record_witness=True)
    for inst in analysis.instances:
        verdict = "ambiguous" if inst.ambiguous else "unambiguous"
        print(
            f"occurrence #{inst.instance} {{{inst.lo},{inst.hi}}}: "
            f"counter-{verdict} "
            f"({inst.pairs_created} token pairs explored)"
        )

    # 2. Compile to the extended MNRL (Section 4.2).  The verdict
    #    selects a counter module here (cf. Figure 4(d)).
    compiled = compile_pattern(pattern)
    print(f"\ndecisions: { {k: v.value for k, v in compiled.decisions.items()} }")
    print(
        f"network: {compiled.ste_count} STEs, "
        f"{compiled.counter_count} counters, "
        f"{compiled.bit_vector_count} bit vectors"
    )
    print("\nMNRL (excerpt):")
    text = dumps(compiled.network)
    print("\n".join(text.splitlines()[:14]) + "\n  ...")

    # 3. Map onto the augmented CAMA bank (Figure 5).
    mapping = map_network(compiled.network)
    print(
        f"\nplacement: {mapping.bank.pes_used} PE(s), "
        f"{mapping.bank.cam_arrays_used} CAM array(s) in use"
    )

    # 4. Simulate a stream (one byte per 2.14 GHz cycle).
    data = b"xx" + b"abcbcd" + b"yy" + b"abcbcbcd" + b"z"
    sim = NetworkSimulator(compiled.network)
    sim.run(data)
    print(f"\ninput:   {data.decode()}")
    for event in sim.reports:
        print(f"  report at byte {event.position} (rule {event.report_id!r})")

    # 5. Cost the run with the SPICE-derived Table 2 parameters.
    energy = energy_of_run(sim.stats, mapping)
    area = area_of_mapping(mapping)
    print(
        f"\nenergy: {energy.nj_per_byte:.5f} nJ/byte "
        f"(CAM {energy.cam_fj:.0f} fJ + counters {energy.counter_fj:.0f} fJ)"
    )
    print(f"area:   {area.total_um2:.0f} um^2 ({area.total_mm2:.6f} mm^2)")

    # Compare with what plain CAMA (unfold-all) would pay.
    baseline = compile_pattern(pattern, unfold_threshold=float("inf"))
    base_map = map_network(baseline.network)
    base_sim = NetworkSimulator(baseline.network)
    base_sim.run(data)
    base_energy = energy_of_run(base_sim.stats, base_map)
    print(
        f"\nunfold-all baseline: {baseline.ste_count} STEs, "
        f"{base_energy.nj_per_byte:.5f} nJ/byte"
    )
    assert sim.match_ends(data) == base_sim.match_ends(data)
    print("both designs report identical match positions")


if __name__ == "__main__":
    main()
