#!/usr/bin/env python3
"""Spam filtering: SpamAssassin-like rules and the memory question.

SpamAssassin-style rules mostly use *small* bounds (obfuscation gaps
like ``v\\W{1,3}i\\W{1,3}a...``), so the paper finds "little to no
overhead" for the augmented design there -- but the static analysis
still matters: it decides per occurrence whether a log-width counter
register suffices.  This script runs the census (a one-suite Table 1)
and demonstrates the O(log M) vs O(M) state-memory gap on both kinds
of rules.

Run:  python examples/spam_filter.py
"""

from repro import CountingSetExecutor, NetworkSimulator, analyze_pattern, compile_ruleset
from repro.workloads.inputs import mail_stream, plant_matches
from repro.workloads.stats import census
from repro.workloads.synth import spamassassin_like


def main() -> None:
    suite = spamassassin_like(total=100)
    row = census(suite)
    print(
        f"{suite.name}: total {row.total}, supported {row.supported}, "
        f"counting {row.counting}, counter-ambiguous {row.ambiguous}"
    )
    print("(paper, full set: total 3786, supported 3690, counting 459, ambiguous 279)\n")

    # The memory argument on two representative rules.
    for label, pattern in [
        ("unambiguous", r"[^0-9][0-9]{500}"),
        ("ambiguous", r"free.{2,500}offer"),
    ]:
        analysis = analyze_pattern(pattern)
        nca = analysis.nca
        scalar_plan = CountingSetExecutor(
            nca, unambiguous_states=analysis.unambiguous_counter_states()
        )
        vector_plan = CountingSetExecutor(nca, unambiguous_states=())
        print(
            f"{label:12s} {pattern:24s} "
            f"analysis-guided: {scalar_plan.memory_bits():5d} bits, "
            f"always-bit-vector: {vector_plan.memory_bits():5d} bits"
        )

    # End to end on mail text.
    compiled = compile_ruleset(suite.patterns())
    mail = mail_stream(12000, seed=21)
    mail = plant_matches(
        mail, [r.pattern for r in suite.rules[:25]], seed=22, density=0.04
    )
    sim = NetworkSimulator(compiled.network)
    sim.run(mail)
    hits = sim.distinct_reports()
    print(
        f"\ncompiled {len(compiled.patterns)} rules "
        f"({len(compiled.skipped)} skipped as unsupported); "
        f"{len(hits)} matches in {len(mail)} bytes of mail"
    )
    flagged = sorted({rule for _, rule in hits})[:8]
    print("sample flagged rules:", ", ".join(flagged))


if __name__ == "__main__":
    main()
