#!/usr/bin/env python3
"""A tour of the paper's static analysis, example by example.

Walks through the worked examples of Sections 2-3: the NCAs of
Example 2.2, the ambiguity witness of Example 3.2, the exact-vs-
approximate gap of Example 3.4, and the NP-hardness reduction of
Lemma 3.3 (subset sum encoded in counter-ambiguity).

Run:  python examples/static_analysis_tour.py
"""

from repro.analysis import analyze_exact, analyze_pattern
from repro.nca import NCAExecutor, build_nca
from repro.regex import parse, simplify
from repro.regex.ast import (
    EPSILON,
    alternation,
    collect_repeats,
    concat,
    literal,
    repeat,
)


def heading(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    heading("Example 2.2 / Figure 1: Glushkov NCAs")
    for pattern in [r".*[ab][^a]{4}", r"x(a(bc){2,3}y){4}z"]:
        nca = build_nca(simplify(parse(pattern).search_ast()))
        print(f"\n{pattern}:")
        print(nca.describe())

    heading("Example 3.2: Sigma* x{2} is counter-ambiguous")
    result = analyze_pattern(".*x{2}", method="exact", record_witness=True)
    (inst,) = result.instances
    print(f"verdict: {'ambiguous' if inst.ambiguous else 'unambiguous'}")
    print(f"witness: {inst.witness!r}")
    nca = result.nca
    executor = NCAExecutor(nca)
    executor.run(inst.witness)
    degrees = {
        f"q{q}": executor.stats.degree(q) for q in nca.states if not nca.is_pure(q)
    }
    print(f"running the witness puts token counts {degrees} on the counting state")

    heading("Example 3.4: approximate beats exact on guarded runs")
    pattern = r".*([^a-m][a-m]{60}|[^g-z][g-z]{60})"
    exact = analyze_pattern(pattern, method="exact")
    approx = analyze_pattern(pattern, method="approximate")
    hybrid = analyze_pattern(pattern, method="hybrid")
    print(f"pattern: {pattern}")
    print(f"exact:       {exact.pairs_created:6d} token pairs (Theta(n^2))")
    print(f"approximate: {approx.pairs_created:6d} token pairs (Theta(n))")
    print(f"hybrid:      {hybrid.pairs_created:6d} token pairs, conclusive={hybrid.conclusive}")

    heading("Lemma 3.3: subset sum reduces to counter-ambiguity")
    for numbers, target in [([2, 3], 5), ([2, 3], 4)]:
        a = lambda n: repeat(literal("a"), n, n)
        left = concat(
            *(alternation(a(n), EPSILON) for n in numbers), literal("#b")
        )
        right = concat(a(target), literal("#bb"))
        regex = simplify(concat(alternation(left, right), repeat(literal("b"), 2, 2)))
        instances = collect_repeats(regex)
        last = max(instances, key=lambda i: i.path)
        verdict = analyze_exact(regex).result_for(last.index).ambiguous
        solvable = "solvable" if verdict else "unsolvable"
        print(
            f"subset-sum S={numbers} T={target}: b{{2}} is "
            f"{'ambiguous' if verdict else 'unambiguous'} -> instance {solvable}"
        )


if __name__ == "__main__":
    main()
