"""Edge-case tests for the functional simulator."""

import pytest

from repro.compiler.pipeline import compile_pattern
from repro.hardware.simulator import NetworkSimulator, simulate
from repro.mnrl.network import Network
from repro.mnrl.nodes import STE, StartType
from repro.regex.charclass import CharClass


class TestDegenerateInputs:
    def test_empty_input(self):
        sim = NetworkSimulator(compile_pattern("ab").network)
        assert sim.run(b"") == []
        assert sim.stats.cycles == 0

    def test_single_byte(self):
        sim = NetworkSimulator(compile_pattern("a").network)
        assert sim.match_ends(b"a") == [1]
        assert sim.match_ends(b"b") == []

    def test_binary_bytes(self):
        sim = NetworkSimulator(compile_pattern(r"\x00\xff{2,3}").network)
        assert sim.match_ends(b"\x00\xff\xff") == [3]

    def test_long_input_no_state_leak(self):
        sim = NetworkSimulator(compile_pattern("^ab").network)
        sim.run(b"ab" + b"x" * 500)
        # anchored match only once, nothing simmering afterwards
        assert [e.position for e in sim.reports] == [2]


class TestEmptyAndTinyNetworks:
    def test_empty_network(self):
        network = Network("empty")
        reports, stats = simulate(network, b"abc")
        assert reports == []
        assert stats.cycles == 3

    def test_single_reporting_ste(self):
        network = Network("one")
        network.add(
            STE("s", CharClass.of_char("x"), start=StartType.ALL_INPUT, report=True)
        )
        reports, _ = simulate(network, b"xyx")
        assert [r.position for r in reports] == [1, 3]


class TestReuse:
    def test_reset_between_streams(self):
        sim = NetworkSimulator(compile_pattern("a{2,3}").network)
        first = sim.match_ends(b"aa")
        second = sim.match_ends(b"aa")
        assert first == second == [2]

    def test_interleaved_runs_are_independent(self):
        network = compile_pattern("ab{2,4}c").network
        sim1 = NetworkSimulator(network)
        sim2 = NetworkSimulator(network)
        sim1.run(b"ab")
        assert sim2.match_ends(b"abbc") == [4]

    def test_stats_reset(self):
        sim = NetworkSimulator(compile_pattern("a").network)
        sim.run(b"aaa")
        sim.reset()
        sim.run(b"a")
        assert sim.stats.cycles == 1
        assert sim.stats.ste_activations == 1


class TestStartOfDataCounters:
    def test_leading_repeat_anchored(self):
        sim = NetworkSimulator(compile_pattern("^(ab){2,3}c").network)
        assert sim.match_ends(b"ababc") == [5]
        sim.reset()
        assert sim.match_ends(b"xababc") == []

    def test_leading_bitvector_all_input(self):
        sim = NetworkSimulator(compile_pattern("[ab]{3,5}c").network)
        assert sim.match_ends(b"zababc") == [6]
