"""Behavioral tests for the functional simulator's modules and timing."""

import pytest

from repro.compiler.pipeline import compile_pattern
from repro.hardware.simulator import NetworkSimulator, simulate
from repro.mnrl.network import Network
from repro.mnrl.nodes import BitVectorNode, CounterNode, STE, StartType
from repro.regex.charclass import CharClass


def cls(text):
    return CharClass.of_string(text)


class TestCounterModule:
    """Hand-wired counter for (b){2,3} entered by 'a' (Fig. 6 shape)."""

    def network(self):
        net = Network()
        net.add(STE("a", cls("a"), start=StartType.ALL_INPUT))
        net.add(STE("b", cls("b")))
        net.add(STE("d", cls("d")))
        net.add(CounterNode("c", 2, 3))
        net.connect("a", "o", "b", "i")
        net.connect("a", "o", "c", "pre")
        net.connect("b", "o", "c", "fst")
        net.connect("b", "o", "c", "lst")
        net.connect("c", "en_fst", "b", "i")
        net.connect("c", "en_out", "d", "i")
        net.nodes["d"].report = True
        return net

    def test_counts_to_range(self):
        # a b b d : two bs -> in [2,3] -> d enabled -> report
        sim = NetworkSimulator(self.network())
        assert sim.match_ends(b"abbd") == [4]

    def test_below_lower_bound_blocked(self):
        sim = NetworkSimulator(self.network())
        assert sim.match_ends(b"abd") == []

    def test_above_upper_bound_blocked(self):
        sim = NetworkSimulator(self.network())
        assert sim.match_ends(b"abbbbd") == []

    def test_reset_on_reentry(self):
        # first attempt dies (only 1 b); fresh 'a' restarts the count
        sim = NetworkSimulator(self.network())
        assert sim.match_ends(b"abxabbd") == [7]

    def test_counter_ops_accounted(self):
        sim = NetworkSimulator(self.network())
        sim.run(b"abbd")
        assert sim.stats.counter_ops == 2  # two cycles with fst/lst events


class TestBitVectorModule:
    """Hand-wired bit vector for [ab]{2,3} entered by 'a' (Fig. 7)."""

    def network(self):
        net = Network()
        net.add(STE("pre", cls("a"), start=StartType.ALL_INPUT))
        net.add(STE("body", cls("ab")))
        net.add(STE("out", cls("c")))
        net.add(BitVectorNode("v", 2, 3))
        net.connect("pre", "o", "v", "pre")
        net.connect("pre", "o", "body", "i")
        net.connect("body", "o", "v", "body")
        net.connect("v", "en_body", "body", "i")
        net.connect("v", "en_out", "out", "i")
        net.nodes["out"].report = True
        return net

    def test_window_reporting(self):
        sim = NetworkSimulator(self.network())
        # a then bb (count 2..) then c
        assert sim.match_ends(b"abbc") == [4]

    def test_count_one_blocked(self):
        sim = NetworkSimulator(self.network())
        assert sim.match_ends(b"abc") == []

    def test_multiple_tokens_tracked(self):
        # overlapping entries: 'aa' enters twice; both counts live in
        # the vector simultaneously (the thing a scalar cannot do)
        sim = NetworkSimulator(self.network())
        ends = sim.match_ends(b"aabc")
        assert ends == [4]

    def test_reset_on_body_mismatch(self):
        sim = NetworkSimulator(self.network())
        assert sim.match_ends(b"abxbbc") == []

    def test_weighted_ops(self):
        sim = NetworkSimulator(self.network())
        sim.run(b"abb")
        assert sim.stats.bit_vector_ops >= 2
        assert 0 < sim.stats.bit_vector_weighted_ops < sim.stats.bit_vector_ops


class TestStartTypes:
    def test_start_of_data_only_first_cycle(self):
        compiled = compile_pattern("^ab")
        sim = NetworkSimulator(compiled.network)
        assert sim.match_ends(b"ab") == [2]
        sim2 = NetworkSimulator(compiled.network)
        assert sim2.match_ends(b"xab") == []

    def test_all_input_any_cycle(self):
        compiled = compile_pattern("ab")
        sim = NetworkSimulator(compiled.network)
        assert sim.match_ends(b"xxabxab") == [4, 7]

    def test_anchored_counting_module_start(self):
        compiled = compile_pattern("^a{3}b")
        sim = NetworkSimulator(compiled.network)
        assert sim.match_ends(b"aaab") == [4]
        sim.reset()
        assert sim.match_ends(b"xaaab") == []


class TestNestedModules:
    def test_module_to_module_same_cycle(self):
        # nested counters: outer lst driven by inner en_out
        compiled = compile_pattern("^(x(ab){2}y){2}z")
        sim = NetworkSimulator(compiled.network)
        assert sim.match_ends(b"xababyxababyz") == [13]
        sim.reset()
        assert sim.match_ends(b"xababyxabyz") == []

    def test_topological_order_stable(self):
        compiled = compile_pattern("^(x(ab){2}y){2}z")
        sim = NetworkSimulator(compiled.network)
        # inner counters must be evaluated before outer ones
        order = sim.module_order
        assert len(order) == compiled.network.counter_count()


class TestStats:
    def test_cycle_and_report_accounting(self):
        reports, stats = simulate(compile_pattern("ab").network, b"abab")
        assert stats.cycles == 4
        assert stats.reports == len(reports) == 2

    def test_ste_activation_counting(self):
        _, stats = simulate(compile_pattern("a").network, b"aaa")
        assert stats.ste_activations == 3

    def test_reset_clears_state(self):
        sim = NetworkSimulator(compile_pattern("ab").network)
        sim.run(b"ab")
        sim.reset()
        assert sim.stats.cycles == 0
        assert sim.reports == []
