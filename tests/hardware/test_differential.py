"""Differential tests: the hardware simulator vs the derivative oracle.

The compiled network (whatever mix of counters, bit vectors, and
unfolded STEs the policy picked) must report exactly the oracle's
streaming match ends.  This is the hardware-level analogue of the
three-engine agreement property in tests/nca.
"""

import random

import pytest

from repro.compiler.pipeline import compile_pattern
from repro.hardware.simulator import NetworkSimulator
from repro.regex.oracle import match_ends
from repro.regex.parser import parse
from repro.regex.rewrite import simplify

from tests.helpers import random_strings

PATTERNS = [
    r"a(bc){2,3}d",          # counter (Fig. 6's running example)
    r"a[ab]{2,4}b",          # bit vector (Fig. 7's running example)
    r"^a{3}b",               # anchored counter
    r"[^a]a{2,5}",           # guarded run counter
    r"x.{2,6}y",             # wildcard-gap bit vector
    r"(ab|cd){2,3}e",        # alternation body counter
    r"x(a(bc){2}y){2}z",     # nested counters
    r"a{2,4}b{3,5}",         # two modules in sequence
    r"(a|b){2}c{2,4}",       # unfold + module mix
    r"^(ab){2,4}$",          # end-anchored (reports filtered by caller)
]

THRESHOLDS = [0, 3, float("inf")]


@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_network_matches_oracle(pattern, threshold):
    compiled = compile_pattern(pattern, unfold_threshold=threshold)
    sim = NetworkSimulator(compiled.network)
    parsed = parse(pattern)
    search = simplify(parsed.search_ast())
    alphabet = "abcdxyz"
    for text in random_strings(alphabet, 30, 16, seed=hash(pattern) & 0xFFFF):
        want = [e for e in match_ends(search, text) if e >= 1]
        got = sim.match_ends(text)
        assert got == want, (pattern, threshold, text)


@pytest.mark.parametrize("pattern", PATTERNS[:6])
def test_thresholds_report_identically(pattern):
    """All compilation policies realize the same language."""
    data = "".join(
        random.Random(99).choice("abcdxyz") for _ in range(300)
    )
    reference = None
    for threshold in THRESHOLDS:
        compiled = compile_pattern(pattern, unfold_threshold=threshold)
        got = NetworkSimulator(compiled.network).match_ends(data)
        if reference is None:
            reference = got
        else:
            assert got == reference, (pattern, threshold)


def test_planted_matches_are_found():
    """Sampled members of the language must fire reports at the right
    offsets when embedded in noise."""
    from repro.regex.sample import sample_match

    rng = random.Random(5)
    for pattern in [r"a(bc){2,3}d", r"[^a]a{2,5}", r"x.{2,6}y"]:
        compiled = compile_pattern(pattern)
        ast = simplify(parse(pattern).ast)
        sim = NetworkSimulator(compiled.network)
        for _ in range(10):
            needle = sample_match(ast, rng)
            noise = bytes(rng.choice(b"qrstuv") for _ in range(rng.randint(0, 20)))
            data = noise + needle
            ends = sim.match_ends(data)
            assert len(data) in ends, (pattern, needle, noise)
