"""Property-based differential tests over the compiled hardware.

Random counting regexes are compiled at several unfolding thresholds
and simulated against the derivative oracle.  This end-to-end property
is the reason the compiler's module-safety gate exists: without it,
randomly generated multi-state bodies with overlapping classes find
single-register counter mis-counts within a few hundred examples.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler.emit import emit_network, plan_decisions
from repro.compiler.pipeline import compute_module_unsafe
from repro.analysis.hybrid import analyze_hybrid
from repro.hardware.simulator import NetworkSimulator
from repro.regex import charclass as cc
from repro.regex.ast import Sym, concat, star
from repro.regex.oracle import match_ends
from repro.regex.rewrite import simplify

from tests.helpers import inputs, regexes


@settings(max_examples=120, deadline=None)
@given(regexes(max_bound=4), inputs(max_len=12), st.sampled_from([0, 3, float("inf")]))
def test_compiled_network_matches_oracle(ast, data, threshold):
    simplified = simplify(ast)
    search = concat(star(Sym(cc.SIGMA)), simplified)
    analysis = analyze_hybrid(simplify(search))
    ambiguous = {r.instance: r.treat_as_ambiguous for r in analysis.instances}
    unsafe = compute_module_unsafe(analysis, ambiguous)
    decisions = plan_decisions(simplified, ambiguous, threshold, unsafe)
    try:
        emitted = emit_network(simplified, decisions, anchored_start=False)
    except Exception:
        # degenerate regexes (empty language/epsilon) have no hardware
        return
    if not emitted.network.nodes:
        return
    if emitted.matches_empty:
        # nullable patterns match trivially at every offset under search
        # semantics; the hardware cannot (and should not) report empty
        # matches -- callers consult the matches_empty flag instead
        return
    sim = NetworkSimulator(emitted.network)
    want = [e for e in match_ends(simplify(search), data) if e >= 1]
    assert sim.match_ends(data) == want
