"""Tests for the energy/area cost model (Figures 8 and 10 arithmetic)."""

import pytest

from repro.compiler.mapping import map_network
from repro.compiler.pipeline import compile_pattern, compile_ruleset
from repro.hardware.cost import (
    area_of_mapping,
    bit_vector_cost,
    counter_cost,
    energy_of_run,
    energy_per_byte_upper_bound,
    unfolded_cost,
)
from repro.hardware.params import BIT_VECTOR, CAM_ARRAY, COUNTER
from repro.hardware.simulator import NetworkSimulator


class TestMicrobenchArithmetic:
    def test_unfolded_scales_linearly(self):
        e1, a1 = unfolded_cost(100)
        e2, a2 = unfolded_cost(200)
        assert e2 == pytest.approx(2 * e1)
        assert a2 == pytest.approx(2 * a1)

    def test_one_array_worth(self):
        energy, area = unfolded_cost(256)
        assert energy == pytest.approx(CAM_ARRAY.energy_fj)
        assert area == pytest.approx(CAM_ARRAY.area_um2)

    def test_counter_flat(self):
        assert counter_cost() == (COUNTER.energy_fj, COUNTER.area_um2)

    def test_bit_vector_proportional(self):
        energy, area = bit_vector_cost(2000)
        assert energy == pytest.approx(BIT_VECTOR.energy_fj)
        assert area == pytest.approx(BIT_VECTOR.area_um2)
        half_e, half_a = bit_vector_cost(1000)
        assert half_e == pytest.approx(energy / 2)
        assert half_a == pytest.approx(area / 2)

    def test_fig8_counter_wins_by_orders_of_magnitude(self):
        """Paper: counters beat unfolding by orders of magnitude at
        large bounds and win even for small bounds."""
        for n, min_ratio in [(8, 1.5), (64, 10), (1024, 200)]:
            unfold_energy, _ = unfolded_cost(n)
            counter_energy, _ = counter_cost()
            assert unfold_energy / counter_energy > min_ratio

    def test_fig8_bitvector_constant_factor(self):
        """Bit vector vs unfold is a constant ~39x energy / ~4.8x area."""
        for n in (16, 256, 2000):
            ue, ua = unfolded_cost(n)
            be, ba = bit_vector_cost(n)
            assert ue / be == pytest.approx(39.2, rel=0.01)
            assert ua / ba == pytest.approx(4.8, rel=0.01)


class TestMappedAccounting:
    def test_area_includes_waste(self):
        rs = compile_ruleset([r"a.{2,300}b"])
        mapping = map_network(rs.network)
        report = area_of_mapping(mapping)
        # 300 used bits, 1700 waste bits of one module
        assert report.bit_vector_um2 == pytest.approx(300 / 2000 * BIT_VECTOR.area_um2)
        assert report.waste_um2 == pytest.approx(1700 / 2000 * BIT_VECTOR.area_um2)
        assert report.total_mm2 > 0

    def test_no_waste_without_bit_vectors(self):
        rs = compile_ruleset([r"[^a]a{2,50}"])
        mapping = map_network(rs.network)
        assert area_of_mapping(mapping).waste_um2 == 0

    def test_energy_of_run_composition(self):
        compiled = compile_pattern(r"[^a]a{2,10}")
        mapping = map_network(compiled.network)
        sim = NetworkSimulator(compiled.network)
        sim.run(b"baaaa" * 10)
        report = energy_of_run(sim.stats, mapping)
        expected_cam = mapping.bank.cam_arrays_used * 50 * CAM_ARRAY.energy_fj
        assert report.cam_fj == pytest.approx(expected_cam)
        assert report.counter_fj == sim.stats.counter_ops * COUNTER.energy_fj
        assert report.nj_per_byte > 0

    def test_upper_bound_dominates_measurement(self):
        compiled = compile_pattern(r"x.{2,40}y")
        mapping = map_network(compiled.network)
        sim = NetworkSimulator(compiled.network)
        sim.run(b"ab" * 64)
        measured = energy_of_run(sim.stats, mapping).nj_per_byte
        bound = energy_per_byte_upper_bound(mapping)
        assert measured <= bound * 1.0001

    def test_augmented_beats_unfolding_on_energy(self):
        """The headline effect at the whole-pattern level."""
        pattern = r"[^a]a{2,900}"
        data = b"b" + b"a" * 500
        small = compile_pattern(pattern, unfold_threshold=0)
        full = compile_pattern(pattern, unfold_threshold=float("inf"))
        e_small = _run_energy(small, data)
        e_full = _run_energy(full, data)
        # at mapped (whole-array) granularity a single rule is floored
        # at one CAM array, so the win here is ~4x; suite-level wins
        # (Fig. 10) are checked in the integration tests
        assert e_small < e_full / 3


def _run_energy(compiled, data):
    mapping = map_network(compiled.network)
    sim = NetworkSimulator(compiled.network)
    sim.run(data)
    return energy_of_run(sim.stats, mapping).nj_per_byte
