"""Tests for the CAMA structural containers (PE/Bank allocation)."""

import pytest

from repro.hardware.cama import Bank, BankAllocationError, ProcessingElement


class TestProcessingElement:
    def test_capacity_accounting(self):
        pe = ProcessingElement(index=0)
        assert pe.ste_room == 512
        assert pe.counter_room == 8
        assert pe.bv_bits_room == 2000
        pe.place(["s1", "s2"], ["c1"], [("v1", 300)])
        assert pe.ste_room == 510
        assert pe.counter_room == 7
        assert pe.bv_bits_room == 1700

    def test_overflow_rejected(self):
        pe = ProcessingElement(index=0)
        with pytest.raises(BankAllocationError):
            pe.place([f"s{i}" for i in range(513)], [], [])
        with pytest.raises(BankAllocationError):
            pe.place([], [f"c{i}" for i in range(9)], [])
        with pytest.raises(BankAllocationError):
            pe.place([], [], [("v", 2001)])

    def test_failed_place_is_atomic(self):
        pe = ProcessingElement(index=0)
        pe.place(["a"], [], [])
        with pytest.raises(BankAllocationError):
            pe.place(["b"], [], [("v", 9999)])
        assert pe.stes == ["a"]
        assert pe.bv_segments == []

    def test_cam_array_occupancy(self):
        pe = ProcessingElement(index=0)
        assert pe.cam_arrays_used == 0
        pe.place(["s"], [], [])
        assert pe.cam_arrays_used == 1
        pe.place([f"t{i}" for i in range(256)], [], [])
        assert pe.cam_arrays_used == 2

    def test_bv_waste_only_when_powered(self):
        pe = ProcessingElement(index=0)
        assert pe.bv_waste_bits == 0
        pe.place([], [], [("v", 600)])
        assert pe.bv_waste_bits == 1400


class TestBank:
    def test_grows_pes_and_aggregates(self):
        bank = Bank()
        pe1 = bank.new_pe()
        pe2 = bank.new_pe()
        pe1.place(["a", "b"], ["c"], [])
        pe2.place(["d"], [], [("v", 100)])
        assert bank.pes_used == 2
        assert bank.ste_count == 3
        assert bank.counter_count == 1
        assert bank.cam_arrays_used == 2
        assert bank.bv_modules_used == 1
        assert bank.bv_bits_used == 100
        assert bank.bv_waste_bits == 1900

    def test_bank_and_array_rollup(self):
        bank = Bank()
        for _ in range(9):
            bank.new_pe()
        assert bank.arrays_used == 2  # 8 PEs per array
        assert bank.banks_used == 1
        for _ in range(128):
            bank.new_pe()
        assert bank.banks_used == 2
