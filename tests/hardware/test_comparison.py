"""Tests for the prior-architecture memory comparison (Section 1 math)."""

import pytest

from repro.hardware.comparison import (
    ARCHITECTURES,
    counting_memory_bits,
    information_theoretic_bits,
    ste_memory_bits,
)


class TestPaperArithmetic:
    def test_ap_and_ca_256_bits(self):
        assert ste_memory_bits("AP") == 256
        assert ste_memory_bits("CA") == 256

    def test_impala_cama_16_to_32(self):
        """'each STE requires 16 to 32 memory bits' (Section 1)."""
        assert ste_memory_bits("Impala") == 32
        assert ste_memory_bits("CAMA") == 16

    def test_bound_1024_needs_16384_bits(self):
        """'a modest counting operator with upper limit 1024 requires
        at least 16384 memory bits'."""
        assert counting_memory_bits("CAMA", 1024, "unfold") == 16384
        assert counting_memory_bits("Impala", 1024, "unfold") == 32768

    def test_information_content_is_ten_bits(self):
        """'the information required ... may be only 10 bits'."""
        assert information_theoretic_bits(1023) == 10
        assert information_theoretic_bits(1024) == 11

    def test_counter_matches_information_bound(self):
        for bound in (7, 100, 1023, 65535):
            assert counting_memory_bits("CAMA", bound, "counter") == (
                information_theoretic_bits(bound)
            )

    def test_bitvector_linear(self):
        assert counting_memory_bits("CAMA", 500, "bitvector") == 500

    def test_savings_ordering(self):
        for arch in ARCHITECTURES:
            unfold = counting_memory_bits(arch.name, 1024, "unfold")
            vector = counting_memory_bits(arch.name, 1024, "bitvector")
            counter = counting_memory_bits(arch.name, 1024, "counter")
            assert counter < vector < unfold

    def test_unknown_architecture(self):
        with pytest.raises(KeyError):
            ste_memory_bits("TPU")

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            counting_memory_bits("AP", 10, "magic")
