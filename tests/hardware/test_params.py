"""Tests for the Table 2 parameters and CAMA geometry."""

from repro.hardware.params import (
    BIT_VECTOR,
    CAM_ARRAY,
    CLOCK_GHZ,
    COUNTER,
    GEOMETRY,
    clock_period_ps,
    module_delay_slack_ps,
)


class TestTable2Values:
    """The published SPICE scalars, verbatim."""

    def test_cam_array(self):
        assert CAM_ARRAY.energy_fj == 16780
        assert CAM_ARRAY.delay_ps == 325
        assert CAM_ARRAY.area_um2 == 3919

    def test_counter(self):
        assert COUNTER.energy_fj == 288
        assert COUNTER.delay_ps == 101
        assert COUNTER.area_um2 == 237

    def test_bit_vector(self):
        assert BIT_VECTOR.energy_fj == 3340
        assert BIT_VECTOR.delay_ps == 71
        assert BIT_VECTOR.area_um2 == 6382


class TestTimingClaim:
    """Section 4.3: modules fit in the cycle, clock stays 2.14 GHz."""

    def test_state_transition_is_critical_path(self):
        assert clock_period_ps() == CAM_ARRAY.delay_ps

    def test_modules_have_positive_slack(self):
        for name, slack in module_delay_slack_ps().items():
            assert slack > 0, name

    def test_clock(self):
        assert CLOCK_GHZ == 2.14


class TestGeometry:
    def test_fig5_hierarchy(self):
        assert GEOMETRY.stes_per_pe == 512  # two 256-STE CAM arrays
        assert GEOMETRY.counters_per_pe == 8
        assert GEOMETRY.bit_vector_bits_per_pe == 2000
        assert GEOMETRY.pes_per_array == 8
        assert GEOMETRY.arrays_per_bank == 16

    def test_derived_capacities(self):
        assert GEOMETRY.pes_per_bank == 128
        assert GEOMETRY.stes_per_bank == 65536
        assert GEOMETRY.counters_per_bank == 1024

    def test_counter_width_covers_bounds(self):
        # a 17-bit counter covers every bound up to 2^17 - 1
        assert (1 << GEOMETRY.counter_width_bits) - 1 >= 100_000
