"""Unit tests for network construction and validation."""

import pytest

from repro.mnrl.network import Network
from repro.mnrl.nodes import BitVectorNode, CounterNode, STE, StartType
from repro.regex.charclass import CharClass


def cls(text="a"):
    return CharClass.of_string(text)


def small_network() -> Network:
    net = Network("test")
    net.add(STE("a", cls("a")))
    net.add(STE("b", cls("b")))
    net.add(CounterNode("c", 1, 3))
    net.connect("a", "o", "b", "i")
    net.connect("b", "o", "c", "fst")
    net.connect("b", "o", "c", "lst")
    net.connect("a", "o", "c", "pre")
    net.connect("c", "en_fst", "b", "i")
    return net


class TestConstruction:
    def test_duplicate_id_rejected(self):
        net = Network()
        net.add(STE("x", cls()))
        with pytest.raises(ValueError):
            net.add(STE("x", cls()))

    def test_unknown_node_rejected(self):
        net = Network()
        net.add(STE("x", cls()))
        with pytest.raises(KeyError):
            net.connect("x", "o", "ghost", "i")

    def test_bad_ports_rejected(self):
        net = Network()
        net.add(STE("x", cls()))
        net.add(STE("y", cls()))
        with pytest.raises(ValueError):
            net.connect("x", "en_out", "y", "i")
        with pytest.raises(ValueError):
            net.connect("x", "o", "y", "pre")

    def test_fst_requires_ste_source(self):
        net = Network()
        net.add(CounterNode("c1", 1, 3))
        net.add(CounterNode("c2", 1, 3))
        with pytest.raises(ValueError):
            net.connect("c1", "en_out", "c2", "fst")

    def test_duplicate_connections_deduped(self):
        net = small_network()
        before = len(net.connections)
        net.connect("a", "o", "b", "i")
        assert len(net.connections) == before

    def test_counts(self):
        net = small_network()
        assert net.node_count() == 3
        assert net.ste_count() == 2
        assert net.counter_count() == 1
        assert net.bit_vector_count() == 0

    def test_incoming_outgoing(self):
        net = small_network()
        assert {c.target for c in net.outgoing("a")} == {"b", "c"}
        assert {c.source for c in net.incoming("c")} == {"a", "b"}


class TestValidation:
    def test_valid_network_passes(self):
        small_network().validate()

    def test_counter_missing_fst(self):
        net = Network()
        net.add(STE("a", cls()))
        net.add(CounterNode("c", 1, 3))
        net.connect("a", "o", "c", "lst")
        net.connect("a", "o", "c", "pre")
        with pytest.raises(ValueError):
            net.validate()

    def test_counter_without_pre_needs_start(self):
        net = Network()
        net.add(STE("a", cls()))
        net.add(CounterNode("c", 1, 3))
        net.connect("a", "o", "c", "fst")
        net.connect("a", "o", "c", "lst")
        with pytest.raises(ValueError):
            net.validate()
        net.nodes["c"].start = StartType.START_OF_DATA
        net.validate()

    def test_bit_vector_needs_body(self):
        net = Network()
        net.add(STE("a", cls()))
        net.add(BitVectorNode("v", 1, 5, start=StartType.ALL_INPUT))
        with pytest.raises(ValueError):
            net.validate()
        net.connect("a", "o", "v", "body")
        net.validate()


class TestMerge:
    def test_merge_prefixes_ids(self):
        main = Network("main")
        other = small_network()
        mapping = main.merge(other, prefix="p.")
        assert mapping["a"] == "p.a"
        assert "p.c" in main.nodes
        assert main.node_count() == 3
        # connections were remapped
        assert {c.source for c in main.incoming("p.c")} == {"p.a", "p.b"}

    def test_merge_twice_is_disjoint(self):
        main = Network("main")
        other = small_network()
        main.merge(other, prefix="x.")
        main.merge(other, prefix="y.")
        assert main.node_count() == 6

    def test_bit_vector_bits(self):
        net = Network()
        net.add(STE("s", cls()))
        net.add(BitVectorNode("v1", 1, 100, start=StartType.ALL_INPUT))
        net.add(BitVectorNode("v2", 1, 50, start=StartType.ALL_INPUT))
        assert net.bit_vector_bits() == 150


class TestSurgery:
    """remove_nodes / merge_nodes / rename_nodes (pass-pipeline support)."""

    def test_remove_nodes_drops_wiring(self):
        net = small_network()
        net.remove_nodes(["c"])
        assert set(net.nodes) == {"a", "b"}
        assert all(c.source != "c" and c.target != "c" for c in net.connections)
        # the freed id can be reused
        net.add(STE("c", cls("c")))

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            small_network().remove_nodes(["ghost"])

    def test_merge_redirects_and_dedupes(self):
        net = Network("m")
        net.add(STE("p1", cls("a"), start=StartType.ALL_INPUT))
        net.add(STE("p2", cls("a"), start=StartType.ALL_INPUT))
        net.add(STE("t", cls("b"), report=True))
        net.connect("p1", "o", "t", "i")
        net.connect("p2", "o", "t", "i")
        net.merge_nodes({"p2": "p1"})
        assert set(net.nodes) == {"p1", "t"}
        assert len(net.incoming("t")) == 1  # duplicate edge collapsed
        # dedup bookkeeping stayed consistent: re-adding is a no-op
        net.connect("p1", "o", "t", "i")
        assert len(net.connections) == 1

    def test_merge_resolves_chains(self):
        net = Network("m")
        for node_id in ("x", "y", "z"):
            net.add(STE(node_id, cls("a")))
        net.add(STE("t", cls("b")))
        net.connect("z", "o", "t", "i")
        net.merge_nodes({"z": "y", "y": "x"})
        assert set(net.nodes) == {"x", "t"}
        assert net.connections[0].source == "x"

    def test_merge_self_loop_preserved(self):
        net = Network("m")
        net.add(STE("u", cls("a"), start=StartType.ALL_INPUT))
        net.add(STE("v", cls("a"), start=StartType.ALL_INPUT))
        net.connect("u", "o", "u", "i")
        net.connect("v", "o", "v", "i")
        net.merge_nodes({"v": "u"})
        assert [c for c in net.connections] == [c for c in net.outgoing("u")]
        assert net.connections[0].target == "u"

    def test_merge_cycle_rejected(self):
        net = Network("m")
        net.add(STE("u", cls("a")))
        net.add(STE("v", cls("a")))
        with pytest.raises(ValueError):
            net.merge_nodes({"u": "v", "v": "u"})

    def test_rename_rewrites_everything(self):
        net = small_network()
        net.rename_nodes({"a": "alpha", "c": "gamma"})
        assert "alpha" in net.nodes and "gamma" in net.nodes
        assert net.nodes["alpha"].id == "alpha"
        assert {c.source for c in net.incoming("gamma")} >= {"alpha", "b"}
        net.validate()

    def test_rename_collision_rejected(self):
        net = small_network()
        with pytest.raises(ValueError):
            net.rename_nodes({"a": "b"})
        with pytest.raises(ValueError):
            net.rename_nodes({"a": "same", "b": "same"})

    def test_rename_swap_allowed(self):
        net = Network("m")
        net.add(STE("u", cls("a")))
        net.add(STE("v", cls("b")))
        net.connect("u", "o", "v", "i")
        net.rename_nodes({"u": "v", "v": "u"})
        assert net.nodes["v"].symbol_set == cls("a")
        assert net.connections[0].source == "v"
        assert net.connections[0].target == "u"
