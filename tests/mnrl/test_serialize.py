"""Round-trip tests for the MNRL-style JSON serialization."""

import json

import pytest

from repro.compiler.pipeline import compile_pattern
from repro.mnrl.serialize import dumps, load, loads, network_to_dict, save


class TestRoundTrip:
    PATTERNS = [
        r"a(bc){2,3}d",        # counter module
        r"a[ab]{2,4}b",        # bit-vector module
        r"^x{3}y",             # anchored, start-of-data
        r"(ab|cd){2}[e-h]*",   # unfolded mixed
    ]

    def test_json_round_trip(self):
        for pattern in self.PATTERNS:
            network = compile_pattern(pattern).network
            restored = loads(dumps(network))
            assert restored.node_count() == network.node_count()
            assert {c for c in restored.connections} == {
                c for c in network.connections
            }
            for node_id, node in network.nodes.items():
                clone = restored.nodes[node_id]
                assert type(clone) is type(node)
                assert clone.start == node.start
                assert clone.report == node.report

    def test_symbol_sets_preserved(self):
        network = compile_pattern(r"[a-f0-3]x").network
        restored = loads(dumps(network))
        for node_id, node in network.nodes.items():
            assert restored.nodes[node_id].symbol_set == node.symbol_set

    def test_simulation_equivalence_after_round_trip(self):
        from repro.hardware.simulator import NetworkSimulator

        network = compile_pattern(r"a(bc){1,3}d").network
        restored = loads(dumps(network))
        data = b"xabcbcdabcd"
        assert (
            NetworkSimulator(restored).match_ends(data)
            == NetworkSimulator(network).match_ends(data)
        )


class TestSchemaShape:
    def test_mnrl_like_fields(self):
        network = compile_pattern(r"a{2,5}b").network
        payload = network_to_dict(network)
        assert "id" in payload and "nodes" in payload
        for node in payload["nodes"]:
            assert {"id", "type", "enable", "report", "outputDefs"} <= set(node)
            for port_def in node["outputDefs"]:
                assert {"portId", "activate"} <= set(port_def)

    def test_extension_attributes(self):
        network = compile_pattern(r".*a[ab]{3,9}b").network
        payload = network_to_dict(network)
        kinds = {node["type"] for node in payload["nodes"]}
        assert "boundedBitVector" in kinds
        bv = next(n for n in payload["nodes"] if n["type"] == "boundedBitVector")
        assert bv["attributes"]["low"] == 3
        assert bv["attributes"]["high"] == 9

    def test_valid_json(self):
        network = compile_pattern(r"ab{2,4}").network
        json.loads(dumps(network))

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            loads(json.dumps({"id": "x", "nodes": [{"id": "n", "type": "bogus"}]}))


class TestFileIO:
    def test_save_load(self, tmp_path):
        network = compile_pattern(r"a{2,4}b").network
        path = tmp_path / "net.mnrl.json"
        save(network, str(path))
        restored = load(str(path))
        assert restored.node_count() == network.node_count()
