"""Unit tests for MNRL node types."""

import pytest

from repro.mnrl.nodes import (
    BitVectorNode,
    CounterNode,
    INPUT_PORTS,
    OUTPUT_PORTS,
    STE,
    StartType,
)
from repro.regex.charclass import CharClass


class TestSTE:
    def test_defaults(self):
        ste = STE("s1", CharClass.of_char("a"))
        assert ste.start is StartType.NONE
        assert not ste.report
        assert ste.kind == "hState"

    def test_ports(self):
        assert INPUT_PORTS["hState"] == ("i",)
        assert OUTPUT_PORTS["hState"] == ("o",)


class TestCounterNode:
    def test_valid(self):
        ctr = CounterNode("c1", 2, 7)
        assert ctr.width == 17

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            CounterNode("c1", 5, 2)
        with pytest.raises(ValueError):
            CounterNode("c1", -1, 2)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            CounterNode("c1", 0, 1 << 17)
        CounterNode("c1", 0, (1 << 17) - 1)  # max value fits

    def test_ports(self):
        assert set(INPUT_PORTS["counter"]) == {"pre", "fst", "lst"}
        assert set(OUTPUT_PORTS["counter"]) == {"en_fst", "en_out"}


class TestBitVectorNode:
    def test_size_defaults_to_bound(self):
        bv = BitVectorNode("v1", 2, 100)
        assert bv.size == 100

    def test_explicit_size(self):
        bv = BitVectorNode("v1", 2, 100, size=2000)
        assert bv.size == 2000

    def test_rejects_undersized(self):
        with pytest.raises(ValueError):
            BitVectorNode("v1", 2, 100, size=50)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            BitVectorNode("v1", 9, 4)

    def test_ports(self):
        assert set(INPUT_PORTS["boundedBitVector"]) == {"pre", "body"}
        assert set(OUTPUT_PORTS["boundedBitVector"]) == {"en_body", "en_out"}
