r"""Content codec: unit cases + hypothesis round-trip properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rules.content import ContentError, decode_content, encode_content


class TestDecode:
    def test_plain_text(self):
        assert decode_content("GET /index") == (b"GET /index", False)

    def test_hex_block(self):
        assert decode_content("|41 42 43|") == (b"ABC", True)

    def test_hex_block_spacing_is_free(self):
        assert decode_content("|4142  43|")[0] == b"ABC"
        assert decode_content("|de ad|")[0] == b"\xde\xad"

    def test_mixed_text_and_hex(self):
        assert decode_content("Host|3a 20|x") == (b"Host: x", True)

    def test_escaped_specials(self):
        assert decode_content(r"a\;b")[0] == b"a;b"
        assert decode_content(r"a\"b")[0] == b'a"b'
        assert decode_content(r"a\\b")[0] == b"a\\b"
        assert decode_content(r"a\|b")[0] == b"a|b"
        assert decode_content(r"a\:b")[0] == b"a:b"

    def test_multiple_hex_blocks(self):
        data, had_hex = decode_content("|00|mid|ff|")
        assert data == b"\x00mid\xff"
        assert had_hex

    @pytest.mark.parametrize(
        "bad", ["|zz|", "|4|", "|41", "trailing\\", "|4g|"]
    )
    def test_malformed_raises_content_error(self, bad):
        with pytest.raises(ContentError):
            decode_content(bad)


class TestEncode:
    def test_printables_stay_literal(self):
        assert encode_content(b"GET /index") == "GET /index"

    def test_specials_escaped(self):
        assert encode_content(b'a;b"c') == r"a\;b\"c"

    def test_binary_lands_in_hex_blocks(self):
        assert encode_content(b"\xde\xad\xbe\xef") == "|de ad be ef|"

    def test_consecutive_binary_shares_one_block(self):
        assert encode_content(b"a\x00\x01b") == "a|00 01|b"


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=64))
def test_round_trip_any_bytes(data):
    """decode(encode(b)) is the identity for every byte string."""
    text = encode_content(data)
    decoded, _had_hex = decode_content(text)
    assert decoded == data


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=1, max_size=32))
def test_encoded_form_survives_rule_embedding(data):
    """An encoded content embeds into a full rule line and parses back
    to the same bytes (quote/escape layers compose correctly)."""
    from repro.rules.parser import parse_rule

    text = encode_content(data)
    rule = parse_rule(
        f'alert tcp any any -> any any (content:"{text}"; sid:1;)'
    )
    assert rule.payload[0].data == data
