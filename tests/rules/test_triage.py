"""Triage + loader: every rule classified, origins threaded, compile
skips folded back in; the >=2000-rule acceptance gate lives here."""

import os

import pytest

from repro.matching import RulesetMatcher
from repro.rules import load_rules, load_rules_text
from repro.rules.translate import REASONS
from repro.rules.triage import STATUSES
from repro.workloads.snort_rules import CATEGORY_MIX, corpus_text, snort_corpus

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "local.rules")


class TestFixtureCorpus:
    def test_all_classified(self):
        report = load_rules(FIXTURE).report
        assert report.total == 16
        assert sum(report.counts.values()) == report.total
        assert all(rule.status in STATUSES for rule in report.rules)

    def test_expected_counts(self):
        counts = load_rules(FIXTURE).report.counts
        assert counts == {"compiled": 3, "rewritten": 6, "rejected": 7}

    def test_rejections_carry_documented_reason_and_origin(self):
        for rule in load_rules(FIXTURE).report.rejected:
            assert rule.reason in REASONS
            assert rule.origin is not None
            file, line = rule.origin.rsplit(":", 1)
            assert file == "local.rules" and line.isdigit()

    def test_fixture_scans_known_payload(self):
        loaded = load_rules(FIXTURE)
        matcher, report = loaded.compile()
        result = matcher.scan(b"xxGET /admin HTTP/1.1\r\nuser-agent: x")
        assert "sid:1000001" in result.matches  # plain literal
        assert "sid:1000003" in result.matches  # nocase'd User-Agent
        assert sum(report.counts.values()) == report.total

    def test_accepted_rules_are_sourced_triples(self):
        for rule_id, pattern, origin in load_rules(FIXTURE).rules:
            assert rule_id.startswith("sid:")
            assert isinstance(pattern, str) and pattern
            assert origin.startswith("local.rules:")


class TestSkipReasonOrigins:
    """Satellite: compile-level skip reasons carry file:line."""

    def test_compile_skip_reason_has_origin(self):
        # the translator lets `(ab)+c` through; make a pattern the
        # compiler itself rejects via a crafted sourced rule
        matcher = RulesetMatcher([("r1", "a(?=b)", "local.rules:7")])
        assert matcher.skipped == [
            ("r1", "unsupported: lookahead group (local.rules:7)")
        ]

    def test_duplicate_skip_reason_has_origin(self):
        matcher = RulesetMatcher(
            [("r1", "abc", "a.rules:1"), ("r1", "xyz", "b.rules:9")]
        )
        (rule_id, reason), = matcher.skipped
        assert rule_id == "r1" and reason.endswith("(b.rules:9)")

    def test_originless_rules_keep_plain_reasons(self):
        matcher = RulesetMatcher([("r1", "a(?=b)")])
        assert matcher.skipped == [("r1", "unsupported: lookahead group")]

    def test_fold_compile_skips_into_triage(self):
        loaded = load_rules_text(
            'alert tcp any any -> any any (content:"ok"; sid:1;)\n'
        )
        report = loaded.report.with_compile_skips(
            [("sid:1", "unsupported: whatever (<rules>:1)")]
        )
        assert report.counts["rejected"] == 1
        rule = report.rules[0]
        assert rule.reason == "compile-skipped"
        assert "<rules>:1" in rule.detail


class TestLoader:
    def test_duplicate_sids_across_files(self, tmp_path):
        a = tmp_path / "a.rules"
        b = tmp_path / "b.rules"
        a.write_text('alert tcp any any -> any any (content:"x"; sid:5;)\n')
        b.write_text('alert tcp any any -> any any (content:"y"; sid:5;)\n')
        report = load_rules([str(a), str(b)]).report
        assert report.counts == {"compiled": 1, "rewritten": 0, "rejected": 1}
        assert report.rejected[0].reason == "duplicate-id"

    def test_sidless_rules_use_file_line_ids(self):
        loaded = load_rules_text(
            'alert tcp any any -> any any (content:"x";)\n', file="x.rules"
        )
        assert loaded.rules[0][0] == "x.rules:1"

    def test_cache_round_trip(self, tmp_path):
        loaded = load_rules(FIXTURE)
        cold, _ = loaded.compile(cache_dir=str(tmp_path))
        warm, report = loaded.compile(cache_dir=str(tmp_path))
        assert not cold.compile_info.cache_hit
        assert warm.compile_info.cache_hit
        assert sum(report.counts.values()) == report.total
        data = b"payload |deadbeef| GET /admin"
        assert cold.scan(data).matches == warm.scan(data).matches


class TestSyntheticCorpusAtScale:
    """Acceptance: >=2000 synthetic rules, zero unclassified, compiling
    through the persistent cache."""

    def test_corpus_is_deterministic(self):
        assert snort_corpus(total=50, seed=7) == snort_corpus(total=50, seed=7)
        assert snort_corpus(total=50, seed=7) != snort_corpus(total=50, seed=8)

    def test_category_mix_sums_to_one(self):
        assert sum(CATEGORY_MIX.values()) == pytest.approx(1.0)

    def test_2000_rules_fully_triaged(self):
        text = corpus_text(total=2000)
        report = load_rules_text(text, file="synthetic.rules").report
        counts = report.counts
        assert report.total == 2000
        assert sum(counts.values()) == 2000  # zero unclassified
        # the intentional reject slice (10%) and only it is rejected
        assert counts["rejected"] == 200
        assert set(report.reasons()) == {
            "negated-content", "pcre-backreference",
            "pcre-lookaround", "unsupported-option",
        }
        for rule in report.rules:
            assert rule.status in STATUSES
            if rule.status == "rejected":
                assert rule.reason in REASONS

    def test_2000_rules_compile_through_cache(self, tmp_path):
        loaded = load_rules_text(corpus_text(total=2000), file="synthetic.rules")
        cold, report = loaded.compile(cache_dir=str(tmp_path), opt_level=1)
        assert not cold.compile_info.cache_hit
        assert sum(report.counts.values()) == report.total == 2000
        assert len(report.accepted) + len(report.rejected) == 2000
        warm, _ = loaded.compile(cache_dir=str(tmp_path), opt_level=1)
        assert warm.compile_info.cache_hit
