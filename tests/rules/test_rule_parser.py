"""Rule-line tokenizer/parser unit tests."""

import pytest

from repro.rules.model import ContentOption, PcreOption, SourceLocation
from repro.rules.parser import (
    RuleSyntaxError,
    iter_rule_lines,
    parse_rule,
    split_options,
)

RULE = (
    'alert tcp $EXTERNAL_NET any -> $HOME_NET 80 '
    '(msg:"demo; with semicolon"; flow:to_server,established; '
    'content:"GET /admin"; nocase; offset:4; depth:20; '
    'pcre:"/evil[0-9]{1,3}/iR"; classtype:web-application-attack; '
    'sid:31337; rev:2;)'
)


class TestSplitOptions:
    def test_quoted_semicolons_do_not_split(self):
        assert split_options('msg:"a;b"; sid:1;') == ['msg:"a;b"', "sid:1"]

    def test_escaped_semicolons_do_not_split(self):
        assert split_options(r'content:"a\;b"; sid:1;') == [
            r'content:"a\;b"', "sid:1",
        ]

    def test_unterminated_quote_raises(self):
        with pytest.raises(RuleSyntaxError):
            split_options('msg:"open; sid:1;')

    def test_valueless_options(self):
        assert split_options("nocase; sid:1;") == ["nocase", "sid:1"]


class TestHeader:
    def test_full_header(self):
        rule = parse_rule(RULE)
        assert rule.action == "alert"
        assert rule.header == (
            "alert", "tcp", "$EXTERNAL_NET", "any", "->", "$HOME_NET", "80",
        )

    def test_bidirectional_operator(self):
        rule = parse_rule('alert tcp any any <> any any (sid:1;)')
        assert rule.header[4] == "<>"

    def test_bad_direction_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("alert tcp any any any any any (sid:1;)")

    def test_missing_parens_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("alert tcp any any -> any any sid:1")


class TestOptions:
    def test_content_modifiers_bind_to_preceding_content(self):
        rule = parse_rule(RULE)
        content = rule.payload[0]
        assert isinstance(content, ContentOption)
        assert content.data == b"GET /admin"
        assert content.nocase and content.offset == 4 and content.depth == 20

    def test_pcre_split_into_body_and_flags(self):
        rule = parse_rule(RULE)
        pcre = rule.payload[1]
        assert isinstance(pcre, PcreOption)
        assert pcre.pattern == "evil[0-9]{1,3}"
        assert pcre.flags == "iR"

    def test_metadata_extracted(self):
        rule = parse_rule(RULE)
        assert rule.sid == 31337
        assert rule.rev == 2
        assert rule.msg == "demo; with semicolon"
        assert rule.rule_id == "sid:31337"

    def test_negated_content(self):
        rule = parse_rule('alert tcp any any -> any any (content:!"x"; sid:1;)')
        assert rule.payload[0].negated

    def test_modifier_without_content_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("alert tcp any any -> any any (nocase; sid:1;)")

    def test_unknown_options_preserved_verbatim(self):
        rule = parse_rule(
            'alert tcp any any -> any any (content:"x"; byte_test:4,>,1,0; sid:1;)'
        )
        assert ("byte_test", "4,>,1,0") in rule.options

    def test_buffer_selectors_collected(self):
        rule = parse_rule(
            'alert tcp any any -> any any (content:"/x"; http_uri; sid:1;)'
        )
        assert rule.buffers == ("http_uri",)

    def test_bad_integer_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule('alert tcp any any -> any any (content:"x"; offset:abc;)')

    def test_location_threaded_into_errors(self):
        location = SourceLocation("unit.rules", 3)
        with pytest.raises(RuleSyntaxError, match="unit.rules:3"):
            parse_rule("garbage", location=location)


class TestIterRuleLines:
    def test_comments_and_blanks_skipped(self):
        text = "# a comment\n\nalert tcp any any -> any any (sid:1;)\n"
        assert [n for n, _ in iter_rule_lines(text)] == [3]

    def test_continuation_lines_joined(self):
        text = "alert tcp any any -> any any \\\n (sid:1;)\nalert udp any any -> any any (sid:2;)\n"
        lines = list(iter_rule_lines(text))
        assert lines[0][0] == 1
        assert "sid:1" in lines[0][1] and "\\" not in lines[0][1]
        assert lines[1] == (3, "alert udp any any -> any any (sid:2;)")
