r"""Satellite: translated rules agree with the derivative oracle and
with Python ``re`` on sampled inputs.

Three layers of cross-checking:

* hex-block / escaped-separator contents round-trip byte-exactly
  (encode -> rule line -> translate -> oracle match),
* ``nocase`` is observationally equivalent to ``(?i:...)`` and to
  Python's ``re.IGNORECASE``,
* a sample of translated corpus rules gives the same found/not-found
  answer from the oracle and from Python ``re`` on generated payloads.
"""

import random
import re

from hypothesis import given, settings, strategies as st

from repro.regex.oracle import accepts, match_ends
from repro.regex.parser import parse
from repro.rules import load_rules_text, parse_rule, translate_rule
from repro.rules.content import encode_content
from repro.workloads.snort_rules import corpus_text


def _translate_content(options: str):
    return translate_rule(
        parse_rule(f"alert tcp any any -> any any ({options} sid:1;)")
    )


def _py_compile(pattern: str) -> "re.Pattern[bytes]":
    """Compile a dialect pattern with Python re (dialect `.` = any byte)."""
    return re.compile(b"(?s:" + pattern.encode("latin-1") + b")")


NOISE = st.binary(max_size=16).filter(lambda b: b"\n" not in b)


@settings(max_examples=150, deadline=None)
@given(data=st.binary(min_size=1, max_size=24), prefix=NOISE, suffix=NOISE)
def test_content_bytes_roundtrip_through_oracle(data, prefix, suffix):
    """encode -> rule -> translate -> the oracle finds the bytes."""
    t = _translate_content(f'content:"{encode_content(data)}";')
    parsed = parse(t.pattern)
    haystack = prefix + data + suffix
    assert accepts(parsed.membership_ast(), haystack)
    assert len(prefix) + len(data) in match_ends(parsed.search_ast(), haystack)


@settings(max_examples=100, deadline=None)
@given(data=st.binary(min_size=1, max_size=24))
def test_content_translation_agrees_with_python_re(data):
    """The translated literal and Python's re.escape match identically."""
    t = _translate_content(f'content:"{encode_content(data)}";')
    parsed = parse(t.pattern)
    ref = re.compile(re.escape(data))
    for haystack in (data, b"x" + data, data + b"\x00", data[1:], b""):
        assert accepts(parsed.membership_ast(), haystack) == bool(
            ref.search(haystack)
        )


_WORD = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=10)


@settings(max_examples=150, deadline=None)
@given(word=_WORD, flips=st.lists(st.booleans(), min_size=10, max_size=10),
       prefix=NOISE)
def test_nocase_equivalent_to_inline_i_flag(word, flips, prefix):
    """`content:"w"; nocase;` matches every case-mangling of w, exactly
    like `(?i:w)` and Python's re.IGNORECASE."""
    nocase = _translate_content(f'content:"{word}"; nocase;')
    inline = parse(f"(?i:{word})")
    mangled = "".join(
        c.upper() if flip else c for c, flip in zip(word, flips)
    ).encode("latin-1")
    haystack = prefix + mangled
    parsed = parse(nocase.pattern)
    assert accepts(parsed.membership_ast(), haystack)
    assert accepts(inline.membership_ast(), haystack)
    ref = re.compile(re.escape(word).encode("latin-1"), re.IGNORECASE)
    assert bool(ref.search(haystack))
    # and a guaranteed non-match stays a non-match everywhere
    miss = prefix + b"\x00"
    assert accepts(parsed.membership_ast(), miss) == bool(ref.search(miss))


@settings(max_examples=100, deadline=None)
@given(data=st.binary(min_size=1, max_size=16))
def test_escaped_separators_survive_translation(data):
    """Bytes containing `;` `"` `|` `:` round-trip through the quoted
    rule syntax into a pattern the oracle matches byte-exactly."""
    salted = b';"|:' + data
    t = _translate_content(f'content:"{encode_content(salted)}";')
    parsed = parse(t.pattern)
    assert accepts(parsed.membership_ast(), b"pre" + salted + b"post")
    assert not accepts(parsed.membership_ast(), salted[:-1])


def _sampled_accepted_rules(count: int = 60):
    report = load_rules_text(corpus_text(total=300), file="sample.rules").report
    rng = random.Random(0xACE)
    accepted = [r for r in report.accepted if "$" not in r.pattern]
    rng.shuffle(accepted)
    return accepted[:count]


def _payloads_for(pattern: str, rng: random.Random):
    """A handful of adversarial payloads: random noise plus fragments
    of the pattern's own literal bytes (with escapes collapsed)."""
    literal = re.sub(
        r"\\x([0-9a-fA-F]{2})", lambda m: chr(int(m.group(1), 16)),
        pattern,
    )
    literal = re.sub(r"[\^$.|?*+()\[\]{}]", "", literal).replace("\\", "")
    seed = literal.encode("latin-1")[:32]
    yield seed
    yield b"QQ" + seed + b"QQ"
    yield seed[: max(1, len(seed) // 2)]
    yield bytes(rng.randrange(256) for _ in range(24))
    yield b""


def test_sampled_translated_rules_agree_with_python_re():
    """Oracle membership == Python re search on every sampled rule."""
    rules = _sampled_accepted_rules()
    assert len(rules) >= 40  # the sample is meaningful
    rng = random.Random(0xBEEF)
    checked = 0
    for rule in rules:
        parsed = parse(rule.pattern)
        ref = _py_compile(rule.pattern)
        for payload in _payloads_for(rule.pattern, rng):
            oracle_found = accepts(parsed.membership_ast(), payload)
            python_found = bool(ref.search(payload))
            assert oracle_found == python_found, (
                rule.rule_id, rule.pattern, payload,
            )
            checked += 1
    assert checked >= 200


def test_fixture_rewrites_agree_with_python_re():
    """Every accepted fixture rule: oracle vs Python re on its own msg
    bytes and on a crafted hit."""
    import os

    fixture = os.path.join(os.path.dirname(__file__), "fixtures", "local.rules")
    with open(fixture, encoding="utf-8") as handle:
        report = load_rules_text(handle.read(), file="local.rules").report
    hits = {
        "sid:1000001": b"GET /admin",
        "sid:1000003": b"uSeR-aGeNt",
        "sid:1000004": b"\xde\xad\xbe\xef",
        "sid:1000005": b"Host: evil",
        "sid:1000007": b"MAIL FROM x evil.example",
        "sid:1000008": b'a;b"c',
    }
    for rule in report.accepted:
        parsed = parse(rule.pattern)
        ref = _py_compile(rule.pattern)
        payloads = [b"unrelated noise", b""]
        if rule.rule_id in hits:
            payloads.append(b"pad " + hits[rule.rule_id] + b" pad")
        for payload in payloads:
            assert accepts(parsed.membership_ast(), payload) == bool(
                ref.search(payload)
            ), (rule.rule_id, rule.pattern, payload)
        if rule.rule_id in hits:
            assert accepts(parsed.membership_ast(), b"pad " + hits[rule.rule_id])
