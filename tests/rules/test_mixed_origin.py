"""Satellite: synthetic-suite rules and parsed Snort rules mix in one
ruleset and scan identically on every registered backend.

Follows the differential pattern from
``tests/engine/test_backend_differential.py``: compile once, feed the
same data through all available backends, require identical reports
(and equivalent stats wherever the backend declares ``stats_exact``).
"""

import os

import pytest

from repro.compiler.pipeline import compile_ruleset
from repro.engine.backends import available_backends, get_backend
from repro.engine.tables import compile_tables
from repro.matching import RulesetMatcher
from repro.rules import load_rules
from repro.workloads.synth import snort_like

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "local.rules")


def _mixed_ruleset():
    """A handful of suite pairs + the parsed fixture's sourced triples."""
    suite = snort_like(total=40, seed=3)
    synthetic = [
        (f"suite:{rule.rule_id}", rule.pattern)
        for rule in suite.rules
        if rule.category in ("plain", "count-unambiguous")
    ][:8]
    parsed = load_rules(FIXTURE).rules
    return synthetic + list(parsed)


PAYLOADS = [
    b"",
    b"xxGET /admin HTTP/1.1\r\nuser-agent: probe",
    b"pad \xde\xad\xbe\xef Host: evil tail",
    b"MAIL FROM a evil.example",
    bytes(range(256)),
    b"abcx" * 24,
]


def _scan_all_backends(tables, data):
    outcomes = {}
    for info in available_backends():
        if not info.available:
            continue
        scanner = get_backend(info.name).make_scanner(tables)
        scanner.feed(data)
        outcomes[info.name] = (info, scanner.finish(), scanner.stats)
    return outcomes


def test_mixed_ruleset_compiles_with_both_origins():
    rules = _mixed_ruleset()
    compiled = compile_ruleset(rules)
    accepted = {entry[0] for entry in rules} - {
        rule_id for rule_id, _ in compiled.skipped
    }
    assert any(rid.startswith("suite:") for rid in accepted)
    assert any(rid.startswith("sid:") for rid in accepted)
    # fixture rejections were filtered before compile; only compiler-level
    # skips remain, and each of those names its source line
    for rule_id, reason in compiled.skipped:
        if rule_id.startswith("sid:"):
            assert "local.rules:" in reason


@pytest.mark.parametrize("data", PAYLOADS, ids=range(len(PAYLOADS)))
def test_backends_agree_on_mixed_ruleset(data):
    rules = [
        entry for entry in _mixed_ruleset()
        if entry[0] not in {"sid:1000010", "sid:1000011", "sid:1000012",
                            "sid:1000013", "sid:1000014"}
    ]
    tables = compile_tables(compile_ruleset(rules).network)
    outcomes = _scan_all_backends(tables, data)
    assert "reference" in outcomes and len(outcomes) >= 2
    _, want_reports, want_stats = outcomes["reference"]
    for name, (info, reports, stats) in outcomes.items():
        assert reports == want_reports, (name, data)
        if info.stats_exact:
            assert stats.equivalent(want_stats), (name, data)


def test_matcher_scan_matches_suite_and_snort_rules_together():
    """End-to-end through RulesetMatcher: one scan reports rules from
    both origins on a payload crafted to hit each."""
    suite_rules = [("suite:probe", "probe-[0-9]{2}")]
    parsed = load_rules(FIXTURE).rules
    matcher = RulesetMatcher(suite_rules + list(parsed))
    result = matcher.scan(b"probe-42 then GET /admin and uSeR-AgEnT")
    assert "suite:probe" in result.matches
    assert "sid:1000001" in result.matches
    assert "sid:1000003" in result.matches


def test_mixed_ruleset_scans_identically_when_split():
    """Scanning the mixed set equals the union of scanning each origin
    alone (no cross-talk between suite rules and parsed rules)."""
    suite_rules = [("suite:probe", "probe-[0-9]{2}")]
    parsed = [r for r in load_rules(FIXTURE).rules]
    data = b"probe-42 xxGET /admin Host: evil \xde\xad\xbe\xef"
    mixed = RulesetMatcher(suite_rules + parsed).scan(data).matches
    alone = (
        RulesetMatcher(suite_rules).scan(data).matches
        | RulesetMatcher(parsed).scan(data).matches
    )
    assert set(mixed) == set(alone)
