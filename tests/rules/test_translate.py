"""Translation table + rejection reason codes (docs/RULES.md pins)."""

import pytest

from repro.rules.parser import parse_rule
from repro.rules.translate import (
    REASONS,
    TRANSFORMATIONS,
    RuleRejected,
    escape_bytes,
    translate_rule,
)


def _translate(options: str):
    return translate_rule(
        parse_rule(f"alert tcp any any -> any any ({options} sid:1;)")
    )


def _reject(options: str) -> RuleRejected:
    with pytest.raises(RuleRejected) as err:
        _translate(options)
    return err.value


class TestTranslationTable:
    """Each row mirrors the table in docs/RULES.md."""

    def test_plain_content_is_verbatim(self):
        t = _translate('content:"GET /admin";')
        assert (t.pattern, t.transformations) == ("GET /admin", ())

    def test_metacharacters_escaped(self):
        assert _translate('content:"a.b(c)";').pattern == r"a\.b\(c\)"

    def test_nocase_folds_to_scoped_case_group(self):
        t = _translate('content:"user"; nocase;')
        assert t.pattern == "(?i:user)"
        assert t.transformations == ("nocase",)

    def test_hex_block_respelled(self):
        t = _translate('content:"|de ad|";')
        assert t.pattern == r"\xde\xad"
        assert t.transformations == ("hex-block",)

    def test_offset_depth_window(self):
        t = _translate('content:"AB"; offset:4; depth:6;')
        assert t.pattern == "^.{4,8}AB"
        assert t.transformations == ("offset-depth-window",)

    def test_offset_without_depth_is_open_window(self):
        assert _translate('content:"AB"; offset:3;').pattern == "^.{3,}AB"

    def test_depth_alone_anchors_at_zero(self):
        assert _translate('content:"AB"; depth:5;').pattern == "^.{0,3}AB"

    def test_exact_window_degenerates_to_anchor(self):
        assert _translate('content:"AB"; depth:2;').pattern == "^AB"

    def test_distance_within_gap(self):
        t = _translate('content:"foo"; content:"bar"; distance:2; within:8;')
        assert t.pattern == "foo.{2,7}bar"
        assert t.transformations == ("distance-within-gap",)

    def test_unmodified_join_uses_dot_star(self):
        t = _translate('content:"foo"; content:"bar";')
        assert t.pattern == "foo.*bar"
        assert t.transformations == ("content-join",)

    def test_pcre_verbatim_is_compiled(self):
        t = _translate('pcre:"/ab{2,4}c/";')
        assert (t.pattern, t.transformations) == ("ab{2,4}c", ())

    def test_pcre_i_flag_folds(self):
        t = _translate('pcre:"/login/i";')
        assert t.pattern == "(?i:login)"
        assert t.transformations == ("pcre-flags",)

    def test_pcre_anchors_survive_solo(self):
        assert _translate('pcre:"/^GET .* HTTP$/";').pattern == "^GET .* HTTP$"

    def test_relative_pcre_floats_in_region(self):
        t = _translate('content:"AB"; pcre:"/x[0-9]/R";')
        assert t.pattern == "AB.*(?:x[0-9])"
        assert "pcre-relative" in t.transformations

    def test_relative_anchored_pcre_concatenates(self):
        t = _translate('content:"AB"; pcre:"/^CD/R";')
        assert t.pattern == "AB(?:CD)"

    def test_pcre_alternation_grouped_when_joined(self):
        t = _translate('content:"AB"; pcre:"/x|y/";')
        assert t.pattern == "AB.*(?:x|y)"

    def test_buffer_selector_records_collapse(self):
        t = _translate('content:"/sh"; http_uri;')
        assert "buffer-collapse" in t.transformations


class TestRejections:
    @pytest.mark.parametrize(
        ("options", "code"),
        [
            ('pcre:"/(a)\\1/";', "pcre-backreference"),
            ('pcre:"/a(?=b)/";', "pcre-lookaround"),
            ('pcre:"/a(?<=b)c/";', "pcre-lookaround"),
            ('pcre:"/a\\bword/";', "pcre-word-boundary"),
            ('pcre:"/a[/";', "pcre-syntax-error"),
            ('pcre:"/abc/U";', "pcre-unsupported-modifier"),
            ('pcre:"/^abc$/m";', "pcre-unsupported-modifier"),
            ('pcre:!"/abc/";', "negated-pcre"),
            ('content:!"x";', "negated-content"),
            ('content:"x"; byte_test:4,>,1,0;', "unsupported-option"),
            ('content:"x"; isdataat:10;', "unsupported-option"),
            ('content:"longtoken"; depth:4;', "window-too-small"),
            ('content:"ab"; content:"cd"; within:1;', "window-too-small"),
            ('content:"a"; content:"b"; offset:9;', "mid-rule-absolute-position"),
            ('content:"a"; content:"b"; distance:-2;', "negative-position"),
            ('content:"AB"; pcre:"/^x/";', "pcre-anchor-conflict"),
            ('pcre:"/x$/"; content:"AB";', "pcre-anchor-conflict"),
            ("flow:established;", "no-payload-pattern"),
        ],
    )
    def test_reason_codes(self, options, code):
        assert _reject(options).code == code

    def test_every_emitted_code_is_documented(self):
        for options in [
            'pcre:"/(a)\\1/";', 'content:!"x";', "flow:established;",
        ]:
            assert _reject(options).code in REASONS

    def test_vocabularies_are_disjoint(self):
        assert not set(REASONS) & set(TRANSFORMATIONS)


class TestEscapeBytes:
    def test_printables_and_metas(self):
        assert escape_bytes(b"a+b") == r"a\+b"

    def test_nonprintables_become_hex(self):
        assert escape_bytes(b"\x00\xff") == r"\x00\xff"

    def test_result_always_parses(self):
        from repro.regex.parser import parse

        data = bytes(range(256))
        parse(escape_bytes(data))  # must not raise
