"""Session API: incremental Match emission, sinks, the Matcher protocol.

The redesign's contract: ``MatchSession`` behaves identically over
``RulesetMatcher`` and ``ShardedMatcher`` and every registered backend
-- incremental ``Match`` events with absolute offsets, ``feed`` and
``finish`` both returning offset-sorted lists -- and the batch entry
points are exact wrappers over it (differentially tested against the
session path, including the five synthetic suites).
"""

import queue

import pytest

from repro.engine.backends import available_backends
from repro.engine.parallel import ShardedMatcher
from repro.matching import RulesetMatcher, UNNAMED_REPORT
from repro.session import (
    CollectorSink,
    Match,
    MatchSession,
    Matcher,
    QueueSink,
    match_dict,
)
from repro.workloads.inputs import plant_matches, stream_for_style
from repro.workloads.synth import (
    clamav_like,
    protomata_like,
    snort_like,
    spamassassin_like,
    suricata_like,
)

RULES = [
    ("hit", r"abc"),
    ("num", r"[0-9]{3,5}"),
    ("tail", r"xyz$"),
    ("head", r"^GET"),
    ("ctr", r"[^a]a{3,5}"),
]

DATA = b"GET /abc 1234 baaaa ... xyz"


def usable_engines() -> list[str]:
    return [info.name for info in available_backends() if info.available]


def chunked(data: bytes, size: int) -> list[bytes]:
    return [data[i : i + size] for i in range(0, len(data), size)]


class TestMatch:
    def test_fields_and_sort_key(self):
        match = Match("hit", 4, "s1", "hit")
        assert (match.rule, match.end, match.stream, match.code) == (
            "hit", 4, "s1", "hit",
        )
        assert match.sort_key == (4, "hit", "s1", "hit")

    def test_frozen_and_hashable(self):
        match = Match("hit", 4)
        with pytest.raises(AttributeError):
            match.end = 5
        assert len({match, Match("hit", 4)}) == 1

    def test_match_dict_collapses(self):
        matches = [Match("a", 2), Match("a", 1), Match("a", 2), Match("b", 3)]
        assert match_dict(matches) == {"a": [1, 2], "b": [3]}


class TestMatchSessionBasics:
    def test_incremental_emission_absolute_offsets(self):
        matcher = RulesetMatcher(RULES)
        session = matcher.session()
        first = session.feed(DATA[:9])   # "GET /abc "
        second = session.feed(DATA[9:])
        assert match_dict(first) == {"head": [3], "hit": [8]}
        # offsets are stream-absolute despite the chunk split
        assert {m.end for m in second if m.rule == "num"} == {12, 13}
        assert session.bytes_fed == len(DATA)

    def test_feed_and_finish_both_sorted_match_lists(self):
        matcher = RulesetMatcher(RULES)
        session = matcher.session()
        emitted = session.feed(DATA)
        final = session.finish()
        for batch in (emitted, final):
            assert isinstance(batch, list)
            assert all(isinstance(m, Match) for m in batch)
            assert batch == sorted(batch, key=lambda m: m.sort_key)
        # $-anchored rules only come out of finish()
        assert {m.rule for m in final} == {"tail"}
        assert final[0].end == len(DATA)

    def test_finish_idempotent_and_feed_after_finish_raises(self):
        session = RulesetMatcher(RULES).session()
        session.feed(DATA)
        session.finish()
        assert session.finish() == []
        with pytest.raises(RuntimeError):
            session.feed(b"more")

    def test_context_manager_finishes_on_clean_exit(self):
        matcher = RulesetMatcher(RULES)
        with matcher.session() as session:
            session.feed(DATA)
        assert session.finished
        assert session.result() == matcher.scan(DATA)

    def test_end_anchor_not_emitted_mid_stream(self):
        matcher = RulesetMatcher([("tail", "xyz$")])
        session = matcher.session()
        assert session.feed(b"xyz..") == []     # xyz matched, but not at end
        assert session.feed(b"xyz") == []       # withheld until finish
        final = session.finish()
        assert match_dict(final) == {"tail": [8]}

    def test_lazy_matches_iteration(self):
        matcher = RulesetMatcher(RULES)
        session = matcher.session()
        events = []
        consumed = []

        def chunks():
            for chunk in chunked(DATA, 5):
                consumed.append(chunk)
                yield chunk

        for match in session.matches(chunks()):
            events.append((match.rule, match.end, len(consumed)))
        # lazy: the "hit" event arrived before all chunks were consumed
        hit = next(e for e in events if e[0] == "hit")
        assert hit[2] < len(chunked(DATA, 5))
        assert match_dict(
            [Match(r, e) for r, e, _ in events]
        ) == matcher.scan(DATA).matches

    def test_stream_tag_carried_on_every_match(self):
        session = RulesetMatcher(RULES).session(stream="client-42")
        out = session.feed(DATA) + session.finish()
        assert out and all(m.stream == "client-42" for m in out)

    def test_unnamed_reports_surface_with_sentinel(self):
        matcher = RulesetMatcher([("", "abc")])
        out = matcher.session().feed(b"zabc")
        assert [m.rule for m in out] == [""]  # falsy-but-real id preserved
        assert UNNAMED_REPORT == "<unnamed>"

    def test_empty_parts_rejected(self):
        with pytest.raises(ValueError):
            MatchSession([])


class TestSinks:
    def test_callback_sees_each_match_once_in_order(self):
        seen = []
        matcher = RulesetMatcher(RULES)
        with matcher.session(on_match=seen.append) as session:
            for chunk in chunked(DATA, 4):
                session.feed(chunk)
        returned = matcher.scan(DATA).matches
        assert match_dict(seen) == returned
        assert len(seen) == len({(m.rule, m.end) for m in seen})  # no dupes
        assert [m.end for m in seen] == sorted(m.end for m in seen)

    def test_collector_sink(self):
        sink = CollectorSink()
        matcher = RulesetMatcher(RULES)
        with matcher.session(on_match=sink) as session:
            session.feed(DATA)
        assert sink.by_rule() == matcher.scan(DATA).matches

    def test_queue_sink_bounded_drain(self):
        sink = QueueSink(maxsize=64)
        matcher = RulesetMatcher(RULES)
        with matcher.session(on_match=sink) as session:
            session.feed(DATA)
            drained = sink.drain()
        drained += sink.drain()
        assert match_dict(drained) == matcher.scan(DATA).matches
        assert sink.drain() == []
        assert isinstance(sink.queue, queue.Queue)


class TestQueueSinkOverflow:
    """Overflow at a full bounded queue is an explicit, named policy --
    never a silent drop (the serving backpressure path depends on it)."""

    @staticmethod
    def matches(n):
        return [Match(rule="r", end=end) for end in range(1, n + 1)]

    def test_block_is_the_default_and_is_lossless(self):
        sink = QueueSink(maxsize=8)
        assert sink.overflow == "block"
        # a consumer thread drains while the producer blocks on put
        import threading

        drained: list[Match] = []
        consumer = threading.Thread(
            target=lambda: [
                drained.append(sink.queue.get()) for _ in range(32)
            ]
        )
        consumer.start()
        for match in self.matches(32):
            sink(match)  # blocks at 8 queued until the consumer catches up
        consumer.join(timeout=10)
        assert len(drained) == 32 and sink.dropped == 0

    def test_drop_oldest_keeps_the_freshest_tail(self):
        sink = QueueSink(maxsize=4, overflow="drop_oldest")
        for match in self.matches(10):
            sink(match)
        assert [m.end for m in sink.drain()] == [7, 8, 9, 10]
        assert sink.dropped == 6  # loss is observable, not silent

    def test_drop_oldest_never_drops_below_capacity(self):
        sink = QueueSink(maxsize=4, overflow="drop_oldest")
        for match in self.matches(4):
            sink(match)
        assert sink.dropped == 0

    def test_raise_policy_propagates_queue_full(self):
        sink = QueueSink(maxsize=2, overflow="raise")
        sink(Match(rule="r", end=1))
        sink(Match(rule="r", end=2))
        with pytest.raises(queue.Full):
            sink(Match(rule="r", end=3))
        assert [m.end for m in sink.drain()] == [1, 2]
        assert sink.dropped == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="overflow policy"):
            QueueSink(maxsize=2, overflow="yolo")

    def test_unbounded_queue_ignores_policy_pressure(self):
        sink = QueueSink()  # maxsize=0: never full, block degenerates
        for match in self.matches(100):
            sink(match)
        assert len(sink.drain()) == 100


class TestMatcherProtocol:
    def test_both_matchers_satisfy_protocol(self):
        assert isinstance(RulesetMatcher(RULES), Matcher)
        assert isinstance(ShardedMatcher(RULES, shards=2), Matcher)

    def test_protocol_driven_code_is_front_end_agnostic(self):
        def serve(matcher: Matcher) -> dict:
            with matcher.session(stream="s") as session:
                for chunk in chunked(DATA, 6):
                    session.feed(chunk)
            return session.result().matches

        single = serve(RulesetMatcher(RULES))
        sharded = serve(ShardedMatcher(RULES, shards=3))
        assert single == sharded == RulesetMatcher(RULES).scan(DATA).matches


class TestAcrossBackendsAndShards:
    @pytest.mark.parametrize("engine", usable_engines())
    @pytest.mark.parametrize("shards", [0, 2, 3])
    def test_session_equals_batch_every_backend(self, engine, shards):
        """Acceptance: sessions work identically over RulesetMatcher and
        ShardedMatcher on every registered backend."""
        if shards:
            matcher = ShardedMatcher(RULES, shards=shards)
        else:
            matcher = RulesetMatcher(RULES)
        want = matcher.scan(DATA, engine=engine)
        session = matcher.session(engine=engine)
        emitted = []
        for chunk in chunked(DATA, 7):
            emitted.extend(session.feed(chunk))
        emitted.extend(session.finish())
        assert match_dict(emitted) == want.matches
        assert session.result() == want

    @pytest.mark.parametrize("engine", usable_engines())
    def test_emission_order_deterministic_across_backends(self, engine):
        """Regression: feed()/finish() emit identical offset-sorted
        Match lists on every backend (the old feed-list vs finish-set
        divergence is gone)."""
        matcher = RulesetMatcher(RULES, engine=engine)
        per_chunk = []
        session = matcher.session()
        for chunk in chunked(DATA, 5):
            per_chunk.append(session.feed(chunk))
        per_chunk.append(session.finish())
        flat = [m for batch in per_chunk for m in batch]
        assert all(
            batch == sorted(batch, key=lambda m: m.sort_key)
            for batch in per_chunk
        )
        # identical events regardless of backend (compare to stream)
        baseline_session = RulesetMatcher(RULES, engine="stream").session()
        baseline = []
        for chunk in chunked(DATA, 5):
            baseline.extend(baseline_session.feed(chunk))
        baseline.extend(baseline_session.finish())
        assert flat == baseline


SUITES = [
    (snort_like, 10),
    (suricata_like, 10),
    (protomata_like, 8),
    (spamassassin_like, 10),
    (clamav_like, 8),
]


class TestSuiteDifferential:
    @pytest.mark.parametrize("factory, total", SUITES)
    def test_session_differential_against_batch(self, factory, total):
        """Acceptance: session emission == batch path on all five
        synthetic suites (matches, stats-derived energy, reports)."""
        suite = factory(total=total, seed=23)
        background = stream_for_style(suite.input_style, 3000, seed=4)
        data = plant_matches(
            background, [r.pattern for r in suite.rules], seed=5
        )
        matcher = RulesetMatcher(suite.patterns())
        want = matcher.scan(data)
        collected = []
        with matcher.session(on_match=collected.append) as session:
            for chunk in chunked(data, 701):
                session.feed(chunk)
        assert match_dict(collected) == want.matches
        # exact ScanResult equality vs the batch path at the same
        # chunking (single-buffer energy can differ in the last float
        # bits by reassociation of the weighted-op sum)
        assert session.result() == matcher.scan_stream(chunked(data, 701))
        assert session.result().matches == want.matches
        assert session.result().energy_nj_per_byte == pytest.approx(
            want.energy_nj_per_byte
        )
        # sharded sessions agree too
        sharded = ShardedMatcher(suite.patterns(), shards=2)
        assert sharded.scan_stream(chunked(data, 701)).matches == want.matches
