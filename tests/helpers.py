"""Shared test utilities: regex strategies and engine-agreement checks."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.nca.counting_sets import counting_match_ends
from repro.nca.execution import nca_match_ends
from repro.nca.glushkov import build_nca
from repro.regex.ast import (
    EPSILON,
    Regex,
    Sym,
    alternation,
    concat,
    repeat,
    star,
)
from repro.regex.charclass import CharClass
from repro.regex.oracle import match_ends
from repro.regex.rewrite import simplify

#: Small alphabet used by the property tests: enough to produce
#: overlapping classes (the source of interesting ambiguity) while
#: keeping input spaces searchable.
ALPHABET = b"abc"


def char_classes() -> st.SearchStrategy[CharClass]:
    """Non-empty classes over the small alphabet, plus their complements."""
    subsets = st.sets(st.sampled_from(list(ALPHABET)), min_size=1, max_size=3)
    return st.builds(CharClass.of_bytes, subsets) | st.builds(
        lambda s: CharClass.of_bytes(s).complement(),
        st.sets(st.sampled_from(list(ALPHABET)), min_size=1, max_size=2),
    )


def regexes(max_depth: int = 3, max_bound: int = 5) -> st.SearchStrategy[Regex]:
    """Random regex ASTs with counting, at most ``max_depth`` deep."""
    leaves = st.builds(Sym, char_classes()) | st.just(EPSILON)

    def extend(children: st.SearchStrategy[Regex]) -> st.SearchStrategy[Regex]:
        pair = st.tuples(children, children)
        bounds = st.tuples(
            st.integers(min_value=0, max_value=max_bound),
            st.integers(min_value=2, max_value=max_bound),
        )
        return st.one_of(
            st.builds(lambda ab: concat(*ab), pair),
            st.builds(lambda ab: alternation(*ab), pair),
            st.builds(star, children),
            st.builds(
                lambda c_b: repeat(c_b[0], min(c_b[1][0], c_b[1][1]), c_b[1][1]),
                st.tuples(children, bounds),
            ),
        )

    return st.recursive(leaves, extend, max_leaves=8)


def inputs(max_len: int = 12) -> st.SearchStrategy[bytes]:
    return st.binary(max_size=max_len).map(
        lambda raw: bytes(ALPHABET[b % len(ALPHABET)] for b in raw)
    )


def engines_match_ends(ast: Regex, data: bytes) -> tuple[list[int], list[int], list[int]]:
    """(oracle, token-interpreter, counting-set) report positions."""
    simplified = simplify(ast)
    want = [e for e in match_ends(simplified, data)]
    nca = build_nca(simplified)
    got_tokens = nca_match_ends(nca, data)
    got_counting = counting_match_ends(nca, data)
    return want, got_tokens, got_counting


def random_strings(alphabet: str, count: int, max_len: int, seed: int) -> list[str]:
    rng = random.Random(seed)
    return [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(0, max_len)))
        for _ in range(count)
    ]
