"""Integration tests across the full stack."""

from repro import (
    CountingSetExecutor,
    NetworkSimulator,
    analyze_pattern,
    area_of_mapping,
    build_nca,
    compile_pattern,
    compile_ruleset,
    energy_of_run,
    map_network,
    parse,
    simplify,
)
from repro.mnrl.serialize import dumps, loads


class TestQuickstartFlow:
    """The README quickstart, as a test."""

    def test_compile_and_match(self):
        compiled = compile_pattern(r"a(bc){1,3}d")
        sim = NetworkSimulator(compiled.network)
        assert sim.match_ends(b"xabcbcdy") == [7]

    def test_analysis_report(self):
        result = analyze_pattern(r"User: [^\r\n]{8,64}")
        assert result.has_counting
        assert len(result.instances) == 1

    def test_resource_and_cost_report(self):
        compiled = compile_pattern(r"[^a]a{2,100}")
        mapping = map_network(compiled.network)
        sim = NetworkSimulator(compiled.network)
        sim.run(b"xaaaa" * 50)
        energy = energy_of_run(sim.stats, mapping)
        area = area_of_mapping(mapping)
        assert energy.nj_per_byte > 0
        assert area.total_mm2 > 0


class TestRulesetFlow:
    def test_ids_ruleset_round_trip(self):
        rules = [
            ("web-1", r"GET /[a-z]{1,20} HTTP"),
            ("hdr-1", r"Host: [^\r\n]{4,40}"),
            ("bin-1", r"\x4d\x5a.{4,60}\x50\x45"),
        ]
        rs = compile_ruleset(rules)
        assert len(rs.patterns) == 3
        restored = loads(dumps(rs.network))
        data = b"GET /search HTTP/1.1\r\nHost: example.com\r\n\r\n"
        a = NetworkSimulator(rs.network)
        b = NetworkSimulator(restored)
        assert a.match_ends(data) == b.match_ends(data)
        assert {e.report_id for e in a.reports} >= {"web-1", "hdr-1"}

    def test_counting_set_engine_matches_hardware(self):
        """Software counting-set engine == hardware simulator on the
        same pattern (via their respective pipelines)."""
        pattern = r"ab{2,5}c"
        parsed = parse(pattern)
        search = simplify(parsed.search_ast())
        nca = build_nca(search)
        engine = CountingSetExecutor(nca)
        compiled = compile_pattern(pattern)
        sim = NetworkSimulator(compiled.network)
        data = b"zabbbczabbbbbbc"
        hw = sim.match_ends(data)
        sw = []
        engine.reset()
        for i, byte in enumerate(data, start=1):
            engine.step(byte)
            if engine.accepting:
                sw.append(i)
        assert sw == hw


class TestMemoryClaim:
    def test_log_vs_linear_memory(self):
        """Section 3: counter-unambiguity shrinks state memory from
        O(M) to O(log M)."""
        result = analyze_pattern(r"[^a]a{1000}")
        assert not result.ambiguous
        nca = result.nca
        scalar = CountingSetExecutor(
            nca, unambiguous_states=result.unambiguous_counter_states()
        )
        vector = CountingSetExecutor(nca, unambiguous_states=())
        assert scalar.memory_bits() < 30
        assert vector.memory_bits() > 1000
