"""Shape tests over the ablation drivers (small scales)."""

from repro.experiments.ablation import (
    format_policy_ablation,
    format_strictness_ablation,
    run_policy_ablation,
    run_strictness_ablation,
)
from repro.workloads.synth import protomata_like, snort_like


class TestPolicyAblation:
    def test_both_modules_needed(self):
        result = run_policy_ablation(
            suites=[protomata_like(total=25), snort_like(total=40)],
            threshold=10,
        )
        # Protomata's gaps are all ambiguous: disabling bit vectors
        # degenerates to unfold-all
        assert (
            result.point("Protomata", "counter-only").nodes
            == result.point("Protomata", "unfold-all").nodes
        )
        # Snort's guarded runs are counter territory: disabling
        # counters costs most of the win
        assert (
            result.point("Snort", "bitvector-only").nodes
            > result.point("Snort", "full").nodes * 1.5
        )
        # the full policy dominates both single-module designs
        for suite in ("Protomata", "Snort"):
            full = result.point(suite, "full").nodes
            assert full <= result.point(suite, "counter-only").nodes
            assert full <= result.point(suite, "bitvector-only").nodes
        assert "Ablation" in format_policy_ablation(result)


class TestStrictnessAblation:
    def test_gate_is_cheap_on_benchmarks(self):
        rows = run_strictness_ablation(suites=[snort_like(total=40)])
        (row,) = rows
        assert row.counter_candidates > 0
        assert row.demoted <= max(1, row.counter_candidates // 5)
        assert row.nodes_strict >= row.nodes_naive
        assert "strict" in format_strictness_ablation(rows)
