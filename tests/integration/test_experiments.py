"""Shape assertions over the experiment drivers (tiny scales).

These tests pin the *qualitative* reproduction targets: who wins, by
roughly what factor, and where the trends point -- the properties the
paper's tables and figures exist to show.
"""

import math

import pytest

from repro.experiments import (
    DEFAULT_THRESHOLDS,
    format_fig2,
    format_fig3,
    format_fig8,
    format_fig9,
    format_fig10,
    format_table1,
    format_table2,
    run_fig2,
    run_fig3_family,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table1,
    run_table2,
)
from repro.workloads.synth import PAPER_TABLE1, snort_like, protomata_like


@pytest.fixture(scope="module")
def fig9_result():
    return run_fig9(scale=0.08)


class TestTable1:
    def test_fractions_track_paper(self):
        result = run_table1(scale=0.12)
        for row in result.rows:
            paper = PAPER_TABLE1[row.name]
            assert row.supported / row.total == pytest.approx(
                paper["supported"] / paper["total"], abs=0.06
            )
            assert row.counting / row.supported == pytest.approx(
                paper["counting"] / paper["supported"], abs=0.06
            )
        assert "Table 1" in format_table1(result)


class TestTable2:
    def test_no_performance_penalty(self):
        result = run_table2()
        assert result.no_performance_penalty
        assert result.clock_period_ps == 325
        assert "Table 2" in format_table2(result)


class TestFig2:
    def test_variants_and_shapes(self):
        suites = [snort_like(total=40), protomata_like(total=25)]
        result = run_fig2(suites=suites)
        assert ("Snort", "E") in result.points
        assert ("Protomata", "HW") in result.points
        # every counting rule produced a point in every variant
        for variant in ("E", "A", "H", "HW"):
            assert len(result.series("Snort", variant)) == len(
                result.series("Snort", "E")
            )
        assert "Figure 2" in format_fig2(result)
        assert "pairs" in format_fig2(result, metric="pairs")

    def test_hybrid_never_much_worse_than_exact(self):
        suites = [snort_like(total=40)]
        result = run_fig2(suites=suites)
        exact_pairs = sum(p.pairs for p in result.series("Snort", "E"))
        hybrid_pairs = sum(p.pairs for p in result.series("Snort", "H"))
        assert hybrid_pairs <= exact_pairs * 1.5


class TestFig3:
    def test_family_speedup_grows_with_bound(self):
        result = run_fig3_family(bounds=(40, 80, 160))
        speedups = [p.speedup for p in result.points]
        assert speedups[-1] > speedups[0]
        assert result.max_speedup() > 3
        # quadratic vs linear pair counts
        first, last = result.points[0], result.points[-1]
        assert last.exact_pairs / first.exact_pairs > 10
        assert last.hybrid_pairs / first.hybrid_pairs < 6
        assert "Figure 3" in format_fig3(result)


class TestFig8:
    def test_unfolding_loses_on_energy_everywhere(self):
        result = run_fig8((8, 64, 512, 2000))
        for point in result.counter_series + result.bit_vector_series:
            assert point.energy_ratio > 1
        # area: the counter's fixed 237 um^2 crosses the unfold line
        # around n ~ 15 (visible in the paper's bottom-left sub-figure);
        # above that the module always wins
        for point in result.counter_series:
            if point.n >= 64:
                assert point.area_ratio > 1
        for point in result.bit_vector_series:
            assert point.area_ratio > 1  # constant ~4.8x
        # counter advantage grows with n (paper: orders of magnitude)
        ratios = [p.energy_ratio for p in result.counter_series]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 100
        assert "Figure 8" in format_fig8(result)

    def test_dynamic_validation_agrees(self):
        from repro.experiments import validate_point

        # n must exceed one CAM array (256 STEs) for the unfolded
        # variant to pay more at mapped whole-array granularity
        point = validate_point(600, ambiguous=False)
        assert point.reports_agree
        assert point.module_nj_per_byte < point.unfold_nj_per_byte


class TestFig9:
    def test_node_counts_monotone_in_threshold(self, fig9_result):
        for suite, points in fig9_result.series.items():
            nodes = [p.nodes for p in points]
            assert nodes == sorted(nodes), suite

    def test_large_bound_suites_reduce_most(self, fig9_result):
        r = fig9_result
        assert r.reduction("Snort") > r.reduction("SpamAssassin")
        assert r.reduction("Suricata") > r.reduction("SpamAssassin")

    def test_unfold_all_has_no_modules(self, fig9_result):
        for points in fig9_result.series.values():
            last = points[-1]
            assert last.threshold == math.inf
            assert last.counters == 0 and last.bit_vectors == 0
        assert "Figure 9" in format_fig9(fig9_result)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self, fig9_result):
        return run_fig10(
            scale=0.08, stream_len=512, prepped=fig9_result.prepped
        )

    def test_reports_invariant_across_thresholds(self, result):
        for suite, points in result.series.items():
            reports = {p.reports for p in points}
            assert len(reports) == 1, suite

    def test_ids_suites_win_big(self, result):
        """The headline: large-bound suites see big energy cuts."""
        assert result.energy_reduction("Snort") > 0.4
        assert result.energy_reduction("Suricata") > 0.4

    def test_small_bound_suites_modest(self, result):
        """Protomata/SpamAssassin: less reduction than the IDS suites."""
        ids_best = min(
            result.energy_reduction("Snort"), result.energy_reduction("Suricata")
        )
        assert result.energy_reduction("SpamAssassin") <= ids_best

    def test_waste_only_with_bit_vectors(self, result):
        for points in result.series.values():
            for p in points:
                if p.bv_modules == 0:
                    assert p.waste_mm2 == 0
        assert "Figure 10" in format_fig10(result)
