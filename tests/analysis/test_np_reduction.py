"""Lemma 3.3: the subset-sum reduction to counter-ambiguity.

The paper proves CAmbiguity NP-hard by mapping a subset-sum instance
(S, T) to the regex::

    (((a{n1}+eps) ... (a{nm}+eps) # b) + (a{T} # b b)) b{2}

whose rightmost ``b{2}`` occurrence is counter-ambiguous iff some
subset of S sums to T.  Running our exact analysis on both satisfiable
and unsatisfiable instances checks the reduction end to end -- and
doubles as a stress test on alternation-heavy NCAs.
"""

import pytest

from repro.analysis.exact import analyze_exact
from repro.regex.ast import (
    EPSILON,
    Regex,
    alternation,
    collect_repeats,
    concat,
    literal,
    repeat,
)
from repro.regex.rewrite import simplify


def subset_sum_regex(numbers: list[int], target: int) -> Regex:
    a = lambda n: repeat(literal("a"), n, n)
    left = concat(
        *(alternation(a(n), EPSILON) for n in numbers),
        literal("#b"),
    )
    right = concat(a(target), literal("#bb"))
    return simplify(concat(alternation(left, right), repeat(literal("b"), 2, 2)))


def last_instance_ambiguous(numbers: list[int], target: int) -> bool:
    ast = subset_sum_regex(numbers, target)
    instances = collect_repeats(ast)
    # the rightmost occurrence is the final b{2}
    last = max(instances, key=lambda i: i.path)
    assert (last.lo, last.hi) == (2, 2)
    result = analyze_exact(ast)
    return result.result_for(last.index).ambiguous


@pytest.mark.parametrize(
    "numbers, target, satisfiable",
    [
        ([2, 3], 5, True),       # 2 + 3
        ([2, 3], 4, False),
        ([1, 2, 4], 7, True),    # all
        ([1, 2, 4], 6, True),    # 2 + 4
        ([5, 7], 3, False),
        ([3], 3, True),
        ([3], 2, False),
        ([2, 2], 4, True),
        ([4, 5], 10, False),
    ],
)
def test_reduction(numbers, target, satisfiable):
    assert last_instance_ambiguous(numbers, target) == satisfiable


def test_zero_target_trivially_satisfiable():
    # the empty subset sums to 0: a{0} branch == eps branch
    assert last_instance_ambiguous([1, 2], 0)
