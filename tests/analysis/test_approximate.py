"""Tests for the over-approximate analysis (Section 3.2)."""

from repro.analysis.approximate import (
    analyze_approximate,
    check_instance_approximate,
    star_all_but,
)
from repro.regex.ast import Repeat, Star, collect_repeats
from repro.regex.parser import parse, parse_to_ast
from repro.regex.rewrite import simplify


class TestStarAllBut:
    def test_keeps_only_target(self):
        ast = simplify(parse_to_ast("a{2,3}b{4,5}c{6,7}"))
        instances = collect_repeats(ast)
        approx = star_all_but(ast, instances[1].path)
        survivors = [n for n in approx.walk() if isinstance(n, Repeat)]
        assert len(survivors) == 1
        assert (survivors[0].lo, survivors[0].hi) == (4, 5)
        stars = [n for n in approx.walk() if isinstance(n, Star)]
        assert len(stars) == 2

    def test_nested_target_keeps_path(self):
        ast = simplify(parse_to_ast("(a{2,3}b){4,5}"))
        instances = collect_repeats(ast)
        inner = next(i for i in instances if i.hi == 3)
        approx = star_all_but(ast, inner.path)
        survivors = [n for n in approx.walk() if isinstance(n, Repeat)]
        assert [s.hi for s in survivors] == [3]

    def test_language_superset_spot_check(self):
        from repro.regex.oracle import accepts

        ast = simplify(parse_to_ast("a{2,3}b{2,3}"))
        instances = collect_repeats(ast)
        approx = star_all_but(ast, instances[0].path)
        # everything the original accepts, the approximation accepts
        for text in ["aabb", "aaabbb", "aabbb", "aaabb"]:
            if accepts(ast, text):
                assert accepts(approx, text)
        # and strictly more
        assert accepts(approx, "aa")  # b* allows zero bs


class TestApproximateVerdicts:
    def search(self, pattern):
        return simplify(parse(pattern).search_ast())

    def test_certifies_example_34(self):
        ast = self.search(r"[^a]a{5}|[^b]b{5}")
        result = analyze_approximate(ast)
        assert result.conclusive
        assert not result.ambiguous

    def test_inconclusive_on_ambiguous(self):
        ast = self.search(r"x{2}")
        result = analyze_approximate(ast)
        assert not result.conclusive
        assert result.ambiguous  # treated conservatively

    def test_inconclusive_is_conservative_not_wrong(self):
        """Approximation may be inconclusive on an actually-unambiguous
        regex (never the other way around): interaction between
        instances can vanish under starring."""
        # a{3} guarded by a disjoint class stays conclusive
        certain, _ = check_instance_approximate(
            self.search(r"[^a]a{3}"), collect_repeats(self.search(r"[^a]a{3}"))[0].path
        )
        assert certain

    def test_cheaper_than_exact_on_example_34(self):
        from repro.analysis.exact import analyze_exact

        # overlapping classes make the exact search quadratic
        ast = self.search(r"[^a-m][a-m]{30}|[^g-z][g-z]{30}")
        exact = analyze_exact(ast)
        approx = analyze_approximate(ast)
        assert not exact.ambiguous and not approx.ambiguous
        assert approx.pairs_created < exact.pairs_created / 3

    def test_soundness_vs_exact(self):
        """Whenever the approximation certifies unambiguity, the exact
        analysis agrees (the defining property of over-approximation)."""
        from repro.analysis.exact import analyze_exact

        patterns = [
            r"[^a]a{4}",
            r"[^a]a{3}|[^b]b{3}",
            r"a{2}b{3}",
            r"foo[^x]{2,8}",
            r"x{2}",
            r".{3,9}end",
        ]
        for pattern in patterns:
            ast = self.search(pattern)
            approx = analyze_approximate(ast)
            exact = analyze_exact(ast)
            for a_inst, e_inst in zip(approx.instances, exact.instances):
                if a_inst.conclusive:
                    assert not e_inst.ambiguous, pattern
