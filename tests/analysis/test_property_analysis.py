"""Property-based soundness tests for the static analysis.

Two empirically checkable directions of Definition 3.1:

* *soundness of "unambiguous"*: if the analysis says every instance is
  unambiguous, no execution on any input may ever place two tokens on
  one state.  We check this on random inputs and on the ambiguity
  witnesses of other regexes (adversarial-ish inputs).
* *witness validity*: every reported witness, when executed, really
  does place two distinct tokens on some state of the flagged
  instance.
"""

from hypothesis import given, settings

from repro.analysis.exact import analyze_exact
from repro.nca.execution import NCAExecutor
from repro.regex.rewrite import simplify

from tests.helpers import inputs, regexes


@settings(max_examples=120, deadline=None)
@given(regexes(max_bound=4), inputs(max_len=12))
def test_unambiguous_verdicts_are_sound(ast, data):
    simplified = simplify(ast)
    result = analyze_exact(simplified)
    if result.nca is None or result.ambiguous:
        return
    executor = NCAExecutor(result.nca)
    executor.run(data)
    for instance in result.nca.instances:
        for state in instance.body:
            assert executor.stats.degree(state) <= 1


@settings(max_examples=120, deadline=None)
@given(regexes(max_bound=4))
def test_witnesses_are_valid(ast):
    simplified = simplify(ast)
    result = analyze_exact(simplified, record_witness=True)
    if result.nca is None:
        return
    for inst in result.instances:
        if not inst.ambiguous:
            continue
        assert inst.witness is not None
        executor = NCAExecutor(result.nca)
        executor.run(inst.witness)
        body = result.nca.instances[inst.instance].body
        assert any(executor.stats.degree(q) >= 2 for q in body)


@settings(max_examples=80, deadline=None)
@given(regexes(max_bound=4))
def test_hybrid_agrees_with_exact(ast):
    from repro.analysis.hybrid import analyze_hybrid

    simplified = simplify(ast)
    exact = analyze_exact(simplified)
    hybrid = analyze_hybrid(simplified)
    assert exact.ambiguous == hybrid.ambiguous
    per_e = {r.instance: r.ambiguous for r in exact.instances}
    per_h = {r.instance: r.treat_as_ambiguous for r in hybrid.instances}
    assert per_e == per_h
