"""Tests for the token transition system G (Section 3.1)."""

from repro.analysis.transition_system import TokenTransitionSystem
from repro.nca.glushkov import build_nca
from repro.regex.parser import parse_to_ast
from repro.regex.rewrite import simplify


def system_for(pattern: str) -> TokenTransitionSystem:
    return TokenTransitionSystem(build_nca(simplify(parse_to_ast(pattern))))


class TestEdges:
    def test_example_32_token_space(self):
        """Sigma* x{2}: tokens are q1, (q2,1), (q2,2) plus q0 (Ex. 3.2)."""
        system = system_for(".*x{2}")
        tokens = system.reachable_tokens()
        assert len(tokens) == 4

    def test_edges_carry_predicates(self):
        system = system_for(".*x{2}")
        edges = system.edges(system.initial_token())
        predicates = {e.predicate.to_pattern() for e in edges}
        assert "x" in predicates

    def test_edge_memoization(self):
        system = system_for("a{2,3}")
        t = system.initial_token()
        first = system.edges(t)
        expansions = system.tokens_expanded
        second = system.edges(t)
        assert first is second
        assert system.tokens_expanded == expansions

    def test_guard_prunes_edges(self):
        system = system_for("a{2,3}")
        # walk to the body token with value 3: no further loop possible
        token = system.initial_token()
        for _ in range(3):
            token = next(
                e.successor for e in system.edges(token) if e.successor[0] != token[0] or True
            )
        # token now has counter value 3; the only out-edge would be the
        # loop guarded x < 3, which is blocked
        assert system.edges(token) == ()

    def test_reachable_token_count_scales_with_bound(self):
        small = len(system_for("a{4}").reachable_tokens())
        large = len(system_for("a{9}").reachable_tokens())
        assert large - small == 5  # one token per extra counter value

    def test_limit_enforced(self):
        import pytest

        system = system_for("a{50}")
        with pytest.raises(RuntimeError):
            system.reachable_tokens(limit=10)
