"""Tests for the hybrid analysis driver (Section 3.3)."""

from repro.analysis.exact import analyze_exact
from repro.analysis.hybrid import analyze, analyze_hybrid, analyze_pattern
from repro.analysis.result import Method
from repro.regex.parser import parse
from repro.regex.rewrite import simplify


def search(pattern: str):
    return simplify(parse(pattern).search_ast())


class TestAgreementWithExact:
    PATTERNS = [
        r"[^a]a{4}",
        r"x{2}",
        r"^a{3}b{2,4}",
        r"foo.{3,9}bar",
        r"[^a]a{3}|[^b]b{3}",
        r"(ab){2,5}",
        r"[0-9]{4,8}",
        r"^[^/]/[a-z]{2,6}",
    ]

    def test_verdicts_match_exact(self):
        for pattern in self.PATTERNS:
            ast = search(pattern)
            hybrid = analyze_hybrid(ast)
            exact = analyze_exact(ast)
            assert hybrid.ambiguous == exact.ambiguous, pattern
            per_h = {r.instance: r.treat_as_ambiguous for r in hybrid.instances}
            per_e = {r.instance: r.ambiguous for r in exact.instances}
            assert per_h == per_e, pattern

    def test_hybrid_conclusive(self):
        """Unlike the pure approximation, hybrid verdicts are final."""
        for pattern in self.PATTERNS:
            assert analyze_hybrid(search(pattern)).conclusive, pattern


class TestCostOrdering:
    def test_hybrid_cheaper_on_hard_unambiguous(self):
        ast = search(r"[^a-m][a-m]{40}|[^g-z][g-z]{40}")
        hybrid = analyze_hybrid(ast)
        exact = analyze_exact(ast)
        assert hybrid.pairs_created < exact.pairs_created / 3

    def test_witness_overhead_small(self):
        """Figure 2's H vs HW columns: witness recording costs little."""
        ast = search(r"pre.{2,30}post")
        plain = analyze_hybrid(ast)
        with_witness = analyze_hybrid(ast, record_witness=True)
        assert with_witness.ambiguous == plain.ambiguous
        assert with_witness.pairs_created <= plain.pairs_created * 2 + 100


class TestDispatch:
    def test_analyze_dispatch(self):
        ast = search(r"a{2,3}")
        assert analyze(ast, "exact").method is Method.EXACT
        assert analyze(ast, "approximate").method is Method.APPROXIMATE
        assert analyze(ast, "hybrid").method is Method.HYBRID
        assert analyze(ast, Method.HYBRID).method is Method.HYBRID

    def test_analyze_pattern_uses_search_semantics(self):
        """Unanchored a{2} is ambiguous (Sigma* prefix); anchored is not."""
        assert analyze_pattern("a{2}").ambiguous
        assert not analyze_pattern("^a{2}").ambiguous

    def test_no_counting_fast_path(self):
        result = analyze_pattern("plainliteral")
        assert not result.has_counting
        assert result.nca is None

    def test_witnesses_surface(self):
        result = analyze_pattern(".*x{2}", method="hybrid", record_witness=True)
        witnesses = result.witnesses()
        assert 0 in witnesses and len(witnesses[0]) >= 2


class TestUnambiguousStateExtraction:
    def test_states_of_ambiguous_instances_excluded(self):
        result = analyze_pattern(r"^a{4}.*b{5}")
        good = result.unambiguous_counter_states()
        nca = result.nca
        first, second = nca.instances
        assert first.body <= good
        assert not (second.body & good)
