"""Tests for the body-level single-token (module-safety) analysis.

These regression patterns were found by randomized search: each is
counter-unambiguous at every state yet can hold two interleaved tokens
inside the repetition body, so a single hardware count register
mis-tracks one of them.  The strict compiler policy must refuse the
counter module for them; the naive (unambiguity-only) policy provably
diverges from the oracle on concrete inputs.
"""

import pytest

from repro.analysis.exact import analyze_exact
from repro.analysis.module_safety import check_module_safety, module_safety_map
from repro.compiler.emit import Decision
from repro.compiler.pipeline import compile_pattern
from repro.hardware.simulator import NetworkSimulator
from repro.nca.execution import NCAExecutor
from repro.regex.oracle import match_ends
from repro.regex.parser import parse
from repro.regex.rewrite import simplify

from tests.helpers import random_strings

#: unambiguous-per-state but NOT module-safe (search-found witnesses)
UNSAFE_PATTERNS = [
    r"b([bc]bc){2,4}[bc]",
    r"[ac]([abc][abc]b){3,5}c",
    r"b([ab]a){1,2}b",
    r"b([bc]c){2,3}[ab]",
    r"c([bc]b){1,2}c",
]

#: unambiguous AND module-safe (the common benchmark shapes)
SAFE_PATTERNS = [
    r"a(bc){2,4}d",
    r"x([^x]y){2,3}z",
    r"^((ab)|(cd)){2,3}e",
    r"q(rs){3}t",
]


class TestSafetyVerdicts:
    @pytest.mark.parametrize("pattern", UNSAFE_PATTERNS)
    def test_unsafe_detected(self, pattern):
        ast = simplify(parse(pattern).search_ast())
        analysis = analyze_exact(ast)
        assert not analysis.ambiguous, "precondition: per-state unambiguous"
        outcome = check_module_safety(analysis.nca, 0, record_witness=True)
        assert outcome.ambiguous  # = unsafe
        assert outcome.witness is not None

    @pytest.mark.parametrize("pattern", SAFE_PATTERNS)
    def test_safe_confirmed(self, pattern):
        ast = simplify(parse(pattern).search_ast())
        analysis = analyze_exact(ast)
        assert not analysis.ambiguous
        safety = module_safety_map(analysis.nca)
        assert all(safety.values()), pattern

    @pytest.mark.parametrize("pattern", UNSAFE_PATTERNS[:2])
    def test_witness_drives_two_body_tokens(self, pattern):
        ast = simplify(parse(pattern).search_ast())
        analysis = analyze_exact(ast)
        nca = analysis.nca
        outcome = check_module_safety(nca, 0, record_witness=True)
        executor = NCAExecutor(nca)
        body = nca.instances[0].body
        max_simultaneous = 0
        executor.reset()
        for byte in outcome.witness:
            executor.step(byte)
            in_body = sum(1 for state, _ in executor.tokens if state in body)
            max_simultaneous = max(max_simultaneous, in_body)
        assert max_simultaneous >= 2

    def test_single_class_bodies_trivially_safe(self):
        ast = simplify(parse(r"[^a]a{3,9}").search_ast())
        analysis = analyze_exact(ast)
        safety = module_safety_map(analysis.nca)
        assert safety == {0: True}


class TestCompilerGate:
    @pytest.mark.parametrize("pattern", UNSAFE_PATTERNS)
    def test_strict_policy_refuses_counter(self, pattern):
        compiled = compile_pattern(pattern)  # strict by default
        assert compiled.decisions[0] is not Decision.COUNTER

    @pytest.mark.parametrize("pattern", SAFE_PATTERNS)
    def test_strict_policy_keeps_counter_when_safe(self, pattern):
        compiled = compile_pattern(pattern)
        assert compiled.decisions[0] is Decision.COUNTER

    @pytest.mark.parametrize("pattern", UNSAFE_PATTERNS)
    def test_strict_networks_match_oracle(self, pattern):
        compiled = compile_pattern(pattern)
        sim = NetworkSimulator(compiled.network)
        search = simplify(parse(pattern).search_ast())
        for text in random_strings("abc", 60, 16, seed=hash(pattern) & 0xFFFF):
            want = [e for e in match_ends(search, text) if e >= 1]
            assert sim.match_ends(text) == want, (pattern, text)

    def test_naive_policy_demonstrably_diverges(self):
        """The ablation mode shows why the gate exists: with
        strict_modules=False at least one unsafe pattern mis-matches."""
        diverged = False
        for pattern in UNSAFE_PATTERNS:
            compiled = compile_pattern(pattern, strict_modules=False)
            if compiled.decisions[0] is not Decision.COUNTER:
                continue
            sim = NetworkSimulator(compiled.network)
            search = simplify(parse(pattern).search_ast())
            for text in random_strings("abc", 200, 16, seed=1234):
                want = [e for e in match_ends(search, text) if e >= 1]
                if sim.match_ends(text) != want:
                    diverged = True
                    break
            if diverged:
                break
        assert diverged
