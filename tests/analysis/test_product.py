"""Tests for the product-system pair search."""

from repro.analysis.product import PairSearch
from repro.analysis.transition_system import TokenTransitionSystem
from repro.nca.execution import NCAExecutor
from repro.nca.glushkov import build_nca
from repro.regex.parser import parse_to_ast
from repro.regex.rewrite import simplify


def search_for(pattern: str, **kwargs) -> tuple:
    nca = build_nca(simplify(parse_to_ast(pattern)))
    system = TokenTransitionSystem(nca)
    return nca, PairSearch(system, **kwargs)


class TestVerdicts:
    def test_example_32_ambiguous(self):
        nca, search = search_for(".*x{2}")
        outcome = search.run()
        assert outcome.ambiguous
        assert outcome.valuations is not None
        v1, v2 = outcome.valuations
        assert v1 != v2

    def test_anchored_unambiguous(self):
        nca, search = search_for("a{3}")
        outcome = search.run()
        assert not outcome.ambiguous
        assert outcome.state is None

    def test_guarded_run_unambiguous(self):
        nca, search = search_for(".*[^a]a{5}")
        assert not search.run().ambiguous

    def test_pair_accounting(self):
        nca, search = search_for(".*[^a]a{5}")
        outcome = search.run()
        assert outcome.pairs_created > 0
        assert outcome.pairs_expanded <= outcome.pairs_created + 1

    def test_pairs_scale_linearly_for_guarded_runs(self):
        _, s1 = search_for(".*[^a]a{20}")
        _, s2 = search_for(".*[^a]a{40}")
        p1, p2 = s1.run().pairs_created, s2.run().pairs_created
        # Theta(n): doubling the bound roughly doubles the pairs
        assert 1.5 < p2 / p1 < 2.5

    def test_target_restriction(self):
        # instance 0 (a{2}, guarded) unambiguous; instance 1 (x{2} after
        # Sigma*) ambiguous -- target sets isolate the verdicts
        nca, _ = search_for(".*[^a]a{2}.*x{2}")
        system = TokenTransitionSystem(nca)
        first = nca.instances[0]
        second = nca.instances[1]
        assert not PairSearch(system, target_states=first.body).run().ambiguous
        assert PairSearch(system, target_states=second.body).run().ambiguous

    def test_max_pairs_guard(self):
        import pytest

        nca, search = search_for(".*x{30}", max_pairs=5)
        with pytest.raises(RuntimeError):
            search.run()


class TestWitness:
    def witness_drives_degree_two(self, pattern: str):
        nca = build_nca(simplify(parse_to_ast(pattern)))
        system = TokenTransitionSystem(nca)
        outcome = PairSearch(system, record_witness=True).run()
        assert outcome.ambiguous and outcome.witness is not None
        executor = NCAExecutor(nca)
        executor.run(outcome.witness)
        assert any(
            executor.stats.degree(q) >= 2
            for q in nca.states
            if not nca.is_pure(q)
        )
        return outcome.witness

    def test_witness_is_executable_evidence(self):
        for pattern in [".*x{2}", ".*a{3,5}", ".*ab.{2,6}cd"]:
            self.witness_drives_degree_two(pattern)

    def test_no_witness_without_recording(self):
        _, search = search_for(".*x{2}", record_witness=False)
        assert search.run().witness is None
