"""Tests for degree-d counter-ambiguity (the G^d extension)."""

import pytest

from repro.analysis.degree import exact_degree, has_degree_at_least
from repro.nca.execution import NCAExecutor
from repro.nca.glushkov import build_nca
from repro.regex.parser import parse
from repro.regex.rewrite import simplify


def build(pattern: str):
    return build_nca(simplify(parse(pattern).search_ast()))


def counting_state(nca):
    return next(q for q in nca.states if not nca.is_pure(q))


class TestDegrees:
    def test_anchored_counting_degree_one(self):
        nca = build("^a{5}")
        state = counting_state(nca)
        assert exact_degree(nca, state, max_d=3) == 1

    def test_sigma_star_run_degree_saturates_at_bound(self):
        # Sigma* a{3}: entries every cycle -> up to 3 distinct values
        nca = build("a{3}")
        state = counting_state(nca)
        assert has_degree_at_least(nca, state, 2)
        assert has_degree_at_least(nca, state, 3)
        # only 3 counter values exist, so degree 4 is impossible
        assert not has_degree_at_least(nca, state, 4)
        assert exact_degree(nca, state, max_d=4) == 3

    def test_guarded_run_degree_one(self):
        nca = build("[^a]a{6}")
        state = max(q for q in nca.states if not nca.is_pure(q))
        assert exact_degree(nca, state, max_d=3) == 1

    def test_unreachable_state_degree_zero(self):
        # a counter state that no input reaches: guard demands value 5
        # of a counter bounded by 3
        from repro.nca.automaton import Guard, NCA, SetAction, Transition
        from repro.regex.charclass import CharClass

        nca = NCA(
            predicates=[None, CharClass.of_char("a"), CharClass.of_char("b")],
            counters_of=[frozenset(), frozenset({0}), frozenset()],
            transitions=[
                Transition(0, 1, actions=(SetAction(0, 1),)),
                Transition(1, 2, guard=(Guard(0, 5, 5),)),
            ],
            finals={2: ()},
            counter_bounds={0: 3},
        )
        assert exact_degree(nca, 2, max_d=2) == 0

    def test_degree_zero_or_more_trivial(self):
        nca = build("^a{2}")
        state = counting_state(nca)
        assert has_degree_at_least(nca, state, 0)


class TestAgainstExecution:
    """Static degrees vs empirically observed token counts."""

    @pytest.mark.parametrize(
        "pattern, probe",
        [("a{3}", "aaaa"), ("x{2}", "xxx"), ("[ab]{2,4}", "abab")],
    )
    def test_empirical_degree_never_exceeds_static(self, pattern, probe):
        nca = build(pattern)
        state = counting_state(nca)
        executor = NCAExecutor(nca)
        executor.run(probe)
        observed = executor.stats.degree(state)
        assert has_degree_at_least(nca, state, observed)

    def test_static_degree_witnessed_dynamically(self):
        # Sigma* a{2}: degree 2 is achieved on input 'aa...'
        nca = build("a{2}")
        state = counting_state(nca)
        assert exact_degree(nca, state, max_d=3) == 2
        executor = NCAExecutor(nca)
        executor.run("aaa")
        assert executor.stats.degree(state) == 2

    def test_tuple_cap(self):
        nca = build("a{40}")
        state = counting_state(nca)
        with pytest.raises(RuntimeError):
            has_degree_at_least(nca, state, 4, max_tuples=50)
